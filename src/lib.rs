//! Umbrella crate for the *Treelet Prefetching For Ray Tracing* (MICRO 2023)
//! reproduction.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency:
//!
//! - [`geometry`] — vectors, rays, AABBs, triangles,
//! - [`scene`] — procedural evaluation scenes and ray workloads,
//! - [`bvh`] — BVH construction, 64-byte node records, memory layouts,
//! - [`gpu`] — cycle-level caches, interconnect, and DRAM substrate,
//! - [`treelet`] — the paper's contribution: treelet formation, two-stack
//!   traversal, the hardware treelet prefetcher, and the RT-unit timing
//!   model,
//! - [`served`] — the crash-tolerant sweep daemon: line-protocol TCP
//!   server, content-addressed result cache, job timeouts, and
//!   retry/backoff over the simulator.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables and figures.

pub use rt_bvh as bvh;
pub use rt_geometry as geometry;
pub use rt_gpu_sim as gpu;
pub use rt_scene as scene;
pub use rt_served as served;
pub use treelet_rt as treelet;
