//! `treelet-sim` — command-line front end for the treelet-prefetching
//! simulator.
//!
//! ```text
//! treelet-prefetching scenes
//! treelet-prefetching stats --scene CAR [--detail 1.0] [--treelet-bytes 512]
//! treelet-prefetching run   --scene CAR [--detail 1.0] [--res 32]
//!                           [--config baseline|traversal|prefetch]
//!                           [--prefetch none|treelet|mta|ghb|hash]
//!                           [--heuristic always|partial|pop:<t>]
//!                           [--scheduler baseline|omr|pmr]
//!                           [--treelet-bytes N] [--workload primary|diffuse|shadow]
//!                           [--obj path.obj] [--compare]
//! ```

use std::process::ExitCode;
use treelet_prefetching::bvh::MemoryImage;
use treelet_prefetching::bvh::{TreeStats, WideBvh, NODE_SIZE_BYTES};
use treelet_prefetching::geometry::Ray;
use treelet_prefetching::gpu::FaultInjection;
use treelet_prefetching::scene::{load_obj, Camera, Scene, SceneId, Workload, WorkloadKind};
use treelet_prefetching::treelet::{
    compile_trace, default_jobs_for, first_divergence, read_digest_log, trace_ray, write_traces,
    Bench, BvhCache, CheckpointOptions, PrefetchConfig, PrefetchHeuristic, SchedulerPolicy, SimConfig,
    SimError, SimSession, Sweep, SweepOutcome, Telemetry, TelemetryOptions, TreeletAssignment,
    DEFAULT_TELEMETRY_EVERY,
};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Scenes,
    Stats(Options),
    Run(Options),
    Trace(Options, String),
    Bisect(String, String),
    Suite(SweepOptions),
    Sweep(SweepOptions),
    Serve(ServeOptions),
    Client(ClientOptions),
    Help,
}

/// Options for the `serve` subcommand (the rt-served daemon).
#[derive(Debug, Clone, PartialEq)]
struct ServeOptions {
    addr: String,
    store: String,
    workers: Option<usize>,
    queue_cap: Option<usize>,
    timeout_ms: Option<u64>,
    retries: Option<u32>,
    backoff_ms: Option<u64>,
    /// Chaos seed (fault injection); `--chaos` overrides `RT_CHAOS`.
    chaos: Option<u64>,
}

/// Options for the `client` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct ClientOptions {
    addr: String,
    action: ClientAction,
}

/// What the client should ask the daemon to do.
#[derive(Debug, Clone, PartialEq)]
enum ClientAction {
    Ping,
    Submit { spec: rt_served::JobSpec, wait: bool },
    Status { job: u64 },
    Result { job: u64 },
    Shutdown,
}

/// Options shared by `stats` and `run`.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    scene: SceneId,
    obj: Option<String>,
    detail: f32,
    res: u32,
    config: ConfigKind,
    prefetch: Option<PrefetchKind>,
    hash_table_size: Option<usize>,
    hash_quant: Option<u32>,
    hash_path_lines: Option<usize>,
    heuristic: Option<PrefetchHeuristic>,
    scheduler: Option<SchedulerPolicy>,
    treelet_bytes: u64,
    workload: WorkloadKind,
    compare: bool,
    max_cycles: Option<u64>,
    inject_faults: Option<u64>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<String>,
    digest_log: Option<String>,
    resume: bool,
    telemetry: bool,
    telemetry_path: Option<String>,
    telemetry_every: Option<u64>,
    /// `--bvh-cache DIR`: content-addressed preparation cache root.
    /// `None` falls back to the `RT_BVH_CACHE` environment variable.
    bvh_cache: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConfigKind {
    Baseline,
    TraversalOnly,
    Prefetch,
}

/// The `--prefetch` selector: which prefetcher rides on top of the base
/// `--config`. Overrides the base config's prefetcher via
/// [`SimConfig::with_prefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrefetchKind {
    None,
    Treelet,
    Mta,
    Ghb,
    Hash,
}

impl PrefetchKind {
    fn parse(text: &str) -> Result<PrefetchKind, String> {
        match text {
            "none" => Ok(PrefetchKind::None),
            "treelet" => Ok(PrefetchKind::Treelet),
            "mta" => Ok(PrefetchKind::Mta),
            "ghb" => Ok(PrefetchKind::Ghb),
            "hash" => Ok(PrefetchKind::Hash),
            other => Err(format!(
                "unknown --prefetch {other:?} (none | treelet | mta | ghb | hash)"
            )),
        }
    }
}

impl ConfigKind {
    fn parse(text: &str) -> Result<ConfigKind, String> {
        match text {
            "baseline" => Ok(ConfigKind::Baseline),
            "traversal" => Ok(ConfigKind::TraversalOnly),
            "prefetch" => Ok(ConfigKind::Prefetch),
            other => Err(format!("unknown --config {other:?}")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ConfigKind::Baseline => "baseline",
            ConfigKind::TraversalOnly => "traversal",
            ConfigKind::Prefetch => "prefetch",
        }
    }

    fn build(self) -> SimConfig {
        match self {
            ConfigKind::Baseline => SimConfig::paper_baseline(),
            ConfigKind::TraversalOnly => SimConfig::paper_treelet_traversal_only(),
            ConfigKind::Prefetch => SimConfig::paper_treelet_prefetch(),
        }
    }
}

/// Options for the `suite` and `sweep` subcommands: a (scene × config)
/// grid sharded across a worker pool.
#[derive(Debug, Clone, PartialEq)]
struct SweepOptions {
    scenes: Vec<SceneId>,
    detail: f32,
    res: u32,
    workload: WorkloadKind,
    configs: Vec<ConfigKind>,
    treelet_bytes: Vec<u64>,
    /// Worker count; `None` means the machine's available parallelism.
    jobs: Option<usize>,
    digest_dir: Option<String>,
    max_cycles: Option<u64>,
    /// `--bvh-cache DIR`: content-addressed preparation cache root.
    /// `None` falls back to the `RT_BVH_CACHE` environment variable.
    bvh_cache: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scenes: SceneId::ALL.to_vec(),
            detail: 1.0,
            res: 32,
            workload: WorkloadKind::Primary,
            configs: vec![ConfigKind::Prefetch],
            treelet_bytes: vec![512],
            jobs: None,
            digest_dir: None,
            max_cycles: None,
            bvh_cache: None,
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scene: SceneId::Bunny,
            obj: None,
            detail: 1.0,
            res: 32,
            config: ConfigKind::Prefetch,
            prefetch: None,
            hash_table_size: None,
            hash_quant: None,
            hash_path_lines: None,
            heuristic: None,
            scheduler: None,
            treelet_bytes: 512,
            workload: WorkloadKind::Primary,
            compare: false,
            max_cycles: None,
            inject_faults: None,
            checkpoint_every: None,
            checkpoint_path: None,
            digest_log: None,
            resume: false,
            telemetry: false,
            telemetry_path: None,
            telemetry_every: None,
            bvh_cache: None,
        }
    }
}

/// A failed command: the message for stderr plus the process exit code.
///
/// Exit codes are part of the CLI contract so scripts can react per
/// cause: 1 generic, 2 invalid config or input, 3 cycle budget exceeded,
/// 4 livelock (no forward progress), 5 corrupted or foreign checkpoint,
/// 6 divergence found by `bisect-divergence`, 7 daemon bind failure,
/// 8 daemon store corruption, 9 daemon shutdown on signal.
#[derive(Debug)]
struct Failure {
    message: String,
    code: u8,
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure { message, code: 1 }
    }
}

impl From<SimError> for Failure {
    fn from(e: SimError) -> Self {
        let code = match &e {
            SimError::Config(_) | SimError::EmptyInput { .. } => 2,
            SimError::CycleLimitExceeded { .. } => 3,
            SimError::NoForwardProgress { .. } => 4,
            SimError::Snapshot(_) => 5,
            SimError::TreeletCoverage { .. } | SimError::Trace(_) => 1,
            SimError::BatchPoisoned { .. } | SimError::WorkerPanicked { .. } => 1,
        };
        Failure {
            message: e.to_string(),
            code,
        }
    }
}

/// Parses the full argument vector (excluding `argv[0]`).
fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "scenes" => Ok(Command::Scenes),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "stats" => Ok(Command::Stats(parse_options(&args[1..])?)),
        "run" => Ok(Command::Run(parse_options(&args[1..])?)),
        "trace" => {
            // The last `--out FILE` pair is extracted; the rest are the
            // shared options.
            let mut rest: Vec<String> = Vec::new();
            let mut out = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--out" {
                    out = Some(
                        it.next()
                            .ok_or_else(|| "--out needs a value".to_string())?
                            .clone(),
                    );
                } else {
                    rest.push(a.clone());
                }
            }
            let out = out.ok_or_else(|| "trace requires --out FILE".to_string())?;
            Ok(Command::Trace(parse_options(&rest)?, out))
        }
        "bisect-divergence" => match &args[1..] {
            [a, b] => Ok(Command::Bisect(a.clone(), b.clone())),
            _ => Err("bisect-divergence takes exactly two digest-log paths".to_string()),
        },
        "suite" => Ok(Command::Suite(parse_sweep_options(&args[1..], false)?)),
        "sweep" => Ok(Command::Sweep(parse_sweep_options(&args[1..], true)?)),
        "serve" => Ok(Command::Serve(parse_serve_options(&args[1..])?)),
        "client" => Ok(Command::Client(parse_client_options(&args[1..])?)),
        other => Err(format!("unknown subcommand {other:?}; try `help`")),
    }
}

/// Pulls the value token following a flag, or errors naming the flag.
fn next_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    name: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{name} needs a value"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scene" => {
                let v = next_value(&mut it, "--scene")?;
                options.scene = SceneId::from_name(v)
                    .ok_or_else(|| format!("unknown scene {v:?}; see `scenes`"))?;
            }
            "--obj" => options.obj = Some(next_value(&mut it, "--obj")?.clone()),
            "--detail" => {
                options.detail = next_value(&mut it, "--detail")?
                    .parse()
                    .map_err(|e| format!("bad --detail: {e}"))?;
                if !options.detail.is_finite() || options.detail <= 0.0 {
                    return Err("--detail must be positive and finite".into());
                }
            }
            "--res" => {
                options.res = next_value(&mut it, "--res")?
                    .parse()
                    .map_err(|e| format!("bad --res: {e}"))?;
                if options.res == 0 {
                    return Err("--res must be positive".into());
                }
            }
            "--config" => {
                options.config = ConfigKind::parse(next_value(&mut it, "--config")?)?;
            }
            "--prefetch" => {
                options.prefetch = Some(PrefetchKind::parse(next_value(&mut it, "--prefetch")?)?);
            }
            "--hash-table-size" => {
                let v: usize = next_value(&mut it, "--hash-table-size")?
                    .parse()
                    .map_err(|e| format!("bad --hash-table-size: {e}"))?;
                if v == 0 {
                    return Err("--hash-table-size must be positive".into());
                }
                options.hash_table_size = Some(v);
            }
            "--hash-quant" => {
                let v: u32 = next_value(&mut it, "--hash-quant")?
                    .parse()
                    .map_err(|e| format!("bad --hash-quant: {e}"))?;
                if !(1..=16).contains(&v) {
                    return Err("--hash-quant must be between 1 and 16 bits".into());
                }
                options.hash_quant = Some(v);
            }
            "--hash-path-lines" => {
                let v: usize = next_value(&mut it, "--hash-path-lines")?
                    .parse()
                    .map_err(|e| format!("bad --hash-path-lines: {e}"))?;
                if v == 0 {
                    return Err("--hash-path-lines must be positive".into());
                }
                options.hash_path_lines = Some(v);
            }
            "--heuristic" => {
                let v = next_value(&mut it, "--heuristic")?;
                options.heuristic = Some(parse_heuristic(v)?);
            }
            "--scheduler" => {
                options.scheduler = Some(match next_value(&mut it, "--scheduler")?.as_str() {
                    "baseline" => SchedulerPolicy::Baseline,
                    "omr" => SchedulerPolicy::OldestMatchingRay,
                    "pmr" => SchedulerPolicy::PrioritizeMostRays,
                    other => return Err(format!("unknown --scheduler {other:?}")),
                });
            }
            "--treelet-bytes" => {
                options.treelet_bytes = next_value(&mut it, "--treelet-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --treelet-bytes: {e}"))?;
                if options.treelet_bytes < NODE_SIZE_BYTES {
                    return Err(format!(
                        "--treelet-bytes must be at least one node ({NODE_SIZE_BYTES} B)"
                    ));
                }
            }
            "--workload" => {
                options.workload = match next_value(&mut it, "--workload")?.as_str() {
                    "primary" => WorkloadKind::Primary,
                    "diffuse" => WorkloadKind::Diffuse,
                    "shadow" => WorkloadKind::Shadow,
                    other => return Err(format!("unknown --workload {other:?}")),
                };
            }
            "--compare" => options.compare = true,
            "--max-cycles" => {
                let v: u64 = next_value(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|e| format!("bad --max-cycles: {e}"))?;
                if v == 0 {
                    return Err("--max-cycles must be positive".into());
                }
                options.max_cycles = Some(v);
            }
            "--inject-faults" => {
                options.inject_faults = Some(
                    next_value(&mut it, "--inject-faults")?
                        .parse()
                        .map_err(|e| format!("bad --inject-faults seed: {e}"))?,
                );
            }
            "--checkpoint-every" => {
                let v: u64 = next_value(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if v == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
                options.checkpoint_every = Some(v);
            }
            "--checkpoint-path" => {
                options.checkpoint_path = Some(next_value(&mut it, "--checkpoint-path")?.clone());
            }
            "--bvh-cache" => {
                options.bvh_cache = Some(next_value(&mut it, "--bvh-cache")?.clone());
            }
            "--digest-log" => {
                options.digest_log = Some(next_value(&mut it, "--digest-log")?.clone());
            }
            "--resume" => options.resume = true,
            "--telemetry" => {
                options.telemetry = true;
                // The output path is optional: `--telemetry out.csv`
                // writes a file, bare `--telemetry` only prints a
                // summary (and is what `stats --telemetry` uses).
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        options.telemetry_path = Some(
                            it.next()
                                .expect("peeked token must be present")
                                .clone(),
                        );
                    }
                }
            }
            "--telemetry-every" => {
                let v: u64 = next_value(&mut it, "--telemetry-every")?
                    .parse()
                    .map_err(|e| format!("bad --telemetry-every: {e}"))?;
                if v == 0 {
                    return Err("--telemetry-every must be positive".into());
                }
                options.telemetry_every = Some(v);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.prefetch != Some(PrefetchKind::Hash)
        && (options.hash_table_size.is_some()
            || options.hash_quant.is_some()
            || options.hash_path_lines.is_some())
    {
        return Err("--hash-table-size/--hash-quant/--hash-path-lines require --prefetch hash".into());
    }
    Ok(options)
}

fn parse_heuristic(text: &str) -> Result<PrefetchHeuristic, String> {
    match text {
        "always" => Ok(PrefetchHeuristic::Always),
        "partial" => Ok(PrefetchHeuristic::Partial),
        other => {
            if let Some(t) = other.strip_prefix("pop:") {
                let threshold: f32 = t.parse().map_err(|e| format!("bad threshold: {e}"))?;
                if !(0.0..=1.0).contains(&threshold) {
                    return Err("threshold must be in [0, 1]".into());
                }
                Ok(PrefetchHeuristic::Popularity(threshold))
            } else {
                Err(format!(
                    "unknown heuristic {other:?} (always | partial | pop:<t>)"
                ))
            }
        }
    }
}

/// Parses `suite`/`sweep` flags. `grid` enables the sweep-only flags
/// that multiply the grid (`--configs`, `--treelet-bytes-list`); `suite`
/// instead takes the single `--config` the `run` subcommand uses.
fn parse_sweep_options(args: &[String], grid: bool) -> Result<SweepOptions, String> {
    let mut options = SweepOptions::default();
    if grid {
        options.configs = vec![ConfigKind::Baseline, ConfigKind::Prefetch];
    }
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenes" => {
                options.scenes = next_value(&mut it, "--scenes")?
                    .split(',')
                    .map(|name| {
                        SceneId::from_name(name)
                            .ok_or_else(|| format!("unknown scene {name:?}; see `scenes`"))
                    })
                    .collect::<Result<_, _>>()?;
                if options.scenes.is_empty() {
                    return Err("--scenes needs at least one scene".into());
                }
            }
            "--detail" => {
                options.detail = next_value(&mut it, "--detail")?
                    .parse()
                    .map_err(|e| format!("bad --detail: {e}"))?;
                if !options.detail.is_finite() || options.detail <= 0.0 {
                    return Err("--detail must be positive and finite".into());
                }
            }
            "--res" => {
                options.res = next_value(&mut it, "--res")?
                    .parse()
                    .map_err(|e| format!("bad --res: {e}"))?;
                if options.res == 0 {
                    return Err("--res must be positive".into());
                }
            }
            "--workload" => {
                options.workload = match next_value(&mut it, "--workload")?.as_str() {
                    "primary" => WorkloadKind::Primary,
                    "diffuse" => WorkloadKind::Diffuse,
                    "shadow" => WorkloadKind::Shadow,
                    other => return Err(format!("unknown --workload {other:?}")),
                };
            }
            "--config" if !grid => {
                options.configs = vec![ConfigKind::parse(next_value(&mut it, "--config")?)?];
            }
            "--configs" if grid => {
                options.configs = next_value(&mut it, "--configs")?
                    .split(',')
                    .map(ConfigKind::parse)
                    .collect::<Result<_, _>>()?;
                if options.configs.is_empty() {
                    return Err("--configs needs at least one config".into());
                }
            }
            "--treelet-bytes-list" if grid => {
                options.treelet_bytes = next_value(&mut it, "--treelet-bytes-list")?
                    .split(',')
                    .map(|b| b.parse().map_err(|e| format!("bad treelet budget: {e}")))
                    .collect::<Result<_, _>>()?;
                if options.treelet_bytes.iter().any(|&b| b < NODE_SIZE_BYTES) {
                    return Err(format!(
                        "every treelet budget must be at least one node ({NODE_SIZE_BYTES} B)"
                    ));
                }
            }
            "--jobs" => {
                let v: usize = next_value(&mut it, "--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if v == 0 {
                    return Err("--jobs must be positive".into());
                }
                options.jobs = Some(v);
            }
            "--bvh-cache" => {
                options.bvh_cache = Some(next_value(&mut it, "--bvh-cache")?.clone());
            }
            "--digest-dir" => {
                options.digest_dir = Some(next_value(&mut it, "--digest-dir")?.clone());
            }
            "--max-cycles" => {
                let v: u64 = next_value(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|e| format!("bad --max-cycles: {e}"))?;
                if v == 0 {
                    return Err("--max-cycles must be positive".into());
                }
                options.max_cycles = Some(v);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut addr = None;
    let mut store = None;
    let mut options = ServeOptions {
        addr: String::new(),
        store: String::new(),
        workers: None,
        queue_cap: None,
        timeout_ms: None,
        retries: None,
        backoff_ms: None,
        chaos: None,
    };
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = Some(next_value(&mut it, "--addr")?.clone()),
            "--store" => store = Some(next_value(&mut it, "--store")?.clone()),
            "--workers" => {
                let v: usize = next_value(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if v == 0 {
                    return Err("--workers must be positive".into());
                }
                options.workers = Some(v);
            }
            "--queue-cap" => {
                let v: usize = next_value(&mut it, "--queue-cap")?
                    .parse()
                    .map_err(|e| format!("bad --queue-cap: {e}"))?;
                if v == 0 {
                    return Err("--queue-cap must be positive".into());
                }
                options.queue_cap = Some(v);
            }
            "--timeout-ms" => {
                let v: u64 = next_value(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --timeout-ms: {e}"))?;
                if v == 0 {
                    return Err("--timeout-ms must be positive".into());
                }
                options.timeout_ms = Some(v);
            }
            "--retries" => {
                options.retries = Some(
                    next_value(&mut it, "--retries")?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                );
            }
            "--backoff-ms" => {
                let v: u64 = next_value(&mut it, "--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-ms: {e}"))?;
                if v == 0 {
                    return Err("--backoff-ms must be positive".into());
                }
                options.backoff_ms = Some(v);
            }
            "--chaos" => {
                let v = next_value(&mut it, "--chaos")?;
                let parsed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                options.chaos = Some(
                    parsed.map_err(|_| {
                        format!("bad --chaos {v:?} (expected a u64 seed, e.g. 42 or 0x2a)")
                    })?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    options.addr = addr.ok_or_else(|| "serve requires --addr HOST:PORT".to_string())?;
    options.store = store.ok_or_else(|| "serve requires --store DIR".to_string())?;
    Ok(options)
}

fn parse_client_options(args: &[String]) -> Result<ClientOptions, String> {
    let Some(action_word) = args.first() else {
        return Err("client requires an action: ping | submit | status | result | shutdown".into());
    };
    let mut addr = None;
    let mut job = None;
    let mut wait = false;
    let mut spec = rt_served::JobSpec {
        scenes: SceneId::ALL.iter().map(|s| s.name().to_string()).collect(),
        ..rt_served::JobSpec::default()
    };
    let mut it = args[1..].iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = Some(next_value(&mut it, "--addr")?.clone()),
            "--job" => {
                let v = next_value(&mut it, "--job")?;
                job = Some(
                    rt_served::protocol::parse_hex_id(v)
                        .ok_or_else(|| format!("bad --job {v:?} (expected 0x-prefixed hex)"))?,
                );
            }
            "--wait" => wait = true,
            "--scenes" => {
                let names = next_value(&mut it, "--scenes")?;
                spec.scenes = names.split(',').map(str::to_string).collect();
                for name in &spec.scenes {
                    if SceneId::from_name(name).is_none() {
                        return Err(format!("unknown scene {name:?}; see `scenes`"));
                    }
                }
            }
            "--configs" => {
                spec.configs = next_value(&mut it, "--configs")?
                    .split(',')
                    .map(|c| ConfigKind::parse(c).map(|k| k.name().to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--detail" => {
                spec.detail = next_value(&mut it, "--detail")?
                    .parse()
                    .map_err(|e| format!("bad --detail: {e}"))?;
                if !spec.detail.is_finite() || spec.detail <= 0.0 {
                    return Err("--detail must be positive and finite".into());
                }
            }
            "--res" => {
                spec.res = next_value(&mut it, "--res")?
                    .parse()
                    .map_err(|e| format!("bad --res: {e}"))?;
                if spec.res == 0 {
                    return Err("--res must be positive".into());
                }
            }
            "--workload" => {
                let v = next_value(&mut it, "--workload")?;
                if !matches!(v.as_str(), "primary" | "diffuse" | "shadow") {
                    return Err(format!("unknown --workload {v:?}"));
                }
                spec.workload = v.clone();
            }
            "--treelet-bytes" => {
                spec.treelet_bytes = next_value(&mut it, "--treelet-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --treelet-bytes: {e}"))?;
                if spec.treelet_bytes < NODE_SIZE_BYTES {
                    return Err(format!(
                        "--treelet-bytes must be at least one node ({NODE_SIZE_BYTES} B)"
                    ));
                }
            }
            "--max-cycles" => {
                let v: u64 = next_value(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|e| format!("bad --max-cycles: {e}"))?;
                if v == 0 {
                    return Err("--max-cycles must be positive".into());
                }
                spec.max_cycles = Some(v);
            }
            "--timeout-ms" => {
                let v: u64 = next_value(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --timeout-ms: {e}"))?;
                if v == 0 {
                    return Err("--timeout-ms must be positive".into());
                }
                spec.timeout_ms = Some(v);
            }
            "--checkpoint-every" => {
                let v: u64 = next_value(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if v == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
                spec.checkpoint_every = v;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.ok_or_else(|| "client requires --addr HOST:PORT".to_string())?;
    let action = match action_word.as_str() {
        "ping" => ClientAction::Ping,
        "shutdown" => ClientAction::Shutdown,
        "submit" => ClientAction::Submit { spec, wait },
        "status" => ClientAction::Status {
            job: job.ok_or_else(|| "status requires --job 0xID".to_string())?,
        },
        "result" => ClientAction::Result {
            job: job.ok_or_else(|| "result requires --job 0xID".to_string())?,
        },
        other => {
            return Err(format!(
                "unknown client action {other:?} (ping | submit | status | result | shutdown)"
            ))
        }
    };
    Ok(ClientOptions { addr, action })
}

fn build_config(options: &Options) -> SimConfig {
    let mut config = options.config.build().with_treelet_bytes(options.treelet_bytes);
    // The prefetcher override comes first so `--prefetch treelet
    // --heuristic partial` composes (the heuristic setter only touches a
    // treelet prefetcher).
    if let Some(kind) = options.prefetch {
        config = config.with_prefetcher(build_prefetch(kind, options));
    }
    if let Some(h) = options.heuristic {
        config = config.with_heuristic(h);
    }
    if let Some(s) = options.scheduler {
        config = config.with_scheduler(s);
    }
    apply_robustness(config, options)
}

/// Expands a `--prefetch` selection (plus the hash knobs) into its
/// [`PrefetchConfig`].
fn build_prefetch(kind: PrefetchKind, options: &Options) -> PrefetchConfig {
    match kind {
        PrefetchKind::None => PrefetchConfig::none(),
        PrefetchKind::Treelet => PrefetchConfig::treelet(),
        PrefetchKind::Mta => PrefetchConfig::mta(),
        PrefetchKind::Ghb => PrefetchConfig::ghb(),
        PrefetchKind::Hash => {
            let mut prefetch = PrefetchConfig::hash();
            if let PrefetchConfig::Hash {
                table_capacity,
                origin_bits,
                dir_bits,
                max_path_lines,
                ..
            } = &mut prefetch
            {
                if let Some(v) = options.hash_table_size {
                    *table_capacity = v;
                }
                if let Some(v) = options.hash_quant {
                    *origin_bits = v;
                    *dir_bits = v;
                }
                if let Some(v) = options.hash_path_lines {
                    *max_path_lines = v;
                }
            }
            prefetch
        }
    }
}

/// Applies the watchdog/fault flags shared by every config the CLI
/// builds (including the `--compare` baseline, so both runs abort under
/// the same budget).
fn apply_robustness(mut config: SimConfig, options: &Options) -> SimConfig {
    if let Some(limit) = options.max_cycles {
        config.max_cycles = limit;
    }
    if let Some(seed) = options.inject_faults {
        config.mem.fault_injection = Some(FaultInjection::latency_storm(seed));
    }
    config
}

/// Builds the workload geometry: either a named procedural scene or a
/// user OBJ framed by the same camera logic.
///
/// Resolves the preparation cache for a command: an explicit
/// `--bvh-cache` flag wins, and an unusable directory is invalid input
/// (exit 2); with no flag, the `RT_BVH_CACHE` environment variable
/// applies best-effort (unusable directory warns and disables caching).
fn resolve_bvh_cache(flag: Option<&str>) -> Result<Option<BvhCache>, Failure> {
    match flag {
        Some(dir) => BvhCache::open(dir)
            .map(Some)
            .map_err(|e| invalid(format!("--bvh-cache {dir}: {e}"))),
        None => Ok(BvhCache::from_env()),
    }
}

/// Builds the command's BVH and workload rays, going through the
/// content-addressed preparation cache when one is configured. `--obj`
/// meshes are never cached: the cache key identifies paper scenes by
/// name and detail, not arbitrary mesh files.
fn prepare_inputs(options: &Options) -> Result<(WideBvh, Vec<Ray>), Failure> {
    let workload = Workload::new(options.workload, options.res, options.res);
    if options.obj.is_none() {
        let cache = resolve_bvh_cache(options.bvh_cache.as_deref())?;
        let bench = Bench::try_prepare_cached(
            options.scene,
            options.detail,
            workload,
            cache.as_ref(),
        )
        .map_err(|e| Failure {
            message: e.to_string(),
            code: 2,
        })?;
        return Ok(bench.into_parts());
    }
    let scene = build_scene(options)?;
    let rays = workload.generate(&scene);
    Ok((WideBvh::build(scene.mesh.into_triangles()), rays))
}

/// Scene-construction failures (bad detail, triangle-budget overflow)
/// are invalid input — exit code 2 — not generic errors.
fn build_scene(options: &Options) -> Result<Scene, Failure> {
    match &options.obj {
        None => Scene::try_build_with_detail(options.scene, options.detail).map_err(|e| Failure {
            message: e.to_string(),
            code: 2,
        }),
        Some(path) => {
            let mesh = load_obj(path).map_err(|e| e.to_string()).map_err(Failure::from)?;
            if mesh.is_empty() {
                return Err(format!("{path}: no triangles found").into());
            }
            let aabb = mesh.aabb();
            let center = aabb.center();
            let radius = aabb.extent().length().max(1.0);
            let eye = center
                + treelet_prefetching::geometry::Vec3::new(0.55, 0.4, 0.73).normalized() * radius;
            let camera = Camera::look_at(
                eye,
                center,
                treelet_prefetching::geometry::Vec3::Y,
                50.0_f32.to_radians(),
                1.0,
            );
            Ok(Scene {
                id: options.scene,
                mesh,
                camera,
            })
        }
    }
}

fn cmd_scenes() {
    println!(
        "{:<7} {:>12} {:>7} {:>12}",
        "Scene", "paper MB", "depth", "treelets"
    );
    for id in SceneId::ALL {
        let p = id.paper_stats();
        println!(
            "{:<7} {:>12.1} {:>7} {:>12}",
            id.name(),
            p.tree_size_mb,
            p.tree_depth,
            p.total_treelets
        );
    }
}

fn cmd_stats(options: &Options) -> Result<(), Failure> {
    let (bvh, rays) = prepare_inputs(options)?;
    let stats = TreeStats::of(&bvh);
    let treelets =
        TreeletAssignment::try_form(&bvh, options.treelet_bytes).map_err(SimError::from)?;
    println!(
        "scene:     {}",
        options.obj.as_deref().unwrap_or(options.scene.name())
    );
    println!("triangles: {}", stats.triangle_count);
    println!(
        "nodes:     {} ({} internal, {} leaf)",
        stats.node_count, stats.internal_count, stats.leaf_count
    );
    println!("depth:     {}", stats.max_depth);
    println!("size:      {:.2} MB", stats.total_mb());
    println!(
        "treelets:  {} at {} B max ({:.0}% mean occupancy)",
        treelets.count(),
        options.treelet_bytes,
        treelets.mean_occupancy() * 100.0
    );
    // `stats --telemetry` additionally runs the workload once and
    // summarizes the sampled time-series (writing it out when a path
    // was given), so a scene can be profiled in one command.
    if let Some(telemetry_opts) = telemetry_options(options).map_err(invalid)? {
        let config = build_config(options);
        let (result, telemetry) = SimSession::new(&bvh, &rays, config)
            .telemetry(telemetry_opts)
            .run_with_telemetry()?;
        print_telemetry_summary(&telemetry, result.cycles);
        if let Some(path) = &options.telemetry_path {
            write_telemetry(&telemetry, path)?;
            println!("telemetry: wrote {} samples to {path}", telemetry.len());
        }
    }
    Ok(())
}

/// Wraps a flag-validation message as the invalid-input failure (exit 2).
fn invalid(message: String) -> Failure {
    Failure { message, code: 2 }
}

/// Assembles [`TelemetryOptions`] from the CLI flags, or `None` when
/// telemetry was not requested.
fn telemetry_options(options: &Options) -> Result<Option<TelemetryOptions>, String> {
    if !options.telemetry {
        if options.telemetry_every.is_some() {
            return Err("--telemetry-every requires --telemetry".into());
        }
        return Ok(None);
    }
    let every = options.telemetry_every.unwrap_or(DEFAULT_TELEMETRY_EVERY);
    Ok(Some(TelemetryOptions::new(every)))
}

/// Writes the telemetry time-series to `path`: JSON when the extension
/// is `.json`, CSV otherwise.
fn write_telemetry(telemetry: &Telemetry, path: &str) -> Result<(), Failure> {
    let p = std::path::Path::new(path);
    let json = p
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"));
    let io = if json {
        telemetry.write_json(p)
    } else {
        telemetry.write_csv(p)
    };
    io.map_err(|e| Failure::from(format!("{path}: {e}")))
}

/// Prints the compact per-run telemetry digest shared by `run` and
/// `stats --telemetry`.
fn print_telemetry_summary(telemetry: &Telemetry, cycles: u64) {
    let samples = telemetry.samples();
    let Some(last) = samples.last() else {
        println!("telemetry: no samples collected");
        return;
    };
    println!(
        "telemetry: {} samples over {} cycles (every {} cycles)",
        samples.len(),
        cycles,
        telemetry.every()
    );
    let mean = |f: fn(&treelet_prefetching::treelet::TelemetrySample) -> f64| -> f64 {
        samples.iter().map(f).sum::<f64>() / samples.len() as f64
    };
    println!(
        "  warp buffer occupancy: {:.1} mean / {} peak",
        mean(|s| s.warp_buffer_occupancy as f64),
        samples
            .iter()
            .map(|s| s.warp_buffer_occupancy)
            .max()
            .unwrap_or(0)
    );
    println!(
        "  L1 hit rate:           {:.1}% mean (final {:.1}%)",
        mean(|s| s.l1_hit_rate * 100.0),
        last.l1_hit_rate * 100.0
    );
    println!(
        "  L2 hit rate:           {:.1}% mean (final {:.1}%)",
        mean(|s| s.l2_hit_rate * 100.0),
        last.l2_hit_rate * 100.0
    );
    println!(
        "  prefetches:            {} useful, {} late, {} useless",
        last.prefetch_useful, last.prefetch_late, last.prefetch_useless
    );
    let per_channel: Vec<String> = last
        .dram_channel_bytes
        .iter()
        .map(|b| format!("{:.1}", *b as f64 / 1024.0))
        .collect();
    println!("  DRAM KiB per channel:  [{}]", per_channel.join(", "));
}

/// Assembles [`CheckpointOptions`] from the CLI flags, or `None` when
/// checkpointing was not requested. `--resume` and `--checkpoint-path`
/// imply checkpointing with a default interval.
fn checkpoint_options(options: &Options) -> Result<Option<CheckpointOptions>, String> {
    let wants =
        options.checkpoint_every.is_some() || options.checkpoint_path.is_some() || options.resume;
    if !wants {
        if options.digest_log.is_some() {
            return Err("--digest-log requires --checkpoint-every".into());
        }
        return Ok(None);
    }
    let every = options.checkpoint_every.unwrap_or(100_000);
    let path = options
        .checkpoint_path
        .clone()
        .unwrap_or_else(|| "checkpoint.rtsnap".to_string());
    let mut opts = CheckpointOptions::new(every, path);
    if let Some(log) = &options.digest_log {
        opts = opts.with_digest_log(log);
    }
    Ok(Some(opts))
}

fn cmd_run(options: &Options) -> Result<(), Failure> {
    let (bvh, rays) = prepare_inputs(options)?;
    let config = build_config(options);
    let telemetry_opts = telemetry_options(options).map_err(invalid)?;
    let mut telemetry = None;
    let mut session = SimSession::new(&bvh, &rays, config);
    if let Some(ck) = checkpoint_options(options).map_err(invalid)? {
        session = session.checkpoint(ck);
        if options.resume {
            session = session.resume_from_checkpoint();
        }
    }
    let result = match telemetry_opts {
        Some(topts) => {
            let (result, t) = session.telemetry(topts).run_with_telemetry()?;
            telemetry = Some(t);
            result
        }
        None => session.run()?,
    };
    if options.compare {
        let base_config = apply_robustness(SimConfig::paper_baseline(), options);
        let base = SimSession::new(&bvh, &rays, base_config).run()?;
        println!(
            "baseline: {:>10} cycles | selected: {:>10} cycles | speedup {:.3}x",
            base.cycles,
            result.cycles,
            result.speedup_over(&base)
        );
    } else {
        println!("cycles:            {}", result.cycles);
    }
    println!("rays:              {}", result.rays);
    println!(
        "avg nodes/ray:     {:.1}",
        result.traversal.avg_nodes_per_ray
    );
    println!("node load latency: {:.0} cycles", result.node_load_latency);
    println!(
        "L1 hit rate:       {:.1}%",
        result.l1.demand_hit_rate() * 100.0
    );
    println!("DRAM utilization:  {:.1}%", result.dram_utilization * 100.0);
    println!("avg power:         {:.2} W", result.power.avg_power_w);
    if result.prefetch_effect.total() > 0 {
        let e = result.prefetch_effect;
        println!(
            "prefetches:        {} timely, {} late, {} too late, {} early, {} unused",
            e.timely, e.late, e.too_late, e.early, e.unused
        );
    }
    if let Some(h) = &result.hash {
        println!(
            "hash predictor:    {} rays hashed, {} table hits ({:.1}%), {} paths, {} lines staged, {} dropped",
            h.rays_hashed,
            h.table_hits,
            h.hit_rate() * 100.0,
            h.paths_recorded,
            h.lines_enqueued,
            h.queue_full_drops
        );
    }
    // Scripts (the CI kill-and-resume job among them) compare this line
    // between a resumed and an uninterrupted run.
    println!("state digest:      {:#018x}", result.state_digest);
    if let Some(telemetry) = telemetry {
        print_telemetry_summary(&telemetry, result.cycles);
        if let Some(path) = &options.telemetry_path {
            write_telemetry(&telemetry, path)?;
            println!("telemetry: wrote {} samples to {path}", telemetry.len());
        }
    }
    Ok(())
}

/// Compares two digest logs and reports the first epoch where their
/// simulations diverged.
fn cmd_bisect(log_a: &str, log_b: &str) -> Result<(), Failure> {
    let a = read_digest_log(std::path::Path::new(log_a)).map_err(SimError::from)?;
    let b = read_digest_log(std::path::Path::new(log_b)).map_err(SimError::from)?;
    println!("{log_a}: {} epochs", a.len());
    println!("{log_b}: {} epochs", b.len());
    match first_divergence(&a, &b) {
        None => {
            println!("digest histories agree over their common prefix");
            Ok(())
        }
        Some((ra, rb)) => {
            println!("first divergence at epoch {}:", ra.epoch);
            println!("  a: {ra}");
            println!("  b: {rb}");
            if ra.cycle != rb.cycle {
                println!("  cycle differs: {} vs {}", ra.cycle, rb.cycle);
            }
            if ra.digest != rb.digest {
                println!(
                    "  state digest differs: {:#018x} vs {:#018x}",
                    ra.digest, rb.digest
                );
            }
            if ra.rays_remaining != rb.rays_remaining {
                println!(
                    "  rays remaining differ: {} vs {}",
                    ra.rays_remaining, rb.rays_remaining
                );
            }
            Err(Failure {
                message: format!("runs diverge at epoch {}", ra.epoch),
                code: 6,
            })
        }
    }
}

fn cmd_trace(options: &Options, out_path: &str) -> Result<(), Failure> {
    use treelet_prefetching::treelet::TraversalAlgorithm;
    let (bvh, rays) = prepare_inputs(options)?;
    let config = build_config(options);
    let treelets =
        TreeletAssignment::try_form(&bvh, options.treelet_bytes).map_err(SimError::from)?;
    let image = match config.traversal {
        // The trace dump pairs the algorithm with its natural layout.
        TraversalAlgorithm::BaselineDfs => MemoryImage::depth_first(&bvh),
        TraversalAlgorithm::TwoStackTreelet => MemoryImage::treelet_packed(
            &bvh,
            treelets.as_slices(),
            treelet_prefetching::bvh::PackOptions {
                slot_bytes: options.treelet_bytes,
                extra_stride: 0,
            },
        ),
    };
    let traces: Vec<_> = rays
        .iter()
        .map(|r| compile_trace(&trace_ray(&bvh, &treelets, r, config.traversal), &image, 64))
        .collect();
    let file = std::fs::File::create(out_path)
        .map_err(|e| Failure::from(format!("{out_path}: {e}")))?;
    write_traces(std::io::BufWriter::new(file), &traces)
        .map_err(|e| Failure::from(e.to_string()))?;
    let steps: usize = traces.iter().map(Vec::len).sum();
    println!(
        "wrote {} rays / {} steps ({}) to {out_path}",
        traces.len(),
        steps,
        config.traversal
    );
    Ok(())
}

/// Expands the sweep options into the labeled config grid, config-major:
/// every `(config kind × treelet budget)` pair becomes one column. The
/// budget suffix is dropped when only one budget is swept, so `suite`
/// labels read as plain config names.
fn sweep_grid(options: &SweepOptions) -> Vec<(String, SimConfig)> {
    let mut grid = Vec::new();
    for kind in &options.configs {
        for &bytes in &options.treelet_bytes {
            let label = if options.treelet_bytes.len() > 1 {
                format!("{}/{}B", kind.name(), bytes)
            } else {
                kind.name().to_string()
            };
            let mut config = kind.build().with_treelet_bytes(bytes);
            if let Some(limit) = options.max_cycles {
                config.max_cycles = limit;
            }
            grid.push((label, config));
        }
    }
    grid
}

/// Writes one digest log per scene into `dir`: each line is one
/// (config, scene) cell in config-major grid order, so two runs of the
/// same grid produce byte-identical files regardless of `--jobs`. The
/// CI determinism job diffs these between `--jobs 1` and `--jobs 4`.
///
/// Each log is committed atomically (write-then-rename via the snapshot
/// module), so a sweep killed mid-write leaves either the previous log
/// or the new one — never a torn file that would poison a later diff.
fn write_digest_logs(dir: &str, outcomes: &[SweepOutcome]) -> Result<(), Failure> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| Failure::from(format!("{}: {e}", dir.display())))?;
    let mut files: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for cell in outcomes {
        let log = files
            .entry(cell.scene.name().to_ascii_lowercase())
            .or_default();
        match &cell.result {
            Ok(r) => log.push_str(&format!(
                "config={} scene={} cycles={} digest={:#018x}\n",
                cell.label,
                cell.scene.name(),
                r.cycles,
                r.state_digest
            )),
            Err(e) => log.push_str(&format!(
                "config={} scene={} failed={e}\n",
                cell.label,
                cell.scene.name()
            )),
        }
    }
    for (slug, contents) in files {
        let path = dir.join(format!("{slug}.digests"));
        treelet_prefetching::treelet::write_atomic(&path, contents.as_bytes())
            .map_err(|e| Failure::from(e.to_string()))?;
    }
    Ok(())
}

/// Shared implementation of `suite` (one config × the scene list) and
/// `sweep` (config grid × the scene list): prepare the benches, shard
/// the (scene, config) cells across the worker pool, and report results
/// in deterministic config-major order.
fn cmd_sweep(options: &SweepOptions) -> Result<(), Failure> {
    let grid = sweep_grid(options);
    let cells = options.scenes.len() * grid.len();
    let jobs = options.jobs.unwrap_or_else(|| default_jobs_for(cells));
    let workload = Workload::new(options.workload, options.res, options.res);
    eprintln!(
        "preparing {} scene(s), then running {} cell(s) on {jobs} worker(s)",
        options.scenes.len(),
        options.scenes.len() * grid.len()
    );
    // Scene preparation (geometry + BVH build) is independent per scene:
    // shard it across the same pool the simulations use, weighted by
    // each scene's paper tree size so the big builds start first, and
    // route each build through the preparation cache when one is
    // configured.
    let cache = resolve_bvh_cache(options.bvh_cache.as_deref())?;
    let costs: Vec<u64> = options
        .scenes
        .iter()
        .map(|id| ((id.paper_stats().tree_size_mb * 1_048_576.0) as u64).max(1))
        .collect();
    let prepared = treelet_prefetching::treelet::run_weighted(jobs, &costs, |i| {
        Bench::try_prepare_cached(options.scenes[i], options.detail, workload, cache.as_ref())
    });
    let mut benches = Vec::with_capacity(prepared.len());
    for bench in prepared {
        benches.push(bench.map_err(|e| Failure {
            message: e.to_string(),
            code: 2,
        })?);
    }
    if let Some(cache) = &cache {
        eprintln!(
            "bvh cache: {} hit(s), {} miss(es) at {}",
            cache.hits(),
            cache.misses(),
            cache.root().display()
        );
    }
    let mut sweep = Sweep::new(benches);
    for (label, config) in grid {
        sweep = sweep.with_config(label, config);
    }
    let outcomes = sweep.run_parallel(jobs);

    println!(
        "{:<18} {:<7} {:>12} {:>20}",
        "config", "scene", "cycles", "state digest"
    );
    for cell in &outcomes {
        match &cell.result {
            Ok(r) => println!(
                "{:<18} {:<7} {:>12} {:>#20x}",
                cell.label,
                cell.scene.name(),
                r.cycles,
                r.state_digest
            ),
            Err(e) => println!(
                "{:<18} {:<7} {:>12} {e}",
                cell.label,
                cell.scene.name(),
                "FAILED"
            ),
        }
    }
    if let Some(dir) = &options.digest_dir {
        write_digest_logs(dir, &outcomes)?;
        println!("digest logs written to {dir}/");
    }
    let failures = outcomes
        .iter()
        .filter(|c| c.result.is_err())
        .count();
    if failures > 0 {
        // Exit with the first failure's per-cause code so scripts react
        // to a failed sweep exactly as they would to a failed `run`.
        let first = outcomes
            .into_iter()
            .find_map(|c| c.result.err())
            .expect("at least one cell failed");
        return Err(Failure {
            message: format!("{failures} cell(s) failed; first: {first}"),
            code: Failure::from(first).code,
        });
    }
    Ok(())
}

/// Installs a SIGTERM/SIGINT handler that flips a static flag the
/// daemon's accept loop polls, giving `kill`-style supervision a clean
/// drain path (exit code 9) instead of an abrupt death. Hand-rolled via
/// the C `signal` entry point std already links — the workspace is
/// dependency-free by policy.
#[cfg(unix)]
fn install_signal_flag() -> &'static std::sync::atomic::AtomicBool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        // Only the async-signal-safe atomic store happens here.
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
    &FLAG
}

/// Runs the rt-served daemon. Owns its exit-code mapping (7 bind
/// failure, 8 store corruption, 9 shutdown on signal) because unlike
/// every other subcommand a *clean* exit here has two flavors.
fn cmd_serve(options: &ServeOptions) -> ExitCode {
    let mut supervisor = rt_served::SupervisorConfig::default();
    if let Some(v) = options.workers {
        supervisor.workers = v;
    }
    if let Some(v) = options.queue_cap {
        supervisor.queue_cap = v;
    }
    if let Some(v) = options.timeout_ms {
        supervisor.default_timeout_ms = v;
    }
    if let Some(v) = options.retries {
        supervisor.max_retries = v;
    }
    if let Some(v) = options.backoff_ms {
        supervisor.backoff_base_ms = v;
    }
    #[cfg(unix)]
    let signal_flag = Some(install_signal_flag());
    #[cfg(not(unix))]
    let signal_flag = None;

    // `--chaos` beats `RT_CHAOS`; a malformed env var is refused as
    // invalid input rather than silently running without faults.
    let chaos = match options.chaos {
        Some(seed) => rt_served::Chaos::seeded(seed),
        None => match rt_served::Chaos::from_env() {
            Ok(chaos) => chaos,
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        },
    };
    if let Some(seed) = chaos.seed() {
        eprintln!("chaos: fault injection active (seed {seed}); not for production use");
    }

    let server = match rt_served::Server::bind(rt_served::ServerConfig {
        addr: options.addr.clone(),
        store_dir: options.store.clone().into(),
        supervisor,
        signal_flag,
        chaos,
    }) {
        Ok(server) => server,
        Err(e @ rt_served::ServeError::Bind { .. }) => {
            eprintln!("error: {e}");
            return ExitCode::from(7);
        }
        Err(e @ rt_served::ServeError::Store(_)) => {
            eprintln!("error: {e}");
            return ExitCode::from(8);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("rt-served listening on {}", server.local_addr());
    println!("store: {}", options.store);
    match server.run() {
        Ok(rt_served::ShutdownReason::Requested) => {
            println!("shutdown requested by client; drained cleanly");
            ExitCode::SUCCESS
        }
        Ok(rt_served::ShutdownReason::Signal) => {
            eprintln!("received termination signal; drained cleanly");
            ExitCode::from(9)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Maps a client-side failure to the CLI exit-code contract: a daemon
/// rejecting the spec is invalid input (2); everything else — daemon
/// unreachable, busy, transport failure — is generic (1).
fn client_failure(e: rt_served::ClientError) -> Failure {
    let code = match &e {
        rt_served::ClientError::Server {
            kind: rt_served::ErrorKind::Invalid,
            ..
        } => 2,
        _ => 1,
    };
    Failure {
        message: e.to_string(),
        code,
    }
}

fn print_job_status(status: &rt_served::JobStatus) {
    println!("job:    {}", rt_served::protocol::hex_id(status.job));
    println!(
        "state:  {}{}",
        status.state,
        if status.cached { " (cached)" } else { "" }
    );
    println!("cells:  {}/{}", status.cells_done, status.cells_total);
    if let Some(e) = &status.error {
        println!("error:  {e}");
    }
}

fn print_job_rows(rows: &[rt_served::CellResult]) {
    println!(
        "{:<18} {:<7} {:>12} {:>20}",
        "config", "scene", "cycles", "state digest"
    );
    for row in rows {
        println!(
            "{:<18} {:<7} {:>12} {:>#20x}",
            row.config, row.scene, row.cycles, row.state_digest
        );
    }
}

fn cmd_client(options: &ClientOptions) -> Result<(), Failure> {
    // The client honors RT_CHAOS too, so a chaos campaign can shake the
    // client side of the protocol without code changes.
    let chaos = rt_served::Chaos::from_env().map_err(|message| Failure { message, code: 2 })?;
    let client = rt_served::Client::with_chaos(options.addr.clone(), &chaos);
    match &options.action {
        ClientAction::Ping => {
            client.ping().map_err(client_failure)?;
            println!("pong from {}", options.addr);
            Ok(())
        }
        ClientAction::Shutdown => {
            client.shutdown().map_err(client_failure)?;
            println!("daemon at {} acknowledged shutdown", options.addr);
            Ok(())
        }
        ClientAction::Status { job } => {
            let status = client.status(*job).map_err(client_failure)?;
            print_job_status(&status);
            Ok(())
        }
        ClientAction::Result { job } => {
            let rows = client.result(*job).map_err(client_failure)?;
            print_job_rows(&rows);
            Ok(())
        }
        ClientAction::Submit { spec, wait } => {
            let submitted = client.submit(spec.clone()).map_err(client_failure)?;
            print_job_status(&submitted);
            let status = if *wait && !submitted.state.is_terminal() {
                let status = client
                    .wait(
                        submitted.job,
                        std::time::Duration::from_millis(200),
                        std::time::Duration::from_secs(24 * 60 * 60),
                    )
                    .map_err(client_failure)?;
                print_job_status(&status);
                status
            } else {
                submitted
            };
            if status.state == rt_served::JobState::Done && *wait {
                let rows = client.result(status.job).map_err(client_failure)?;
                print_job_rows(&rows);
            }
            match status.state {
                rt_served::JobState::Failed | rt_served::JobState::TimedOut => Err(Failure {
                    message: format!(
                        "job {} {}: {}",
                        rt_served::protocol::hex_id(status.job),
                        status.state,
                        status.error.as_deref().unwrap_or("no detail")
                    ),
                    code: 1,
                }),
                _ => Ok(()),
            }
        }
    }
}

fn print_help() {
    println!(
        "treelet-prefetching — RT-unit treelet prefetching simulator (MICRO 2023 reproduction)

USAGE:
  treelet-prefetching scenes
  treelet-prefetching stats --scene CAR [--detail 1.0] [--treelet-bytes 512] [--obj path.obj]
  treelet-prefetching trace --scene CAR --out trace.txt [--config traversal] [--res 32]
  treelet-prefetching run   --scene CAR [--detail 1.0] [--res 32]
                            [--config baseline|traversal|prefetch]
                            [--prefetch none|treelet|mta|ghb|hash]
                            [--hash-table-size N] [--hash-quant BITS]
                            [--hash-path-lines N]
                            [--heuristic always|partial|pop:<t>]
                            [--scheduler baseline|omr|pmr]
                            [--treelet-bytes N]
                            [--workload primary|diffuse|shadow]
                            [--obj path.obj] [--compare]
                            [--max-cycles N] [--inject-faults SEED]
                            [--checkpoint-every N] [--checkpoint-path FILE]
                            [--digest-log FILE] [--resume]
                            [--telemetry [FILE]] [--telemetry-every N]
                            [--bvh-cache DIR]
  treelet-prefetching suite [--scenes CAR,BUNNY,..] [--config prefetch]
                            [--detail 1.0] [--res 32] [--workload primary]
                            [--jobs N] [--digest-dir DIR] [--max-cycles N]
                            [--bvh-cache DIR]
  treelet-prefetching sweep [--scenes CAR,BUNNY,..]
                            [--configs baseline,prefetch]
                            [--treelet-bytes-list 256,512,1024]
                            [--detail 1.0] [--res 32] [--workload primary]
                            [--jobs N] [--digest-dir DIR] [--max-cycles N]
                            [--bvh-cache DIR]
  treelet-prefetching bisect-divergence LOG_A LOG_B
  treelet-prefetching serve  --addr HOST:PORT --store DIR [--workers N]
                             [--queue-cap N] [--timeout-ms N]
                             [--retries N] [--backoff-ms N] [--chaos SEED]
  treelet-prefetching client ping|submit|status|result|shutdown --addr HOST:PORT
                             [--job 0xID] [--wait] [--scenes CAR,BUNNY,..]
                             [--configs baseline,prefetch] [--detail 0.1]
                             [--res 16] [--workload primary]
                             [--treelet-bytes N] [--max-cycles N]
                             [--timeout-ms N] [--checkpoint-every N]

PREFETCHERS:
  --prefetch KIND      override the base --config's prefetcher: none,
                       treelet (majority-voted treelet prefetch), mta
                       (Lee et al. many-thread-aware stride), ghb
                       (global history buffer over misses), or hash
                       (Demoullin et al. hash-based ray-path prediction)
  --hash-table-size N  hash predictor: prediction-table capacity
                       (entries; requires --prefetch hash)
  --hash-quant BITS    hash predictor: origin/direction quantization
                       grid bits, 1..=16 (requires --prefetch hash)
  --hash-path-lines N  hash predictor: max node lines remembered per
                       retired ray path (requires --prefetch hash)

PARALLEL EXECUTION:
  suite                run one config across a scene list (default: all
                       scenes, prefetch config) and print per-scene
                       cycles + state digests
  sweep                run the full config grid (--configs crossed with
                       --treelet-bytes-list) across the scene list
  --jobs N             shard independent (scene, config) cells across N
                       worker threads (default: available cores). Results
                       and digest logs are deterministic and bit-identical
                       for every N; `--jobs 1` runs inline with no threads
  --digest-dir DIR     write one digest log per scene into DIR; byte-
                       identical across job counts (CI diffs jobs=1 vs
                       jobs=4 output to enforce the determinism contract)
  --bvh-cache DIR      content-addressed preparation cache: store each
                       scene's built BVH + rays + treelet assignment in
                       DIR keyed by (scene, detail, workload, build
                       params) and reuse on later runs; cached and fresh
                       preparations are bit-identical. The RT_BVH_CACHE
                       environment variable sets a default; corrupt
                       entries self-heal as misses. Not applied to --obj
                       meshes (the key names paper scenes, not files)

ROBUSTNESS:
  --max-cycles N       abort with exit code 3 if the run exceeds N cycles
  --inject-faults SEED deterministic memory-latency fault storm (timing
                       changes; traversal results do not)

CHECKPOINTING:
  --checkpoint-every N   write a crash-safe checkpoint every N cycles
                         (atomic write-then-rename; default path
                         checkpoint.rtsnap, override --checkpoint-path)
  --digest-log FILE      append a per-epoch state digest line alongside
                         each checkpoint, for bisect-divergence
  --resume               resume from the checkpoint at --checkpoint-path;
                         scene/config flags must match the original run,
                         or the run is refused with exit code 5
  bisect-divergence      binary-search two digest logs for the first
                         epoch whose state digests disagree; exit 0 if
                         they agree, 6 on divergence

TELEMETRY:
  --telemetry [FILE]   sample runtime counters every N cycles (warp
                       buffer occupancy, cache hit rates and MSHR
                       pressure, per-channel DRAM load, prefetch
                       useful/late/useless counts) and print a summary;
                       with FILE, also write the full time-series
                       (.json extension selects JSON, anything else CSV).
                       Sampling is read-only: the run's state digest is
                       bit-identical with telemetry on or off. Works
                       with `run` and with `stats` (which then runs the
                       workload once); combinable with checkpointing
  --telemetry-every N  sampling interval in cycles (default 1000)

SERVICE:
  serve                run the rt-served sweep daemon: a line-protocol
                       TCP server with a bounded job queue, per-job
                       wall-clock timeouts, retry with exponential
                       backoff, and a persistent content-addressed
                       result cache under --store. Interrupted jobs
                       (SIGKILL, power loss) resume from checkpoints on
                       restart; identical resubmits are served from
                       cache without re-simulating
  client               talk to a running daemon: ping, submit a sweep
                       (--wait polls to completion and prints the result
                       table), query status/result by --job id, or ask
                       for a clean shutdown
  --chaos SEED         serve only: deterministic fault injection into
                       the daemon's filesystem and socket I/O (short
                       writes, disk-full, failed renames, connection
                       resets, partial reads, delays) from the given
                       seed. Test hook, not for production. The RT_CHAOS
                       env var does the same for serve and client;
                       --chaos wins when both are set

EXIT CODES:
  0 ok · 1 generic error · 2 invalid config/input · 3 cycle budget
  exceeded · 4 no forward progress (livelock) · 5 corrupted or foreign
  checkpoint · 6 digest logs diverge · 7 daemon bind failure · 8 daemon
  store corruption · 9 daemon shutdown on signal"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            // Unparseable or invalid flags are invalid input (exit 2),
            // distinct from generic runtime failures (exit 1).
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome: Result<(), Failure> = match command {
        Command::Help => {
            print_help();
            Ok(())
        }
        Command::Scenes => {
            cmd_scenes();
            Ok(())
        }
        Command::Stats(options) => cmd_stats(&options),
        Command::Run(options) => cmd_run(&options),
        Command::Trace(options, out) => cmd_trace(&options, &out),
        Command::Bisect(a, b) => cmd_bisect(&a, &b),
        Command::Suite(options) | Command::Sweep(options) => cmd_sweep(&options),
        // The daemon owns its exit codes (0/7/8/9) — see `cmd_serve`.
        Command::Serve(options) => return cmd_serve(&options),
        Command::Client(options) => cmd_client(&options),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&owned)
    }

    #[test]
    fn trace_requires_out() {
        assert!(parse(&["trace", "--scene", "WKND"]).is_err());
        match parse(&["trace", "--scene", "WKND", "--out", "/tmp/t.txt"]).unwrap() {
            Command::Trace(o, out) => {
                assert_eq!(o.scene, SceneId::Wknd);
                assert_eq!(out, "/tmp/t.txt");
            }
            other => panic!("expected trace, got {other:?}"),
        }
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
    }

    #[test]
    fn scenes_subcommand() {
        assert_eq!(parse(&["scenes"]), Ok(Command::Scenes));
    }

    #[test]
    fn run_with_flags() {
        let cmd = parse(&[
            "run",
            "--scene",
            "car",
            "--detail",
            "0.5",
            "--res",
            "16",
            "--config",
            "prefetch",
            "--heuristic",
            "pop:0.5",
            "--scheduler",
            "omr",
            "--treelet-bytes",
            "1024",
            "--compare",
        ])
        .unwrap();
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.scene, SceneId::Car);
                assert_eq!(o.detail, 0.5);
                assert_eq!(o.res, 16);
                assert_eq!(o.config, ConfigKind::Prefetch);
                assert_eq!(o.heuristic, Some(PrefetchHeuristic::Popularity(0.5)));
                assert_eq!(o.scheduler, Some(SchedulerPolicy::OldestMatchingRay));
                assert_eq!(o.treelet_bytes, 1024);
                assert!(o.compare);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn unknown_scene_is_an_error() {
        assert!(parse(&["run", "--scene", "NOPE"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["run", "--frobnicate"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["run", "--scene"]).is_err());
    }

    #[test]
    fn heuristic_parsing() {
        assert_eq!(parse_heuristic("always"), Ok(PrefetchHeuristic::Always));
        assert_eq!(parse_heuristic("partial"), Ok(PrefetchHeuristic::Partial));
        assert_eq!(
            parse_heuristic("pop:0.25"),
            Ok(PrefetchHeuristic::Popularity(0.25))
        );
        assert!(parse_heuristic("pop:1.5").is_err());
        assert!(parse_heuristic("sometimes").is_err());
    }

    #[test]
    fn prefetch_selector_parses() {
        let opts = match parse(&["run", "--prefetch", "hash"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(opts.prefetch, Some(PrefetchKind::Hash));
        for (text, kind) in [
            ("none", PrefetchKind::None),
            ("treelet", PrefetchKind::Treelet),
            ("mta", PrefetchKind::Mta),
            ("ghb", PrefetchKind::Ghb),
            ("hash", PrefetchKind::Hash),
        ] {
            assert_eq!(PrefetchKind::parse(text), Ok(kind));
        }
        assert!(PrefetchKind::parse("stride").is_err());
        assert!(parse(&["run", "--prefetch", "stride"]).is_err());
    }

    #[test]
    fn hash_knobs_require_the_hash_prefetcher() {
        assert!(parse(&["run", "--hash-table-size", "64"]).is_err());
        assert!(parse(&["run", "--prefetch", "mta", "--hash-quant", "4"]).is_err());
        assert!(parse(&["run", "--prefetch", "hash", "--hash-path-lines", "8"]).is_ok());
    }

    #[test]
    fn hash_knob_values_validated_at_parse_time() {
        assert!(parse(&["run", "--prefetch", "hash", "--hash-table-size", "0"]).is_err());
        assert!(parse(&["run", "--prefetch", "hash", "--hash-quant", "0"]).is_err());
        assert!(parse(&["run", "--prefetch", "hash", "--hash-quant", "17"]).is_err());
        assert!(parse(&["run", "--prefetch", "hash", "--hash-path-lines", "0"]).is_err());
        assert!(parse(&["run", "--prefetch", "hash", "--hash-quant", "16"]).is_ok());
    }

    #[test]
    fn prefetch_selector_rewrites_the_config() {
        let opts = match parse(&[
            "run", "--config", "baseline", "--prefetch", "hash", "--hash-table-size", "64",
            "--hash-quant", "4", "--hash-path-lines", "8",
        ])
        .unwrap()
        {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        let config = build_config(&opts);
        match config.prefetch {
            PrefetchConfig::Hash {
                table_capacity,
                origin_bits,
                dir_bits,
                max_path_lines,
                ..
            } => {
                assert_eq!(table_capacity, 64);
                assert_eq!(origin_bits, 4);
                assert_eq!(dir_bits, 4);
                assert_eq!(max_path_lines, 8);
            }
            other => panic!("expected hash prefetch config, got {other:?}"),
        }
        config.validate().expect("hash CLI config validates");

        // `--prefetch treelet` composes with the heuristic setter.
        let opts = match parse(&[
            "run", "--config", "baseline", "--prefetch", "treelet", "--heuristic", "partial",
        ])
        .unwrap()
        {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        let config = build_config(&opts);
        match config.prefetch {
            PrefetchConfig::Treelet { heuristic, .. } => {
                assert_eq!(heuristic, PrefetchHeuristic::Partial);
            }
            other => panic!("expected treelet prefetch config, got {other:?}"),
        }

        // `--prefetch none` strips the prefetcher off a prefetch config.
        let opts = match parse(&["run", "--config", "prefetch", "--prefetch", "none"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(build_config(&opts).prefetch, PrefetchConfig::None);
    }

    #[test]
    fn invalid_detail_and_res_rejected() {
        assert!(parse(&["run", "--detail", "0"]).is_err());
        assert!(parse(&["run", "--detail", "-1"]).is_err());
        // Non-finite details used to slip through the old `<= 0 || NaN`
        // check and panic deep inside scene generation.
        assert!(parse(&["run", "--detail", "inf"]).is_err());
        assert!(parse(&["run", "--detail", "-inf"]).is_err());
        assert!(parse(&["run", "--detail", "NaN"]).is_err());
        assert!(parse(&["run", "--res", "0"]).is_err());
    }

    #[test]
    fn undersized_treelet_budget_rejected_at_parse_time() {
        assert!(parse(&["run", "--treelet-bytes", "0"]).is_err());
        assert!(parse(&["run", "--treelet-bytes", "63"]).is_err());
        assert!(parse(&["stats", "--treelet-bytes", "0"]).is_err());
        assert!(parse(&["run", "--treelet-bytes", "64"]).is_ok());
    }

    #[test]
    fn bvh_cache_flag_parses() {
        let opts = match parse(&["run", "--bvh-cache", "prep"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(opts.bvh_cache.as_deref(), Some("prep"));
        // Default: no flag leaves the decision to RT_BVH_CACHE.
        let opts = match parse(&["run"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(opts.bvh_cache, None);
        // The flag needs a value.
        assert!(parse(&["run", "--bvh-cache"]).is_err());
        assert!(parse(&["sweep", "--bvh-cache"]).is_err());
    }

    #[test]
    fn suite_and_sweep_flags_parse() {
        // Bare suite: every scene, one prefetch column, auto job count.
        let opts = match parse(&["suite"]).unwrap() {
            Command::Suite(o) => o,
            other => panic!("expected suite, got {other:?}"),
        };
        assert_eq!(opts.scenes, SceneId::ALL.to_vec());
        assert_eq!(opts.configs, vec![ConfigKind::Prefetch]);
        assert_eq!(opts.jobs, None);

        let opts = match parse(&[
            "suite", "--scenes", "CAR,BUNNY", "--config", "baseline", "--jobs", "3",
            "--digest-dir", "logs", "--max-cycles", "5000", "--bvh-cache", "prep-cache",
        ])
        .unwrap()
        {
            Command::Suite(o) => o,
            other => panic!("expected suite, got {other:?}"),
        };
        assert_eq!(opts.scenes, vec![SceneId::Car, SceneId::Bunny]);
        assert_eq!(opts.configs, vec![ConfigKind::Baseline]);
        assert_eq!(opts.jobs, Some(3));
        assert_eq!(opts.digest_dir.as_deref(), Some("logs"));
        assert_eq!(opts.max_cycles, Some(5000));
        assert_eq!(opts.bvh_cache.as_deref(), Some("prep-cache"));

        // Sweep defaults to the baseline-vs-prefetch grid and accepts
        // the grid-only list flags.
        let opts = match parse(&["sweep"]).unwrap() {
            Command::Sweep(o) => o,
            other => panic!("expected sweep, got {other:?}"),
        };
        assert_eq!(
            opts.configs,
            vec![ConfigKind::Baseline, ConfigKind::Prefetch]
        );
        let opts = match parse(&[
            "sweep", "--configs", "baseline,prefetch", "--treelet-bytes-list", "256,512",
        ])
        .unwrap()
        {
            Command::Sweep(o) => o,
            other => panic!("expected sweep, got {other:?}"),
        };
        assert_eq!(opts.treelet_bytes, vec![256, 512]);
        assert_eq!(sweep_grid(&opts).len(), 4);
        // With several budgets every column label carries its budget.
        assert_eq!(sweep_grid(&opts)[0].0, "baseline/256B");

        // Bad input is rejected at parse time, not at run time.
        assert!(parse(&["suite", "--jobs", "0"]).is_err());
        assert!(parse(&["suite", "--jobs", "lots"]).is_err());
        assert!(parse(&["suite", "--scenes", "CAR,NOPE"]).is_err());
        assert!(parse(&["suite", "--configs", "baseline"]).is_err()); // grid-only flag
        assert!(parse(&["sweep", "--config", "baseline"]).is_err()); // suite-only flag
        assert!(parse(&["sweep", "--treelet-bytes-list", "0"]).is_err());
        assert!(parse(&["sweep", "--configs", ""]).is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        // Bare --telemetry: summary only, default interval.
        let opts = match parse(&["run", "--telemetry"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert!(opts.telemetry);
        assert_eq!(opts.telemetry_path, None);
        let t = telemetry_options(&opts).unwrap().expect("telemetry on");
        assert_eq!(t.every, DEFAULT_TELEMETRY_EVERY);
        // --telemetry FILE captures the path; a following flag does not.
        let opts = match parse(&["run", "--telemetry", "out.csv", "--res", "8"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(opts.telemetry_path.as_deref(), Some("out.csv"));
        assert_eq!(opts.res, 8);
        let opts = match parse(&["stats", "--telemetry", "--res", "8"]).unwrap() {
            Command::Stats(o) => o,
            other => panic!("expected stats, got {other:?}"),
        };
        assert!(opts.telemetry);
        assert_eq!(opts.telemetry_path, None);
        assert_eq!(opts.res, 8);
        // Interval plumbing and its zero rejection.
        let opts = match parse(&["run", "--telemetry", "--telemetry-every", "250"]).unwrap() {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(telemetry_options(&opts).unwrap().unwrap().every, 250);
        assert!(parse(&["run", "--telemetry", "--telemetry-every", "0"]).is_err());
    }

    #[test]
    fn telemetry_conflicts_are_rejected() {
        // --telemetry-every without --telemetry.
        let lonely = Options {
            telemetry_every: Some(100),
            ..Options::default()
        };
        assert!(telemetry_options(&lonely).is_err());
        // Telemetry and checkpointing compose now that the session owns
        // both: sampling stays read-only across checkpoint epochs.
        let both = Options {
            telemetry: true,
            checkpoint_every: Some(1000),
            ..Options::default()
        };
        assert!(telemetry_options(&both).unwrap().is_some());
        // No telemetry flags at all: no telemetry.
        assert_eq!(telemetry_options(&Options::default()).unwrap(), None);
    }

    #[test]
    fn config_builds_from_options() {
        let mut options = Options {
            config: ConfigKind::Baseline,
            ..Options::default()
        };
        let c = build_config(&options);
        assert!(!c.prefetch.is_enabled());
        options.config = ConfigKind::Prefetch;
        options.heuristic = Some(PrefetchHeuristic::Partial);
        options.treelet_bytes = 256;
        let c = build_config(&options);
        assert!(c.prefetch.is_enabled());
        assert_eq!(c.treelet_bytes, 256);
        c.validate().unwrap();
    }

    #[test]
    fn robustness_flags_parse_and_apply() {
        let cmd = parse(&[
            "run",
            "--scene",
            "car",
            "--max-cycles",
            "5000",
            "--inject-faults",
            "7",
        ])
        .unwrap();
        let options = match cmd {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert_eq!(options.max_cycles, Some(5000));
        assert_eq!(options.inject_faults, Some(7));
        let config = build_config(&options);
        assert_eq!(config.max_cycles, 5000);
        let faults = config.mem.fault_injection.expect("faults configured");
        assert_eq!(faults.seed, 7);
        assert!(parse(&["run", "--max-cycles", "0"]).is_err());
        assert!(parse(&["run", "--max-cycles", "lots"]).is_err());
        assert!(parse(&["run", "--inject-faults", "-1"]).is_err());
    }

    #[test]
    fn failures_map_sim_errors_to_exit_codes() {
        let f = Failure::from(SimError::EmptyInput { what: "ray" });
        assert_eq!(f.code, 2);
        assert!(f.message.contains("need at least one ray"));
        let snapshot = || treelet_prefetching::treelet::ProgressSnapshot {
            cycle: 1,
            rays_remaining: 1,
            warp_buffer_occupancy: vec![],
            outstanding_requests: 0,
            outstanding_request_ids: vec![],
            l2_queue_depth: 0,
            dram_in_flight: 0,
            prefetch_queue_depths: vec![],
        };
        let f = Failure::from(SimError::CycleLimitExceeded {
            limit: 1,
            snapshot: snapshot(),
        });
        assert_eq!(f.code, 3);
        let f = Failure::from(SimError::NoForwardProgress {
            window: 1,
            snapshot: snapshot(),
        });
        assert_eq!(f.code, 4);
        let f = Failure::from(SimError::Snapshot(
            treelet_prefetching::treelet::SnapshotError::IdentityMismatch {
                expected: 1,
                found: 2,
            },
        ));
        assert_eq!(f.code, 5);
        assert!(f.message.contains("different run"));
        let f = Failure::from("plain error".to_string());
        assert_eq!(f.code, 1);
    }

    #[test]
    fn checkpoint_flags_parse_and_assemble() {
        let cmd = parse(&[
            "run",
            "--scene",
            "car",
            "--checkpoint-every",
            "5000",
            "--checkpoint-path",
            "/tmp/car.rtsnap",
            "--digest-log",
            "/tmp/car.digests",
            "--resume",
        ])
        .unwrap();
        let options = match cmd {
            Command::Run(o) => o,
            other => panic!("expected run, got {other:?}"),
        };
        assert!(options.resume);
        let ck = checkpoint_options(&options).unwrap().expect("checkpointing");
        assert_eq!(ck.every, 5000);
        assert_eq!(ck.path, std::path::Path::new("/tmp/car.rtsnap"));
        assert_eq!(
            ck.digest_log.as_deref(),
            Some(std::path::Path::new("/tmp/car.digests"))
        );
        // No checkpoint flags at all: no checkpointing.
        assert_eq!(checkpoint_options(&Options::default()).unwrap(), None);
        // --resume alone implies checkpointing at the default path.
        let implied = checkpoint_options(&Options {
            resume: true,
            ..Options::default()
        })
        .unwrap()
        .expect("implied");
        assert_eq!(implied.path, std::path::Path::new("checkpoint.rtsnap"));
        // An orphan --digest-log is rejected; a zero interval is too.
        assert!(checkpoint_options(&Options {
            digest_log: Some("x".into()),
            ..Options::default()
        })
        .is_err());
        assert!(parse(&["run", "--checkpoint-every", "0"]).is_err());
    }

    #[test]
    fn bisect_takes_exactly_two_logs() {
        match parse(&["bisect-divergence", "a.log", "b.log"]).unwrap() {
            Command::Bisect(a, b) => {
                assert_eq!(a, "a.log");
                assert_eq!(b, "b.log");
            }
            other => panic!("expected bisect, got {other:?}"),
        }
        assert!(parse(&["bisect-divergence", "a.log"]).is_err());
        assert!(parse(&["bisect-divergence", "a", "b", "c"]).is_err());
    }

    #[test]
    fn bisect_reports_missing_and_divergent_logs() {
        let dir = std::env::temp_dir().join(format!("treelet-cli-bisect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.digests");
        let b = dir.join("b.digests");
        let missing = cmd_bisect(a.to_str().unwrap(), b.to_str().unwrap()).unwrap_err();
        assert_eq!(missing.code, 5);
        std::fs::write(
            &a,
            "epoch=0 cycle=100 digest=0x1 rays_remaining=9\n\
             epoch=1 cycle=200 digest=0x2 rays_remaining=5\n",
        )
        .unwrap();
        std::fs::write(
            &b,
            "epoch=0 cycle=100 digest=0x1 rays_remaining=9\n\
             epoch=1 cycle=200 digest=0xff rays_remaining=5\n",
        )
        .unwrap();
        let diverged = cmd_bisect(a.to_str().unwrap(), b.to_str().unwrap()).unwrap_err();
        assert_eq!(diverged.code, 6);
        assert!(diverged.message.contains("epoch 1"));
        std::fs::copy(&a, &b).unwrap();
        cmd_bisect(a.to_str().unwrap(), b.to_str().unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_parses_chaos_seeds_and_rejects_garbage() {
        match parse(&[
            "serve", "--addr", "127.0.0.1:0", "--store", "/tmp/s", "--chaos", "42",
        ])
        .unwrap()
        {
            Command::Serve(options) => assert_eq!(options.chaos, Some(42)),
            other => panic!("expected serve, got {other:?}"),
        }
        match parse(&[
            "serve", "--addr", "127.0.0.1:0", "--store", "/tmp/s", "--chaos", "0x2a",
        ])
        .unwrap()
        {
            Command::Serve(options) => assert_eq!(options.chaos, Some(0x2a)),
            other => panic!("expected serve, got {other:?}"),
        }
        let err = parse(&[
            "serve", "--addr", "127.0.0.1:0", "--store", "/tmp/s", "--chaos", "entropy",
        ])
        .unwrap_err();
        assert!(err.contains("--chaos"), "{err}");
        // Chaos stays opt-in: absent flag parses to none.
        match parse(&["serve", "--addr", "127.0.0.1:0", "--store", "/tmp/s"]).unwrap() {
            Command::Serve(options) => assert_eq!(options.chaos, None),
            other => panic!("expected serve, got {other:?}"),
        }
    }

    #[test]
    fn obj_scene_builds() {
        let path = std::env::temp_dir().join("treelet_cli_test.obj");
        std::fs::write(&path, "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n").unwrap();
        let options = Options {
            obj: Some(path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        let scene = build_scene(&options).unwrap();
        assert_eq!(scene.mesh.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_obj_file_is_an_error() {
        let options = Options {
            obj: Some("/nonexistent/file.obj".into()),
            ..Options::default()
        };
        assert!(build_scene(&options).is_err());
    }
}
