//! Simulates a wavefront path tracer: the primary generation plus two
//! bounce generations, each batch run through the RT unit, comparing the
//! baseline and treelet-prefetching configurations per generation.
//!
//! Bounce generations get progressively less coherent — the regime the
//! paper's §2.4 motivates treelet prefetching with.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example path_trace_sim [SCENE] [DETAIL]
//! ```

use treelet_prefetching::bvh::WideBvh;
use treelet_prefetching::scene::{Scene, SceneId, Workload};
use treelet_prefetching::treelet::{
    bounce_rays, direction_coherence, BounceKind, SimConfig, SimSession,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let scene_id = args
        .next()
        .and_then(|s| SceneId::from_name(&s))
        .unwrap_or(SceneId::Crnvl);
    let detail: f32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    println!("wavefront path-trace simulation on {scene_id} (detail {detail})");
    let scene = Scene::build_with_detail(scene_id, detail);
    let primary = Workload::paper_default().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());

    // Build three generations: primary, first diffuse bounce, second
    // diffuse bounce.
    let bounce1 = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 0xb0);
    let bounce2 = bounce_rays(&bvh, &bounce1, BounceKind::Diffuse, 0xb1);
    let generations = [
        ("primary", &primary),
        ("bounce 1", &bounce1),
        ("bounce 2", &bounce2),
    ];

    println!(
        "\n{:<9} {:>6} {:>10} {:>11} {:>11} {:>9}",
        "gen", "rays", "coherence", "base cyc", "pf cyc", "speedup"
    );
    let mut total_base = 0u64;
    let mut total_pf = 0u64;
    for (name, rays) in generations {
        if rays.is_empty() {
            println!("{name:<9} {:>6} (no surviving rays)", 0);
            continue;
        }
        let base = SimSession::new(&bvh, rays, SimConfig::paper_baseline())
            .run()
            .expect("baseline generation");
        let pf = SimSession::new(&bvh, rays, SimConfig::paper_treelet_prefetch())
            .run()
            .expect("prefetch generation");
        total_base += base.cycles;
        total_pf += pf.cycles;
        println!(
            "{:<9} {:>6} {:>10.3} {:>11} {:>11} {:>8.3}x",
            name,
            rays.len(),
            direction_coherence(rays),
            base.cycles,
            pf.cycles,
            pf.speedup_over(&base)
        );
    }
    println!(
        "\nwhole frame (cold caches per generation): {} -> {} cycles ({:.3}x)",
        total_base,
        total_pf,
        total_base as f64 / total_pf as f64
    );

    // A real wavefront renderer keeps the caches warm between
    // generations: run the same three batches through one session.
    let batches: Vec<Vec<_>> = generations
        .iter()
        .filter(|(_, rays)| !rays.is_empty())
        .map(|(_, rays)| rays.to_vec())
        .collect();
    let warm_base: u64 = SimSession::batched(&bvh, &batches, SimConfig::paper_baseline())
        .run_batches()
        .expect("warm baseline")
        .iter()
        .map(|r| r.cycles)
        .sum();
    let warm_pf: u64 = SimSession::batched(&bvh, &batches, SimConfig::paper_treelet_prefetch())
        .run_batches()
        .expect("warm prefetch")
        .iter()
        .map(|r| r.cycles)
        .sum();
    println!(
        "whole frame (warm caches across generations): {} -> {} cycles ({:.3}x)",
        warm_base,
        warm_pf,
        warm_base as f64 / warm_pf as f64
    );
}
