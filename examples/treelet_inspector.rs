//! Inspects treelet formation on a scene: counts, occupancy, and the
//! size histogram, across the paper's treelet byte budgets — plus one
//! ray's treelet-visit sequence under both traversal algorithms, showing
//! the clustering the two-stack algorithm creates.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example treelet_inspector [SCENE]
//! ```

use treelet_prefetching::bvh::WideBvh;
use treelet_prefetching::scene::{Scene, SceneId, Workload};
use treelet_prefetching::treelet::{
    trace_ray, TraversalAlgorithm, TreeletAssignment, TreeletMetrics,
};

fn main() {
    let scene_id = std::env::args()
        .nth(1)
        .and_then(|s| SceneId::from_name(&s))
        .unwrap_or(SceneId::Bunny);
    let scene = Scene::build_with_detail(scene_id, 1.0);
    let rays = Workload::paper_default().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    println!(
        "{scene_id}: {} nodes, depth {}",
        bvh.node_count(),
        bvh.depth()
    );

    println!(
        "\n{:>8} {:>10} {:>10} {:>28}",
        "budget", "treelets", "occupancy", "size histogram (nodes)"
    );
    for bytes in [256u64, 512, 1024, 2048] {
        let a = TreeletAssignment::form(&bvh, bytes);
        let max_nodes = (bytes / 64) as usize;
        let mut histogram = vec![0usize; max_nodes + 1];
        for g in 0..a.count() as u32 {
            histogram[a.members(g).len()] += 1;
        }
        let hist: Vec<String> = histogram
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &c)| c > 0)
            .map(|(sz, &c)| format!("{sz}:{c}"))
            .collect();
        println!(
            "{:>7}B {:>10} {:>9.1}% {:>28}",
            bytes,
            a.count(),
            a.mean_occupancy() * 100.0,
            hist.join(" ")
        );
        println!("         {}", TreeletMetrics::of(&bvh, &a));
    }

    // Show one hit ray's treelet sequence under both algorithms.
    let treelets = TreeletAssignment::form(&bvh, 512);
    let ray = rays
        .iter()
        .find(|r| bvh.intersect(r).is_hit())
        .expect("some primary ray should hit");
    println!("\ntreelet visit sequence of one ray (treelet ids):");
    for (name, algo) in [
        ("DFS      ", TraversalAlgorithm::BaselineDfs),
        ("two-stack", TraversalAlgorithm::TwoStackTreelet),
    ] {
        let trace = trace_ray(&bvh, &treelets, ray, algo);
        let seq: Vec<String> = trace.steps.iter().map(|s| s.treelet.to_string()).collect();
        let switches = trace
            .steps
            .windows(2)
            .filter(|w| w[0].treelet != w[1].treelet)
            .count();
        println!(
            "{name} ({:>3} visits, {switches:>2} treelet switches): {}",
            trace.nodes_visited(),
            seq.join(" ")
        );
    }
}
