//! Quickstart: build one scene, simulate the baseline RT unit and the
//! treelet-prefetching RT unit, and print the headline comparison.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart [SCENE] [DETAIL]
//! ```
//!
//! where `SCENE` is a paper scene name (default `BUNNY`) and `DETAIL` a
//! positive scale factor (default `1.0`).

use treelet_prefetching::scene::{SceneId, Workload};
use treelet_prefetching::treelet::{Bench, SimConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scene = args
        .next()
        .and_then(|s| SceneId::from_name(&s))
        .unwrap_or(SceneId::Bunny);
    let detail: f32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    println!("preparing {scene} at detail {detail} ...");
    let bench = Bench::prepare(scene, detail, Workload::paper_default());
    let stats = bench.tree_stats();
    println!(
        "BVH: {} triangles, {} nodes, depth {}, {:.2} MB",
        stats.triangle_count,
        stats.node_count,
        stats.max_depth,
        stats.total_mb()
    );

    let baseline = bench.run(&SimConfig::paper_baseline());
    let traversal = bench.run(&SimConfig::paper_treelet_traversal_only());
    let prefetch = bench.run(&SimConfig::paper_treelet_prefetch());

    println!(
        "\n{:<28} {:>12} {:>9}",
        "configuration", "cycles", "speedup"
    );
    for (name, r) in [
        ("baseline RT unit", &baseline),
        ("treelet traversal only", &traversal),
        ("treelet traversal+prefetch", &prefetch),
    ] {
        println!(
            "{:<28} {:>12} {:>8.3}x",
            name,
            r.cycles,
            r.speedup_over(&baseline)
        );
    }
    println!(
        "\ndemand BVH-load latency: {:.0} -> {:.0} cycles ({:+.0}%)",
        baseline.node_load_latency,
        prefetch.node_load_latency,
        (prefetch.node_load_latency / baseline.node_load_latency - 1.0) * 100.0
    );
    println!(
        "DRAM utilization: {:.1}% -> {:.1}%",
        baseline.dram_utilization * 100.0,
        prefetch.dram_utilization * 100.0
    );
    let e = prefetch.prefetch_effect;
    println!(
        "prefetch effectiveness: {} timely, {} late, {} too late, {} early, {} unused",
        e.timely, e.late, e.too_late, e.early, e.unused
    );
}
