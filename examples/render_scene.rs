//! Renders an evaluation scene to a PPM image using the same BVH the
//! simulator traverses — demonstrating that the stack is a working ray
//! tracer, not just an address-trace generator.
//!
//! Primary rays find the closest hit; shading is a simple headlight model
//! (N·V) plus a shadow ray toward a light above the scene, so both
//! closest-hit and any-hit style queries are exercised.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example render_scene [SCENE] [SIZE] [OUT.ppm]
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};
use treelet_prefetching::bvh::WideBvh;
use treelet_prefetching::geometry::{Ray, Vec3};
use treelet_prefetching::scene::{Scene, SceneId};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let scene_id = args
        .next()
        .and_then(|s| SceneId::from_name(&s))
        .unwrap_or(SceneId::Wknd);
    let size: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let out_path = args
        .next()
        .unwrap_or_else(|| format!("{scene_id}.ppm").to_lowercase());

    println!("rendering {scene_id} at {size}x{size} -> {out_path}");
    let scene = Scene::build_with_detail(scene_id, 1.0);
    let aabb = scene.mesh.aabb();
    let light = aabb.center() + Vec3::new(0.3, 1.0, 0.2) * aabb.extent().length();
    let bvh = WideBvh::build(scene.mesh.clone().into_triangles());

    let mut pixels = vec![0u8; (size * size * 3) as usize];
    let mut hits = 0u64;
    for py in 0..size {
        for px in 0..size {
            let ray = scene.camera.ray(px, size - 1 - py, size, size);
            let hit = bvh.intersect(&ray);
            let color = match hit.primitive {
                Some(prim) => {
                    hits += 1;
                    let tri = bvh.triangles()[prim as usize];
                    let n = {
                        let n = tri.normal();
                        if n.length_squared() > 1e-12 {
                            n.normalized()
                        } else {
                            Vec3::Y
                        }
                    };
                    // Headlight shading: brightness from facing ratio.
                    let facing = n.dot(-ray.direction).abs();
                    let p = ray.at(hit.t);
                    // Shadow ray toward the light (an any-hit query).
                    let to_light = (light - p).normalized();
                    let shadow = Ray::new(p + n * 1e-3, to_light);
                    let lit = if bvh.intersect(&shadow).is_hit() {
                        0.45
                    } else {
                        1.0
                    };
                    let v = 0.15 + 0.85 * facing * lit;
                    // Tint by primitive id so structure is visible.
                    let tint = Vec3::new(
                        0.6 + 0.4 * ((prim % 7) as f32 / 6.0),
                        0.6 + 0.4 * ((prim % 11) as f32 / 10.0),
                        0.6 + 0.4 * ((prim % 13) as f32 / 12.0),
                    );
                    tint * v
                }
                None => {
                    // Sky gradient.
                    let t = 0.5 * (ray.direction.y + 1.0);
                    Vec3::new(1.0, 1.0, 1.0).lerp(Vec3::new(0.4, 0.6, 0.9), t)
                }
            };
            let idx = ((py * size + px) * 3) as usize;
            pixels[idx] = (color.x.clamp(0.0, 1.0) * 255.0) as u8;
            pixels[idx + 1] = (color.y.clamp(0.0, 1.0) * 255.0) as u8;
            pixels[idx + 2] = (color.z.clamp(0.0, 1.0) * 255.0) as u8;
        }
    }

    let mut out = BufWriter::new(File::create(&out_path)?);
    writeln!(out, "P6\n{size} {size}\n255")?;
    out.write_all(&pixels)?;
    println!(
        "done: {hits}/{} primary rays hit geometry ({:.0}%)",
        (size as u64).pow(2),
        hits as f64 / (size as f64 * size as f64) * 100.0
    );
    Ok(())
}
