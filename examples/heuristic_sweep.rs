//! Sweeps the prefetch heuristics, schedulers, and treelet sizes on one
//! scene — a compact version of the paper's design-space exploration
//! (Figs. 10, 13, 19) for interactive use.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example heuristic_sweep [SCENE]
//! ```

use treelet_prefetching::scene::{SceneId, Workload};
use treelet_prefetching::treelet::{Bench, PrefetchHeuristic, SchedulerPolicy, SimConfig};

fn main() {
    let scene = std::env::args()
        .nth(1)
        .and_then(|s| SceneId::from_name(&s))
        .unwrap_or(SceneId::Crnvl);
    println!("sweeping treelet prefetch design space on {scene} ...");
    let bench = Bench::prepare(scene, 1.0, Workload::paper_default());
    let base = bench.run(&SimConfig::paper_baseline());
    println!("baseline: {} cycles\n", base.cycles);

    println!("-- heuristics (PMR scheduler, 512 B treelets) --");
    for h in [
        PrefetchHeuristic::Always,
        PrefetchHeuristic::Popularity(0.25),
        PrefetchHeuristic::Popularity(0.5),
        PrefetchHeuristic::Popularity(0.75),
        PrefetchHeuristic::Partial,
    ] {
        let r = bench.run(&SimConfig::paper_treelet_prefetch().with_heuristic(h));
        println!("{:<16} {:>7.3}x", h.to_string(), r.speedup_over(&base));
    }

    println!("\n-- schedulers (ALWAYS heuristic) --");
    for s in [
        SchedulerPolicy::Baseline,
        SchedulerPolicy::OldestMatchingRay,
        SchedulerPolicy::PrioritizeMostRays,
    ] {
        let r = bench.run(&SimConfig::paper_treelet_prefetch().with_scheduler(s));
        println!("{:<16} {:>7.3}x", s.to_string(), r.speedup_over(&base));
    }

    println!("\n-- treelet sizes (ALWAYS, PMR) --");
    for bytes in [256u64, 512, 1024, 2048] {
        let r = bench.run(&SimConfig::paper_treelet_prefetch().with_treelet_bytes(bytes));
        println!(
            "{:<16} {:>7.3}x",
            format!("{bytes} B"),
            r.speedup_over(&base)
        );
    }
}
