//! Integration tests asserting the *qualitative shapes* of the paper's
//! results — who wins, in which regime — on reduced-size scenes so the
//! suite stays fast in debug builds. The full-scale numbers live in the
//! `rt-bench` harness binaries and EXPERIMENTS.md.

use treelet_prefetching::bvh::WideBvh;
use treelet_prefetching::scene::{Scene, SceneId, Workload, WorkloadKind};
use treelet_prefetching::treelet::{
    MappingMode, PrefetchConfig, SimConfig, SimResult, SimSession,
};

fn run(id: SceneId, detail: f32, config: &SimConfig) -> SimResult {
    let scene = Scene::build_with_detail(id, detail);
    let rays = Workload::new(WorkloadKind::Primary, 16, 16).generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    SimSession::new(&bvh, &rays, config.clone())
        .run()
        .expect("simulation")
}

#[test]
fn prefetching_reduces_demand_load_latency() {
    // Fig. 1b's shape: treelet prefetching cuts the average latency of
    // demand BVH loads.
    let base = run(SceneId::Crnvl, 0.5, &SimConfig::paper_baseline());
    let pf = run(SceneId::Crnvl, 0.5, &SimConfig::paper_treelet_prefetch());
    assert!(
        pf.node_load_latency < base.node_load_latency,
        "prefetching did not reduce node load latency: {} vs {}",
        pf.node_load_latency,
        base.node_load_latency
    );
}

#[test]
fn prefetching_produces_timely_hits() {
    let pf = run(SceneId::Crnvl, 0.5, &SimConfig::paper_treelet_prefetch());
    let e = pf.prefetch_effect;
    assert!(e.total() > 0, "no prefetches classified");
    assert!(e.timely + e.late > 0, "no prefetch ever helped: {e:?}");
}

#[test]
fn prefetching_raises_dram_utilization() {
    // Fig. 1a's shape: the baseline underuses DRAM; prefetching raises
    // utilization by converting serialized pointer-chasing into bulk
    // treelet fetches.
    let base = run(SceneId::Car, 0.4, &SimConfig::paper_baseline());
    let pf = run(SceneId::Car, 0.4, &SimConfig::paper_treelet_prefetch());
    assert!(
        base.dram_utilization < 0.5,
        "baseline should be latency-bound"
    );
    assert!(pf.dram_utilization > base.dram_utilization * 0.9);
}

#[test]
fn strict_wait_is_no_better_than_loose_wait() {
    // Fig. 14's shape: gating prefetches on mapping-table loads can only
    // delay them.
    let loose = run(
        SceneId::Fox,
        0.4,
        &SimConfig::paper_treelet_prefetch().with_mapping_mode(MappingMode::LooseWait),
    );
    let strict = run(
        SceneId::Fox,
        0.4,
        &SimConfig::paper_treelet_prefetch().with_mapping_mode(MappingMode::StrictWait),
    );
    assert!(
        strict.cycles as f64 >= loose.cycles as f64 * 0.98,
        "strict wait unexpectedly faster: {} vs {}",
        strict.cycles,
        loose.cycles
    );
    // Strict wait can never produce more timely prefetch traffic.
    assert!(strict.l1.prefetch_probes <= loose.l1.prefetch_probes);
}

#[test]
fn stride_balances_dram_channels() {
    // Fig. 15's shape: 512 B-apart treelet roots skew traffic toward
    // channels 0/2; the extra 256 B stride spreads it.
    let cv = |counts: &[u64]| {
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    };
    let packed = run(SceneId::Bunny, 0.5, &SimConfig::paper_treelet_prefetch());
    let mut strided_cfg = SimConfig::paper_treelet_prefetch();
    strided_cfg.layout =
        treelet_prefetching::treelet::LayoutChoice::TreeletPacked { extra_stride: 256 };
    let strided = run(SceneId::Bunny, 0.5, &strided_cfg);
    assert!(
        cv(&strided.dram_channel_accesses) < cv(&packed.dram_channel_accesses),
        "stride did not balance channels: {:?} vs {:?}",
        strided.dram_channel_accesses,
        packed.dram_channel_accesses
    );
}

#[test]
fn mta_stride_prefetcher_is_ineffective_on_ray_tracing() {
    // Fig. 8's shape: stride prefetching finds almost nothing useful in
    // BVH pointer-chasing traffic.
    let config = SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta());
    let mta = run(SceneId::Sprng, 0.4, &config);
    let stats = mta.mta.expect("MTA stats");
    assert!(stats.observed > 0);
    let e = mta.prefetch_effect;
    let useful = e.timely + e.late;
    assert!(
        useful * 5 <= e.total().max(1),
        "MTA unexpectedly useful: {e:?}"
    );
}

#[test]
fn cache_resident_scene_has_high_hit_rate() {
    // WKND's BVH fits in the L1 — the reason the paper sees no speedup
    // there.
    let base = run(SceneId::Wknd, 0.4, &SimConfig::paper_baseline());
    let footprint = base.tree.total_bytes();
    assert!(
        footprint < 512 * 1024,
        "WKND stand-in too large: {footprint} bytes"
    );
    // After the cold pass, reuse dominates: misses are a small fraction.
    let misses = base.l1.demand_misses as f64;
    let total = base.l1.demand_accesses() as f64;
    assert!(
        misses / total < 0.5,
        "cache-resident scene missing too often ({:.0}%)",
        misses / total * 100.0
    );
}

#[test]
fn voter_latency_hurts_monotonically_in_the_limit() {
    // Fig. 16's shape: an instant voter beats a 512-cycle voter.
    use treelet_prefetching::treelet::VoterKind;
    let fast = run(
        SceneId::Chsnt,
        0.5,
        &SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, 0),
    );
    let slow = run(
        SceneId::Chsnt,
        0.5,
        &SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, 512),
    );
    assert!(
        slow.cycles >= fast.cycles,
        "512-cycle voter beat the instant voter: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn pseudo_voter_accuracy_is_high() {
    use treelet_prefetching::treelet::VoterKind;
    let r = run(
        SceneId::Party,
        0.4,
        &SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, 0),
    );
    let p = r.prefetcher.expect("prefetcher stats");
    assert!(p.pseudo_comparisons > 0);
    assert!(
        p.voter_accuracy() > 0.7,
        "pseudo voter accuracy suspiciously low: {:.2}",
        p.voter_accuracy()
    );
}
