//! End-to-end CLI contract tests: bad input must exit promptly with
//! code 2 and a clean `error:` line — never a panic backtrace — and
//! telemetry must not perturb the simulated run's state digest.

use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_treelet-prefetching");

fn run_cli(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        // Force backtraces on so a panicking binary cannot pass the
        // "no backtrace in stderr" assertion by accident.
        .env("RUST_BACKTRACE", "1")
        .output()
        .expect("failed to spawn CLI")
}

#[test]
fn bad_input_exits_with_code_2_and_no_panic() {
    struct Case {
        name: &'static str,
        args: &'static [&'static str],
        needle: &'static str,
    }
    let cases = [
        Case {
            name: "zero treelet budget (used to assert in treelet.rs)",
            args: &["run", "--scene", "WKND", "--treelet-bytes", "0"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "sub-node treelet budget",
            args: &["run", "--scene", "WKND", "--treelet-bytes", "63"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "zero treelet budget via stats",
            args: &["stats", "--scene", "WKND", "--treelet-bytes", "0"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "infinite detail (used to panic in scenes.rs)",
            args: &["run", "--scene", "WKND", "--detail", "inf"],
            needle: "--detail",
        },
        Case {
            name: "negative-infinite detail",
            args: &["run", "--scene", "WKND", "--detail", "-inf"],
            needle: "--detail",
        },
        Case {
            name: "NaN detail",
            args: &["run", "--scene", "WKND", "--detail", "NaN"],
            needle: "--detail",
        },
        Case {
            name: "zero detail",
            args: &["run", "--scene", "WKND", "--detail", "0"],
            needle: "--detail",
        },
        Case {
            name: "negative detail",
            args: &["stats", "--scene", "WKND", "--detail", "-1"],
            needle: "--detail",
        },
        Case {
            name: "huge detail (used to hang generating triangles)",
            args: &["run", "--scene", "LANDS", "--detail", "1e30"],
            needle: "triangles",
        },
        Case {
            name: "unknown flag",
            args: &["run", "--frobnicate"],
            needle: "--frobnicate",
        },
        Case {
            name: "unknown scene",
            args: &["run", "--scene", "NOPE"],
            needle: "NOPE",
        },
        Case {
            name: "missing flag value",
            args: &["run", "--detail"],
            needle: "--detail",
        },
        Case {
            name: "zero telemetry interval",
            args: &["run", "--telemetry", "--telemetry-every", "0"],
            needle: "--telemetry-every",
        },
        Case {
            name: "telemetry interval without telemetry",
            args: &["run", "--scene", "WKND", "--telemetry-every", "5"],
            needle: "--telemetry-every",
        },
        Case {
            name: "telemetry combined with checkpointing",
            args: &["run", "--scene", "WKND", "--telemetry", "--resume"],
            needle: "--telemetry",
        },
    ];
    for case in &cases {
        let out = run_cli(case.args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{}: expected exit code 2, got {:?}\nstderr: {stderr}",
            case.name,
            out.status.code()
        );
        assert!(
            stderr.contains("error:"),
            "{}: stderr missing `error:` line: {stderr}",
            case.name
        );
        assert!(
            stderr.contains(case.needle),
            "{}: stderr does not name the cause ({:?}): {stderr}",
            case.name,
            case.needle
        );
        for forbidden in ["panicked", "RUST_BACKTRACE", "stack backtrace"] {
            assert!(
                !stderr.contains(forbidden),
                "{}: stderr leaked a panic ({forbidden}): {stderr}",
                case.name
            );
        }
    }
}

fn digest_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("state digest:"))
        .expect("run output has a state digest line")
}

#[test]
fn telemetry_does_not_change_the_state_digest() {
    let dir = std::env::temp_dir().join(format!("treelet-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("telemetry.csv");
    let base_args = [
        "run",
        "--scene",
        "WKND",
        "--detail",
        "0.2",
        "--res",
        "8",
        "--config",
        "prefetch",
    ];
    let plain = run_cli(&base_args);
    assert!(plain.status.success(), "plain run failed");
    let mut telemetry_args = base_args.to_vec();
    let csv = csv_path.to_str().unwrap();
    telemetry_args.extend(["--telemetry", csv, "--telemetry-every", "64"]);
    let sampled = run_cli(&telemetry_args);
    let sampled_stdout = String::from_utf8_lossy(&sampled.stdout);
    assert!(
        sampled.status.success(),
        "telemetry run failed: {}",
        String::from_utf8_lossy(&sampled.stderr)
    );
    let plain_stdout = String::from_utf8_lossy(&plain.stdout);
    assert_eq!(
        digest_line(&plain_stdout),
        digest_line(&sampled_stdout),
        "telemetry perturbed the simulation"
    );
    assert!(sampled_stdout.contains("telemetry:"));
    // The exported CSV has the schema the figures consume: a header
    // plus at least one epoch row.
    let csv_text = std::fs::read_to_string(&csv_path).unwrap();
    let mut lines = csv_text.lines();
    let header = lines.next().expect("csv header");
    for column in [
        "cycle",
        "l1_hit_rate",
        "prefetch_useful",
        "prefetch_late",
        "prefetch_useless",
        "ch0_queue_depth",
        "ch0_bytes",
    ] {
        assert!(header.contains(column), "csv header missing {column}: {header}");
    }
    assert!(lines.count() >= 1, "csv has no epoch rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_json_export_is_an_array() {
    let dir = std::env::temp_dir().join(format!("treelet-cli-telem-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("telemetry.json");
    let out = run_cli(&[
        "run",
        "--scene",
        "WKND",
        "--detail",
        "0.2",
        "--res",
        "8",
        "--telemetry",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "json telemetry run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    assert!(trimmed.contains("\"prefetch_useful\""));
    std::fs::remove_dir_all(&dir).ok();
}
