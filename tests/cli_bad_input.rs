//! End-to-end CLI contract tests: bad input must exit promptly with
//! code 2 and a clean `error:` line — never a panic backtrace — and
//! telemetry must not perturb the simulated run's state digest.

use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_treelet-prefetching");

fn run_cli(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        // Force backtraces on so a panicking binary cannot pass the
        // "no backtrace in stderr" assertion by accident.
        .env("RUST_BACKTRACE", "1")
        .output()
        .expect("failed to spawn CLI")
}

#[test]
fn bad_input_exits_with_code_2_and_no_panic() {
    struct Case {
        name: &'static str,
        args: &'static [&'static str],
        needle: &'static str,
    }
    let cases = [
        Case {
            name: "zero treelet budget (used to assert in treelet.rs)",
            args: &["run", "--scene", "WKND", "--treelet-bytes", "0"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "sub-node treelet budget",
            args: &["run", "--scene", "WKND", "--treelet-bytes", "63"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "zero treelet budget via stats",
            args: &["stats", "--scene", "WKND", "--treelet-bytes", "0"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "infinite detail (used to panic in scenes.rs)",
            args: &["run", "--scene", "WKND", "--detail", "inf"],
            needle: "--detail",
        },
        Case {
            name: "negative-infinite detail",
            args: &["run", "--scene", "WKND", "--detail", "-inf"],
            needle: "--detail",
        },
        Case {
            name: "NaN detail",
            args: &["run", "--scene", "WKND", "--detail", "NaN"],
            needle: "--detail",
        },
        Case {
            name: "zero detail",
            args: &["run", "--scene", "WKND", "--detail", "0"],
            needle: "--detail",
        },
        Case {
            name: "negative detail",
            args: &["stats", "--scene", "WKND", "--detail", "-1"],
            needle: "--detail",
        },
        Case {
            name: "huge detail (used to hang generating triangles)",
            args: &["run", "--scene", "LANDS", "--detail", "1e30"],
            needle: "triangles",
        },
        Case {
            name: "unknown flag",
            args: &["run", "--frobnicate"],
            needle: "--frobnicate",
        },
        Case {
            name: "unknown scene",
            args: &["run", "--scene", "NOPE"],
            needle: "NOPE",
        },
        Case {
            name: "missing flag value",
            args: &["run", "--detail"],
            needle: "--detail",
        },
        Case {
            name: "zero telemetry interval",
            args: &["run", "--telemetry", "--telemetry-every", "0"],
            needle: "--telemetry-every",
        },
        Case {
            name: "telemetry interval without telemetry",
            args: &["run", "--scene", "WKND", "--telemetry-every", "5"],
            needle: "--telemetry-every",
        },
        Case {
            name: "zero jobs",
            args: &["suite", "--jobs", "0"],
            needle: "--jobs",
        },
        Case {
            name: "non-numeric jobs",
            args: &["sweep", "--jobs", "lots"],
            needle: "--jobs",
        },
        Case {
            name: "unknown scene in the suite scene list",
            args: &["suite", "--scenes", "CAR,NOPE"],
            needle: "NOPE",
        },
        Case {
            name: "grid-only flag under suite",
            args: &["suite", "--configs", "baseline,prefetch"],
            needle: "--configs",
        },
        Case {
            name: "suite-only flag under sweep",
            args: &["sweep", "--config", "baseline"],
            needle: "--config",
        },
        Case {
            name: "sub-node treelet budget in the sweep grid",
            args: &["sweep", "--treelet-bytes-list", "256,0"],
            needle: "treelet budget",
        },
        Case {
            name: "serve without a store",
            args: &["serve", "--addr", "127.0.0.1:0"],
            needle: "--store",
        },
        Case {
            name: "serve without an address",
            args: &["serve", "--store", "/tmp/nowhere"],
            needle: "--addr",
        },
        Case {
            name: "serve with zero workers",
            args: &["serve", "--addr", "127.0.0.1:0", "--store", "s", "--workers", "0"],
            needle: "--workers",
        },
        Case {
            name: "serve with zero backoff",
            args: &["serve", "--addr", "127.0.0.1:0", "--store", "s", "--backoff-ms", "0"],
            needle: "--backoff-ms",
        },
        Case {
            name: "client without an action",
            args: &["client"],
            needle: "action",
        },
        Case {
            name: "client ping without an address",
            args: &["client", "ping"],
            needle: "--addr",
        },
        Case {
            name: "client status with a decimal job id",
            args: &["client", "status", "--addr", "127.0.0.1:1", "--job", "123"],
            needle: "--job",
        },
        Case {
            name: "client submit with zero detail",
            args: &["client", "submit", "--addr", "127.0.0.1:1", "--detail", "0"],
            needle: "--detail",
        },
        Case {
            name: "client submit with an unknown scene",
            args: &["client", "submit", "--addr", "127.0.0.1:1", "--scenes", "NOPE"],
            needle: "NOPE",
        },
        Case {
            name: "client submit with a sub-node treelet budget",
            args: &["client", "submit", "--addr", "127.0.0.1:1", "--treelet-bytes", "1"],
            needle: "--treelet-bytes",
        },
        Case {
            name: "unknown prefetch selector",
            args: &["run", "--scene", "WKND", "--prefetch", "stride"],
            needle: "--prefetch",
        },
        Case {
            name: "hash knob without the hash prefetcher",
            args: &["run", "--scene", "WKND", "--hash-table-size", "64"],
            needle: "--prefetch hash",
        },
        Case {
            name: "hash knob with a different prefetcher",
            args: &["run", "--scene", "WKND", "--prefetch", "mta", "--hash-quant", "4"],
            needle: "--prefetch hash",
        },
        Case {
            name: "zero hash table size",
            args: &["run", "--prefetch", "hash", "--hash-table-size", "0"],
            needle: "--hash-table-size",
        },
        Case {
            name: "zero hash quantization bits",
            args: &["run", "--prefetch", "hash", "--hash-quant", "0"],
            needle: "--hash-quant",
        },
        Case {
            name: "oversized hash quantization bits",
            args: &["run", "--prefetch", "hash", "--hash-quant", "17"],
            needle: "--hash-quant",
        },
        Case {
            name: "zero hash path lines",
            args: &["run", "--prefetch", "hash", "--hash-path-lines", "0"],
            needle: "--hash-path-lines",
        },
        Case {
            name: "serve with a garbage chaos seed",
            args: &["serve", "--addr", "127.0.0.1:0", "--store", "s", "--chaos", "entropy"],
            needle: "--chaos",
        },
    ];
    for case in &cases {
        let out = run_cli(case.args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{}: expected exit code 2, got {:?}\nstderr: {stderr}",
            case.name,
            out.status.code()
        );
        assert!(
            stderr.contains("error:"),
            "{}: stderr missing `error:` line: {stderr}",
            case.name
        );
        assert!(
            stderr.contains(case.needle),
            "{}: stderr does not name the cause ({:?}): {stderr}",
            case.name,
            case.needle
        );
        for forbidden in ["panicked", "RUST_BACKTRACE", "stack backtrace"] {
            assert!(
                !stderr.contains(forbidden),
                "{}: stderr leaked a panic ({forbidden}): {stderr}",
                case.name
            );
        }
    }
}

#[test]
fn garbage_rt_chaos_env_is_a_typed_exit_2() {
    // The env path must match the flag's contract: exit 2, clean
    // `error:` line naming RT_CHAOS, no backtrace.
    let out = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0", "--store", "/tmp/nowhere"])
        .env("RUST_BACKTRACE", "1")
        .env("RT_CHAOS", "entropy")
        .output()
        .expect("failed to spawn CLI");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("RT_CHAOS"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

fn digest_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("state digest:"))
        .expect("run output has a state digest line")
}

#[test]
fn telemetry_does_not_change_the_state_digest() {
    let dir = std::env::temp_dir().join(format!("treelet-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("telemetry.csv");
    let base_args = [
        "run",
        "--scene",
        "WKND",
        "--detail",
        "0.2",
        "--res",
        "8",
        "--config",
        "prefetch",
    ];
    let plain = run_cli(&base_args);
    assert!(plain.status.success(), "plain run failed");
    let mut telemetry_args = base_args.to_vec();
    let csv = csv_path.to_str().unwrap();
    telemetry_args.extend(["--telemetry", csv, "--telemetry-every", "64"]);
    let sampled = run_cli(&telemetry_args);
    let sampled_stdout = String::from_utf8_lossy(&sampled.stdout);
    assert!(
        sampled.status.success(),
        "telemetry run failed: {}",
        String::from_utf8_lossy(&sampled.stderr)
    );
    let plain_stdout = String::from_utf8_lossy(&plain.stdout);
    assert_eq!(
        digest_line(&plain_stdout),
        digest_line(&sampled_stdout),
        "telemetry perturbed the simulation"
    );
    assert!(sampled_stdout.contains("telemetry:"));
    // The exported CSV has the schema the figures consume: a header
    // plus at least one epoch row.
    let csv_text = std::fs::read_to_string(&csv_path).unwrap();
    let mut lines = csv_text.lines();
    let header = lines.next().expect("csv header");
    for column in [
        "cycle",
        "l1_hit_rate",
        "prefetch_useful",
        "prefetch_late",
        "prefetch_useless",
        "ch0_queue_depth",
        "ch0_bytes",
    ] {
        assert!(header.contains(column), "csv header missing {column}: {header}");
    }
    assert!(lines.count() >= 1, "csv has no epoch rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_composes_with_checkpointing() {
    // The session owns both features now; the old CLI rejection is gone,
    // and sampling must stay read-only across checkpoint epochs.
    let dir = std::env::temp_dir().join(format!("treelet-cli-telem-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("run.rtsnap");
    let base_args = [
        "run", "--scene", "WKND", "--detail", "0.2", "--res", "8", "--config", "prefetch",
    ];
    let plain = run_cli(&base_args);
    assert!(plain.status.success(), "plain run failed");
    let mut combo_args = base_args.to_vec();
    combo_args.extend([
        "--telemetry",
        "--checkpoint-every",
        "500",
        "--checkpoint-path",
        ckpt.to_str().unwrap(),
    ]);
    let combo = run_cli(&combo_args);
    assert!(
        combo.status.success(),
        "telemetry+checkpoint run failed: {}",
        String::from_utf8_lossy(&combo.stderr)
    );
    let plain_stdout = String::from_utf8_lossy(&plain.stdout);
    let combo_stdout = String::from_utf8_lossy(&combo.stdout);
    assert_eq!(
        digest_line(&plain_stdout),
        digest_line(&combo_stdout),
        "telemetry+checkpointing perturbed the simulation"
    );
    assert!(combo_stdout.contains("telemetry:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn suite_digest_logs_are_identical_across_job_counts() {
    // The CLI-level determinism contract: the per-scene digest logs a
    // parallel suite writes are byte-identical to a serial run's.
    let dir = std::env::temp_dir().join(format!("treelet-cli-suite-{}", std::process::id()));
    let (j1, j4) = (dir.join("j1"), dir.join("j4"));
    std::fs::create_dir_all(&dir).unwrap();
    for (jobs, out) in [("1", &j1), ("4", &j4)] {
        let run = run_cli(&[
            "suite",
            "--scenes",
            "WKND,CAR",
            "--detail",
            "0.1",
            "--res",
            "8",
            "--config",
            "prefetch",
            "--jobs",
            jobs,
            "--digest-dir",
            out.to_str().unwrap(),
        ]);
        assert!(
            run.status.success(),
            "suite --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&run.stderr)
        );
    }
    for scene in ["wknd", "car"] {
        let a = std::fs::read(j1.join(format!("{scene}.digests"))).unwrap();
        let b = std::fs::read(j4.join(format!("{scene}.digests"))).unwrap();
        assert!(!a.is_empty(), "{scene}: empty digest log");
        assert_eq!(a, b, "{scene}: digest logs diverge between job counts");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_bind_failure_exits_7() {
    // Occupy a port, then ask the daemon to bind it.
    let holder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = holder.local_addr().unwrap().to_string();
    let dir = std::env::temp_dir().join(format!("treelet-cli-bind7-{}", std::process::id()));
    let out = run_cli(&["serve", "--addr", &addr, "--store", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(7),
        "expected exit 7 on bind failure, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains(&addr), "stderr does not name the address: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_store_corruption_exits_8() {
    let dir = std::env::temp_dir().join(format!("treelet-cli-store8-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A store root that is a file, not a directory.
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, b"occupied").unwrap();
    let out = run_cli(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--store",
        blocker.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(8),
        "store-is-a-file: expected exit 8\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A garbage job journal: refusing to guess beats resurrecting a
    // half-written queue, so startup is a hard typed failure.
    let store = dir.join("store");
    std::fs::create_dir_all(store.join("jobs")).unwrap();
    std::fs::write(store.join("jobs/0x0000000000000001.json"), b"garbage{").unwrap();
    let out = run_cli(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--store",
        store.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(8),
        "corrupt journal: expected exit 8\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("error:") && stderr.contains("corruption"),
        "stderr does not describe the corruption: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn daemon_sigterm_drains_and_exits_9() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join(format!("treelet-cli-sig9-{}", std::process::id()));
    let mut child = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0", "--store", dir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // Wait until the daemon reports its listening address before
    // signalling, so we test the running accept loop, not startup.
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon printed a banner")
        .expect("read banner");
    assert!(banner.contains("rt-served listening"), "banner: {banner}");

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());

    let status = child.wait().expect("daemon exit");
    assert_eq!(
        status.code(),
        Some(9),
        "expected exit 9 after SIGTERM, got {status:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_json_export_is_an_array() {
    let dir = std::env::temp_dir().join(format!("treelet-cli-telem-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("telemetry.json");
    let out = run_cli(&[
        "run",
        "--scene",
        "WKND",
        "--detail",
        "0.2",
        "--res",
        "8",
        "--telemetry",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "json telemetry run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    assert!(trimmed.contains("\"prefetch_useful\""));
    std::fs::remove_dir_all(&dir).ok();
}
