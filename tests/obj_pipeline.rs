//! Integration test: a user-supplied OBJ mesh through the entire stack —
//! parse, build, form treelets, and simulate both RT-unit configurations.

use treelet_prefetching::bvh::WideBvh;
use treelet_prefetching::geometry::{Ray, Vec3};
use treelet_prefetching::scene::parse_obj;
use treelet_prefetching::treelet::{SimConfig, SimSession, TreeletAssignment};

/// A small procedurally written OBJ: a grid of quads plus a pyramid.
fn obj_text() -> String {
    let mut out = String::new();
    let n = 12;
    for j in 0..=n {
        for i in 0..=n {
            out.push_str(&format!("v {} 0 {}\n", i as f32, j as f32));
        }
    }
    for j in 0..n {
        for i in 0..n {
            let a = j * (n + 1) + i + 1;
            let b = a + 1;
            let c = a + n + 2;
            let d = a + n + 1;
            out.push_str(&format!("f {a} {b} {c} {d}\n"));
        }
    }
    // A pyramid on top, referencing vertices relatively.
    out.push_str("v 4 0 4\nv 8 0 4\nv 8 0 8\nv 4 0 8\nv 6 5 6\n");
    out.push_str("f -5 -4 -1\nf -4 -3 -1\nf -3 -2 -1\nf -2 -5 -1\n");
    out
}

#[test]
fn obj_mesh_simulates_end_to_end() {
    let mesh = parse_obj(obj_text().as_bytes()).expect("valid obj");
    // n*n quads -> 2 triangles each, plus 4 pyramid faces.
    assert_eq!(mesh.len(), 12 * 12 * 2 + 4);
    let bvh = WideBvh::build(mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);
    assert!(treelets.count() > 1);

    // Shoot a grid of rays downward.
    let rays: Vec<Ray> = (0..64)
        .map(|i| {
            let x = (i % 8) as f32 * 1.6 + 0.2;
            let z = (i / 8) as f32 * 1.6 + 0.2;
            Ray::new(Vec3::new(x, 10.0, z), Vec3::new(0.01, -1.0, 0.02))
        })
        .collect();
    // Every ray hits the ground grid.
    for (i, r) in rays.iter().enumerate() {
        assert!(bvh.intersect(r).is_hit(), "ray {i} missed the obj grid");
    }

    let base = SimSession::new(&bvh, &rays, SimConfig::paper_baseline())
            .run()
            .expect("simulation");
    let pf = SimSession::new(&bvh, &rays, SimConfig::paper_treelet_prefetch())
            .run()
            .expect("simulation");
    assert!(base.cycles > 0 && pf.cycles > 0);
    assert_eq!(base.rays, 64);
    // The pyramid apex ray sees the pyramid before the ground.
    let apex = Ray::new(Vec3::new(6.0, 10.0, 6.0), Vec3::new(0.0, -1.0, 0.0));
    let hit = bvh.intersect(&apex);
    assert!(hit.is_hit());
    assert!(
        apex.at(hit.t).y > 3.0,
        "apex ray should hit the pyramid top"
    );
}
