//! End-to-end integration tests across the whole stack: scene generation
//! → BVH construction → treelet formation → functional traversal →
//! cycle-level simulation.

use treelet_prefetching::bvh::{MemoryImage, TreeStats, WideBvh};
use treelet_prefetching::scene::{Scene, SceneId, Workload, WorkloadKind};
use treelet_prefetching::treelet::{
    compile_trace, trace_ray, SimSession, SimConfig, TraversalAlgorithm, TreeletAssignment,
};

fn small_workload() -> Workload {
    Workload::new(WorkloadKind::Primary, 12, 12)
}

#[test]
fn full_pipeline_runs_on_several_scenes() {
    for id in [SceneId::Wknd, SceneId::Ship, SceneId::Ref] {
        let scene = Scene::build_with_detail(id, 0.35);
        let rays = small_workload().generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        let result = SimSession::new(&bvh, &rays, SimConfig::paper_baseline())
            .run()
            .expect("simulation");
        assert!(result.cycles > 0, "{id}: no cycles simulated");
        assert_eq!(result.rays, rays.len());
        assert!(result.l1.demand_accesses() > 0);
        assert_eq!(result.tree, TreeStats::of(&bvh));
    }
}

#[test]
fn traversal_algorithms_agree_with_reference_intersector() {
    let scene = Scene::build_with_detail(SceneId::Crnvl, 0.35);
    let rays = small_workload().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);
    for ray in &rays {
        let reference = bvh.intersect(ray);
        for algo in [
            TraversalAlgorithm::BaselineDfs,
            TraversalAlgorithm::TwoStackTreelet,
        ] {
            let trace = trace_ray(&bvh, &treelets, ray, algo);
            assert_eq!(
                trace.hit.primitive, reference.primitive,
                "{algo} disagrees with reference"
            );
        }
    }
}

#[test]
fn demand_access_conservation_across_configs() {
    // The timing model must issue exactly the lines the functional traces
    // compile to, for every traversal/layout combination.
    let scene = Scene::build_with_detail(SceneId::Bath, 0.3);
    let rays = small_workload().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    for config in [
        SimConfig::paper_baseline(),
        SimConfig::paper_treelet_traversal_only(),
    ] {
        let treelets = TreeletAssignment::form(&bvh, config.treelet_bytes);
        let image = match config.layout {
            treelet_prefetching::treelet::LayoutChoice::DepthFirst => {
                MemoryImage::depth_first(&bvh)
            }
            treelet_prefetching::treelet::LayoutChoice::TreeletPacked { extra_stride } => {
                MemoryImage::treelet_packed(
                    &bvh,
                    treelets.as_slices(),
                    treelet_prefetching::bvh::PackOptions {
                        slot_bytes: config.treelet_bytes,
                        extra_stride,
                    },
                )
            }
            treelet_prefetching::treelet::LayoutChoice::MappingTable => {
                MemoryImage::depth_first(&bvh).with_mapping_table()
            }
        };
        let expected: u64 = rays
            .iter()
            .map(|r| {
                compile_trace(
                    &trace_ray(&bvh, &treelets, r, config.traversal),
                    &image,
                    config.mem.line_bytes,
                )
                .iter()
                .map(|s| s.lines.len() as u64)
                .sum::<u64>()
            })
            .sum();
        let result = SimSession::new(&bvh, &rays, config.clone())
            .run()
            .expect("simulation");
        assert_eq!(
            result.l1.demand_accesses(),
            expected,
            "lost or duplicated demand accesses under {:?}/{}",
            config.traversal,
            config.layout
        );
    }
}

#[test]
fn treelet_packed_image_respects_formation() {
    let scene = Scene::build_with_detail(SceneId::Spnza, 0.3);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);
    let image = MemoryImage::treelet_packed(
        &bvh,
        treelets.as_slices(),
        treelet_prefetching::bvh::PackOptions::paper_default(),
    );
    // Every node's address upper bits identify its treelet slot.
    for node in 0..bvh.node_count() as u32 {
        let g = treelets.of_node(node);
        let (base, bytes) = image.group_extent(g);
        let addr = image.node_addr(node);
        assert!(addr >= base && addr < base + bytes);
        assert_eq!(image.group_of(node), Some(g));
    }
}

#[test]
fn diffuse_and_shadow_workloads_simulate() {
    let scene = Scene::build_with_detail(SceneId::Frst, 0.25);
    let bvh = WideBvh::build(scene.mesh.clone().into_triangles());
    for kind in [WorkloadKind::Diffuse, WorkloadKind::Shadow] {
        let rays = Workload::new(kind, 8, 8).generate(&scene);
        let result = SimSession::new(&bvh, &rays, SimConfig::paper_treelet_prefetch())
            .run()
            .expect("simulation");
        assert!(result.cycles > 0, "{kind} workload failed");
    }
}

#[test]
fn rendered_images_are_identical_across_traversal_algorithms() {
    // The two-stack treelet traversal must be *functionally invisible*:
    // a whole frame of closest-hit queries yields the same image as the
    // baseline DFS (primitive ids and hit distances both).
    let scene = Scene::build_with_detail(SceneId::Ref, 0.35);
    let rays = Workload::new(WorkloadKind::Primary, 24, 24).generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);
    let image = |algo| -> Vec<(Option<u32>, u32)> {
        rays.iter()
            .map(|r| {
                let hit = trace_ray(&bvh, &treelets, r, algo).hit;
                // Compare distances bit-exactly: identical primitives give
                // identical t regardless of visit order.
                (hit.primitive, hit.t.to_bits())
            })
            .collect()
    };
    let dfs = image(TraversalAlgorithm::BaselineDfs);
    let two = image(TraversalAlgorithm::TwoStackTreelet);
    assert_eq!(dfs, two, "traversal algorithm changed the rendered image");
}

#[test]
fn simulation_deterministic_end_to_end() {
    let scene = Scene::build_with_detail(SceneId::Chsnt, 0.3);
    let rays = small_workload().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let config = SimConfig::paper_treelet_prefetch();
    let a = SimSession::new(&bvh, &rays, config.clone())
            .run()
            .expect("simulation");
    let b = SimSession::new(&bvh, &rays, config)
            .run()
            .expect("simulation");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l1, b.l1);
    assert_eq!(a.prefetch_effect, b.prefetch_effect);
    assert_eq!(a.dram_channel_accesses, b.dram_channel_accesses);
}
