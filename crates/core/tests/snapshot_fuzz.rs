//! Fuzz-style robustness tests for the checkpoint codec:
//! `Checkpoint::from_bytes` must never panic, must classify every failure
//! as a typed `DecodeError`, and must round-trip what `to_bytes`
//! produces. The digest-log parser gets the same treatment.

use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};
use treelet_rt::{parse_digest_log, Checkpoint, SnapshotError, SNAPSHOT_MAGIC};

/// An arbitrary checkpoint with a payload of random bytes.
fn arbitrary_checkpoint(rng: &mut SmallRng) -> Checkpoint {
    let len = rng.gen_range(0..2048usize);
    Checkpoint {
        identity: rng.next_u64(),
        epoch: rng.next_u64(),
        start_cycle: rng.next_u64(),
        cycle: rng.next_u64(),
        rays_remaining: rng.next_u64(),
        payload: (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect(),
    }
}

/// Arbitrary bytes, biased toward starting with the real magic so the
/// decoder's deeper branches are exercised, not just the first reject.
fn arbitrary_bytes(rng: &mut SmallRng) -> Vec<u8> {
    let len = rng.gen_range(0..512usize);
    let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
    if rng.gen_bool(0.5) && bytes.len() >= SNAPSHOT_MAGIC.len() {
        bytes[..SNAPSHOT_MAGIC.len()].copy_from_slice(&SNAPSHOT_MAGIC);
    }
    bytes
}

#[test]
fn from_bytes_never_panics_on_arbitrary_bytes() {
    forall("checkpoint_decode_never_panics", 512, |rng| {
        let bytes = arbitrary_bytes(rng);
        // Any outcome but a panic is fine; the error is typed by
        // construction — the point is reaching here for every input.
        let _ = Checkpoint::from_bytes(&bytes);
    });
}

#[test]
fn truncating_a_valid_checkpoint_is_a_typed_error() {
    forall("checkpoint_truncation", 128, |rng| {
        let bytes = arbitrary_checkpoint(rng).to_bytes();
        let cut = rng.gen_range(0..bytes.len());
        assert!(
            Checkpoint::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte checkpoint must not decode",
            bytes.len()
        );
    });
}

#[test]
fn flipping_one_bit_is_a_typed_error() {
    forall("checkpoint_bit_flip", 128, |rng| {
        let checkpoint = arbitrary_checkpoint(rng);
        let mut bytes = checkpoint.to_bytes();
        let byte = rng.gen_range(0..bytes.len());
        let bit = 1u8 << rng.gen_range(0..8u32);
        bytes[byte] ^= bit;
        // Every single-bit corruption lands in the magic, the version,
        // a checksummed field, or the checksum itself — all rejected.
        assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "flipping bit {bit:#04x} of byte {byte} must not decode"
        );
    });
}

#[test]
fn to_bytes_from_bytes_round_trips() {
    forall("checkpoint_round_trip", 128, |rng| {
        let checkpoint = arbitrary_checkpoint(rng);
        let back = Checkpoint::from_bytes(&checkpoint.to_bytes()).expect("own output decodes");
        assert_eq!(back, checkpoint);
        assert_eq!(back.state_digest(), checkpoint.state_digest());
    });
}

#[test]
fn digest_log_parser_never_panics_on_arbitrary_text() {
    const ALPHABET: &[u8] = b"epoch=cycle=digest=rays_remaining=0123456789abcdefx \n";
    forall("digest_log_never_panics", 256, |rng| {
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    ALPHABET[rng.gen_range(0..ALPHABET.len())]
                } else {
                    (rng.next_u64() & 0x7f) as u8
                }
            })
            .collect();
        let text = String::from_utf8_lossy(&bytes);
        match parse_digest_log(&text) {
            Ok(_) => {}
            Err(SnapshotError::MalformedDigestLog { line, .. }) => {
                assert!(line >= 1, "line numbers are 1-based");
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    });
}
