//! Fuzz-style robustness tests for the trace serializer: `read_traces`
//! must never panic, must classify every failure as `Io` or `Malformed`
//! with an accurate line number, and must round-trip what
//! `write_traces` produces.

use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};
use treelet_rt::{read_traces, write_traces, CompiledStep, ParseTraceError};

/// Arbitrary bytes, biased toward the trace alphabet so the parser's
/// deeper branches are exercised, not just the first reject.
fn arbitrary_bytes(rng: &mut SmallRng) -> Vec<u8> {
    const ALPHABET: &[u8] = b"ray step node=treelet=leaf=lines=0123456789abcdef, \n\n#";
    let len = rng.gen_range(0..512usize);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.8) {
                ALPHABET[rng.gen_range(0..ALPHABET.len())]
            } else {
                (rng.next_u64() & 0xff) as u8
            }
        })
        .collect()
}

fn arbitrary_traces(rng: &mut SmallRng) -> Vec<Vec<CompiledStep>> {
    let rays = rng.gen_range(0..6usize);
    (0..rays)
        .map(|_| {
            let steps = rng.gen_range(0..8usize);
            (0..steps)
                .map(|_| {
                    let lines = rng.gen_range(1..5usize);
                    CompiledStep {
                        node: (rng.next_u64() & 0xffff_ffff) as u32,
                        treelet: (rng.next_u64() & 0xffff) as u32,
                        lines: (0..lines).map(|_| rng.next_u64() >> 8).collect(),
                        is_leaf: rng.gen_bool(0.3),
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn read_traces_never_panics_on_arbitrary_bytes() {
    forall("read_traces_never_panics", 256, |rng| {
        let bytes = arbitrary_bytes(rng);
        // Any outcome is fine except a panic; errors must be one of the
        // two documented variants (trivially true by type — the point is
        // reaching here for every input).
        match read_traces(&bytes[..]) {
            Ok(_) => {}
            Err(ParseTraceError::Io(_)) | Err(ParseTraceError::Malformed { .. }) => {}
        }
    });
}

#[test]
fn corrupting_one_line_reports_its_number() {
    forall("corrupt_line_number_is_accurate", 64, |rng| {
        let traces = {
            // Ensure there is at least one ray with one step to corrupt.
            let mut t = arbitrary_traces(rng);
            if t.iter().all(Vec::is_empty) {
                t.push(vec![CompiledStep {
                    node: 1,
                    treelet: 0,
                    lines: vec![0x40],
                    is_leaf: false,
                }]);
            }
            t
        };
        let mut text = Vec::new();
        write_traces(&mut text, &traces).unwrap();
        let text = String::from_utf8(text).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        // Pick a non-comment line and replace it with garbage no parser
        // branch accepts.
        let candidates: Vec<usize> = (0..lines.len())
            .filter(|&i| !lines[i].trim().is_empty() && !lines[i].trim_start().starts_with('#'))
            .collect();
        let victim = candidates[rng.gen_range(0..candidates.len())];
        lines[victim] = "@@corrupt@@";
        let corrupted = lines.join("\n");
        match read_traces(corrupted.as_bytes()) {
            Err(ParseTraceError::Malformed { line, .. }) => {
                assert_eq!(line, victim + 1, "line numbers are 1-based");
            }
            other => panic!("expected Malformed at line {}, got {other:?}", victim + 1),
        }
    });
}

#[test]
fn write_then_read_round_trips() {
    forall("trace_round_trip", 128, |rng| {
        let traces = arbitrary_traces(rng);
        let mut text = Vec::new();
        write_traces(&mut text, &traces).unwrap();
        let back = read_traces(&text[..]).expect("own output must parse");
        assert_eq!(back, traces);
    });
}
