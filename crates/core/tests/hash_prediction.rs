//! Hash-path predictor integration tests: the seeded ray hash is a pure
//! function of ray geometry (so permuting a workload permutes keys
//! without changing any of them), end-to-end hash runs are
//! run-to-run deterministic with the predictor's counters surfaced in
//! the result, and the prediction table converges to the same contents
//! regardless of observation order when no evictions occur.

use rt_geometry::{Aabb, Vec3};
use rt_scene::{SceneId, Workload, WorkloadKind};
use treelet_rt::{hash_ray_key, Bench, HashPathPrefetcher, PrefetchConfig, SimConfig};

fn bench(scene: SceneId) -> Bench {
    Bench::prepare(scene, 0.1, Workload::new(WorkloadKind::Primary, 16, 16))
}

fn hash_config() -> SimConfig {
    SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash())
}

#[test]
fn hash_runs_are_deterministic_and_report_stats() {
    // A one-SM, two-slot machine over 32x32 primary rays: the workload
    // far exceeds the 64 resident lanes, so later warps enter only
    // after earlier same-key rays have retired and recorded their
    // paths — the regime where the prediction table actually hits.
    let b = Bench::prepare(SceneId::Car, 0.1, Workload::new(WorkloadKind::Primary, 32, 32));
    let mut small = hash_config();
    small.num_sms = 1;
    small.warp_buffer_size = 2;
    let first = b.run(&small);
    let second = b.run(&small);
    assert_eq!(first.cycles, second.cycles);
    assert_eq!(first.state_digest, second.state_digest);
    let s = first.hash.expect("hash config reports hash stats");
    assert_eq!(s, second.hash.unwrap(), "counters diverged between runs");
    assert!(s.rays_hashed > 0, "no rays hashed: {s:?}");
    assert!(s.paths_recorded > 0, "no paths recorded: {s:?}");
    assert!(
        s.table_hits > 0 && s.lines_enqueued > 0,
        "primary rays should repeat keys and trigger predictions: {s:?}"
    );
    // Non-hash configs must not grow a hash section in the result.
    assert!(b.run(&SimConfig::paper_baseline()).hash.is_none());
}

#[test]
fn ray_keys_are_a_pure_function_of_geometry() {
    // Hash every workload ray, then hash a deterministically permuted
    // copy of the list: the multiset of keys must be identical, because
    // the key depends only on the ray and the seed — not on arrival
    // order or neighboring rays.
    let b = bench(SceneId::Wknd);
    let bounds = Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0));
    let keys: Vec<u64> = b
        .rays()
        .iter()
        .map(|r| hash_ray_key(r, &bounds, 5, 5, 7))
        .collect();
    let mut permuted: Vec<_> = b.rays().to_vec();
    permuted.reverse();
    let third = permuted.len() / 3;
    permuted.rotate_left(third);
    let mut permuted_keys: Vec<u64> = permuted
        .iter()
        .map(|r| hash_ray_key(r, &bounds, 5, 5, 7))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    permuted_keys.sort_unstable();
    assert_eq!(sorted, permuted_keys, "permutation changed a ray's key");
    // Coherent primary rays must actually share cells — the predictor
    // is useless if every ray lands in its own bucket.
    sorted.dedup();
    assert!(
        sorted.len() < keys.len(),
        "no two of {} primary rays shared a key",
        keys.len()
    );
}

#[test]
fn prediction_table_is_order_independent_below_capacity() {
    // Feed the same key -> path observations in two different orders
    // into tables large enough to avoid eviction: every key must
    // remember the same path, and probing in a fixed order must produce
    // the same prefetch stream.
    let observations: Vec<(u64, Vec<u64>)> = (0u64..32)
        .map(|k| (k * 0x9e37, (0..4).map(|i| k * 100 + i).collect()))
        .collect();
    let mut forward = HashPathPrefetcher::new(64, 1024, 8);
    for (key, path) in &observations {
        forward.record_path(*key, path);
    }
    let mut backward = HashPathPrefetcher::new(64, 1024, 8);
    for (key, path) in observations.iter().rev() {
        backward.record_path(*key, path);
    }
    assert_eq!(forward.table_len(), backward.table_len());
    for (key, _) in &observations {
        forward.observe_enter(*key);
        backward.observe_enter(*key);
    }
    assert_eq!(forward.queue_len(), backward.queue_len());
    loop {
        let (a, b) = (forward.pop(), backward.pop());
        assert_eq!(a, b, "prefetch streams diverged");
        if a.is_none() {
            break;
        }
    }
}
