//! Property-based tests for treelet formation, the traversal algorithms,
//! and trace compilation.

use proptest::collection::vec;
use proptest::prelude::*;
use rt_bvh::{MemoryImage, WideBvh, NODE_SIZE_BYTES};
use rt_geometry::{Ray, Triangle, Vec3};
use treelet_rt::{compile_trace, trace_ray, TraversalAlgorithm, TreeletAssignment};

fn coord() -> impl Strategy<Value = f32> {
    -40.0f32..40.0
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (
        coord(),
        coord(),
        coord(),
        -3.0f32..3.0,
        -3.0f32..3.0,
        -3.0f32..3.0,
    )
        .prop_map(|(x, y, z, a, b, c)| {
            let p = Vec3::new(x, y, z);
            Triangle::new(
                p,
                p + Vec3::new(a, b.abs() + 0.1, c),
                p + Vec3::new(b, c, a.abs() + 0.1),
            )
        })
}

fn soup() -> impl Strategy<Value = Vec<Triangle>> {
    vec(triangle(), 1..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn formation_partitions_every_tree(tris in soup(), budget_nodes in 1u64..16) {
        let bvh = WideBvh::build(tris);
        let budget = budget_nodes * NODE_SIZE_BYTES;
        let a = TreeletAssignment::form(&bvh, budget);
        let mut seen = vec![false; bvh.node_count()];
        for g in 0..a.count() as u32 {
            prop_assert!(a.occupied_bytes(g) <= budget);
            prop_assert!(!a.members(g).is_empty());
            for &m in a.members(g) {
                prop_assert!(!seen[m as usize], "node {} twice", m);
                seen[m as usize] = true;
                prop_assert_eq!(a.of_node(m), g);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn formation_produces_connected_treelets(tris in soup()) {
        let bvh = WideBvh::build(tris);
        let a = TreeletAssignment::form(&bvh, 512);
        let mut parent = vec![u32::MAX; bvh.node_count()];
        for (i, node) in bvh.nodes().iter().enumerate() {
            for c in node.child_nodes() {
                parent[c as usize] = i as u32;
            }
        }
        for g in 0..a.count() as u32 {
            for &m in &a.members(g)[1..] {
                prop_assert_eq!(a.of_node(parent[m as usize]), g);
            }
        }
    }

    #[test]
    fn both_traversals_find_the_same_closest_hit(
        tris in soup(),
        ox in coord(), oy in coord(), oz in coord(),
        dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
    ) {
        prop_assume!(dx.abs() + dy.abs() + dz.abs() > 0.1);
        let bvh = WideBvh::build(tris);
        let a = TreeletAssignment::form(&bvh, 512);
        let ray = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
        let dfs = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::BaselineDfs);
        let two = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::TwoStackTreelet);
        prop_assert_eq!(dfs.hit.primitive, two.hit.primitive);
        if dfs.hit.is_hit() {
            prop_assert!((dfs.hit.t - two.hit.t).abs() < 1e-3 * dfs.hit.t.max(1.0));
        }
    }

    #[test]
    fn two_stack_never_reenters_a_treelet(
        tris in soup(),
        ox in coord(), oy in coord(), oz in coord(),
        dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
    ) {
        prop_assume!(dx.abs() + dy.abs() + dz.abs() > 0.1);
        let bvh = WideBvh::build(tris);
        let a = TreeletAssignment::form(&bvh, 512);
        let ray = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
        let trace = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::TwoStackTreelet);
        let mut seen = std::collections::HashSet::new();
        let mut last = u32::MAX;
        for s in &trace.steps {
            if s.treelet != last {
                prop_assert!(seen.insert(s.treelet), "treelet {} re-entered", s.treelet);
                last = s.treelet;
            }
        }
    }

    #[test]
    fn compiled_traces_are_line_aligned_and_deduplicated(
        tris in soup(),
        ox in coord(), oy in coord(), oz in coord(),
    ) {
        let bvh = WideBvh::build(tris);
        let a = TreeletAssignment::form(&bvh, 512);
        let image = MemoryImage::depth_first(&bvh);
        let target = bvh.root_aabb().center();
        let dir = target - Vec3::new(ox, oy, oz);
        prop_assume!(dir.length_squared() > 1e-3);
        let ray = Ray::new(Vec3::new(ox, oy, oz), dir);
        let trace = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::BaselineDfs);
        for step in compile_trace(&trace, &image, 64) {
            prop_assert!(!step.lines.is_empty());
            prop_assert_eq!(step.lines[0], image.node_addr(step.node) / 64 * 64);
            let mut sorted = step.lines.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), step.lines.len(), "duplicate lines in step");
            prop_assert!(step.lines.iter().all(|l| l % 64 == 0));
        }
    }

    #[test]
    fn traversal_visits_are_bounded_by_node_count(
        tris in soup(),
        ox in coord(), oy in coord(), oz in coord(),
        dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
    ) {
        // With early termination, neither algorithm may visit a node more
        // than once per ray, so visits <= node count.
        prop_assume!(dx.abs() + dy.abs() + dz.abs() > 0.1);
        let bvh = WideBvh::build(tris);
        let a = TreeletAssignment::form(&bvh, 512);
        let ray = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
        for algo in [TraversalAlgorithm::BaselineDfs, TraversalAlgorithm::TwoStackTreelet] {
            let trace = trace_ray(&bvh, &a, &ray, algo);
            prop_assert!(trace.nodes_visited() <= bvh.node_count());
            // No node may appear twice in a single trace.
            let mut nodes: Vec<u32> = trace.steps.iter().map(|s| s.node).collect();
            nodes.sort_unstable();
            let before = nodes.len();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), before, "node visited twice in {}", algo);
        }
    }
}
