//! Property-based tests for treelet formation, the traversal algorithms,
//! and trace compilation.

use rt_bvh::{MemoryImage, WideBvh, NODE_SIZE_BYTES};
use rt_geometry::{Ray, Triangle, Vec3};
use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};
use treelet_rt::{compile_trace, trace_ray, TraversalAlgorithm, TreeletAssignment};

fn coord(rng: &mut SmallRng) -> f32 {
    rng.gen_range(-40.0f32..40.0)
}

fn triangle(rng: &mut SmallRng) -> Triangle {
    let p = Vec3::new(coord(rng), coord(rng), coord(rng));
    let a = rng.gen_range(-3.0f32..3.0);
    let b = rng.gen_range(-3.0f32..3.0);
    let c = rng.gen_range(-3.0f32..3.0);
    Triangle::new(
        p,
        p + Vec3::new(a, b.abs() + 0.1, c),
        p + Vec3::new(b, c, a.abs() + 0.1),
    )
}

fn soup(rng: &mut SmallRng) -> Vec<Triangle> {
    let n = rng.gen_range(1..100usize);
    (0..n).map(|_| triangle(rng)).collect()
}

/// A direction with enough magnitude to be a valid ray (mirrors the old
/// `prop_assume!` filter).
fn direction(rng: &mut SmallRng) -> Vec3 {
    loop {
        let d = Vec3::new(
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        );
        if d.x.abs() + d.y.abs() + d.z.abs() > 0.1 {
            return d;
        }
    }
}

#[test]
fn formation_partitions_every_tree() {
    forall("formation_partitions_every_tree", 48, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let budget = rng.gen_range(1..16u64) * NODE_SIZE_BYTES;
        let a = TreeletAssignment::form(&bvh, budget);
        let mut seen = vec![false; bvh.node_count()];
        for g in 0..a.count() as u32 {
            assert!(a.occupied_bytes(g) <= budget);
            assert!(!a.members(g).is_empty());
            for &m in a.members(g) {
                assert!(!seen[m as usize], "node {} twice", m);
                seen[m as usize] = true;
                assert_eq!(a.of_node(m), g);
            }
        }
        assert!(seen.iter().all(|&s| s));
    });
}

#[test]
fn formation_produces_connected_treelets() {
    forall("formation_produces_connected_treelets", 48, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let a = TreeletAssignment::form(&bvh, 512);
        let mut parent = vec![u32::MAX; bvh.node_count()];
        for (i, node) in bvh.nodes().iter().enumerate() {
            for c in node.child_nodes() {
                parent[c as usize] = i as u32;
            }
        }
        for g in 0..a.count() as u32 {
            for &m in &a.members(g)[1..] {
                assert_eq!(a.of_node(parent[m as usize]), g);
            }
        }
    });
}

#[test]
fn both_traversals_find_the_same_closest_hit() {
    forall("both_traversals_find_the_same_closest_hit", 48, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let a = TreeletAssignment::form(&bvh, 512);
        let origin = Vec3::new(coord(rng), coord(rng), coord(rng));
        let ray = Ray::new(origin, direction(rng));
        let dfs = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::BaselineDfs);
        let two = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::TwoStackTreelet);
        assert_eq!(dfs.hit.primitive, two.hit.primitive);
        if dfs.hit.is_hit() {
            assert!((dfs.hit.t - two.hit.t).abs() < 1e-3 * dfs.hit.t.max(1.0));
        }
    });
}

#[test]
fn two_stack_never_reenters_a_treelet() {
    forall("two_stack_never_reenters_a_treelet", 48, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let a = TreeletAssignment::form(&bvh, 512);
        let origin = Vec3::new(coord(rng), coord(rng), coord(rng));
        let ray = Ray::new(origin, direction(rng));
        let trace = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::TwoStackTreelet);
        let mut seen = std::collections::HashSet::new();
        let mut last = u32::MAX;
        for s in &trace.steps {
            if s.treelet != last {
                assert!(seen.insert(s.treelet), "treelet {} re-entered", s.treelet);
                last = s.treelet;
            }
        }
    });
}

#[test]
fn compiled_traces_are_line_aligned_and_deduplicated() {
    forall("compiled_traces_are_line_aligned_and_deduplicated", 48, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let a = TreeletAssignment::form(&bvh, 512);
        let image = MemoryImage::depth_first(&bvh);
        let origin = Vec3::new(coord(rng), coord(rng), coord(rng));
        let target = bvh.root_aabb().center();
        let dir = target - origin;
        if dir.length_squared() <= 1e-3 {
            return;
        }
        let ray = Ray::new(origin, dir);
        let trace = trace_ray(&bvh, &a, &ray, TraversalAlgorithm::BaselineDfs);
        for step in compile_trace(&trace, &image, 64) {
            assert!(!step.lines.is_empty());
            assert_eq!(step.lines[0], image.node_addr(step.node) / 64 * 64);
            let mut sorted = step.lines.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), step.lines.len(), "duplicate lines in step");
            assert!(step.lines.iter().all(|l| l % 64 == 0));
        }
    });
}

#[test]
fn traversal_visits_are_bounded_by_node_count() {
    forall("traversal_visits_are_bounded_by_node_count", 48, |rng| {
        // With early termination, neither algorithm may visit a node more
        // than once per ray, so visits <= node count.
        let bvh = WideBvh::build(soup(rng));
        let a = TreeletAssignment::form(&bvh, 512);
        let origin = Vec3::new(coord(rng), coord(rng), coord(rng));
        let ray = Ray::new(origin, direction(rng));
        for algo in [TraversalAlgorithm::BaselineDfs, TraversalAlgorithm::TwoStackTreelet] {
            let trace = trace_ray(&bvh, &a, &ray, algo);
            assert!(trace.nodes_visited() <= bvh.node_count());
            // No node may appear twice in a single trace.
            let mut nodes: Vec<u32> = trace.steps.iter().map(|s| s.node).collect();
            nodes.sort_unstable();
            let before = nodes.len();
            nodes.dedup();
            assert_eq!(nodes.len(), before, "node visited twice in {}", algo);
        }
    });
}
