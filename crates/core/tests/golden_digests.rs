//! Golden state-digest regression tests.
//!
//! The dense-table rework of the simulator's hot path (Fx-hashed request
//! maps, count tables, the pending-line cursor, idle-cycle skipping)
//! must be unobservable in simulated behavior. These tests pin two
//! scenes' final `state_digest` values under both paper configurations
//! so any future change to the cycle loop, the keyed tables, or the
//! snapshot codec that perturbs simulated state — rather than just
//! wall-clock speed — fails loudly instead of silently shifting every
//! digest log in CI.
//!
//! The pinned values correspond to the CI suite cells
//! `suite --detail 0.1 --res 16 --config {baseline,prefetch}`.

use treelet_rt::{Bench, CheckpointOptions, PrefetchConfig, SimConfig, SimSession};

use rt_scene::{SceneId, Workload, WorkloadKind};

/// The suite smoke workload: detail 0.1, 16×16 primary rays.
fn bench(scene: SceneId) -> Bench {
    Bench::prepare(scene, 0.1, Workload::new(WorkloadKind::Primary, 16, 16))
}

/// (scene, config name, config, expected cycles, expected digest).
///
/// The mta/ghb/hash rows pin the Fig. 8 prior-work prefetchers riding on
/// the paper baseline — the same cells the bakeoff harness runs — so a
/// change to the unified `Prefetcher` dispatch that perturbs any one of
/// them fails here by name rather than shifting bakeoff output silently.
fn golden() -> [(SceneId, &'static str, SimConfig, u64, u64); 10] {
    [
        (
            SceneId::Wknd,
            "baseline",
            SimConfig::paper_baseline(),
            1875,
            0x74cebf7a2df3df4e,
        ),
        (
            SceneId::Car,
            "baseline",
            SimConfig::paper_baseline(),
            3749,
            0xd3ea8674ce4ed419,
        ),
        (
            SceneId::Wknd,
            "prefetch",
            SimConfig::paper_treelet_prefetch(),
            1591,
            0x55beb052ef4e43eb,
        ),
        (
            SceneId::Car,
            "prefetch",
            SimConfig::paper_treelet_prefetch(),
            3148,
            0x7443b83510c62a52,
        ),
        (
            SceneId::Wknd,
            "mta",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta()),
            1875,
            0x38812acfe0a9701a,
        ),
        (
            SceneId::Car,
            "mta",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta()),
            3753,
            0xf9d1f4f40c0be1e1,
        ),
        (
            SceneId::Wknd,
            "ghb",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::ghb()),
            1875,
            0x55f136e57e73ea93,
        ),
        (
            SceneId::Car,
            "ghb",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::ghb()),
            3749,
            0x5eb54e64dda9cbda,
        ),
        (
            SceneId::Wknd,
            "hash",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash()),
            1875,
            0x0463f97cb1936c5d,
        ),
        (
            SceneId::Car,
            "hash",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash()),
            3749,
            0x7e1e8998ca0d4163,
        ),
    ]
}

#[test]
fn state_digests_match_the_pinned_goldens() {
    for (scene, name, config, cycles, digest) in golden() {
        let result = bench(scene).run(&config);
        assert_eq!(result.cycles, cycles, "{scene}/{name} cycles");
        assert_eq!(
            result.state_digest, digest,
            "{scene}/{name} digest {:#018x} != pinned {digest:#018x}",
            result.state_digest
        );
    }
}

#[test]
fn idle_skip_is_bit_identical_to_the_naive_loop() {
    // The fast-forward path must be a pure wall-clock optimization:
    // turning it off reproduces the same cycles, counters, and digest.
    for (scene, name, config, cycles, digest) in golden() {
        let mut naive = config;
        naive.idle_skip = false;
        let result = bench(scene).run(&naive);
        assert_eq!(result.cycles, cycles, "{scene}/{name} cycles (no skip)");
        assert_eq!(result.state_digest, digest, "{scene}/{name} digest (no skip)");
    }
}

#[test]
fn checkpoint_resume_round_trips_over_the_dense_tables() {
    // Interrupt each golden run mid-flight via the cycle budget, resume
    // from the surviving checkpoint, and require the exact pinned final
    // digest: the snapshot codec serializes the Fx-hashed tables and the
    // pending-line cursor in canonical order, so the resumed timeline is
    // indistinguishable from the straight one.
    let dir = std::env::temp_dir().join(format!("golden-digests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (scene, name, config, cycles, digest) in golden() {
        let b = bench(scene);
        let every = (cycles / 5).max(1);
        let opts = CheckpointOptions::new(every, dir.join(format!("{scene}-{name}.rtsnap")));
        let mut truncated = config.clone();
        truncated.max_cycles = cycles * 2 / 3;
        let interrupted = SimSession::borrowed(b.bvh(), b.rays(), &truncated)
            .checkpoint(opts.clone())
            .run();
        assert!(interrupted.is_err(), "{scene}/{name} must hit the budget");
        let resumed = SimSession::borrowed(b.bvh(), b.rays(), &config)
            .checkpoint(opts)
            .resume_from_checkpoint()
            .run()
            .unwrap();
        assert_eq!(resumed.cycles, cycles, "{scene}/{name} resumed cycles");
        assert_eq!(
            resumed.state_digest, digest,
            "{scene}/{name} resumed digest"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
