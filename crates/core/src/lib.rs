//! # treelet-rt — Treelet Prefetching for Ray Tracing
//!
//! A from-scratch reproduction of *Treelet Prefetching For Ray Tracing*
//! (Chou, Nowicki, Aamodt — MICRO 2023). The paper's idea: divide the BVH
//! into small connected subtrees (*treelets*), traverse each ray's
//! current treelet to exhaustion with a two-stack algorithm, and let a
//! lightweight hardware prefetcher fetch whole treelets ahead of the
//! pointer-chasing traversal, hiding BVH memory latency.
//!
//! This crate implements the paper's contributions and its evaluation
//! apparatus:
//!
//! - [`TreeletAssignment`] — greedy breadth-first treelet formation (§3.1),
//! - [`trace_ray`] / [`TraversalAlgorithm`] — baseline DFS and the
//!   two-stack treelet traversal (§3.2, Algorithm 1),
//! - [`TreeletPrefetcher`] — the majority-voter prefetcher with the
//!   ALWAYS / POPULARITY / PARTIAL heuristics (§4.1–4.2) and the
//!   [`VoterAreaModel`] storage arithmetic (§6.5),
//! - [`SimConfig`] / [`SimSession`] — the RT-unit timing model with the
//!   Baseline / OMR / PMR schedulers (§4.3) and the BVH repacking or
//!   mapping-table options (§4.4), behind one builder front door,
//! - [`MtaPrefetcher`] — the Lee et al. stride-prefetching comparison
//!   (Fig. 8),
//! - [`Bench`] / [`Sweep`] — a scene-level harness and a parallel
//!   (scene × config) sweep grid for reproducing the paper's tables and
//!   figures.
//!
//! # Quickstart
//!
//! ```no_run
//! use rt_scene::{SceneId, Workload};
//! use treelet_rt::{Bench, SimConfig, SimSession};
//!
//! let bench = Bench::prepare(SceneId::Bunny, 0.5, Workload::paper_default());
//! let baseline = SimSession::new(bench.bvh(), bench.rays(), SimConfig::paper_baseline())
//!     .run()
//!     .expect("baseline");
//! let treelet = SimSession::new(bench.bvh(), bench.rays(), SimConfig::paper_treelet_prefetch())
//!     .run()
//!     .expect("treelet prefetch");
//! println!(
//!     "BUNNY: {:.1}% speedup",
//!     (treelet.speedup_over(&baseline) - 1.0) * 100.0
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
mod experiments;
mod ghb;
mod hashpath;
mod metrics;
mod mta;
mod power;
mod prefetch;
mod prepare;
mod prefetcher;
mod runner;
mod session;
mod sim;
mod snapshot;
mod telemetry;
mod trace_io;
mod traversal;
mod treelet;
mod workloads;

pub use config::{
    CheckpointOptions, LayoutChoice, PrefetchConfig, PrefetchDestination, SchedulerPolicy,
    ShaderProgram, SimConfig,
};
pub use error::{ConfigError, ProgressSnapshot, SimError};
pub use experiments::{geometric_mean, Bench, DEFAULT_DETAIL};
pub use ghb::{GhbPrefetcher, GhbStats};
pub use hashpath::{hash_ray_key, HashPathPrefetcher, HashPathStats};
pub use metrics::TreeletMetrics;
pub use mta::{MtaPrefetcher, MtaStats};
pub use power::{ActivityCounts, EnergyModel, PowerReport};
pub use prefetch::{
    full_vote, full_vote_counts, pseudo_vote, pseudo_vote_counts, MappingMode, PrefetchEntry,
    PrefetchHeuristic, PrefetchUsefulness, PrefetcherStats, TreeletPrefetcher, UsefulnessTracker,
    Vote, VoterAreaModel, VoterKind,
};
pub use prefetcher::{PrefetchUnitStats, Prefetcher, WarpBufferView};
pub use prepare::{decode_prepared_bench, encode_prepared_bench, prepare_cache_key, BvhCache};
// The preparation codec's error type, so callers can name
// `decode_prepared_bench`'s failures without a direct rt-gpu-sim dep.
pub use rt_gpu_sim::DecodeError;
pub use runner::{
    catch_job_panic, default_jobs, default_jobs_for, panic_message, plan_schedule,
    plan_schedule_with, run_indexed, run_scheduled, run_weighted, Schedule, Sweep, SweepOutcome,
    CHUNK_MIN_COST, INLINE_COST,
};
pub use session::SimSession;
pub use sim::SimResult;
// The legacy free functions stay exported (and deprecated) so existing
// callers keep compiling while they migrate to `SimSession`.
#[allow(deprecated)]
pub use sim::{
    simulate, simulate_batches, simulate_with_treelets, try_resume, try_simulate,
    try_simulate_batches, try_simulate_checkpointed, try_simulate_with_telemetry,
    try_simulate_with_treelets,
};
pub use snapshot::{
    first_divergence, parse_digest_log, read_checkpoint, read_digest_log, write_atomic,
    Checkpoint, DigestRecord, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use telemetry::{Telemetry, TelemetryOptions, TelemetrySample, DEFAULT_TELEMETRY_EVERY};
pub use trace_io::{read_traces, write_traces, ParseTraceError};
pub use traversal::{
    compile_trace, trace_ray, trace_ray_with, CompiledStep, RayTrace, TraceStep,
    TraversalAlgorithm, TraversalOptions, TraversalStats,
};
pub use treelet::{FormationPolicy, TreeletAssignment, DEFAULT_TREELET_BYTES};
pub use workloads::{bounce_rays, bounce_rays_indexed, direction_coherence, BounceKind};
