//! Treelet formation (paper §3.1).
//!
//! Treelets are connected subtrees of the BVH, formed greedily from the
//! root: nodes are added breadth-first to the current treelet until its
//! byte budget is exhausted; every node still waiting on the traversal
//! queue then becomes the root of a future treelet. Because formation is
//! greedy, upper-level treelets tend to be full-size — which the paper
//! exploits, since upper levels are accessed most.

use crate::error::ConfigError;
use rt_bvh::{WideBvh, NODE_SIZE_BYTES};
use std::collections::VecDeque;
use std::fmt;

/// The paper's default maximum treelet size in bytes (512 B = 8 nodes).
pub const DEFAULT_TREELET_BYTES: u64 = 512;

/// How nodes are ordered while greedily growing a treelet.
///
/// The paper forms treelets breadth-first (§3.1); its future-work section
/// (§8) suggests "optimizing treelet formation with statistical metrics".
/// The two extra policies implement that exploration:
///
/// - [`FormationPolicy::GreedyDfs`] grows depth-first, producing deeper,
///   narrower treelets (more pointer-chase coverage per treelet, fewer
///   sibling nodes),
/// - [`FormationPolicy::SurfaceArea`] grows by largest bounding-box
///   surface area first — surface area is proportional to the probability
///   a random ray intersects the node (the SAH argument), so treelets
///   preferentially absorb the nodes rays are most likely to touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FormationPolicy {
    /// Breadth-first growth — the paper's algorithm.
    #[default]
    GreedyBfs,
    /// Depth-first growth (deeper treelets).
    GreedyDfs,
    /// Largest-surface-area-first growth (SAH-weighted).
    SurfaceArea,
}

impl fmt::Display for FormationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FormationPolicy::GreedyBfs => "greedy-bfs",
            FormationPolicy::GreedyDfs => "greedy-dfs",
            FormationPolicy::SurfaceArea => "surface-area",
        })
    }
}

/// A partition of a BVH's nodes into treelets.
///
/// # Examples
///
/// ```
/// use rt_bvh::WideBvh;
/// use rt_geometry::{Triangle, Vec3};
/// use treelet_rt::TreeletAssignment;
///
/// let tris: Vec<Triangle> = (0..32)
///     .map(|i| {
///         let x = i as f32;
///         Triangle::new(
///             Vec3::new(x, 0.0, 0.0),
///             Vec3::new(x + 0.5, 0.0, 0.0),
///             Vec3::new(x, 0.5, 0.0),
///         )
///     })
///     .collect();
/// let bvh = WideBvh::build(tris);
/// let treelets = TreeletAssignment::form(&bvh, 512);
/// assert_eq!(treelets.of_node(bvh.root()), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeletAssignment {
    /// Treelet membership lists, in formation order. `treelets[g][0]` is
    /// treelet `g`'s root node; members follow in breadth-first order.
    treelets: Vec<Vec<u32>>,
    /// Treelet id of each node.
    of_node: Vec<u32>,
    /// Maximum treelet size in bytes used during formation.
    max_bytes: u64,
}

impl TreeletAssignment {
    /// Forms treelets over `bvh` with the greedy algorithm of §3.1.
    ///
    /// `max_bytes` is the treelet byte budget (the paper sweeps 256 B to
    /// 2048 B; 512 B is the default).
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is smaller than one 64-byte node.
    pub fn form(bvh: &WideBvh, max_bytes: u64) -> TreeletAssignment {
        TreeletAssignment::form_with_policy(bvh, max_bytes, FormationPolicy::GreedyBfs)
    }

    /// Forms treelets with an explicit growth [`FormationPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is smaller than one 64-byte node.
    pub fn form_with_policy(
        bvh: &WideBvh,
        max_bytes: u64,
        policy: FormationPolicy,
    ) -> TreeletAssignment {
        match TreeletAssignment::try_form_with_policy(bvh, max_bytes, policy) {
            Ok(t) => t,
            Err(_) => panic!("a treelet must fit at least one node"),
        }
    }

    /// Forms treelets with the greedy algorithm of §3.1, returning a
    /// typed error instead of panicking on an undersized budget.
    ///
    /// # Errors
    ///
    /// [`ConfigError::TreeletBudgetTooSmall`] if `max_bytes` cannot hold
    /// one 64-byte node.
    pub fn try_form(bvh: &WideBvh, max_bytes: u64) -> Result<TreeletAssignment, ConfigError> {
        TreeletAssignment::try_form_with_policy(bvh, max_bytes, FormationPolicy::GreedyBfs)
    }

    /// Forms treelets with an explicit growth [`FormationPolicy`],
    /// returning a typed error instead of panicking on an undersized
    /// budget.
    ///
    /// # Errors
    ///
    /// [`ConfigError::TreeletBudgetTooSmall`] if `max_bytes` cannot hold
    /// one 64-byte node.
    pub fn try_form_with_policy(
        bvh: &WideBvh,
        max_bytes: u64,
        policy: FormationPolicy,
    ) -> Result<TreeletAssignment, ConfigError> {
        if max_bytes < NODE_SIZE_BYTES {
            return Err(ConfigError::TreeletBudgetTooSmall { bytes: max_bytes });
        }
        let n = bvh.node_count();
        let mut of_node = vec![u32::MAX; n];
        let mut treelets: Vec<Vec<u32>> = Vec::new();
        // pendingTreelets: roots of treelets not yet formed.
        let mut pending: VecDeque<u32> = VecDeque::new();
        pending.push_back(bvh.root());
        while let Some(root) = pending.pop_front() {
            let id = treelets.len() as u32;
            let mut members = Vec::new();
            let mut remaining = max_bytes;
            // Within-treelet work list. The pop discipline is the policy:
            // BFS pops the front (upper-level nodes land at the front of
            // the treelet — the property the PARTIAL heuristic relies
            // on), DFS pops the back, SurfaceArea pops the largest node.
            let mut queue: VecDeque<u32> = VecDeque::new();
            queue.push_back(root);
            while !queue.is_empty() {
                let node = match policy {
                    FormationPolicy::GreedyBfs => queue.pop_front().expect("checked non-empty"),
                    FormationPolicy::GreedyDfs => queue.pop_back().expect("checked non-empty"),
                    FormationPolicy::SurfaceArea => {
                        let best = queue
                            .iter()
                            .enumerate()
                            .max_by(|a, b| {
                                let sa = bvh.nodes()[*a.1 as usize].aabb().surface_area();
                                let sb = bvh.nodes()[*b.1 as usize].aabb().surface_area();
                                sa.total_cmp(&sb)
                            })
                            .map(|(i, _)| i)
                            .expect("checked non-empty");
                        queue.remove(best).expect("index in range")
                    }
                };
                if remaining >= NODE_SIZE_BYTES {
                    remaining -= NODE_SIZE_BYTES;
                    of_node[node as usize] = id;
                    members.push(node);
                    for child in bvh.nodes()[node as usize].child_nodes() {
                        queue.push_back(child);
                    }
                } else {
                    // No space left: this node and everything still queued
                    // become future treelet roots.
                    pending.push_back(node);
                }
            }
            treelets.push(members);
        }
        debug_assert!(of_node.iter().all(|&t| t != u32::MAX));
        Ok(TreeletAssignment {
            treelets,
            of_node,
            max_bytes,
        })
    }

    /// Appends the assignment to `w` for the preparation-artifact
    /// codec: the byte budget plus every treelet's member list in
    /// formation order (`of_node` is derived on decode, like the BVH's
    /// SoA mirror).
    pub(crate) fn encode(&self, w: &mut rt_gpu_sim::ByteWriter) {
        w.put_u64(self.max_bytes);
        w.put_len(self.treelets.len());
        for members in &self.treelets {
            w.put_len(members.len());
            for &node in members {
                w.put_u32(node);
            }
        }
    }

    /// Reads an assignment written by [`TreeletAssignment::encode`],
    /// validating it against a tree with `node_count` nodes: every node
    /// must land in exactly one treelet and member ids must be in range,
    /// so a checksum-valid but bogus payload can never index out of
    /// bounds at simulation time.
    pub(crate) fn decode(
        r: &mut rt_gpu_sim::ByteReader<'_>,
        node_count: usize,
    ) -> Result<TreeletAssignment, rt_gpu_sim::DecodeError> {
        use rt_gpu_sim::DecodeError;
        let max_bytes = r.take_u64()?;
        if max_bytes < NODE_SIZE_BYTES {
            return Err(DecodeError::malformed(format!(
                "treelet budget {max_bytes} below one node"
            )));
        }
        let treelet_count = r.take_len(8)?;
        let mut treelets = Vec::with_capacity(treelet_count);
        let mut of_node = vec![u32::MAX; node_count];
        for id in 0..treelet_count {
            let member_count = r.take_len(4)?;
            let mut members = Vec::with_capacity(member_count);
            for _ in 0..member_count {
                let node = r.take_u32()?;
                let slot = of_node.get_mut(node as usize).ok_or_else(|| {
                    DecodeError::malformed(format!(
                        "treelet {id} member {node} outside {node_count} nodes"
                    ))
                })?;
                if *slot != u32::MAX {
                    return Err(DecodeError::malformed(format!(
                        "node {node} assigned to treelets {} and {id}",
                        *slot
                    )));
                }
                *slot = id as u32;
                members.push(node);
            }
            treelets.push(members);
        }
        if let Some(node) = of_node.iter().position(|&t| t == u32::MAX) {
            return Err(DecodeError::malformed(format!(
                "node {node} not assigned to any treelet"
            )));
        }
        Ok(TreeletAssignment {
            treelets,
            of_node,
            max_bytes,
        })
    }

    /// Number of treelets.
    pub fn count(&self) -> usize {
        self.treelets.len()
    }

    /// Treelet id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn of_node(&self, node: u32) -> u32 {
        self.of_node[node as usize]
    }

    /// Members of treelet `id`, root first, in breadth-first order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn members(&self, id: u32) -> &[u32] {
        &self.treelets[id as usize]
    }

    /// The membership lists of all treelets, indexed by treelet id.
    pub fn as_slices(&self) -> &[Vec<u32>] {
        &self.treelets
    }

    /// Byte budget treelets were formed with.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Occupied bytes of treelet `id`.
    pub fn occupied_bytes(&self, id: u32) -> u64 {
        self.treelets[id as usize].len() as u64 * NODE_SIZE_BYTES
    }

    /// Mean fraction of the byte budget that treelets actually occupy.
    pub fn mean_occupancy(&self) -> f64 {
        if self.treelets.is_empty() {
            return 0.0;
        }
        let total: u64 = (0..self.count() as u32)
            .map(|t| self.occupied_bytes(t))
            .sum();
        total as f64 / (self.max_bytes as f64 * self.count() as f64)
    }

    /// `true` if `a` and `b` are in the same treelet (the child-bit test of
    /// Algorithm 1, line 13).
    pub fn same_treelet(&self, a: u32, b: u32) -> bool {
        self.of_node(a) == self.of_node(b)
    }
}

impl fmt::Display for TreeletAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} treelets (max {} B, {:.0}% mean occupancy)",
            self.count(),
            self.max_bytes,
            self.mean_occupancy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::{Triangle, Vec3};

    fn grid_bvh(n: usize) -> WideBvh {
        let tris: Vec<Triangle> = (0..n)
            .map(|i| {
                let x = (i % 32) as f32 * 2.0;
                let z = (i / 32) as f32 * 2.0;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                )
            })
            .collect();
        WideBvh::build(tris)
    }

    #[test]
    fn every_node_is_assigned_exactly_once() {
        let bvh = grid_bvh(300);
        let a = TreeletAssignment::form(&bvh, 512);
        let mut seen = vec![false; bvh.node_count()];
        for g in 0..a.count() as u32 {
            for &m in a.members(g) {
                assert!(!seen[m as usize], "node {m} in two treelets");
                seen[m as usize] = true;
                assert_eq!(a.of_node(m), g);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn treelets_respect_byte_budget() {
        let bvh = grid_bvh(300);
        for bytes in [256u64, 512, 1024, 2048] {
            let a = TreeletAssignment::form(&bvh, bytes);
            for g in 0..a.count() as u32 {
                assert!(a.occupied_bytes(g) <= bytes);
                assert!(!a.members(g).is_empty());
            }
        }
    }

    #[test]
    fn treelets_are_connected() {
        // Every member except the treelet root must have its parent in the
        // same treelet (treelets are connected subtrees).
        let bvh = grid_bvh(300);
        let a = TreeletAssignment::form(&bvh, 512);
        let mut parent = vec![u32::MAX; bvh.node_count()];
        for (i, node) in bvh.nodes().iter().enumerate() {
            for c in node.child_nodes() {
                parent[c as usize] = i as u32;
            }
        }
        for g in 0..a.count() as u32 {
            let members = a.members(g);
            let root = members[0];
            for &m in &members[1..] {
                let p = parent[m as usize];
                assert_ne!(p, u32::MAX);
                assert_eq!(
                    a.of_node(p),
                    g,
                    "non-root member {m} of treelet {g} has parent outside (root {root})"
                );
            }
        }
    }

    #[test]
    fn root_treelet_is_zero_and_contains_bvh_root() {
        let bvh = grid_bvh(100);
        let a = TreeletAssignment::form(&bvh, 512);
        assert_eq!(a.of_node(bvh.root()), 0);
        assert_eq!(a.members(0)[0], bvh.root());
    }

    #[test]
    fn greedy_formation_fills_upper_treelets() {
        // The first-formed (upper) treelet should be at full budget for a
        // tree with plenty of nodes.
        let bvh = grid_bvh(1000);
        let a = TreeletAssignment::form(&bvh, 512);
        assert_eq!(a.occupied_bytes(0), 512);
    }

    #[test]
    fn members_are_in_breadth_first_order() {
        // The root's children must appear before any grandchild.
        let bvh = grid_bvh(1000);
        let a = TreeletAssignment::form(&bvh, 512);
        let members = a.members(0);
        let root_children: Vec<u32> = bvh.nodes()[0].child_nodes().collect();
        let pos = |n: u32| members.iter().position(|&m| m == n);
        for &c in &root_children {
            if let (Some(pc), Some(p0)) = (pos(c), pos(members[0])) {
                assert!(pc > p0);
            }
        }
        // All members at positions 1..=k (k = root child count present in
        // this treelet) are root children.
        let in_treelet_children = root_children
            .iter()
            .filter(|&&c| a.of_node(c) == 0)
            .count()
            .min(members.len() - 1);
        for &member in members.iter().take(in_treelet_children + 1).skip(1) {
            assert!(
                root_children.contains(&member),
                "member {member} is not a root child (BFS order violated)"
            );
        }
    }

    #[test]
    fn occupancy_decreases_with_budget() {
        // Counts are not monotone in the budget (a big first treelet cuts
        // a wide BFS frontier into many tiny treelets — the same effect
        // that gives the paper's ROBOT an average of ~2 nodes per 512 B
        // treelet), but mean occupancy must fall as budgets grow.
        let bvh = grid_bvh(500);
        let occupancies: Vec<f64> = [64u64, 256, 512, 1024, 2048]
            .iter()
            .map(|&b| TreeletAssignment::form(&bvh, b).mean_occupancy())
            .collect();
        for w in occupancies.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "occupancy increased with budget: {occupancies:?}"
            );
        }
        // The one-node budget is perfectly occupied.
        assert!((occupancies[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_tree_is_one_treelet() {
        let bvh = grid_bvh(1);
        let a = TreeletAssignment::form(&bvh, 512);
        assert_eq!(a.count(), 1);
        assert_eq!(a.members(0), &[0]);
        assert!((a.mean_occupancy() - 64.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_budget_one_node_per_treelet() {
        let bvh = grid_bvh(50);
        let a = TreeletAssignment::form(&bvh, 64);
        assert_eq!(a.count(), bvh.node_count());
        for g in 0..a.count() as u32 {
            assert_eq!(a.members(g).len(), 1);
        }
    }

    #[test]
    fn all_policies_produce_valid_partitions() {
        let bvh = grid_bvh(400);
        for policy in [
            FormationPolicy::GreedyBfs,
            FormationPolicy::GreedyDfs,
            FormationPolicy::SurfaceArea,
        ] {
            let a = TreeletAssignment::form_with_policy(&bvh, 512, policy);
            let mut seen = vec![false; bvh.node_count()];
            for g in 0..a.count() as u32 {
                assert!(a.occupied_bytes(g) <= 512, "{policy}: treelet over budget");
                for &m in a.members(g) {
                    assert!(!seen[m as usize], "{policy}: node {m} twice");
                    seen[m as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{policy}: nodes unassigned");
        }
    }

    #[test]
    fn dfs_policy_forms_deeper_treelets_than_bfs() {
        // Depth of a treelet = longest root-to-member path within it.
        let bvh = grid_bvh(1000);
        let mut parent = vec![u32::MAX; bvh.node_count()];
        for (i, node) in bvh.nodes().iter().enumerate() {
            for c in node.child_nodes() {
                parent[c as usize] = i as u32;
            }
        }
        let treelet_depth = |a: &TreeletAssignment| -> f64 {
            let mut total = 0usize;
            for g in 0..a.count() as u32 {
                let members = a.members(g);
                let mut deepest = 1usize;
                for &m in members {
                    let mut d = 1;
                    let mut cur = m;
                    while parent[cur as usize] != u32::MAX && a.of_node(parent[cur as usize]) == g {
                        cur = parent[cur as usize];
                        d += 1;
                    }
                    deepest = deepest.max(d);
                }
                total += deepest;
            }
            total as f64 / a.count() as f64
        };
        let bfs = TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::GreedyBfs);
        let dfs = TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::GreedyDfs);
        assert!(
            treelet_depth(&dfs) >= treelet_depth(&bfs),
            "DFS treelets should be at least as deep on average"
        );
    }

    #[test]
    fn surface_area_policy_prefers_large_nodes() {
        // The first treelet under SurfaceArea must have mean member
        // surface area >= the BFS one's (it picks the biggest nodes).
        let bvh = grid_bvh(600);
        let mean_sa = |members: &[u32]| {
            members
                .iter()
                .map(|&m| bvh.nodes()[m as usize].aabb().surface_area() as f64)
                .sum::<f64>()
                / members.len() as f64
        };
        let bfs = TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::GreedyBfs);
        let sa = TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::SurfaceArea);
        assert!(mean_sa(sa.members(0)) >= mean_sa(bfs.members(0)) * 0.99);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(FormationPolicy::GreedyBfs.to_string(), "greedy-bfs");
        assert_eq!(FormationPolicy::GreedyDfs.to_string(), "greedy-dfs");
        assert_eq!(FormationPolicy::SurfaceArea.to_string(), "surface-area");
        assert_eq!(FormationPolicy::default(), FormationPolicy::GreedyBfs);
    }

    #[test]
    fn same_treelet_helper() {
        let bvh = grid_bvh(200);
        let a = TreeletAssignment::form(&bvh, 512);
        let members = a.members(0);
        if members.len() >= 2 {
            assert!(a.same_treelet(members[0], members[1]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn budget_below_node_size_panics() {
        let bvh = grid_bvh(10);
        let _ = TreeletAssignment::form(&bvh, 32);
    }

    #[test]
    fn try_form_returns_typed_error_for_undersized_budget() {
        let bvh = grid_bvh(10);
        assert_eq!(
            TreeletAssignment::try_form(&bvh, 0).unwrap_err(),
            ConfigError::TreeletBudgetTooSmall { bytes: 0 }
        );
        assert_eq!(
            TreeletAssignment::try_form(&bvh, NODE_SIZE_BYTES - 1).unwrap_err(),
            ConfigError::TreeletBudgetTooSmall {
                bytes: NODE_SIZE_BYTES - 1
            }
        );
        let a = TreeletAssignment::try_form(&bvh, 512).expect("valid budget forms");
        assert!(a.count() > 0);
    }

    #[test]
    fn display_reports_count() {
        let bvh = grid_bvh(100);
        let a = TreeletAssignment::form(&bvh, 512);
        assert!(a.to_string().contains("treelets"));
    }
}
