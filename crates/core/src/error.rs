//! Typed simulation errors.
//!
//! Every way a simulation can refuse to run or fail to make progress is
//! enumerated here, so callers (the CLI, the `Bench` sweep harness,
//! scripted experiments) can react per cause instead of parsing panic
//! strings. The legacy [`simulate`](crate::simulate) entry points remain
//! panicking wrappers whose messages are these errors' `Display` output.

use crate::config::LayoutChoice;
use crate::prefetch::MappingMode;
use crate::snapshot::SnapshotError;
use crate::trace_io::ParseTraceError;
use rt_gpu_sim::RequestId;
use std::fmt;

/// A [`SimConfig`](crate::SimConfig) inconsistency found by
/// [`SimConfig::validate`](crate::SimConfig::validate).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// SM count, warp size, or warp-buffer size is zero.
    ZeroSizedStructure,
    /// The treelet byte budget cannot hold even one 64-byte node.
    TreeletBudgetTooSmall {
        /// The rejected budget.
        bytes: u64,
    },
    /// The prefetcher's mapping mode does not match the memory layout.
    IncompatibleMapping {
        /// Configured mapping mode.
        mapping: MappingMode,
        /// Configured memory layout.
        layout: LayoutChoice,
    },
    /// The forward-progress watchdog window is zero.
    ZeroProgressWindow,
    /// The checkpoint interval is zero.
    ZeroCheckpointInterval,
    /// The telemetry sampling interval is zero.
    ZeroTelemetryInterval,
    /// A session asked to resume without configuring checkpointing.
    ResumeWithoutCheckpoint,
    /// A batched session configured an option that only single-ray-set
    /// sessions support (`what` names it: "checkpointing", "resume").
    UnsupportedBatchOption {
        /// The unsupported option's name.
        what: &'static str,
    },
    /// A hash-path prefetcher knob is out of range (`what` says which
    /// knob and what it requires).
    InvalidHashPrefetcher {
        /// Human-readable description of the rejected knob.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSizedStructure => {
                write!(f, "SM count, warp size, and warp buffer must be nonzero")
            }
            ConfigError::TreeletBudgetTooSmall { bytes } => {
                write!(
                    f,
                    "treelet byte budget must hold at least one node (got {bytes} bytes)"
                )
            }
            ConfigError::IncompatibleMapping { mapping, layout } => {
                write!(f, "mapping mode {mapping:?} is incompatible with layout {layout}")
            }
            ConfigError::ZeroProgressWindow => {
                write!(f, "progress window must be nonzero")
            }
            ConfigError::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be nonzero")
            }
            ConfigError::ZeroTelemetryInterval => {
                write!(f, "telemetry sampling interval must be nonzero")
            }
            ConfigError::ResumeWithoutCheckpoint => {
                write!(f, "resuming requires checkpoint options")
            }
            ConfigError::UnsupportedBatchOption { what } => {
                write!(f, "batched sessions do not support {what}")
            }
            ConfigError::InvalidHashPrefetcher { what } => {
                write!(f, "hash prefetcher {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Diagnostic snapshot of the RT unit and memory hierarchy, captured when
/// the watchdog aborts a run.
///
/// Everything a post-mortem needs to tell a deadlock from a livelock from
/// a too-small cycle budget: which warp-buffer slots were occupied, which
/// memory requests were still outstanding, and how deep the queues were.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Core cycle at which the run was aborted.
    pub cycle: u64,
    /// Rays that had not yet retired.
    pub rays_remaining: usize,
    /// Occupied warp-buffer slots per SM.
    pub warp_buffer_occupancy: Vec<usize>,
    /// Memory requests in flight anywhere in the hierarchy.
    pub outstanding_requests: usize,
    /// The oldest outstanding request ids (truncated to a handful).
    pub outstanding_request_ids: Vec<RequestId>,
    /// Entries queued at the L2 partitions.
    pub l2_queue_depth: usize,
    /// Lines in flight at DRAM.
    pub dram_in_flight: usize,
    /// Treelet-prefetch queue depth per SM (empty when no prefetcher).
    pub prefetch_queue_depths: Vec<usize>,
}

impl fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} rays remaining, warp slots {:?}, \
             {} outstanding requests (ids {:?}), l2 queue {}, dram in flight {}",
            self.cycle,
            self.rays_remaining,
            self.warp_buffer_occupancy,
            self.outstanding_requests,
            self.outstanding_request_ids,
            self.l2_queue_depth,
            self.dram_in_flight,
        )?;
        if self.prefetch_queue_depths.iter().any(|&d| d > 0) {
            write!(f, ", prefetch queues {:?}", self.prefetch_queue_depths)?;
        }
        Ok(())
    }
}

/// Why a simulation could not produce a result.
///
/// Returned by [`try_simulate`](crate::try_simulate) and friends; the
/// panicking [`simulate`](crate::simulate) wrappers panic with the
/// `Display` form.
#[derive(Debug)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A required input collection was empty (`what` names it: "ray",
    /// "batch").
    EmptyInput {
        /// The empty input's name.
        what: &'static str,
    },
    /// The supplied treelet assignment does not cover the BVH's nodes.
    TreeletCoverage {
        /// Nodes in the BVH.
        nodes: usize,
        /// Nodes the assignment covers.
        assigned: usize,
    },
    /// The run exceeded the configured hard cycle budget.
    CycleLimitExceeded {
        /// The configured `max_cycles`.
        limit: u64,
        /// State at abort.
        snapshot: ProgressSnapshot,
    },
    /// The watchdog saw no ray retire and no memory response drain for a
    /// full window with no future work scheduled — a livelock.
    NoForwardProgress {
        /// The configured `progress_window`.
        window: u64,
        /// State at abort.
        snapshot: ProgressSnapshot,
    },
    /// A completed batch left the shared memory hierarchy with broken
    /// request books (typically fault injection dropping responses);
    /// running the next batch on the poisoned hierarchy would leak MSHRs
    /// and could wedge it, so the session refuses instead.
    BatchPoisoned {
        /// Zero-based index of the batch that poisoned the hierarchy.
        batch: usize,
        /// DRAM responses swallowed (requests that can never complete).
        dropped_responses: u64,
        /// Completions delivered twice — always a hierarchy bug.
        double_completions: u64,
    },
    /// A worker job panicked and the panic was contained at the job
    /// boundary instead of unwinding through the pool — one poisoned
    /// (scene, config) cell must not kill a whole sweep.
    WorkerPanicked {
        /// Zero-based index of the job that panicked.
        job: usize,
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// A trace file failed to load or parse.
    Trace(ParseTraceError),
    /// A checkpoint could not be written, read, or applied (corrupt
    /// bytes, I/O failure, or a checkpoint from different inputs).
    Snapshot(SnapshotError),
}

impl SimError {
    /// Whether re-running the same inputs could plausibly succeed.
    ///
    /// The simulator is deterministic, so genuine simulation failures
    /// (invalid configs, cycle limits, livelocks, bad traces) recur
    /// identically on a retry; only environmental failures — a panicked
    /// worker, a poisoned batch, an I/O error while checkpointing — are
    /// worth one. This is the retry policy for every supervising layer
    /// (the sweep harness, the rt-served job supervisor), kept here so
    /// they cannot drift apart.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::WorkerPanicked { .. }
                | SimError::BatchPoisoned { .. }
                | SimError::Snapshot(SnapshotError::Io { .. })
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The wording of the first three arms is load-bearing: the
        // panicking `simulate` wrappers surface these strings, and
        // long-standing callers match on the substrings.
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::EmptyInput { what } => write!(f, "need at least one {what}"),
            SimError::TreeletCoverage { nodes, assigned } => write!(
                f,
                "treelet assignment does not cover the BVH \
                 ({assigned} of {nodes} nodes assigned)"
            ),
            SimError::CycleLimitExceeded { limit, snapshot } => write!(
                f,
                "simulation exceeded {limit} cycles — deadlock? ({snapshot})"
            ),
            SimError::NoForwardProgress { window, snapshot } => write!(
                f,
                "no forward progress for {window} cycles — livelock? ({snapshot})"
            ),
            SimError::BatchPoisoned {
                batch,
                dropped_responses,
                double_completions,
            } => write!(
                f,
                "batch {batch} poisoned the shared memory hierarchy \
                 ({dropped_responses} dropped responses, \
                 {double_completions} double completions); refusing to \
                 run the next batch on corrupt state"
            ),
            SimError::WorkerPanicked { job, message } => {
                write!(f, "worker panicked on job {job}: {message}")
            }
            SimError::Trace(e) => write!(f, "{e}"),
            SimError::Snapshot(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<ParseTraceError> for SimError {
    fn from(e: ParseTraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<SnapshotError> for SimError {
    fn from(e: SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ProgressSnapshot {
        ProgressSnapshot {
            cycle: 1234,
            rays_remaining: 7,
            warp_buffer_occupancy: vec![2, 0],
            outstanding_requests: 3,
            outstanding_request_ids: vec![10, 11, 12],
            l2_queue_depth: 1,
            dram_in_flight: 0,
            prefetch_queue_depths: vec![4, 0],
        }
    }

    #[test]
    fn display_preserves_legacy_panic_substrings() {
        let config = SimError::Config(ConfigError::ZeroSizedStructure);
        assert!(config.to_string().contains("invalid simulation config"));
        assert!(SimError::EmptyInput { what: "ray" }
            .to_string()
            .contains("need at least one ray"));
        assert!(SimError::EmptyInput { what: "batch" }
            .to_string()
            .contains("need at least one batch"));
        let coverage = SimError::TreeletCoverage {
            nodes: 10,
            assigned: 4,
        };
        assert!(coverage
            .to_string()
            .contains("treelet assignment does not cover the BVH"));
    }

    #[test]
    fn watchdog_errors_carry_their_snapshots() {
        let e = SimError::NoForwardProgress {
            window: 5000,
            snapshot: snapshot(),
        };
        let text = e.to_string();
        assert!(text.contains("livelock"));
        assert!(text.contains("7 rays remaining"));
        assert!(text.contains("prefetch queues"));
        let e = SimError::CycleLimitExceeded {
            limit: 99,
            snapshot: snapshot(),
        };
        assert!(e.to_string().contains("exceeded 99 cycles"));
    }

    #[test]
    fn sources_chain_to_the_cause() {
        use std::error::Error;
        let e = SimError::from(ConfigError::ZeroProgressWindow);
        assert!(e.source().is_some());
        let e = SimError::from(ParseTraceError::Malformed {
            line: 3,
            message: "bad".into(),
        });
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_some());
        assert!(SimError::EmptyInput { what: "ray" }.source().is_none());
    }

    #[test]
    fn snapshot_errors_display_and_chain() {
        use std::error::Error;
        let e = SimError::from(SnapshotError::IdentityMismatch {
            expected: 1,
            found: 2,
        });
        assert!(e.to_string().contains("checkpoint failure"));
        assert!(e.to_string().contains("different run"));
        assert!(e.source().is_some());
        let e = SimError::from(SnapshotError::Decode(
            rt_gpu_sim::DecodeError::BadMagic,
        ));
        assert!(e.to_string().contains("invalid checkpoint"));
    }

    #[test]
    fn worker_panicked_names_the_job_and_message() {
        let e = SimError::WorkerPanicked {
            job: 3,
            message: "index out of bounds".into(),
        };
        let text = e.to_string();
        assert!(text.contains("job 3"));
        assert!(text.contains("index out of bounds"));
        use std::error::Error;
        assert!(e.source().is_none());
    }

    #[test]
    fn transience_separates_environment_from_determinism() {
        assert!(SimError::WorkerPanicked {
            job: 0,
            message: "boom".into()
        }
        .is_transient());
        assert!(SimError::BatchPoisoned {
            batch: 0,
            dropped_responses: 1,
            double_completions: 0
        }
        .is_transient());
        // Deterministic failures recur on retry: not transient.
        assert!(!SimError::EmptyInput { what: "ray" }.is_transient());
        assert!(!SimError::Config(ConfigError::ZeroProgressWindow).is_transient());
        assert!(!SimError::CycleLimitExceeded {
            limit: 1,
            snapshot: snapshot()
        }
        .is_transient());
        // A checkpoint from different inputs is a permanent mismatch; a
        // checkpoint I/O failure is the environment's fault.
        assert!(!SimError::from(SnapshotError::IdentityMismatch {
            expected: 1,
            found: 2
        })
        .is_transient());
    }

    #[test]
    fn config_error_messages_name_the_fields() {
        let e = ConfigError::TreeletBudgetTooSmall { bytes: 32 };
        assert!(e.to_string().contains("32 bytes"));
        assert!(ConfigError::ZeroProgressWindow
            .to_string()
            .contains("progress window"));
    }
}
