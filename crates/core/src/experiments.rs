//! Scene-level experiment harness: builds a scene's BVH once and runs it
//! under many simulator configurations, as the paper's evaluation does.

use crate::config::SimConfig;
use crate::session::SimSession;
use crate::sim::SimResult;
use rt_bvh::{TreeStats, WideBvh};
use rt_geometry::Ray;
use rt_scene::{Scene, SceneError, SceneId, Workload};

/// Default scene detail used by the experiment harness.
///
/// Full-paper scenes have BVHs up to 1.7 GB, far beyond what a CPU-hosted
/// cycle-level simulation can sweep; the harness builds each scene at a
/// reduced uniform detail that preserves the suite's relative scale
/// ordering (see `DESIGN.md`).
pub const DEFAULT_DETAIL: f32 = 0.5;

/// A prepared scene workload: geometry built, BVH constructed, rays
/// generated — ready to simulate under any [`SimConfig`].
///
/// # Examples
///
/// ```no_run
/// use rt_scene::{SceneId, Workload};
/// use treelet_rt::{Bench, SimConfig};
///
/// let bench = Bench::prepare(SceneId::Wknd, 0.5, Workload::paper_default());
/// let baseline = bench.run(&SimConfig::paper_baseline());
/// let treelet = bench.run(&SimConfig::paper_treelet_prefetch());
/// println!("speedup: {:.3}", treelet.speedup_over(&baseline));
/// ```
#[derive(Debug)]
pub struct Bench {
    id: SceneId,
    bvh: WideBvh,
    rays: Vec<Ray>,
}

impl Bench {
    /// Builds `scene` at `detail` and generates the `workload` rays.
    ///
    /// # Panics
    ///
    /// Panics with the [`SceneError`] message if `detail` is not finite
    /// and positive or the scaled scene would exceed the generator
    /// triangle ceiling; use [`Bench::try_prepare`] to handle those as
    /// typed errors (daemon and suite paths should).
    pub fn prepare(scene: SceneId, detail: f32, workload: Workload) -> Bench {
        match Bench::try_prepare(scene, detail, workload) {
            Ok(bench) => bench,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Bench::prepare`] with bad inputs as typed errors instead of
    /// panics.
    ///
    /// # Errors
    ///
    /// Everything [`Scene::try_build_with_detail`] can return:
    /// [`SceneError::InvalidDetail`] or [`SceneError::TooManyTriangles`].
    pub fn try_prepare(
        scene: SceneId,
        detail: f32,
        workload: Workload,
    ) -> Result<Bench, SceneError> {
        let scene_data = Scene::try_build_with_detail(scene, detail)?;
        let rays = workload.generate(&scene_data);
        let bvh = WideBvh::build(scene_data.mesh.into_triangles());
        Ok(Bench {
            id: scene,
            bvh,
            rays,
        })
    }

    /// [`Bench::try_prepare`] backed by a preparation cache: a valid
    /// cached artifact skips scene generation, ray generation, and the
    /// BVH build entirely; a miss (or any corrupt entry — self-healing)
    /// prepares from scratch and repopulates the cache. `cache = None`
    /// is exactly [`Bench::try_prepare`].
    ///
    /// The returned bench is bit-identical to an uncached preparation:
    /// the artifact stores the exact built tree and generated rays, and
    /// decode re-validates structure before trusting either.
    ///
    /// # Errors
    ///
    /// Everything [`Bench::try_prepare`] can return. Cache I/O problems
    /// are never errors — the cache degrades to a miss.
    pub fn try_prepare_cached(
        scene: SceneId,
        detail: f32,
        workload: Workload,
        cache: Option<&crate::BvhCache>,
    ) -> Result<Bench, SceneError> {
        let Some(cache) = cache else {
            return Bench::try_prepare(scene, detail, workload);
        };
        let key = crate::prepare_cache_key(scene, detail, &workload);
        if let Some(bench) = cache.load(key, scene) {
            return Ok(bench);
        }
        let bench = Bench::try_prepare(scene, detail, workload)?;
        cache.store(key, &bench);
        Ok(bench)
    }

    /// Reassembles a bench from artifact-decoded parts. The codec layer
    /// ([`decode_prepared_bench`](crate::decode_prepared_bench)) is the
    /// only caller; it has already validated the tree and rays.
    pub(crate) fn from_cached_parts(id: SceneId, bvh: WideBvh, rays: Vec<Ray>) -> Bench {
        Bench { id, bvh, rays }
    }

    /// The scene this bench was prepared from.
    pub fn scene(&self) -> SceneId {
        self.id
    }

    /// Decomposes the bench into its owned BVH and rays, for callers
    /// that manage the pieces themselves.
    pub fn into_parts(self) -> (WideBvh, Vec<Ray>) {
        (self.bvh, self.rays)
    }

    /// The prepared BVH.
    pub fn bvh(&self) -> &WideBvh {
        &self.bvh
    }

    /// The prepared rays.
    pub fn rays(&self) -> &[Ray] {
        &self.rays
    }

    /// BVH statistics (Table 2 row).
    pub fn tree_stats(&self) -> TreeStats {
        TreeStats::of(&self.bvh)
    }

    /// Estimated simulation cost of one run over this bench, in the
    /// cost-model scheduler's work units: BVH node count × ray count.
    /// Simulated cycles scale with how much tree each ray walks, and
    /// node count × rays tracks that within a detail level — good
    /// enough to decide inline-vs-chunked placement (see
    /// [`run_weighted`](crate::run_weighted); a misprediction costs
    /// balance, never correctness).
    pub fn estimated_cost(&self) -> u64 {
        (self.bvh.node_count() as u64).saturating_mul(self.rays.len().max(1) as u64)
    }

    /// A [`SimSession`] over this bench's BVH and rays — the front door
    /// for runs needing option combinations the convenience methods
    /// below don't cover.
    pub fn session(&self, config: SimConfig) -> SimSession<'_> {
        SimSession::new(&self.bvh, &self.rays, config)
    }

    /// Runs the simulation under `config`.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`](crate::SimError) message on any
    /// failure; use [`Bench::try_run`] to handle failures per cause.
    pub fn run(&self, config: &SimConfig) -> SimResult {
        match self.try_run(config) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation under `config`, returning a typed error
    /// instead of panicking on invalid configs, watchdog aborts, or
    /// uncovered BVHs.
    pub fn try_run(&self, config: &SimConfig) -> Result<SimResult, crate::SimError> {
        SimSession::borrowed(&self.bvh, &self.rays, config).run()
    }

    /// Runs under `config` while collecting a telemetry time-series
    /// sampled every `opts.every` cycles. The result — including its
    /// [`state_digest`](crate::SimResult::state_digest) — is
    /// bit-identical to [`Bench::try_run`]'s for the same config.
    ///
    /// # Errors
    ///
    /// Everything [`SimSession::run_with_telemetry`] can return.
    pub fn try_run_with_telemetry(
        &self,
        config: &SimConfig,
        opts: &crate::TelemetryOptions,
    ) -> Result<(SimResult, crate::Telemetry), crate::SimError> {
        self.session(config.clone())
            .telemetry(opts.clone())
            .run_with_telemetry()
    }

    /// Runs under `config` with crash-safe checkpointing, resuming from
    /// an existing checkpoint at `opts.path` when one is present.
    ///
    /// A checkpoint that belongs to a different run (a stale file from an
    /// earlier sweep with other inputs) or fails to decode is discarded
    /// in favor of a fresh checkpointed run, so a left-over file can
    /// never wedge a sweep.
    ///
    /// # Errors
    ///
    /// Everything a checkpointed [`SimSession::run`] can return.
    pub fn try_run_resumable(
        &self,
        config: &SimConfig,
        opts: &crate::CheckpointOptions,
    ) -> Result<SimResult, crate::SimError> {
        if opts.path.exists() {
            let resumed = self
                .session(config.clone())
                .checkpoint(opts.clone())
                .resume_from_checkpoint()
                .run();
            match resumed {
                Err(crate::SimError::Snapshot(_)) => {}
                other => return other,
            }
        }
        self.session(config.clone()).checkpoint(opts.clone()).run()
    }
}

/// Geometric mean of a set of ratios (the paper reports GMean speedups).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::WorkloadKind;

    #[test]
    fn bench_prepares_and_runs() {
        let bench = Bench::prepare(
            SceneId::Wknd,
            0.25,
            Workload::new(WorkloadKind::Primary, 8, 8),
        );
        assert_eq!(bench.scene(), SceneId::Wknd);
        assert_eq!(bench.rays().len(), 64);
        assert!(bench.tree_stats().node_count > 0);
        let result = bench.run(&SimConfig::paper_baseline());
        assert_eq!(result.rays, 64);
    }

    #[test]
    fn same_bench_reused_across_configs() {
        let bench = Bench::prepare(
            SceneId::Wknd,
            0.25,
            Workload::new(WorkloadKind::Primary, 8, 8),
        );
        let a = bench.run(&SimConfig::paper_baseline());
        let b = bench.run(&SimConfig::paper_treelet_prefetch());
        // Same functional workload: identical traversal counts for the
        // same algorithm would be equal; different algorithms may differ,
        // but ray counts and tree stats always match.
        assert_eq!(a.rays, b.rays);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn bench_telemetry_run_matches_plain_run() {
        let bench = Bench::prepare(
            SceneId::Wknd,
            0.25,
            Workload::new(WorkloadKind::Primary, 8, 8),
        );
        let config = SimConfig::paper_treelet_prefetch();
        let plain = bench.try_run(&config).unwrap();
        let (sampled, telemetry) = bench
            .try_run_with_telemetry(&config, &crate::TelemetryOptions::new(128))
            .unwrap();
        assert_eq!(plain.state_digest, sampled.state_digest);
        assert!(!telemetry.is_empty());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
