//! Ray traversal algorithms: the baseline depth-first traversal and the
//! paper's two-stack treelet-based traversal (§3.2, Algorithm 1).
//!
//! Following the paper's methodology (§5), traversal is *functionally*
//! simulated here to produce each ray's dependent sequence of memory
//! accesses; the RT-unit timing model replays those sequences.

use crate::treelet::TreeletAssignment;
use rt_bvh::{ChildHits, MemoryImage, WideBvh, WideNode};
use rt_geometry::{HitRecord, Ray};

/// Which traversal algorithm a ray executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraversalAlgorithm {
    /// Ordered depth-first traversal with one stack (the baseline).
    BaselineDfs,
    /// The paper's treelet-based traversal: nodes of the current treelet
    /// are exhausted before other treelets are visited (Algorithm 1).
    TwoStackTreelet,
}

impl std::fmt::Display for TraversalAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraversalAlgorithm::BaselineDfs => "baseline-dfs",
            TraversalAlgorithm::TwoStackTreelet => "two-stack-treelet",
        })
    }
}

/// Ablation knobs for the traversal algorithms.
///
/// The defaults are the realistic configuration (ordered near-first child
/// visits, early ray termination); each knob can be disabled to measure
/// its contribution, as `DESIGN.md` §7 calls out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalOptions {
    /// Visit intersected children nearest-first (RT cores sort children
    /// by hit distance). When disabled, children are visited in node
    /// order.
    pub ordered_children: bool,
    /// Skip stacked nodes whose entry distance exceeds the closest hit
    /// found so far. When disabled, every intersected node is visited
    /// (the closest hit is still tracked correctly).
    pub early_termination: bool,
}

impl Default for TraversalOptions {
    fn default() -> Self {
        TraversalOptions {
            ordered_children: true,
            early_termination: true,
        }
    }
}

/// One visited node in a ray's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// The visited node.
    pub node: u32,
    /// The node's treelet.
    pub treelet: u32,
    /// Triangle range `(first, count)` if the node is a leaf.
    pub tri_range: Option<(u32, u32)>,
}

/// The functional result of tracing one ray: the visited-node sequence and
/// the closest hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RayTrace {
    /// Visited nodes in order. Every step is a dependent memory access.
    pub steps: Vec<TraceStep>,
    /// The closest-hit result.
    pub hit: HitRecord,
}

impl RayTrace {
    /// Number of nodes this ray traversed (the paper's Table 3 metric).
    pub fn nodes_visited(&self) -> usize {
        self.steps.len()
    }
}

/// Traces `ray` through `bvh` with the chosen algorithm, recording every
/// node visit.
///
/// Both algorithms perform early ray termination: a stacked node whose
/// recorded entry distance exceeds the current closest hit is skipped
/// without a memory access.
pub fn trace_ray(
    bvh: &WideBvh,
    treelets: &TreeletAssignment,
    ray: &Ray,
    algorithm: TraversalAlgorithm,
) -> RayTrace {
    trace_ray_with(bvh, treelets, ray, algorithm, TraversalOptions::default())
}

/// Traces `ray` with explicit [`TraversalOptions`] (ablation knobs).
pub fn trace_ray_with(
    bvh: &WideBvh,
    treelets: &TreeletAssignment,
    ray: &Ray,
    algorithm: TraversalAlgorithm,
    options: TraversalOptions,
) -> RayTrace {
    match algorithm {
        TraversalAlgorithm::BaselineDfs => trace_dfs(bvh, treelets, ray, options),
        TraversalAlgorithm::TwoStackTreelet => trace_two_stack(bvh, treelets, ray, options),
    }
}

// One argument per piece of traversal scratch the caller owns; bundling
// them into a struct would just move the field list.
#[allow(clippy::too_many_arguments)]
fn visit(
    bvh: &WideBvh,
    treelets: &TreeletAssignment,
    ray: &mut Ray,
    hit: &mut HitRecord,
    steps: &mut Vec<TraceStep>,
    node: u32,
    options: TraversalOptions,
    children: &mut ChildHits,
) {
    // Record the node visit (this is the memory access).
    let step = match &bvh.nodes()[node as usize] {
        WideNode::Leaf { first, count, .. } => TraceStep {
            node,
            treelet: treelets.of_node(node),
            tri_range: Some((*first, *count)),
        },
        WideNode::Internal { .. } => TraceStep {
            node,
            treelet: treelets.of_node(node),
            tri_range: None,
        },
    };
    steps.push(step);

    *children = ChildHits::new();
    match &bvh.nodes()[node as usize] {
        WideNode::Internal { .. } => {
            // Batched 6-wide slab test against the SoA child bounds —
            // lane-for-lane bit-identical to the scalar per-child loop,
            // with hits appended in child-list order.
            let inv = ray.inv_direction();
            bvh.children_soa()[node as usize].intersect_into(ray, inv, children);
            if options.ordered_children {
                // Far-first, so that popping yields the nearest child.
                children.sort_far_first();
            }
        }
        WideNode::Leaf { first, count, .. } => {
            for i in *first..*first + *count {
                if let Some(t) = bvh.triangles()[i as usize].intersect(ray) {
                    if hit.update(t, i) && options.early_termination {
                        // Shrinking t_max is what culls the remaining
                        // stack (and far children) — early termination.
                        ray.t_max = t;
                    }
                }
            }
        }
    }
}

fn trace_dfs(
    bvh: &WideBvh,
    treelets: &TreeletAssignment,
    ray: &Ray,
    options: TraversalOptions,
) -> RayTrace {
    let mut ray = *ray;
    let mut hit = HitRecord::new();
    let mut steps = Vec::new();
    let inv = ray.inv_direction();
    let mut stack: Vec<(u32, f32)> = Vec::with_capacity(64);
    if let Some(t) = bvh.root_aabb().intersect(&ray, inv) {
        stack.push((bvh.root(), t));
    }
    let mut children = ChildHits::new();
    while let Some((node, entry)) = stack.pop() {
        if entry > ray.t_max {
            continue; // early ray termination: skipped without a fetch
        }
        visit(
            bvh,
            treelets,
            &mut ray,
            &mut hit,
            &mut steps,
            node,
            options,
            &mut children,
        );
        stack.extend_from_slice(children.as_slice());
    }
    // Without early termination the closest hit must still be correct.
    RayTrace { steps, hit }
}

fn trace_two_stack(
    bvh: &WideBvh,
    treelets: &TreeletAssignment,
    ray: &Ray,
    options: TraversalOptions,
) -> RayTrace {
    let mut ray = *ray;
    let mut hit = HitRecord::new();
    let mut steps = Vec::new();
    let inv = ray.inv_direction();
    let mut current: Vec<(u32, f32)> = Vec::with_capacity(16);
    let mut other: Vec<(u32, f32)> = Vec::with_capacity(64);
    if let Some(t) = bvh.root_aabb().intersect(&ray, inv) {
        current.push((bvh.root(), t));
    }
    let mut children = ChildHits::new();
    while !current.is_empty() || !other.is_empty() {
        if current.is_empty() {
            // Transfer the front of the other-treelet stack (Alg. 1, l. 5).
            // "Front" is interpreted as the pending treelet root with the
            // smallest ray-entry distance: stack entries carry their entry
            // distance anyway (for early termination), and this is the
            // only reading that keeps the node-visit overhead in the small
            // range the paper's Table 3 reports — a plain LIFO/FIFO
            // discipline descends far subtrees first after a treelet
            // drains and inflates visits by up to ~90% on dense scenes.
            let mut best = 0;
            for (i, e) in other.iter().enumerate() {
                if e.1 < other[best].1 {
                    best = i;
                }
            }
            let front = other.swap_remove(best);
            current.push(front);
        }
        let (node, entry) = current.pop().expect("current stack non-empty");
        if entry > ray.t_max {
            continue;
        }
        let node_treelet = treelets.of_node(node);
        visit(
            bvh,
            treelets,
            &mut ray,
            &mut hit,
            &mut steps,
            node,
            options,
            &mut children,
        );
        for &(child, t) in children.as_slice() {
            // Algorithm 1, line 13: the treelet child-bit test.
            if treelets.of_node(child) == node_treelet {
                current.push((child, t));
            } else {
                other.push((child, t));
            }
        }
    }
    RayTrace { steps, hit }
}

/// A trace step compiled against a memory image: the cache-line addresses
/// the step must fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStep {
    /// The visited node.
    pub node: u32,
    /// The node's treelet.
    pub treelet: u32,
    /// Cache lines this step fetches: the node record's line, plus the
    /// triangle-data lines for leaves.
    pub lines: Vec<u64>,
    /// `true` for leaf steps (they pay the primitive-test latency).
    pub is_leaf: bool,
}

/// Compiles a functional trace into per-step cache-line addresses using
/// `image` and `line_bytes`-sized lines.
///
/// # Panics
///
/// Panics if `line_bytes` is zero.
pub fn compile_trace(trace: &RayTrace, image: &MemoryImage, line_bytes: u64) -> Vec<CompiledStep> {
    assert!(line_bytes > 0, "line size must be nonzero");
    let line_of = |addr: u64| addr / line_bytes * line_bytes;
    trace
        .steps
        .iter()
        .map(|s| {
            let mut lines = vec![line_of(image.node_addr(s.node))];
            if let Some((first, count)) = s.tri_range {
                let begin = image.triangle_addr(first);
                let end = begin + count as u64 * rt_bvh::TRIANGLE_SIZE_BYTES;
                let mut addr = line_of(begin);
                while addr < end {
                    lines.push(addr);
                    addr += line_bytes;
                }
            }
            lines.dedup();
            CompiledStep {
                node: s.node,
                treelet: s.treelet,
                lines,
                is_leaf: s.tri_range.is_some(),
            }
        })
        .collect()
}

/// Per-workload node-visit statistics (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalStats {
    /// Mean nodes visited per ray.
    pub avg_nodes_per_ray: f64,
    /// Maximum nodes visited by any single ray (tail latency proxy).
    pub max_nodes_per_ray: usize,
}

impl TraversalStats {
    /// Computes visit statistics over `traces`.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn of(traces: &[RayTrace]) -> TraversalStats {
        assert!(!traces.is_empty(), "need at least one trace");
        let total: usize = traces.iter().map(RayTrace::nodes_visited).sum();
        TraversalStats {
            avg_nodes_per_ray: total as f64 / traces.len() as f64,
            max_nodes_per_ray: traces
                .iter()
                .map(RayTrace::nodes_visited)
                .max()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::{Triangle, Vec3};
    use rt_scene::{Scene, SceneId, Workload, WorkloadKind};

    fn scene_fixture() -> (WideBvh, TreeletAssignment, Vec<Ray>) {
        let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
        let rays = Workload::new(WorkloadKind::Primary, 12, 12).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        let treelets = TreeletAssignment::form(&bvh, 512);
        (bvh, treelets, rays)
    }

    #[test]
    fn both_algorithms_agree_with_reference_hits() {
        let (bvh, treelets, rays) = scene_fixture();
        for ray in &rays {
            let reference = bvh.intersect(ray);
            let dfs = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::BaselineDfs);
            let two = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::TwoStackTreelet);
            assert_eq!(dfs.hit.primitive, reference.primitive);
            assert_eq!(two.hit.primitive, reference.primitive);
            if reference.is_hit() {
                assert!((dfs.hit.t - reference.t).abs() < 1e-5);
                assert!((two.hit.t - reference.t).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn two_stack_clusters_treelet_visits() {
        // Compare treelet-switch *rates* (switches per visited node): the
        // two-stack traversal clusters accesses within treelets, so its
        // rate must not exceed the DFS rate on a scene with real treelet
        // structure. (Node counts differ slightly between the algorithms
        // due to early-termination order, hence rates, not totals.)
        let scene = rt_scene::Scene::build_with_detail(rt_scene::SceneId::Bunny, 0.3);
        let rays =
            rt_scene::Workload::new(rt_scene::WorkloadKind::Primary, 12, 12).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        let treelets = TreeletAssignment::form(&bvh, 512);
        let mut dfs_switches = 0usize;
        let mut dfs_steps = 0usize;
        let mut two_switches = 0usize;
        let mut two_steps = 0usize;
        let switches = |trace: &RayTrace| {
            trace
                .steps
                .windows(2)
                .filter(|w| w[0].treelet != w[1].treelet)
                .count()
        };
        for ray in &rays {
            let d = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::BaselineDfs);
            let t = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::TwoStackTreelet);
            dfs_switches += switches(&d);
            dfs_steps += d.nodes_visited();
            two_switches += switches(&t);
            two_steps += t.nodes_visited();
        }
        assert!(dfs_steps > 0 && two_steps > 0);
        let dfs_rate = dfs_switches as f64 / dfs_steps as f64;
        let two_rate = two_switches as f64 / two_steps as f64;
        assert!(
            two_rate <= dfs_rate,
            "two-stack switch rate {two_rate:.3} > dfs {dfs_rate:.3}"
        );
    }

    #[test]
    fn two_stack_exhausts_current_treelet_before_returning() {
        // Once the two-stack traversal leaves a treelet it never re-enters
        // it (per ray): treelet visit segments are unique.
        let (bvh, treelets, rays) = scene_fixture();
        for ray in rays.iter().take(32) {
            let trace = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::TwoStackTreelet);
            let mut seen = std::collections::HashSet::new();
            let mut last = u32::MAX;
            for s in &trace.steps {
                if s.treelet != last {
                    assert!(
                        seen.insert(s.treelet),
                        "treelet {} re-entered after leaving",
                        s.treelet
                    );
                    last = s.treelet;
                }
            }
        }
    }

    #[test]
    fn miss_rays_visit_few_or_no_nodes() {
        let (bvh, treelets, _) = scene_fixture();
        let away = Ray::new(Vec3::new(0.0, 1000.0, 0.0), Vec3::Y);
        let t = trace_ray(&bvh, &treelets, &away, TraversalAlgorithm::BaselineDfs);
        assert!(!t.hit.is_hit());
        assert_eq!(t.nodes_visited(), 0);
    }

    #[test]
    fn compiled_steps_have_node_line_first() {
        let (bvh, treelets, rays) = scene_fixture();
        let image = MemoryImage::depth_first(&bvh);
        let trace = trace_ray(&bvh, &treelets, &rays[70], TraversalAlgorithm::BaselineDfs);
        assert!(!trace.steps.is_empty());
        let compiled = compile_trace(&trace, &image, 64);
        assert_eq!(compiled.len(), trace.steps.len());
        for (c, s) in compiled.iter().zip(&trace.steps) {
            assert_eq!(c.lines[0], image.node_addr(s.node) / 64 * 64);
            assert_eq!(c.is_leaf, s.tri_range.is_some());
            if c.is_leaf {
                assert!(c.lines.len() >= 2, "leaf step must fetch triangle data");
            }
        }
    }

    #[test]
    fn compiled_leaf_lines_cover_triangle_bytes() {
        let tris: Vec<Triangle> = (0..8)
            .map(|i| {
                let x = i as f32;
                Triangle::new(
                    Vec3::new(x, 0.0, 0.0),
                    Vec3::new(x + 0.9, 0.0, 0.0),
                    Vec3::new(x, 0.9, 0.0),
                )
            })
            .collect();
        let bvh = WideBvh::build(tris);
        let treelets = TreeletAssignment::form(&bvh, 512);
        let image = MemoryImage::depth_first(&bvh);
        let ray = Ray::new(Vec3::new(0.3, 0.3, -5.0), Vec3::Z);
        let trace = trace_ray(&bvh, &treelets, &ray, TraversalAlgorithm::BaselineDfs);
        let compiled = compile_trace(&trace, &image, 64);
        let leaf = compiled
            .iter()
            .find(|c| c.is_leaf)
            .expect("ray must reach a leaf");
        // 4 triangles * 48B = 192B -> at least 3 lines of 64B + node line.
        assert!(leaf.lines.len() >= 2);
        // Lines are line-aligned and unique.
        let mut sorted = leaf.lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), leaf.lines.len());
        assert!(leaf.lines.iter().all(|l| l % 64 == 0));
    }

    #[test]
    fn traversal_stats_avg_and_max() {
        let (bvh, treelets, rays) = scene_fixture();
        let traces: Vec<RayTrace> = rays
            .iter()
            .map(|r| trace_ray(&bvh, &treelets, r, TraversalAlgorithm::BaselineDfs))
            .collect();
        let stats = TraversalStats::of(&traces);
        assert!(stats.avg_nodes_per_ray > 0.0);
        assert!(stats.max_nodes_per_ray >= stats.avg_nodes_per_ray as usize);
    }

    #[test]
    fn early_termination_reduces_visits() {
        // A ray with a very close t_max must visit fewer nodes than an
        // unbounded one.
        let (bvh, treelets, rays) = scene_fixture();
        let hit_ray = rays
            .iter()
            .find(|r| bvh.intersect(r).is_hit())
            .expect("some primary ray must hit");
        let full = trace_ray(&bvh, &treelets, hit_ray, TraversalAlgorithm::BaselineDfs);
        let mut clamped = *hit_ray;
        clamped.t_max = bvh.intersect(hit_ray).t * 1.0001;
        let bounded = trace_ray(&bvh, &treelets, &clamped, TraversalAlgorithm::BaselineDfs);
        assert!(bounded.nodes_visited() <= full.nodes_visited());
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn stats_of_empty_panics() {
        let _ = TraversalStats::of(&[]);
    }

    #[test]
    fn disabling_early_termination_visits_more_but_hits_the_same() {
        let (bvh, treelets, rays) = scene_fixture();
        let no_ert = TraversalOptions {
            early_termination: false,
            ..TraversalOptions::default()
        };
        let mut with_total = 0usize;
        let mut without_total = 0usize;
        for ray in &rays {
            let with = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::BaselineDfs);
            let without = trace_ray_with(
                &bvh,
                &treelets,
                ray,
                TraversalAlgorithm::BaselineDfs,
                no_ert,
            );
            assert_eq!(with.hit.primitive, without.hit.primitive);
            if with.hit.is_hit() {
                assert!((with.hit.t - without.hit.t).abs() < 1e-5);
            }
            with_total += with.nodes_visited();
            without_total += without.nodes_visited();
        }
        assert!(
            without_total > with_total,
            "ERT off should visit more nodes: {without_total} vs {with_total}"
        );
    }

    #[test]
    fn disabling_child_ordering_never_reduces_visits_much() {
        // Unordered traversal reaches leaves later on average, so it
        // should not beat ordered traversal by more than noise.
        let (bvh, treelets, rays) = scene_fixture();
        let unordered = TraversalOptions {
            ordered_children: false,
            ..TraversalOptions::default()
        };
        let mut ordered_total = 0usize;
        let mut unordered_total = 0usize;
        for ray in &rays {
            let a = trace_ray(&bvh, &treelets, ray, TraversalAlgorithm::BaselineDfs);
            let b = trace_ray_with(
                &bvh,
                &treelets,
                ray,
                TraversalAlgorithm::BaselineDfs,
                unordered,
            );
            assert_eq!(a.hit.primitive, b.hit.primitive);
            ordered_total += a.nodes_visited();
            unordered_total += b.nodes_visited();
        }
        assert!(unordered_total * 10 >= ordered_total * 9);
    }

    #[test]
    fn options_default_is_realistic() {
        let d = TraversalOptions::default();
        assert!(d.ordered_children);
        assert!(d.early_termination);
    }
}
