//! The RT-unit timing simulation.
//!
//! Follows the paper's methodology (§5): traversal is functionally
//! simulated to produce each ray's dependent memory-access sequence, and
//! this cycle-level model replays those sequences through the RT unit —
//! warp buffer, memory scheduler, operation units, treelet prefetcher,
//! and prefetch queue — on top of the `rt-gpu-sim` memory hierarchy.

use crate::config::{CheckpointOptions, LayoutChoice, PrefetchConfig, SchedulerPolicy, SimConfig};
use crate::error::{ProgressSnapshot, SimError};
use crate::ghb::GhbStats;
use crate::hashpath::{hash_ray_key, HashPathStats};
use crate::mta::MtaStats;
use crate::power::{ActivityCounts, EnergyModel, PowerReport};
use crate::prefetch::{MappingMode, PrefetchEntry, PrefetchUsefulness, PrefetcherStats};
use crate::prefetcher::{PrefetchUnitStats, Prefetcher, PrefetcherUnit, WarpBufferView};
use crate::session::SimSession;
use crate::snapshot::{self, Checkpoint, DigestRecord, SnapshotError};
use crate::telemetry::{Telemetry, TelemetryOptions, TelemetrySample};
use crate::traversal::{compile_trace, trace_ray_with, CompiledStep, RayTrace, TraversalStats};
use crate::treelet::TreeletAssignment;
use rt_bvh::{MemoryImage, PackOptions, TreeStats, WideBvh};
use rt_geometry::Ray;
use rt_gpu_sim::{
    fnv1a64, AccessKind, ByteReader, ByteWriter, CacheStats, CountTable, CountVec, DecodeError,
    FillOrigin, FxBuildHasher, FxHashMap, Issue, MemorySystem, PrefetchEffect, RequestId,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::Write as _;

/// Everything a simulation run measures.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total core cycles until every ray retired.
    pub cycles: u64,
    /// Rays simulated.
    pub rays: usize,
    /// Functional traversal statistics (Table 3 metrics).
    pub traversal: TraversalStats,
    /// Summed L1 counters (Fig. 12 breakdown).
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Prefetch effectiveness classification at the L1 (Fig. 20).
    pub prefetch_effect: PrefetchEffect,
    /// Prefetch effectiveness at the L2 (populated for L2-destination
    /// prefetch runs).
    pub prefetch_effect_l2: PrefetchEffect,
    /// Treelet prefetcher counters, when enabled.
    pub prefetcher: Option<PrefetcherStats>,
    /// MTA comparison prefetcher counters, when enabled.
    pub mta: Option<MtaStats>,
    /// GHB comparison prefetcher counters, when enabled.
    pub ghb: Option<GhbStats>,
    /// Hash-path predictor counters, when enabled.
    pub hash: Option<HashPathStats>,
    /// Mean latency of demand BVH-node loads, core cycles (Fig. 1b).
    pub node_load_latency: f64,
    /// 99th-percentile latency of demand BVH-node loads (tail latency).
    pub node_load_latency_p99: f64,
    /// Mean DRAM data-bus utilization (Fig. 1a).
    pub dram_utilization: f64,
    /// Per-channel DRAM access counts (Fig. 15 evidence).
    pub dram_channel_accesses: Vec<u64>,
    /// Lines moved from L2 toward L1s (Fig. 11's L2 bandwidth).
    pub l2_to_l1_lines: u64,
    /// Lines moved from DRAM into L2.
    pub dram_to_l2_lines: u64,
    /// Dynamic activity for the power model.
    pub activity: ActivityCounts,
    /// Power/energy report.
    pub power: PowerReport,
    /// BVH statistics of the scene (Table 2).
    pub tree: TreeStats,
    /// Number of treelets formed (Table 2).
    pub treelet_count: usize,
    /// Mean fraction of live lanes per warp entering the RT unit. Lanes
    /// are masked off when their ray has no traversal work (missed the
    /// scene) or died in an earlier bounce generation (shader mode).
    pub simt_efficiency: f64,
    /// Mean fraction of RT-unit warp-buffer slots occupied over the run.
    pub warp_buffer_occupancy: f64,
    /// FNV-1a digest of the engine's complete final state (warp buffer,
    /// traversal progress, caches, DRAM, prefetchers). Two runs of the
    /// same inputs are bit-identical exactly when these match — the
    /// checkpoint/resume acceptance check compares them.
    pub state_digest: u64,
}

impl SimResult {
    /// Speedup of this run relative to `baseline` (ratio of cycle counts;
    /// with fixed work this equals the paper's IPC speedup).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// L2→L1 bandwidth in bytes per core cycle (Fig. 11's metric before
    /// normalization).
    pub fn l2_bytes_per_cycle(&self, line_bytes: u64) -> f64 {
        self.l2_to_l1_lines as f64 * line_bytes as f64 / self.cycles as f64
    }
}

/// Runs the full pipeline for one scene workload: treelet formation,
/// memory layout, functional traversal, and the cycle-level RT-unit
/// simulation.
///
/// # Panics
///
/// Panics with the [`SimError`] message if [`try_simulate`] would return
/// an error. Callers that want to handle failures should use
/// [`SimSession`] directly.
#[deprecated(note = "use SimSession::new(bvh, rays, config).run()")]
pub fn simulate(bvh: &WideBvh, rays: &[Ray], config: &SimConfig) -> SimResult {
    match SimSession::borrowed(bvh, rays, config).run() {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`simulate`]: never panics on bad input or a stuck
/// run.
///
/// # Errors
///
/// - [`SimError::Config`] if the configuration fails validation,
/// - [`SimError::EmptyInput`] if `rays` is empty,
/// - [`SimError::CycleLimitExceeded`] if the run outlives
///   `config.max_cycles`,
/// - [`SimError::NoForwardProgress`] if nothing retires, drains, or is
///   scheduled for a full `config.progress_window` (a livelock, e.g.
///   under fault injection).
#[deprecated(note = "use SimSession::new(bvh, rays, config).run()")]
pub fn try_simulate(bvh: &WideBvh, rays: &[Ray], config: &SimConfig) -> Result<SimResult, SimError> {
    SimSession::borrowed(bvh, rays, config).run()
}

/// Like [`try_simulate`], but also collects a [`Telemetry`] time-series,
/// sampling the engine's counters every `opts.every` cycles (plus a
/// final sample at the retiring cycle).
///
/// Sampling is read-only — it touches nothing the state digest covers —
/// so the returned [`SimResult`] (including
/// [`state_digest`](SimResult::state_digest)) is bit-identical to
/// [`try_simulate`]'s for the same inputs.
///
/// # Errors
///
/// As [`try_simulate`], plus [`SimError::Config`] for a zero telemetry
/// sampling interval.
#[deprecated(note = "use SimSession::new(bvh, rays, config).telemetry(opts).run_with_telemetry()")]
pub fn try_simulate_with_telemetry(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    opts: &TelemetryOptions,
) -> Result<(SimResult, Telemetry), SimError> {
    SimSession::borrowed(bvh, rays, config)
        .telemetry(opts.clone())
        .run_with_telemetry()
}

/// Like [`simulate`], but with an externally supplied treelet assignment
/// — for experiments that reuse a *stale* assignment (e.g. animated
/// scenes whose BVH was refitted without re-forming treelets).
///
/// The packed-layout slot size comes from the assignment's byte budget.
///
/// # Panics
///
/// Panics with the [`SimError`] message if
/// [`try_simulate_with_treelets`] would return an error.
#[deprecated(note = "use SimSession::new(bvh, rays, config).treelets(treelets).run()")]
pub fn simulate_with_treelets(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    treelets: &TreeletAssignment,
) -> SimResult {
    match SimSession::borrowed(bvh, rays, config).treelets(treelets).run() {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`simulate_with_treelets`].
///
/// # Errors
///
/// As [`try_simulate`], plus [`SimError::TreeletCoverage`] if `treelets`
/// does not cover `bvh`'s nodes.
#[deprecated(note = "use SimSession::new(bvh, rays, config).treelets(treelets).run()")]
pub fn try_simulate_with_treelets(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    treelets: &TreeletAssignment,
) -> Result<SimResult, SimError> {
    SimSession::borrowed(bvh, rays, config).treelets(treelets).run()
}

/// Like [`try_simulate`], but writes a crash-safe checkpoint of the
/// complete simulator state every `opts.every` cycles (and, when
/// configured, appends a per-epoch state digest to `opts.digest_log`).
/// If the process dies — including `SIGKILL` — [`try_resume`] restarts
/// the run from the last checkpoint and produces a bit-identical
/// [`SimResult`].
///
/// The checkpoint file is left in place after a successful run, so a
/// sweep harness can tell a finished scene from an interrupted one by
/// its own bookkeeping and still re-verify the final digest.
///
/// # Errors
///
/// As [`try_simulate`], plus [`SimError::Config`] for a zero checkpoint
/// interval and [`SimError::Snapshot`] if a checkpoint or digest-log
/// write fails.
#[deprecated(note = "use SimSession::new(bvh, rays, config).checkpoint(opts).run()")]
pub fn try_simulate_checkpointed(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    opts: &CheckpointOptions,
) -> Result<SimResult, SimError> {
    SimSession::borrowed(bvh, rays, config)
        .checkpoint(opts.clone())
        .run()
}

/// Resumes a run interrupted mid-flight from the checkpoint at
/// `opts.path`, continuing to checkpoint on the same cadence. The inputs
/// must be the ones that produced the checkpoint — same scene, rays, and
/// configuration (`max_cycles` and `progress_window` excluded, so a run
/// that exhausted its cycle budget can resume under a larger one) — and
/// the resumed run's [`SimResult`], including its final
/// [`state_digest`](SimResult::state_digest), is bit-identical to the
/// uninterrupted run's.
///
/// # Errors
///
/// As [`try_simulate_checkpointed`], plus [`SimError::Snapshot`] when
/// the checkpoint is unreadable, corrupt, truncated, from an unsupported
/// version, or was produced by different inputs
/// ([`SnapshotError::IdentityMismatch`]).
#[deprecated(
    note = "use SimSession::new(bvh, rays, config).checkpoint(opts).resume_from_checkpoint().run()"
)]
pub fn try_resume(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    opts: &CheckpointOptions,
) -> Result<SimResult, SimError> {
    SimSession::borrowed(bvh, rays, config)
        .checkpoint(opts.clone())
        .resume_from_checkpoint()
        .run()
}

/// Digest pinning a checkpoint to its inputs: the canonicalized
/// configuration (cycle budgets zeroed — they bound the run but never
/// alter its state trajectory, and resuming an exhausted run under a
/// larger budget is the whole point), plus the BVH, ray-set, and treelet
/// shapes. The heavyweight inputs (node bounds, ray origins) are pinned
/// transitively: the serialized engine state they produce would not
/// round-trip against different geometry, and the digest check turns
/// that into an upfront typed error for the overwhelmingly common
/// mix-up — pointing a resume at the wrong scene or config.
pub(crate) fn run_identity(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    treelets: &TreeletAssignment,
) -> u64 {
    let mut canon = config.clone();
    canon.max_cycles = 0;
    canon.progress_window = 0;
    // Idle-skipping is a pure wall-clock optimization (bit-identical
    // trajectory), so a checkpoint written with it off resumes with it on.
    canon.idle_skip = true;
    let mut w = ByteWriter::new();
    w.put_bytes(format!("{canon:?}").as_bytes());
    w.put_usize(bvh.node_count());
    w.put_usize(rays.len());
    w.put_usize(treelets.count());
    fnv1a64(w.bytes())
}

/// Runs `batches` of rays sequentially through **one** memory hierarchy —
/// caches stay warm between batches, as between the bounce generations of
/// a wavefront renderer. Returns one result per batch; `cycles` is each
/// batch's own duration, while cache/DRAM counters accumulate across the
/// session (the prefetch-effectiveness classification is finalized only
/// on the last batch).
///
/// # Panics
///
/// Panics with the [`SimError`] message if [`try_simulate_batches`]
/// would return an error.
#[deprecated(note = "use SimSession::batched(bvh, batches, config).run_batches()")]
pub fn simulate_batches(bvh: &WideBvh, batches: &[Vec<Ray>], config: &SimConfig) -> Vec<SimResult> {
    match SimSession::batched_borrowed(bvh, batches, config).run_batches() {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`simulate_batches`].
///
/// # Errors
///
/// As [`try_simulate`], plus [`SimError::EmptyInput`] if `batches` is
/// empty and [`SimError::BatchPoisoned`] when a batch leaves the shared
/// hierarchy with broken request books. A failing batch aborts the
/// session; earlier batches' results are discarded.
#[deprecated(note = "use SimSession::batched(bvh, batches, config).run_batches()")]
pub fn try_simulate_batches(
    bvh: &WideBvh,
    batches: &[Vec<Ray>],
    config: &SimConfig,
) -> Result<Vec<SimResult>, SimError> {
    SimSession::batched_borrowed(bvh, batches, config).run_batches()
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run_engine(
    bvh: &WideBvh,
    rays: &[Ray],
    config: &SimConfig,
    treelets: &TreeletAssignment,
    mem: MemorySystem,
    finalize: bool,
    checkpoint: Option<&CheckpointOptions>,
    resume: Option<Checkpoint>,
    mut telemetry: Option<&mut Telemetry>,
) -> Result<(SimResult, MemorySystem), SimError> {
    config.validate()?;
    if rays.is_empty() {
        return Err(SimError::EmptyInput { what: "ray" });
    }
    let assigned = treelets.as_slices().iter().map(Vec::len).sum::<usize>();
    if bvh.node_count() != assigned {
        return Err(SimError::TreeletCoverage {
            nodes: bvh.node_count(),
            assigned,
        });
    }

    let image = match config.layout {
        LayoutChoice::DepthFirst => MemoryImage::depth_first(bvh),
        LayoutChoice::TreeletPacked { extra_stride } => MemoryImage::treelet_packed(
            bvh,
            treelets.as_slices(),
            PackOptions {
                slot_bytes: treelets.max_bytes(),
                extra_stride,
            },
        ),
        LayoutChoice::MappingTable => MemoryImage::depth_first(bvh).with_mapping_table(),
    };

    let trace_one =
        |r: &Ray| trace_ray_with(bvh, treelets, r, config.traversal, config.traversal_options);
    // Hash-predictor runs precompute each ray's prediction key (dead
    // lanes keep a placeholder; they never enter the warp buffer).
    let hash_quant = match config.prefetch {
        PrefetchConfig::Hash {
            origin_bits,
            dir_bits,
            seed,
            ..
        } => Some((origin_bits, dir_bits, seed)),
        _ => None,
    };
    let scene_bounds = bvh.root_aabb();
    let key_of = |r: &Ray| {
        let (origin_bits, dir_bits, seed) = hash_quant.expect("hash config");
        hash_ray_key(r, &scene_bounds, origin_bits, dir_bits, seed)
    };
    let mut hash_keys: Vec<u64> = match hash_quant {
        Some(_) => rays.iter().map(key_of).collect(),
        None => Vec::new(),
    };
    // Generation 0: the supplied rays. With a shader program, bounce
    // generations follow, lane-aligned (dead lanes are None).
    let mut all_traces: Vec<Option<RayTrace>> = rays.iter().map(|r| Some(trace_one(r))).collect();
    if let Some(program) = config.shader {
        let mut current: Vec<Option<Ray>> = rays.iter().copied().map(Some).collect();
        for g in 1..=program.bounces {
            current = crate::workloads::bounce_rays_indexed(
                bvh,
                &current,
                program.bounce_kind,
                program.seed.wrapping_add(g as u64),
            );
            all_traces.extend(current.iter().map(|r| r.as_ref().map(trace_one)));
            if hash_quant.is_some() {
                hash_keys.extend(current.iter().map(|r| r.as_ref().map_or(0, key_of)));
            }
        }
    }
    let live_traces: Vec<RayTrace> = all_traces.iter().flatten().cloned().collect();
    let traversal = TraversalStats::of(&live_traces);
    let line_bytes = config.mem.line_bytes;
    let compiled: Vec<Vec<CompiledStep>> = all_traces
        .iter()
        .map(|t| {
            t.as_ref()
                .map(|t| compile_trace(t, &image, line_bytes))
                .unwrap_or_default()
        })
        .collect();

    // Operation-unit activity is fixed by the functional traces.
    let mut activity = ActivityCounts::default();
    for steps in &compiled {
        for s in steps {
            if s.is_leaf {
                activity.tri_tests += (s.lines.len() as u64).saturating_sub(1).max(1);
            } else {
                activity.box_tests += rt_bvh::WIDE_ARITY as u64;
            }
        }
    }

    // Per-treelet cache lines, front (upper levels) first. With the
    // triangle-prefetch extension, leaf members' primitive lines follow
    // the node lines (so PARTIAL still prioritizes upper nodes).
    let treelet_lines: Vec<Vec<u64>> = (0..treelets.count() as u32)
        .map(|g| {
            let mut lines: Vec<u64> = treelets
                .members(g)
                .iter()
                .map(|&n| image.node_addr(n) / line_bytes * line_bytes)
                .collect();
            if config.prefetch_triangles {
                for &n in treelets.members(g) {
                    if let rt_bvh::WideNode::Leaf { first, count, .. } = &bvh.nodes()[n as usize] {
                        let begin = image.triangle_addr(*first);
                        let end = begin + *count as u64 * rt_bvh::TRIANGLE_SIZE_BYTES;
                        let mut addr = begin / line_bytes * line_bytes;
                        while addr < end {
                            lines.push(addr);
                            addr += line_bytes;
                        }
                    }
                }
            }
            let mut seen = std::collections::HashSet::new();
            lines.retain(|l| seen.insert(*l));
            lines
        })
        .collect();
    let meta_lines: Vec<u64> = (0..treelets.count() as u32)
        .map(|g| {
            image
                .mapping_entry_addr(treelets.members(g)[0])
                .unwrap_or(0)
                / line_bytes
                * line_bytes
        })
        .collect();

    let mut start_cycle = mem.cycle();
    let mut engine = Engine::new(
        config,
        &compiled,
        treelets,
        treelet_lines,
        meta_lines,
        hash_keys,
        mem,
    );
    let mut resumed_epoch = None;
    if let Some(ck) = resume {
        engine
            .restore_dynamic(&ck.payload)
            .map_err(|e| SimError::Snapshot(SnapshotError::Decode(e)))?;
        // `cycles` must measure the whole logical run, not just the
        // resumed tail, so the original start carries over.
        start_cycle = ck.start_cycle;
        resumed_epoch = Some(ck.epoch);
    }
    let mut runner = match checkpoint {
        None => None,
        Some(opts) => {
            let identity = run_identity(bvh, rays, config, treelets);
            Some(CheckpointRunner::start(
                opts,
                identity,
                start_cycle,
                resumed_epoch,
            )?)
        }
    };
    let end_cycle = engine.run(runner.as_mut(), telemetry.as_deref_mut())?;
    // A closing sample at the retiring cycle, so short runs (and the tail
    // between the last epoch and retirement) are never invisible.
    if let Some(t) = telemetry {
        if t.samples().last().is_none_or(|s| s.cycle != end_cycle) {
            let sample = engine.telemetry_sample(end_cycle);
            t.record(sample);
        }
    }
    let cycles = end_cycle - start_cycle;
    // Always-on-in-debug memory audit: every request the engine issued
    // must have been answered exactly once (fault injection legitimately
    // breaks the books by dropping responses).
    if config.mem.fault_injection.is_none() {
        let audit = engine.mem.audit();
        debug_assert!(
            audit.double_completions == 0 && audit.dropped_responses == 0,
            "memory-system audit failed: {audit:?}"
        );
    }

    let l1 = engine.mem.l1_stats_total();
    let l2 = engine.mem.l2_stats();
    let (prefetch_effect, prefetch_effect_l2) = if finalize {
        (
            engine.mem.finalize_prefetch_effect(),
            engine.mem.finalize_l2_prefetch_effect(),
        )
    } else {
        (
            engine.mem.prefetch_effect_snapshot(),
            PrefetchEffect::default(),
        )
    };
    activity.l1_accesses = l1.demand_accesses() + l1.prefetch_probes;
    activity.l2_accesses = l2.demand_accesses() + l2.prefetch_probes;
    activity.dram_accesses = engine.mem.dram().total_accesses();
    let power = EnergyModel::paper_default().evaluate(
        &activity,
        cycles,
        config.num_sms,
        config.mem.core_clock_mhz,
    );

    // One kind-tagged fold over the units, then split into the
    // per-kind result fields.
    let mut unit_stats: Option<PrefetchUnitStats> = None;
    for unit in engine.sms.iter().filter_map(|s| s.unit.as_ref()) {
        let stats = unit.unit_stats();
        match unit_stats.as_mut() {
            None => unit_stats = Some(stats),
            Some(acc) => acc.merge(&stats),
        }
    }
    let (prefetcher_stats, mta_stats, ghb_stats, hash_stats): (
        Option<PrefetcherStats>,
        Option<MtaStats>,
        Option<GhbStats>,
        Option<HashPathStats>,
    ) = match unit_stats {
        None => (None, None, None, None),
        Some(PrefetchUnitStats::Treelet(s)) => (Some(s), None, None, None),
        Some(PrefetchUnitStats::Mta(s)) => (None, Some(s), None, None),
        Some(PrefetchUnitStats::Ghb(s)) => (None, None, Some(s), None),
        Some(PrefetchUnitStats::Hash(s)) => (None, None, None, Some(s)),
    };

    let result = SimResult {
        cycles,
        rays: rays.len(),
        traversal,
        l1,
        l2,
        prefetch_effect,
        prefetch_effect_l2,
        prefetcher: prefetcher_stats,
        mta: mta_stats,
        ghb: ghb_stats,
        hash: hash_stats,
        node_load_latency: engine.mem.stats().mean_latency(AccessKind::Node),
        node_load_latency_p99: engine
            .mem
            .stats()
            .latency_histogram(AccessKind::Node)
            .map_or(0.0, |h| h.percentile(99.0)),
        dram_utilization: engine.mem.dram_utilization(),
        dram_channel_accesses: engine.mem.dram().channel_accesses(),
        l2_to_l1_lines: engine.mem.stats().l2_to_l1_lines,
        dram_to_l2_lines: engine.mem.stats().dram_to_l2_lines,
        activity,
        power,
        tree: TreeStats::of(bvh),
        treelet_count: treelets.count(),
        simt_efficiency: if engine.rt_entries == 0 {
            1.0
        } else {
            engine.rt_live_lanes as f64 / (engine.rt_entries as f64 * config.warp_size as f64)
        },
        warp_buffer_occupancy: if cycles == 0 {
            0.0
        } else {
            engine.occupancy_integral as f64
                / (cycles as f64 * (config.num_sms * config.warp_buffer_size) as f64)
        },
        state_digest: engine.state_digest(),
    };
    Ok((result, engine.mem))
}

/// One traversal step as the timing model replays it: the node's
/// treelet, whether it is a leaf, and the cache lines it fetches.
type StepData = (u32, bool, Vec<(u64, AccessKind)>);

/// A ray's replay state in the timing model.
#[derive(Debug)]
struct RayCtx {
    steps: Vec<StepData>,
    /// Per step, the treelet this ray reports to the prefetcher: the
    /// treelet it *will traverse next* (§4.1 — the prefetcher identifies
    /// "treelets that will be traversed next"). A ray entering treelet T
    /// reports T (its deeper nodes are still ahead); a ray already inside
    /// T reports the treelet it will move to after T — in hardware, the
    /// top of its other-treelet stack.
    vote: Vec<u32>,
    step: usize,
    /// Index into the current step's line list of the next line to
    /// issue. Lines issue front-to-back (the node line first); the
    /// cursor replaces the old per-step clone-and-reverse scratch
    /// vector, so the steady state allocates nothing.
    next_line: usize,
    outstanding: u32,
    /// Warp-buffer slot currently holding this ray.
    slot: usize,
}

impl RayCtx {
    fn is_done(&self) -> bool {
        self.step >= self.steps.len()
    }

    fn current_treelet(&self) -> Option<u32> {
        self.vote.get(self.step).copied()
    }

    /// The current step's not-yet-issued lines, in issue order.
    fn pending_lines(&self) -> &[(u64, AccessKind)] {
        match self.steps.get(self.step) {
            Some(step) => &step.2[self.next_line..],
            None => &[],
        }
    }
}

#[derive(Debug)]
enum ReqOwner {
    Ray(u32),
    PrefetchLine,
    /// A Strict-Wait mapping load gating treelet lines.
    PrefetchMeta(Vec<u64>),
}

#[derive(Debug)]
struct WarpSlot {
    arrival: u64,
    rays: Vec<u32>,
    active: usize,
    ready: VecDeque<u32>,
    /// Active rays' current-treelet counts (feeds the voter and PMR).
    /// At most one entry per resident ray, so a linear multiset beats a
    /// hashed map.
    counts: CountVec,
    /// Which logical warp this is (shader mode).
    warp_id: usize,
    /// Which ray generation the warp is tracing (shader mode).
    generation: u32,
}

/// A warp waiting to enter the RT unit's warp buffer.
#[derive(Debug)]
struct PendingWarp {
    ready_at: u64,
    warp_id: usize,
    generation: u32,
    rays: Vec<u32>,
}

/// Shader work occupying the SM's issue port before the warp's next
/// `traceRay` (raygen or between-bounce shading).
#[derive(Debug)]
struct ShaderJob {
    warp_id: usize,
    remaining_ops: u64,
    next_generation: u32,
}

#[derive(Debug)]
struct SmState {
    /// Warps waiting to enter the buffer.
    warp_queue: VecDeque<PendingWarp>,
    /// Shader work serialized on the SM's issue port (shader mode).
    shader_runqueue: VecDeque<ShaderJob>,
    slots: Vec<Option<WarpSlot>>,
    test_heap: BinaryHeap<Reverse<(u64, u32)>>,
    req_map: FxHashMap<RequestId, ReqOwner>,
    counts_global: CountTable,
    /// The SM's prefetcher (if any), driven through the unified
    /// [`Prefetcher`] trait.
    unit: Option<PrefetcherUnit>,
    active_rays: usize,
}

struct Engine<'a> {
    config: &'a SimConfig,
    mem: MemorySystem,
    rays: Vec<RayCtx>,
    sms: Vec<SmState>,
    treelet_lines: Vec<Vec<u64>>,
    meta_lines: Vec<u64>,
    /// Per-ray hash-predictor keys (hash configs only, else empty).
    /// Static replay data derived from the inputs, never encoded.
    hash_keys: Vec<u64>,
    /// Per-ray deduplicated node-line paths (hash configs only).
    hash_paths: Vec<Vec<u64>>,
    mapping: MappingMode,
    remaining: usize,
    /// Lane ids (generation-0 ray indices) per logical warp.
    warp_lanes: Vec<Vec<u32>>,
    /// Ray generations (1 unless a shader program adds bounces).
    generations: u32,
    /// Generation-0 lane count; generation g's ray ids are offset by
    /// `g * lanes_total`.
    lanes_total: usize,
    /// Warp-buffer entries and live lanes, for the SIMT-efficiency stat.
    rt_entries: u64,
    rt_live_lanes: u64,
    /// Currently occupied warp-buffer slots (all SMs).
    occupied_slots: usize,
    /// Sum over cycles of occupied slots, for the occupancy stat.
    occupancy_integral: u64,
    /// Set whenever the current cycle did observable work (a warp
    /// entered, a response drained, a test finished, a line issued, a
    /// shader op ran); the watchdog clears and checks it every cycle.
    progress: bool,
    /// Last cycle the watchdog saw progress (or scheduled future work).
    /// Lives on the engine — not the run loop — so checkpoints carry it
    /// and a resumed run times out at exactly the same cycle an
    /// uninterrupted one would.
    last_progress: u64,
    /// Scratch buffer swapped with the memory system's per-SM completion
    /// list each cycle (never encoded; exists only to keep the drain
    /// loop allocation-free).
    completed: Vec<RequestId>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a SimConfig,
        compiled: &[Vec<CompiledStep>],
        treelets: &TreeletAssignment,
        treelet_lines: Vec<Vec<u64>>,
        meta_lines: Vec<u64>,
        hash_keys: Vec<u64>,
        mem: MemorySystem,
    ) -> Engine<'a> {
        let rays: Vec<RayCtx> = compiled
            .iter()
            .map(|steps| {
                let step_data: Vec<StepData> = steps
                    .iter()
                    .map(|s| {
                        let lines: Vec<(u64, AccessKind)> = s
                            .lines
                            .iter()
                            .enumerate()
                            .map(|(i, &l)| {
                                (
                                    l,
                                    if i == 0 {
                                        AccessKind::Node
                                    } else {
                                        AccessKind::Triangle
                                    },
                                )
                            })
                            .collect();
                        (s.treelet, s.is_leaf, lines)
                    })
                    .collect();
                // Per-step prefetcher vote: entering steps report their
                // own treelet; interior steps report the next different
                // treelet in the trace (the ray's pending treelet).
                let n = step_data.len();
                let mut next_diff = vec![0u32; n];
                for i in (0..n).rev() {
                    next_diff[i] = if i + 1 < n {
                        if step_data[i + 1].0 != step_data[i].0 {
                            step_data[i + 1].0
                        } else {
                            next_diff[i + 1]
                        }
                    } else {
                        // A ray ending inside a treelet has no pending
                        // treelet; it keeps reporting its own.
                        step_data[i].0
                    };
                }
                let vote: Vec<u32> = (0..n)
                    .map(|i| {
                        let entering = i == 0 || step_data[i - 1].0 != step_data[i].0;
                        if entering {
                            step_data[i].0
                        } else {
                            next_diff[i]
                        }
                    })
                    .collect();
                RayCtx {
                    steps: step_data,
                    vote,
                    step: 0,
                    next_line: 0,
                    outstanding: 0,
                    slot: usize::MAX,
                }
            })
            .collect();

        let mapping = match config.prefetch {
            PrefetchConfig::Treelet { mapping, .. } => mapping,
            _ => MappingMode::Packed,
        };
        // Hash-predictor replay data: each ray's node-line path (front
        // first, consecutive duplicates removed, capped at the config's
        // line budget) is static, so it lives outside the encoded
        // dynamic state alongside the keys.
        let hash_paths: Vec<Vec<u64>> = match config.prefetch {
            PrefetchConfig::Hash { max_path_lines, .. } => compiled
                .iter()
                .map(|steps| {
                    let mut path: Vec<u64> = Vec::new();
                    for s in steps {
                        if path.len() == max_path_lines {
                            break;
                        }
                        if let Some(&line) = s.lines.first() {
                            if path.last() != Some(&line) {
                                path.push(line);
                            }
                        }
                    }
                    path
                })
                .collect(),
            _ => Vec::new(),
        };
        // Every warp this SM will ever queue is known up front (pure
        // replay queues them all in the constructor; shader mode feeds
        // them back one at a time), so size the deque once.
        let warps_per_sm = rays
            .len()
            .div_ceil(config.warp_size)
            .div_ceil(config.num_sms)
            + 1;
        let mut sms: Vec<SmState> = (0..config.num_sms)
            .map(|_| SmState {
                warp_queue: VecDeque::with_capacity(warps_per_sm),
                shader_runqueue: VecDeque::new(),
                slots: (0..config.warp_buffer_size).map(|_| None).collect(),
                test_heap: BinaryHeap::new(),
                req_map: FxHashMap::default(),
                counts_global: CountTable::with_key_capacity(treelets.count()),
                unit: PrefetcherUnit::from_config(config),
                active_rays: 0,
            })
            .collect();

        // In shader mode the ray array holds all generations
        // back-to-back; warps are formed over generation-0 lanes and
        // re-enter the RT unit once per generation.
        let generations = config.shader.map_or(1, |p| p.bounces + 1);
        let lanes_total = rays.len() / generations as usize;
        let remaining = rays.iter().filter(|r| !r.is_done()).count();

        // Chunk generation-0 lanes into warps, round-robin across SMs.
        let mut warp_lanes: Vec<Vec<u32>> = Vec::new();
        for (w, chunk) in (0..lanes_total as u32)
            .collect::<Vec<_>>()
            .chunks(config.warp_size)
            .enumerate()
        {
            let lanes: Vec<u32> = chunk.to_vec();
            let sm = w % config.num_sms;
            match config.shader {
                None => {
                    // Pure replay: warps become available after their
                    // raygen stagger.
                    let position = sms[sm].warp_queue.len() as u64;
                    sms[sm].warp_queue.push_back(PendingWarp {
                        ready_at: position * config.raygen_interval,
                        warp_id: w,
                        generation: 0,
                        rays: lanes.clone(),
                    });
                }
                Some(program) => {
                    // Shader mode: the raygen program runs on the SM's
                    // issue port first.
                    if program.raygen_ops == 0 {
                        sms[sm].warp_queue.push_back(PendingWarp {
                            ready_at: 0,
                            warp_id: w,
                            generation: 0,
                            rays: lanes.clone(),
                        });
                    } else {
                        sms[sm].shader_runqueue.push_back(ShaderJob {
                            warp_id: w,
                            remaining_ops: program.raygen_ops,
                            next_generation: 0,
                        });
                    }
                }
            }
            warp_lanes.push(lanes);
        }

        let last_progress = mem.cycle();
        Engine {
            config,
            mem,
            rays,
            sms,
            treelet_lines,
            meta_lines,
            hash_keys,
            hash_paths,
            mapping,
            remaining,
            warp_lanes,
            generations,
            lanes_total,
            rt_entries: 0,
            rt_live_lanes: 0,
            occupied_slots: 0,
            occupancy_integral: 0,
            progress: false,
            last_progress,
            completed: Vec::new(),
        }
    }

    /// Ray ids of `warp_id` at `generation`.
    fn generation_rays(&self, warp_id: usize, generation: u32) -> Vec<u32> {
        self.warp_lanes[warp_id]
            .iter()
            .map(|&lane| lane + generation * self.lanes_total as u32)
            .collect()
    }

    /// Advances the SM's shader issue port by one operation; completed
    /// jobs release their warp's next `traceRay`.
    fn run_shader_port(&mut self, sm: usize, now: u64) {
        if self.sms[sm].shader_runqueue.is_empty() {
            return;
        }
        self.progress = true;
        let state = &mut self.sms[sm];
        let Some(job) = state.shader_runqueue.front_mut() else {
            return;
        };
        job.remaining_ops -= 1;
        if job.remaining_ops == 0 {
            let job = state
                .shader_runqueue
                .pop_front()
                .expect("front checked above");
            let rays = self.generation_rays(job.warp_id, job.next_generation);
            self.sms[sm].warp_queue.push_back(PendingWarp {
                ready_at: now,
                warp_id: job.warp_id,
                generation: job.next_generation,
                rays,
            });
        }
    }

    /// Called when a warp finishes a generation in the RT unit: schedules
    /// its shading + next `traceRay` if any lane survives.
    fn warp_generation_done(&mut self, sm: usize, warp_id: usize, generation: u32) {
        let Some(program) = self.config.shader else {
            return;
        };
        let next = generation + 1;
        if next >= self.generations {
            return;
        }
        let next_rays = self.generation_rays(warp_id, next);
        let any_live = next_rays.iter().any(|&r| !self.rays[r as usize].is_done());
        if !any_live {
            return;
        }
        if program.shade_ops == 0 {
            self.sms[sm].warp_queue.push_back(PendingWarp {
                ready_at: self.mem.cycle(),
                warp_id,
                generation: next,
                rays: next_rays,
            });
        } else {
            self.sms[sm].shader_runqueue.push_back(ShaderJob {
                warp_id,
                remaining_ops: program.shade_ops,
                next_generation: next,
            });
        }
    }

    /// Advances the engine until every ray retires, watching both the
    /// hard cycle budget and forward progress. When `ckpt` is set, the
    /// complete dynamic state is checkpointed at every epoch boundary —
    /// including the one on which a budget error fires, so an exhausted
    /// run can be resumed under a larger budget. When `telem` is set, a
    /// read-only counter sample is recorded on its own epoch boundary;
    /// sampling never touches digested state, so the run's trajectory is
    /// bit-identical with telemetry on or off.
    fn run(
        &mut self,
        mut ckpt: Option<&mut CheckpointRunner>,
        mut telem: Option<&mut Telemetry>,
    ) -> Result<u64, SimError> {
        let max_cycles = self.config.max_cycles;
        let window = self.config.progress_window;
        while self.remaining > 0 {
            self.progress = false;
            for sm in 0..self.config.num_sms {
                self.step_sm(sm);
            }
            self.occupancy_integral += self.occupied_slots as u64;
            self.mem.tick();
            let now = self.mem.cycle();
            let advanced = self.progress || self.scheduled_work_pending(now);
            if advanced {
                self.last_progress = now;
            }
            if let Some(c) = ckpt.as_deref_mut() {
                if now.is_multiple_of(c.every) {
                    let payload = self.encode_dynamic();
                    c.emit(payload, now, self.remaining as u64)?;
                }
            }
            if let Some(t) = telem.as_deref_mut() {
                if now.is_multiple_of(t.every()) {
                    let sample = self.telemetry_sample(now);
                    t.record(sample);
                }
            }
            if !advanced && now - self.last_progress >= window {
                return Err(SimError::NoForwardProgress {
                    window,
                    snapshot: self.snapshot(now),
                });
            }
            if now >= max_cycles {
                return Err(SimError::CycleLimitExceeded {
                    limit: max_cycles,
                    snapshot: self.snapshot(now),
                });
            }
            if self.config.idle_skip && !self.progress {
                let ckpt_every = ckpt.as_deref().map(|c| c.every);
                let telem_every = telem.as_deref().map(|t| t.every());
                self.try_skip_idle(now, ckpt_every, telem_every);
            }
        }
        Ok(self.mem.cycle())
    }

    /// Fast-forwards the clock across a provably idle stretch.
    ///
    /// Called at observation cycle `now` of an iteration that made no
    /// progress; the next iteration's work happens at entry cycle `now`.
    /// If no unit can possibly act before some entry cycle `r > now`,
    /// every iteration in between is a no-op except for three per-cycle
    /// integrations — the occupancy integral, the watchdog's
    /// `last_progress` tracking, and the checkpoint/telemetry epoch
    /// boundaries — which are applied here in closed form (and the skip
    /// is capped so no epoch boundary, watchdog deadline, or cycle-limit
    /// observation falls inside the skipped range). The resulting
    /// trajectory is bit-identical to single-stepping.
    fn try_skip_idle(&mut self, now: u64, ckpt_every: Option<u64>, telem_every: Option<u64>) {
        // Eligibility: nothing may be able to act at entry cycle `now`.
        // Occupied slots must have drained `ready` queues — a ready ray
        // issues (or bumps cache MSHR-rejection counters on Retry, which
        // the digest covers) every cycle. Prefetcher queues must be empty
        // for the same reason.
        if !self.mem.can_skip_idle() {
            return;
        }
        for s in &self.sms {
            if !s.shader_runqueue.is_empty() {
                return;
            }
            if s.slots
                .iter()
                .flatten()
                .any(|slot| !slot.ready.is_empty())
            {
                return;
            }
            if s.unit.as_ref().is_some_and(|u| u.queue_len() > 0) {
                return;
            }
        }
        // Earliest entry cycle at which any unit can act again.
        let mut resume: Option<u64> = None;
        let mut cand = |c: u64| match resume {
            Some(r) if r <= c => {}
            _ => resume = Some(c),
        };
        if let Some(t) = self.mem.next_event_cycle() {
            // The tick at the end of entry cycle t-1 delivers the event.
            cand(t.saturating_sub(1));
        }
        for s in &self.sms {
            if let Some(&Reverse((t, _))) = s.test_heap.peek() {
                cand(t);
            }
            if let Some(w) = s.warp_queue.front() {
                // A front not yet ready enters at its ready_at; a ready
                // front with no free slot waits on ray retirement, which
                // cannot happen while idle — no candidate.
                if w.ready_at >= now {
                    cand(w.ready_at);
                }
            }
            if let Some(u) = &s.unit {
                if let Some(ready_at) = u.staged_ready_at() {
                    cand(ready_at);
                } else if !s.counts_global.is_empty() {
                    // Sampling only fires with resident rays; counts are
                    // frozen while idle.
                    if let Some(t) = u.next_decision_at() {
                        cand(t);
                    }
                }
            }
        }
        // With no candidate the state is frozen: skip straight toward the
        // watchdog deadline (or the cycle limit) and let the normal path
        // report the error.
        let mut r = resume.unwrap_or(u64::MAX);
        // Watchdog: `last_progress` advances at every observed cycle with
        // scheduled future work, so cap the skip such that the deadline
        // observation is never jumped over.
        let window = self.config.progress_window;
        let any_tests = self.sms.iter().any(|s| !s.test_heap.is_empty());
        if !any_tests {
            let max_warp_ready = self
                .sms
                .iter()
                .flat_map(|s| s.warp_queue.iter().map(|w| w.ready_at))
                .filter(|&t| t > now)
                .max();
            let deadline_base = match max_warp_ready {
                // Work stays scheduled until m; the watchdog can first
                // fire at m - 1 + window.
                Some(m) => m - 1,
                None => self.last_progress,
            };
            r = r.min(deadline_base.saturating_add(window).saturating_sub(1));
        }
        // Never jump a checkpoint/telemetry epoch boundary or the cycle
        // limit: skipped observation cycles are now+1..=r.
        if let Some(every) = ckpt_every {
            r = r.min((now / every + 1).saturating_mul(every) - 1);
        }
        if let Some(every) = telem_every {
            r = r.min((now / every + 1).saturating_mul(every) - 1);
        }
        r = r.min(self.config.max_cycles.saturating_sub(1));
        if r <= now {
            return;
        }
        self.mem.skip_idle_to(r);
        // Closed forms of the per-cycle integrations over the skipped
        // iterations (entry cycles now..r-1, observed cycles now+1..=r).
        self.occupancy_integral += self.occupied_slots as u64 * (r - now);
        if any_tests {
            // Tests pend throughout the skip (they would execute at or
            // before the resume entry cycle): every skipped observation
            // counts as scheduled work.
            self.last_progress = self.last_progress.max(r);
        } else if let Some(m) = self
            .sms
            .iter()
            .flat_map(|s| s.warp_queue.iter().map(|w| w.ready_at))
            .filter(|&t| t > now)
            .max()
        {
            // Warp arrivals pend until cycle m: observed cycles up to
            // m - 1 still count as scheduled work.
            self.last_progress = self.last_progress.max(r.min(m - 1));
        }
    }

    /// `true` when some SM holds time-scheduled future work: a pending
    /// warp whose raygen stagger has not elapsed, or an operation-unit
    /// test still counting down. Such cycles are legitimately idle (the
    /// `raygen_interval` knob can park a warp arbitrarily long), so the
    /// watchdog must not treat them as a stall.
    fn scheduled_work_pending(&self, now: u64) -> bool {
        self.sms.iter().any(|s| {
            !s.test_heap.is_empty() || s.warp_queue.iter().any(|w| w.ready_at > now)
        })
    }

    /// Captures the diagnostic state the watchdog errors report.
    fn snapshot(&self, now: u64) -> ProgressSnapshot {
        let mut ids = self.mem.outstanding_request_ids();
        ids.truncate(8);
        ProgressSnapshot {
            cycle: now,
            rays_remaining: self.remaining,
            warp_buffer_occupancy: self
                .sms
                .iter()
                .map(|s| s.slots.iter().filter(|slot| slot.is_some()).count())
                .collect(),
            outstanding_requests: self.mem.outstanding_requests(),
            outstanding_request_ids: ids,
            l2_queue_depth: self.mem.l2_queue_depth(),
            dram_in_flight: self.mem.dram().in_flight(),
            prefetch_queue_depths: self
                .sms
                .iter()
                .map(|s| s.unit.as_ref().map_or(0, Prefetcher::queue_len))
                .collect(),
        }
    }

    /// Builds one telemetry epoch from read-only accessors. Nothing here
    /// may mutate the engine or memory system: the zero-perturbation
    /// guarantee (bit-identical state digests with telemetry on or off)
    /// rests on this method taking `&self`.
    fn telemetry_sample(&self, now: u64) -> TelemetrySample {
        let l1 = self.mem.l1_stats_total();
        let l2 = self.mem.l2_stats();
        let usefulness = PrefetchUsefulness::from_effect(&self.mem.prefetch_effect_snapshot());
        let stats = self.mem.stats();
        let dram = self.mem.dram();
        let accesses = dram.channel_accesses();
        let line_bytes = self.config.mem.line_bytes;
        TelemetrySample {
            cycle: now,
            rays_remaining: self.remaining as u64,
            warp_buffer_occupancy: self.occupied_slots,
            warp_queue_depth: self.sms.iter().map(|s| s.warp_queue.len()).sum(),
            test_heap_depth: self.sms.iter().map(|s| s.test_heap.len()).sum(),
            prefetch_queue_depth: self
                .sms
                .iter()
                .map(|s| s.unit.as_ref().map_or(0, Prefetcher::queue_len))
                .sum(),
            outstanding_requests: self.mem.outstanding_requests(),
            l1_hit_rate: l1.demand_hit_rate(),
            l1_mshrs_in_use: self.mem.l1_mshrs_in_use(),
            l1_mshr_rejections: l1.mshr_rejections,
            l2_hit_rate: l2.demand_hit_rate(),
            l2_mshrs_in_use: self.mem.l2_mshrs_in_use(),
            l2_queue_depth: self.mem.l2_queue_depth(),
            l2_to_l1_lines: stats.l2_to_l1_lines,
            dram_to_l2_lines: stats.dram_to_l2_lines,
            prefetch_useful: usefulness.useful,
            prefetch_late: usefulness.late,
            prefetch_useless: usefulness.useless,
            dram_channel_queue: dram.channel_in_flight(),
            dram_channel_bytes: accesses.iter().map(|&a| a * line_bytes).collect(),
            dram_channel_accesses: accesses,
        }
    }

    fn step_sm(&mut self, sm: usize) {
        let now = self.mem.cycle();
        self.run_shader_port(sm, now);
        self.fill_warp_buffer(sm, now);
        self.drain_completions(sm, now);
        self.finish_tests(sm, now);
        let issued_demand = self.schedule_demand(sm, now);
        if issued_demand {
            self.progress = true;
        }
        self.run_prefetcher(sm, now, issued_demand);
    }

    fn fill_warp_buffer(&mut self, sm: usize, now: u64) {
        let state = &mut self.sms[sm];
        for slot_idx in 0..state.slots.len() {
            if state.slots[slot_idx].is_some() {
                continue;
            }
            // The next warp enters only after its raygen shader issued.
            let ready = state.warp_queue.front().is_some_and(|w| w.ready_at <= now);
            if !ready {
                break;
            }
            let Some(pending) = state.warp_queue.pop_front() else {
                break;
            };
            self.progress = true;
            let lanes = pending.rays.len();
            let mut slot = WarpSlot {
                arrival: now,
                rays: pending.rays,
                active: 0,
                ready: VecDeque::with_capacity(lanes),
                counts: CountVec::with_capacity(4),
                warp_id: pending.warp_id,
                generation: pending.generation,
            };
            for &r in &slot.rays {
                let ray = &mut self.rays[r as usize];
                ray.slot = slot_idx;
                if ray.is_done() {
                    continue;
                }
                slot.active += 1;
                state.active_rays += 1;
                slot.ready.push_back(r);
                if let Some(t) = ray.current_treelet() {
                    slot.counts.increment(t);
                    state.counts_global.increment(t);
                }
                if !self.hash_keys.is_empty() {
                    if let Some(unit) = state.unit.as_mut() {
                        unit.observe_ray_enter(self.hash_keys[r as usize]);
                    }
                }
            }
            if slot.active > 0 {
                self.rt_entries += 1;
                self.rt_live_lanes += slot.active as u64;
                self.occupied_slots += 1;
                state.slots[slot_idx] = Some(slot);
            } else {
                // Every lane already dead (e.g. all rays missed the root):
                // the warp skips the RT unit; its next generation, if any,
                // is dead too, so nothing to schedule.
            }
        }
    }

    fn drain_completions(&mut self, sm: usize, now: u64) {
        // Swap the SM's completion list into the engine's scratch buffer
        // (the two Vecs ping-pong between the engine and the memory
        // system, so the steady state allocates nothing).
        let mut completed = std::mem::take(&mut self.completed);
        self.mem.drain_completed_into(sm, &mut completed);
        for &req in &completed {
            self.progress = true;
            let Some(owner) = self.sms[sm].req_map.remove(&req) else {
                continue;
            };
            match owner {
                ReqOwner::Ray(r) => {
                    let ray = &mut self.rays[r as usize];
                    ray.outstanding -= 1;
                    if ray.outstanding == 0 && !ray.is_done() && ray.pending_lines().is_empty() {
                        let is_leaf = ray.steps[ray.step].1;
                        let latency = if is_leaf {
                            self.config.tri_test_latency
                        } else {
                            self.config.node_test_latency
                        };
                        self.sms[sm].test_heap.push(Reverse((now + latency, r)));
                    }
                }
                ReqOwner::PrefetchLine => {}
                ReqOwner::PrefetchMeta(gated) => {
                    if let Some(unit) = self.sms[sm].unit.as_mut() {
                        unit.release_gated(gated);
                    }
                }
            }
        }
        self.completed = completed;
    }

    fn finish_tests(&mut self, sm: usize, now: u64) {
        while let Some(&Reverse((t, r))) = self.sms[sm].test_heap.peek() {
            if t > now {
                break;
            }
            self.sms[sm].test_heap.pop();
            self.advance_ray(sm, r);
        }
    }

    fn advance_ray(&mut self, sm: usize, r: u32) {
        self.progress = true;
        let ray = &mut self.rays[r as usize];
        let old_treelet = ray.current_treelet();
        ray.step += 1;
        let state = &mut self.sms[sm];
        let slot_idx = ray.slot;
        let slot = state.slots[slot_idx]
            .as_mut()
            .expect("ray's warp slot must be occupied");
        if ray.is_done() {
            if let Some(t) = old_treelet {
                slot.counts.decrement(t);
                state.counts_global.decrement(t);
            }
            slot.active -= 1;
            state.active_rays -= 1;
            self.remaining -= 1;
            if !self.hash_paths.is_empty() {
                if let Some(unit) = state.unit.as_mut() {
                    unit.observe_ray_retire(self.hash_keys[r as usize], &self.hash_paths[r as usize]);
                }
            }
            if slot.active == 0 {
                let (warp_id, generation) = (slot.warp_id, slot.generation);
                state.slots[slot_idx] = None; // warp cleared from the buffer
                self.occupied_slots -= 1;
                self.warp_generation_done(sm, warp_id, generation);
            }
        } else {
            let new_treelet = ray.current_treelet();
            if old_treelet != new_treelet {
                if let Some(t) = old_treelet {
                    slot.counts.decrement(t);
                    state.counts_global.decrement(t);
                }
                if let Some(t) = new_treelet {
                    slot.counts.increment(t);
                    state.counts_global.increment(t);
                }
            }
            ray.next_line = 0;
            slot.ready.push_back(r);
        }
    }

    /// Picks a warp per the scheduling policy and issues one line.
    /// Returns `true` if the memory scheduler was busy with demand work.
    fn schedule_demand(&mut self, sm: usize, now: u64) -> bool {
        let slot_idx = {
            let state = &self.sms[sm];
            let last_prefetched = state.unit.as_ref().and_then(|u| u.last_prefetched_treelet());
            let candidates = state
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
                .filter(|(_, s)| !s.ready.is_empty());
            match (self.config.scheduler, last_prefetched) {
                (SchedulerPolicy::Baseline, _) | (_, None) => {
                    candidates.min_by_key(|(_, s)| s.arrival).map(|(i, _)| i)
                }
                (SchedulerPolicy::OldestMatchingRay, Some(t)) => {
                    let mut matching: Vec<(usize, u64)> = Vec::new();
                    let mut all: Vec<(usize, u64)> = Vec::new();
                    for (i, s) in candidates {
                        all.push((i, s.arrival));
                        if s.counts.get(t) > 0 {
                            matching.push((i, s.arrival));
                        }
                    }
                    matching
                        .into_iter()
                        .min_by_key(|&(_, a)| a)
                        .or_else(|| all.into_iter().min_by_key(|&(_, a)| a))
                        .map(|(i, _)| i)
                }
                (SchedulerPolicy::PrioritizeMostRays, Some(t)) => candidates
                    .max_by_key(|(_, s)| (s.counts.get(t), Reverse(s.arrival)))
                    .map(|(i, _)| i),
            }
        };
        let Some(slot_idx) = slot_idx else {
            return false;
        };

        // Issue up to `issue_width` lines from the selected warp this
        // cycle (the RT unit processes one warp buffer entry per cycle
        // and pushes its requests into the L1 access queue).
        let state = &mut self.sms[sm];
        let slot = state.slots[slot_idx]
            .as_mut()
            .expect("candidate slot occupied");
        let mut issued = 0usize;
        while issued < self.config.issue_width {
            let Some(&r) = slot.ready.front() else {
                break;
            };
            let ray = &mut self.rays[r as usize];
            let step_lines = ray.steps[ray.step].2.len();
            let (line, kind) = ray.steps[ray.step].2[ray.next_line];
            let issue = self.mem.access(sm, line, FillOrigin::Demand, kind);
            match issue {
                Issue::Hit(req) | Issue::Pending(req) => {
                    issued += 1;
                    ray.outstanding += 1;
                    ray.next_line += 1;
                    state.req_map.insert(req, ReqOwner::Ray(r));
                    if let Some(unit) = state.unit.as_mut() {
                        // Each unit filters the stream itself: MTA takes
                        // every demand load, the GHB only misses.
                        unit.observe_demand(slot_idx as u32, line, matches!(issue, Issue::Pending(_)));
                    }
                    if ray.next_line == step_lines {
                        slot.ready.pop_front();
                    }
                }
                Issue::Retry => {
                    break; // L1 MSHRs exhausted: stall the scheduler
                }
                Issue::PrefetchDropped => unreachable!("demand loads are never dropped"),
            }
        }
        let _ = now;
        issued > 0
    }

    fn run_prefetcher(&mut self, sm: usize, now: u64, issued_demand: bool) {
        // Unified prefetcher step: let the unit observe the warp buffer
        // and decide (the treelet voter samples/votes here, §4.1), then
        // drain one queued entry when the memory scheduler is idle.
        let treelet_lines = &self.treelet_lines;
        let meta_lines = &self.meta_lines;
        let mapping = self.mapping;
        let state = &mut self.sms[sm];
        let Some(unit) = state.unit.as_mut() else {
            return;
        };
        {
            let lines = |t: u32| treelet_lines[t as usize].as_slice();
            let meta = |t: u32| meta_lines[t as usize];
            let slots = &state.slots;
            let per_warp = |f: &mut dyn FnMut(&CountVec)| {
                for s in slots.iter().flatten() {
                    f(&s.counts);
                }
            };
            let view = WarpBufferView::new(
                mapping,
                state.active_rays as u32,
                &state.counts_global,
                &per_warp,
                &lines,
                &meta,
            );
            unit.decide(now, &view);
        }
        if issued_demand {
            return;
        }
        let Some(entry) = unit.pop_entry() else {
            return;
        };
        match entry {
            PrefetchEntry::Line(addr) => {
                let issue = match self.config.prefetch_destination {
                    crate::PrefetchDestination::L1 => {
                        self.mem
                            .access(sm, addr, FillOrigin::Prefetch, AccessKind::Prefetch)
                    }
                    crate::PrefetchDestination::L2 => self.mem.prefetch_l2(addr),
                };
                match issue {
                    Issue::Pending(req) | Issue::Hit(req) => {
                        state.req_map.insert(req, ReqOwner::PrefetchLine);
                    }
                    Issue::PrefetchDropped | Issue::Retry => {}
                }
            }
            PrefetchEntry::Meta { addr, gated_lines } => {
                match self
                    .mem
                    .access(sm, addr, FillOrigin::Prefetch, AccessKind::Meta)
                {
                    Issue::Pending(req) | Issue::Hit(req) => {
                        state.req_map.insert(req, ReqOwner::PrefetchMeta(gated_lines));
                    }
                    Issue::PrefetchDropped => {
                        // Mapping entry already cached: the gated lines
                        // release immediately.
                        unit.release_gated(gated_lines);
                    }
                    Issue::Retry => {}
                }
            }
        }
    }

    /// Serializes the engine's complete dynamic state — everything not
    /// deterministically recomputed from (bvh, rays, config) by
    /// [`Engine::new`] — into canonical bytes. Unordered containers are
    /// sorted by key so one architectural state always yields one byte
    /// sequence; ordered containers (queues, per-slot vectors, each
    /// ray's pending lines) are encoded verbatim because their order is
    /// architecturally significant. The FNV-1a digest of this encoding
    /// is therefore a state digest, and the encoding doubles as the
    /// checkpoint payload — a single code path keeps digests and
    /// checkpoints consistent by construction.
    fn encode_dynamic(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.remaining);
        w.put_u64(self.rt_entries);
        w.put_u64(self.rt_live_lanes);
        w.put_usize(self.occupied_slots);
        w.put_u64(self.occupancy_integral);
        w.put_u64(self.last_progress);
        w.put_len(self.rays.len());
        for ray in &self.rays {
            w.put_usize(ray.step);
            // The cursor encodes as the not-yet-issued suffix in reverse,
            // byte-identical to the pop-from-back scratch list it replaced.
            let pending = ray.pending_lines();
            w.put_len(pending.len());
            for &(line, kind) in pending.iter().rev() {
                w.put_u64(line);
                w.put_u8(kind.tag());
            }
            w.put_u32(ray.outstanding);
            w.put_usize(ray.slot);
        }
        w.put_len(self.sms.len());
        for sm in &self.sms {
            encode_sm_state(sm, &mut w);
        }
        self.mem.encode_state(&mut w);
        w.into_bytes()
    }

    /// FNV-1a digest of [`Engine::encode_dynamic`]'s bytes.
    fn state_digest(&self) -> u64 {
        fnv1a64(&self.encode_dynamic())
    }

    /// Overwrites this freshly constructed engine's dynamic state with a
    /// checkpoint payload. The static state (compiled traces, treelet
    /// line sets, warp→lane mapping) was already rebuilt by
    /// [`Engine::new`] from the same inputs — the caller has verified
    /// the identity digest — so only the dynamic fields are applied.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`]s for truncation, trailing bytes, or values
    /// inconsistent with the rebuilt static state (ray or SM counts,
    /// step indices past the end of a trace, prefetcher presence not
    /// matching the configuration).
    fn restore_dynamic(&mut self, payload: &[u8]) -> Result<(), DecodeError> {
        let mut r = ByteReader::new(payload);
        self.remaining = r.take_usize()?;
        self.rt_entries = r.take_u64()?;
        self.rt_live_lanes = r.take_u64()?;
        self.occupied_slots = r.take_usize()?;
        self.occupancy_integral = r.take_u64()?;
        self.last_progress = r.take_u64()?;
        let n = r.take_len(1)?;
        if n != self.rays.len() {
            return Err(DecodeError::malformed(format!(
                "checkpoint holds {n} rays, this run traces {}",
                self.rays.len()
            )));
        }
        for ray in &mut self.rays {
            ray.step = r.take_usize()?;
            if ray.step > ray.steps.len() {
                return Err(DecodeError::malformed(format!(
                    "ray step {} past the end of its {}-step trace",
                    ray.step,
                    ray.steps.len()
                )));
            }
            let k = r.take_len(9)?;
            let lines: &[(u64, AccessKind)] = match ray.steps.get(ray.step) {
                Some(step) => &step.2,
                None => &[],
            };
            if k > lines.len() {
                return Err(DecodeError::malformed(format!(
                    "ray has {k} pending lines, its current step holds {}",
                    lines.len()
                )));
            }
            ray.next_line = lines.len() - k;
            // The payload lists the pending suffix back-to-front; each
            // entry must match the trace rebuilt from the same inputs.
            for i in 0..k {
                let line = r.take_u64()?;
                let kind = AccessKind::from_tag(r.take_u8()?)?;
                if (line, kind) != lines[lines.len() - 1 - i] {
                    return Err(DecodeError::malformed(format!(
                        "pending line {line:#x} disagrees with the rebuilt trace"
                    )));
                }
            }
            ray.outstanding = r.take_u32()?;
            ray.slot = r.take_usize()?;
        }
        let n = r.take_len(1)?;
        if n != self.sms.len() {
            return Err(DecodeError::malformed(format!(
                "checkpoint holds {n} SMs, this run has {}",
                self.sms.len()
            )));
        }
        let num_rays = self.rays.len();
        for sm in &mut self.sms {
            restore_sm_state(sm, &mut r, num_rays)?;
        }
        self.mem = MemorySystem::decode_state(&mut r, self.config.mem, self.config.num_sms)?;
        r.expect_end()?;
        Ok(())
    }
}

/// Serializes one SM's dynamic state (see [`Engine::encode_dynamic`] for
/// the ordering rules).
fn encode_sm_state(sm: &SmState, w: &mut ByteWriter) {
    w.put_len(sm.warp_queue.len());
    for pending in &sm.warp_queue {
        w.put_u64(pending.ready_at);
        w.put_usize(pending.warp_id);
        w.put_u32(pending.generation);
        w.put_len(pending.rays.len());
        for &r in &pending.rays {
            w.put_u32(r);
        }
    }
    w.put_len(sm.shader_runqueue.len());
    for job in &sm.shader_runqueue {
        w.put_usize(job.warp_id);
        w.put_u64(job.remaining_ops);
        w.put_u32(job.next_generation);
    }
    w.put_len(sm.slots.len());
    for slot in &sm.slots {
        match slot {
            None => w.put_bool(false),
            Some(s) => {
                w.put_bool(true);
                w.put_u64(s.arrival);
                w.put_len(s.rays.len());
                for &r in &s.rays {
                    w.put_u32(r);
                }
                w.put_usize(s.active);
                w.put_len(s.ready.len());
                for &r in &s.ready {
                    w.put_u32(r);
                }
                encode_counts_vec(&s.counts, w);
                w.put_usize(s.warp_id);
                w.put_u32(s.generation);
            }
        }
    }
    // Heap entries are unique (a ray finishes one test at a time), so a
    // sorted list reconstructs pop order exactly.
    let mut tests: Vec<(u64, u32)> = sm.test_heap.iter().map(|Reverse(p)| *p).collect();
    tests.sort_unstable();
    w.put_len(tests.len());
    for (t, ray) in tests {
        w.put_u64(t);
        w.put_u32(ray);
    }
    let mut reqs: Vec<(RequestId, &ReqOwner)> = sm.req_map.iter().map(|(&k, v)| (k, v)).collect();
    reqs.sort_unstable_by_key(|&(k, _)| k);
    w.put_len(reqs.len());
    for (req, owner) in reqs {
        w.put_u64(req);
        match owner {
            ReqOwner::Ray(r) => {
                w.put_u8(0);
                w.put_u32(*r);
            }
            ReqOwner::PrefetchLine => w.put_u8(1),
            ReqOwner::PrefetchMeta(gated) => {
                w.put_u8(2);
                w.put_len(gated.len());
                for &line in gated {
                    w.put_u64(line);
                }
            }
        }
    }
    encode_counts(&sm.counts_global, w);
    // The legacy layout writes three presence flags (treelet, MTA, GHB)
    // so pre-existing digests stay bit-identical; the hash predictor is
    // an additive fourth section present only in hash configurations.
    match &sm.unit {
        None => {
            w.put_bool(false);
            w.put_bool(false);
            w.put_bool(false);
        }
        Some(PrefetcherUnit::Treelet(p)) => {
            w.put_bool(true);
            p.encode_state(w);
            w.put_bool(false);
            w.put_bool(false);
        }
        Some(PrefetcherUnit::Mta(m)) => {
            w.put_bool(false);
            w.put_bool(true);
            m.encode_state(w);
            w.put_bool(false);
        }
        Some(PrefetcherUnit::Ghb(g)) => {
            w.put_bool(false);
            w.put_bool(false);
            w.put_bool(true);
            g.encode_state(w);
        }
        Some(PrefetcherUnit::Hash(h)) => {
            w.put_bool(false);
            w.put_bool(false);
            w.put_bool(false);
            w.put_bool(true);
            h.encode_state(w);
        }
    }
    w.put_usize(sm.active_rays);
}

/// Restores one SM's dynamic state in place.
fn restore_sm_state(
    sm: &mut SmState,
    r: &mut ByteReader<'_>,
    num_rays: usize,
) -> Result<(), DecodeError> {
    let n = r.take_len(20)?;
    sm.warp_queue = VecDeque::with_capacity(n);
    for _ in 0..n {
        let ready_at = r.take_u64()?;
        let warp_id = r.take_usize()?;
        let generation = r.take_u32()?;
        let k = r.take_len(4)?;
        let mut rays = Vec::with_capacity(k);
        for _ in 0..k {
            rays.push(r.take_u32()?);
        }
        sm.warp_queue.push_back(PendingWarp {
            ready_at,
            warp_id,
            generation,
            rays,
        });
    }
    let n = r.take_len(20)?;
    sm.shader_runqueue = VecDeque::with_capacity(n);
    for _ in 0..n {
        sm.shader_runqueue.push_back(ShaderJob {
            warp_id: r.take_usize()?,
            remaining_ops: r.take_u64()?,
            next_generation: r.take_u32()?,
        });
    }
    let n = r.take_len(1)?;
    if n != sm.slots.len() {
        return Err(DecodeError::malformed(format!(
            "checkpoint holds {n} warp-buffer slots, the configuration has {}",
            sm.slots.len()
        )));
    }
    for slot in &mut sm.slots {
        *slot = if r.take_bool()? {
            let arrival = r.take_u64()?;
            let k = r.take_len(4)?;
            let mut rays = Vec::with_capacity(k);
            for _ in 0..k {
                rays.push(r.take_u32()?);
            }
            let active = r.take_usize()?;
            let k = r.take_len(4)?;
            let mut ready = VecDeque::with_capacity(k);
            for _ in 0..k {
                ready.push_back(r.take_u32()?);
            }
            let counts = decode_counts_vec(r)?;
            let warp_id = r.take_usize()?;
            let generation = r.take_u32()?;
            Some(WarpSlot {
                arrival,
                rays,
                active,
                ready,
                counts,
                warp_id,
                generation,
            })
        } else {
            None
        };
    }
    let n = r.take_len(12)?;
    sm.test_heap = BinaryHeap::with_capacity(n);
    for _ in 0..n {
        let t = r.take_u64()?;
        let ray = r.take_u32()?;
        sm.test_heap.push(Reverse((t, ray)));
    }
    let n = r.take_len(9)?;
    sm.req_map = FxHashMap::with_capacity_and_hasher(n, FxBuildHasher::default());
    for _ in 0..n {
        let req = r.take_u64()?;
        let owner = match r.take_u8()? {
            0 => {
                let ray = r.take_u32()?;
                if ray as usize >= num_rays {
                    return Err(DecodeError::malformed(format!(
                        "request owner ray {ray} out of range ({num_rays} rays)"
                    )));
                }
                ReqOwner::Ray(ray)
            }
            1 => ReqOwner::PrefetchLine,
            2 => {
                let k = r.take_len(8)?;
                let mut gated = Vec::with_capacity(k);
                for _ in 0..k {
                    gated.push(r.take_u64()?);
                }
                ReqOwner::PrefetchMeta(gated)
            }
            t => {
                return Err(DecodeError::malformed(format!(
                    "unknown request-owner tag {t}"
                )))
            }
        };
        if sm.req_map.insert(req, owner).is_some() {
            return Err(DecodeError::malformed(format!(
                "duplicate in-flight request {req}"
            )));
        }
    }
    sm.counts_global = decode_counts(r)?;
    restore_unit_state(&mut sm.unit, r)?;
    sm.active_rays = r.take_usize()?;
    Ok(())
}

/// Reads the prefetcher presence flags and, for the configured unit, its
/// state — rejecting checkpoints whose flags disagree with the
/// configuration the engine was rebuilt from. The flag layout mirrors
/// [`encode_sm_state`]: three legacy sections (treelet, MTA, GHB) and an
/// additive hash section only hash configurations carry.
fn restore_unit_state(
    unit: &mut Option<PrefetcherUnit>,
    r: &mut ByteReader<'_>,
) -> Result<(), DecodeError> {
    let mismatch = |flag: bool, name: &str| {
        DecodeError::malformed(format!(
            "checkpoint {} a {name}, the configuration {}",
            if flag { "carries" } else { "lacks" },
            if flag { "has none" } else { "expects one" },
        ))
    };
    let expect = |r: &mut ByteReader<'_>, want: bool, name: &str| -> Result<(), DecodeError> {
        let present = r.take_bool()?;
        if present != want {
            return Err(mismatch(present, name));
        }
        Ok(())
    };
    match unit {
        None => {
            expect(r, false, "treelet prefetcher")?;
            expect(r, false, "MTA prefetcher")?;
            expect(r, false, "GHB prefetcher")?;
            Ok(())
        }
        Some(PrefetcherUnit::Treelet(p)) => {
            expect(r, true, "treelet prefetcher")?;
            p.restore_state(r)?;
            expect(r, false, "MTA prefetcher")?;
            expect(r, false, "GHB prefetcher")?;
            Ok(())
        }
        Some(PrefetcherUnit::Mta(m)) => {
            expect(r, false, "treelet prefetcher")?;
            expect(r, true, "MTA prefetcher")?;
            m.restore_state(r)?;
            expect(r, false, "GHB prefetcher")?;
            Ok(())
        }
        Some(PrefetcherUnit::Ghb(g)) => {
            expect(r, false, "treelet prefetcher")?;
            expect(r, false, "MTA prefetcher")?;
            expect(r, true, "GHB prefetcher")?;
            g.restore_state(r)
        }
        Some(PrefetcherUnit::Hash(h)) => {
            expect(r, false, "treelet prefetcher")?;
            expect(r, false, "MTA prefetcher")?;
            expect(r, false, "GHB prefetcher")?;
            expect(r, true, "hash-path prefetcher")?;
            h.restore_state(r)
        }
    }
}

/// Canonical encoding of a treelet-popularity count table (sorted by
/// treelet id, zero entries omitted — byte-identical to the map encoding
/// it replaced, since the map never held zeros either).
fn encode_counts(counts: &CountTable, w: &mut ByteWriter) {
    let entries = counts.sorted_pairs();
    w.put_len(entries.len());
    for (k, c) in entries {
        w.put_u32(k);
        w.put_u32(c);
    }
}

fn decode_counts(r: &mut ByteReader<'_>) -> Result<CountTable, DecodeError> {
    let n = r.take_len(8)?;
    let mut counts = CountTable::default();
    for _ in 0..n {
        let k = r.take_u32()?;
        let c = r.take_u32()?;
        if counts.get(k) != 0 {
            return Err(DecodeError::malformed(format!(
                "duplicate treelet count entry {k}"
            )));
        }
        if c == 0 {
            return Err(DecodeError::malformed(format!(
                "zero treelet count entry {k}"
            )));
        }
        counts.add(k, c);
    }
    Ok(counts)
}

/// Per-slot variant of [`encode_counts`] over the small linear table.
fn encode_counts_vec(counts: &CountVec, w: &mut ByteWriter) {
    let entries = counts.sorted_pairs();
    w.put_len(entries.len());
    for (k, c) in entries {
        w.put_u32(k);
        w.put_u32(c);
    }
}

fn decode_counts_vec(r: &mut ByteReader<'_>) -> Result<CountVec, DecodeError> {
    let n = r.take_len(8)?;
    let mut counts = CountVec::with_capacity(n);
    for _ in 0..n {
        let k = r.take_u32()?;
        let c = r.take_u32()?;
        if counts.get(k) != 0 {
            return Err(DecodeError::malformed(format!(
                "duplicate treelet count entry {k}"
            )));
        }
        if c == 0 {
            return Err(DecodeError::malformed(format!(
                "zero treelet count entry {k}"
            )));
        }
        counts.add(k, c);
    }
    Ok(counts)
}

/// Live I/O state of a checkpointing run: where checkpoints land, the
/// header fields they all share, and the open digest log.
struct CheckpointRunner {
    every: u64,
    path: std::path::PathBuf,
    identity: u64,
    start_cycle: u64,
    log: Option<(std::path::PathBuf, std::fs::File)>,
}

impl CheckpointRunner {
    /// Validates the options and opens the digest log: fresh runs
    /// truncate it; resumed runs keep only the records at or before the
    /// resumed epoch, so the log never claims epochs the resumed
    /// timeline has not yet reached.
    fn start(
        opts: &CheckpointOptions,
        identity: u64,
        start_cycle: u64,
        resumed_epoch: Option<u64>,
    ) -> Result<CheckpointRunner, SimError> {
        opts.validate()?;
        let log = match &opts.digest_log {
            None => None,
            Some(path) => {
                let kept: Vec<DigestRecord> = match resumed_epoch {
                    Some(epoch) if path.exists() => snapshot::read_digest_log(path)
                        .map_err(SimError::Snapshot)?
                        .into_iter()
                        .filter(|rec| rec.epoch <= epoch)
                        .collect(),
                    _ => Vec::new(),
                };
                let io = |what: &'static str, source: std::io::Error| {
                    SimError::Snapshot(SnapshotError::Io {
                        what,
                        path: path.clone(),
                        source,
                    })
                };
                let mut file =
                    std::fs::File::create(path).map_err(|e| io("create digest log", e))?;
                for rec in &kept {
                    writeln!(file, "{rec}").map_err(|e| io("rewrite digest log", e))?;
                }
                file.flush().map_err(|e| io("rewrite digest log", e))?;
                Some((path.clone(), file))
            }
        };
        Ok(CheckpointRunner {
            every: opts.every,
            path: opts.path.clone(),
            identity,
            start_cycle,
            log,
        })
    }

    /// Atomically replaces the checkpoint file with the state at `cycle`
    /// and appends the epoch's digest record to the log.
    fn emit(&mut self, payload: Vec<u8>, cycle: u64, rays_remaining: u64) -> Result<(), SimError> {
        let epoch = cycle / self.every;
        let checkpoint = Checkpoint {
            identity: self.identity,
            epoch,
            start_cycle: self.start_cycle,
            cycle,
            rays_remaining,
            payload,
        };
        snapshot::write_atomic(&self.path, &checkpoint.to_bytes())?;
        if let Some((path, file)) = &mut self.log {
            let record = DigestRecord {
                epoch,
                cycle,
                digest: checkpoint.state_digest(),
                rays_remaining,
            };
            writeln!(file, "{record}")
                .and_then(|()| file.flush())
                .map_err(|source| SnapshotError::Io {
                    what: "append digest log",
                    path: path.clone(),
                    source,
                })?;
        }
        Ok(())
    }
}

#[cfg(test)]
// The tests here deliberately exercise the deprecated entry points: they
// are now parity shims over `SimSession`, and keeping the legacy calls
// proves the shims behave exactly as the original functions did.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use rt_scene::{Scene, SceneId, Workload, WorkloadKind};

    fn fixture() -> (WideBvh, Vec<Ray>) {
        let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
        let rays = Workload::new(WorkloadKind::Primary, 8, 8).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        (bvh, rays)
    }

    #[test]
    fn baseline_simulation_completes() {
        let (bvh, rays) = fixture();
        let result = simulate(&bvh, &rays, &SimConfig::paper_baseline());
        assert!(result.cycles > 0);
        assert_eq!(result.rays, 64);
        assert!(result.l1.demand_accesses() > 0);
        assert!(result.traversal.avg_nodes_per_ray > 0.0);
        assert!(result.prefetcher.is_none());
        assert_eq!(result.prefetch_effect.total(), 0);
    }

    #[test]
    fn treelet_prefetch_simulation_completes_and_prefetches() {
        let (bvh, rays) = fixture();
        let result = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        assert!(result.cycles > 0);
        let p = result.prefetcher.expect("prefetcher stats present");
        assert!(p.decisions > 0, "prefetcher never made a decision");
        assert!(
            result.l1.prefetch_probes > 0,
            "no prefetches reached the L1"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let (bvh, rays) = fixture();
        let a = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        let b = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1, b.l1);
    }

    #[test]
    fn telemetry_sampling_is_zero_perturbation() {
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_treelet_prefetch();
        let plain = try_simulate(&bvh, &rays, &config).expect("plain run");
        let (sampled, telemetry) =
            try_simulate_with_telemetry(&bvh, &rays, &config, &TelemetryOptions::new(64))
                .expect("telemetry run");
        // Bit-identical trajectory: same digest, same cycle count, same
        // cache counters.
        assert_eq!(plain.state_digest, sampled.state_digest);
        assert_eq!(plain.cycles, sampled.cycles);
        assert_eq!(plain.l1, sampled.l1);
        assert_eq!(plain.dram_channel_accesses, sampled.dram_channel_accesses);
        // The time-series itself: epochs are present, cycle-ordered, and
        // close with a final sample at the retiring cycle.
        assert!(!telemetry.is_empty());
        let samples = telemetry.samples();
        assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
        let last = samples.last().unwrap();
        assert_eq!(last.cycle, sampled.cycles);
        assert_eq!(last.rays_remaining, 0);
        assert_eq!(last.dram_channel_accesses.len(), 4);
        assert_eq!(&last.dram_channel_accesses, &sampled.dram_channel_accesses);
        // Per-channel bytes are accesses × line size.
        for (b, a) in last
            .dram_channel_bytes
            .iter()
            .zip(last.dram_channel_accesses.iter())
        {
            assert_eq!(*b, a * config.mem.line_bytes);
        }
        // Cumulative counters never decrease across epochs.
        assert!(samples
            .windows(2)
            .all(|w| w[0].l2_to_l1_lines <= w[1].l2_to_l1_lines));
        // The prefetch taxonomy shows up for a prefetching config.
        assert!(last.prefetch_useful + last.prefetch_late + last.prefetch_useless > 0);
    }

    #[test]
    fn telemetry_rejects_zero_interval() {
        let (bvh, rays) = fixture();
        let err = try_simulate_with_telemetry(
            &bvh,
            &rays,
            &SimConfig::paper_baseline(),
            &TelemetryOptions::new(0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(crate::error::ConfigError::ZeroTelemetryInterval)
        ));
    }

    #[test]
    fn undersized_treelet_budget_is_a_typed_error_not_a_panic() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.treelet_bytes = 0;
        let err = try_simulate(&bvh, &rays, &config).unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(crate::error::ConfigError::TreeletBudgetTooSmall { bytes: 0 })
        ));
    }

    #[test]
    fn all_demand_loads_complete() {
        // End-to-end conservation: the number of demand accesses the L1
        // observed must equal the total lines of every compiled trace —
        // nothing dropped, nothing duplicated.
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_baseline();
        let result = simulate(&bvh, &rays, &config);
        let treelets = TreeletAssignment::form(&bvh, config.treelet_bytes);
        let image = MemoryImage::depth_first(&bvh);
        let expected: u64 = rays
            .iter()
            .map(|r| {
                let trace = crate::traversal::trace_ray(&bvh, &treelets, r, config.traversal);
                compile_trace(&trace, &image, config.mem.line_bytes)
                    .iter()
                    .map(|s| s.lines.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        assert!(expected > 0);
        assert_eq!(result.l1.demand_accesses(), expected);
        assert!(result.node_load_latency > 0.0);
    }

    #[test]
    fn mta_prefetcher_runs() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.prefetch = PrefetchConfig::Mta;
        let result = simulate(&bvh, &rays, &config);
        let mta = result.mta.expect("mta stats present");
        assert!(mta.observed > 0);
    }

    #[test]
    fn ghb_prefetcher_runs() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.prefetch = PrefetchConfig::Ghb;
        let result = simulate(&bvh, &rays, &config);
        let ghb = result.ghb.expect("ghb stats present");
        assert!(ghb.observed > 0, "GHB never saw the miss stream");
        // BVH pointer chasing is the pattern the GHB cannot exploit: the
        // timely fraction stays negligible.
        let e = result.prefetch_effect;
        assert!(e.timely * 5 <= e.total().max(1));
    }

    #[test]
    fn formation_policies_all_simulate() {
        let (bvh, rays) = fixture();
        for policy in [
            crate::FormationPolicy::GreedyBfs,
            crate::FormationPolicy::GreedyDfs,
            crate::FormationPolicy::SurfaceArea,
        ] {
            let mut config = SimConfig::paper_treelet_prefetch();
            config.formation = policy;
            let result = simulate(&bvh, &rays, &config);
            assert!(result.cycles > 0, "{policy} did not complete");
        }
    }

    #[test]
    fn traversal_ablations_simulate() {
        let (bvh, rays) = fixture();
        for (ordered, ert) in [(false, true), (true, false), (false, false)] {
            let mut config = SimConfig::paper_baseline();
            config.traversal_options = crate::TraversalOptions {
                ordered_children: ordered,
                early_termination: ert,
            };
            let result = simulate(&bvh, &rays, &config);
            assert!(result.cycles > 0);
        }
    }

    #[test]
    fn triangle_prefetch_extension_runs_and_fetches_more() {
        let (bvh, rays) = fixture();
        let nodes_only = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        let mut config = SimConfig::paper_treelet_prefetch();
        config.prefetch_triangles = true;
        let with_tris = simulate(&bvh, &rays, &config);
        assert!(with_tris.cycles > 0);
        let p0 = nodes_only.prefetcher.unwrap();
        let p1 = with_tris.prefetcher.unwrap();
        assert!(
            p1.lines_enqueued >= p0.lines_enqueued,
            "triangle prefetch should enqueue at least as many lines"
        );
    }

    #[test]
    fn l2_destination_prefetch_runs() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_treelet_prefetch();
        config.prefetch_destination = crate::PrefetchDestination::L2;
        let result = simulate(&bvh, &rays, &config);
        assert!(result.cycles > 0);
        // Prefetch effectiveness shows up at the L2, not the L1.
        assert_eq!(result.l1.prefetch_probes, 0, "L1 must see no prefetches");
        assert!(
            result.prefetch_effect_l2.total() > 0,
            "L2 must classify the prefetches"
        );
    }

    #[test]
    fn warp_buffer_occupancy_is_a_sane_fraction() {
        let (bvh, rays) = fixture();
        let r = simulate(&bvh, &rays, &SimConfig::paper_baseline());
        assert!(r.warp_buffer_occupancy > 0.0);
        assert!(r.warp_buffer_occupancy <= 1.0);
        // 2 warps over 8 SMs × 16 slots: occupancy must be far below full.
        assert!(
            r.warp_buffer_occupancy < 0.5,
            "occupancy {} too high for 2 warps in 128 slots",
            r.warp_buffer_occupancy
        );
    }

    #[test]
    fn shader_program_with_bounces_completes() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_treelet_prefetch();
        config.shader = Some(crate::ShaderProgram::path_tracer());
        let result = simulate(&bvh, &rays, &config);
        assert!(result.cycles > 0);
        // Bounce lanes add demand traffic beyond the primary generation.
        let primary_only = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        assert!(result.l1.demand_accesses() > primary_only.l1.demand_accesses());
        // Masked lanes pull SIMT efficiency below the primary-only run
        // (bounce generations lose the lanes that missed).
        assert!(result.simt_efficiency > 0.0);
        assert!(result.simt_efficiency < primary_only.simt_efficiency);
    }

    #[test]
    fn shader_ops_serialize_on_the_issue_port() {
        // With zero-op shaders the run matches the pure-replay setup; a
        // heavy raygen program must lengthen it.
        let (bvh, rays) = fixture();
        let mut light = SimConfig::paper_baseline();
        light.shader = Some(crate::ShaderProgram {
            raygen_ops: 1,
            shade_ops: 0,
            bounces: 0,
            bounce_kind: crate::BounceKind::Diffuse,
            seed: 1,
        });
        let mut heavy = light.clone();
        heavy.shader = Some(crate::ShaderProgram {
            raygen_ops: 20_000,
            shade_ops: 0,
            bounces: 0,
            bounce_kind: crate::BounceKind::Diffuse,
            seed: 1,
        });
        let fast = simulate(&bvh, &rays, &light);
        let slow = simulate(&bvh, &rays, &heavy);
        assert!(
            slow.cycles > fast.cycles + 10_000,
            "raygen ops must serialize: {} vs {}",
            slow.cycles,
            fast.cycles
        );
        // Same traversal work either way.
        assert_eq!(fast.l1.demand_accesses(), slow.l1.demand_accesses());
    }

    #[test]
    fn shader_simulation_is_deterministic() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_treelet_prefetch();
        config.shader = Some(crate::ShaderProgram::path_tracer());
        let a = simulate(&bvh, &rays, &config);
        let b = simulate(&bvh, &rays, &config);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1, b.l1);
        assert!((a.simt_efficiency - b.simt_efficiency).abs() < 1e-12);
    }

    #[test]
    fn raygen_stagger_delays_completion() {
        // One SM so that the fixture's two warps actually queue behind
        // each other.
        let (bvh, rays) = fixture();
        let mut base_cfg = SimConfig::paper_baseline();
        base_cfg.num_sms = 1;
        let immediate = simulate(&bvh, &rays, &base_cfg);
        let mut staggered_cfg = base_cfg.clone();
        // Longer than the whole immediate run, so the second warp cannot
        // hide inside it.
        staggered_cfg.raygen_interval = 2 * immediate.cycles;
        let staggered = simulate(&bvh, &rays, &staggered_cfg);
        assert!(
            staggered.cycles > immediate.cycles,
            "stagger must lengthen the run: {} vs {}",
            staggered.cycles,
            immediate.cycles
        );
        // Same functional work either way.
        assert_eq!(
            staggered.l1.demand_accesses(),
            immediate.l1.demand_accesses()
        );
    }

    #[test]
    fn warm_batches_share_the_cache() {
        // Running the same rays twice in one session: the second batch
        // hits the warm caches and completes much faster.
        let (bvh, rays) = fixture();
        let results = simulate_batches(
            &bvh,
            &[rays.clone(), rays.clone()],
            &SimConfig::paper_baseline(),
        );
        assert_eq!(results.len(), 2);
        assert!(
            results[1].cycles * 2 < results[0].cycles,
            "warm batch not faster: {} vs {}",
            results[1].cycles,
            results[0].cycles
        );
        // Cache counters accumulate: the second result's totals exceed
        // the first's.
        assert!(results[1].l1.demand_accesses() > results[0].l1.demand_accesses());
    }

    #[test]
    fn batched_equals_single_for_one_batch() {
        let (bvh, rays) = fixture();
        let single = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        let batched = simulate_batches(
            &bvh,
            std::slice::from_ref(&rays),
            &SimConfig::paper_treelet_prefetch(),
        );
        assert_eq!(single.cycles, batched[0].cycles);
        assert_eq!(single.l1, batched[0].l1);
        assert_eq!(single.prefetch_effect, batched[0].prefetch_effect);
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn empty_batches_panic() {
        let (bvh, _) = fixture();
        let _ = simulate_batches(&bvh, &[], &SimConfig::paper_baseline());
    }

    #[test]
    fn stale_treelets_still_simulate_after_refit() {
        // Animated-scene scenario: deform the triangles, refit the BVH,
        // keep the frame-0 treelet assignment. Topology is unchanged, so
        // the assignment stays valid and the simulation completes.
        let (mut bvh, rays) = fixture();
        let treelets = TreeletAssignment::form(&bvh, 512);
        let fresh =
            simulate_with_treelets(&bvh, &rays, &SimConfig::paper_treelet_prefetch(), &treelets);
        let deformed: Vec<rt_geometry::Triangle> = bvh
            .triangles()
            .iter()
            .map(|t| {
                let wobble = |v: rt_geometry::Vec3| {
                    rt_geometry::Vec3::new(v.x, v.y + 0.25 * (v.x * 2.0).sin(), v.z)
                };
                rt_geometry::Triangle::new(wobble(t.v0), wobble(t.v1), wobble(t.v2))
            })
            .collect();
        bvh.refit(deformed);
        let stale =
            simulate_with_treelets(&bvh, &rays, &SimConfig::paper_treelet_prefetch(), &treelets);
        assert!(fresh.cycles > 0 && stale.cycles > 0);
    }

    #[test]
    fn mapping_table_modes_run() {
        let (bvh, rays) = fixture();
        for mode in [MappingMode::LooseWait, MappingMode::StrictWait] {
            let config = SimConfig::paper_treelet_prefetch().with_mapping_mode(mode);
            let result = simulate(&bvh, &rays, &config);
            assert!(result.cycles > 0, "{mode:?} did not complete");
        }
    }

    #[test]
    fn schedulers_all_complete() {
        let (bvh, rays) = fixture();
        for sched in [
            SchedulerPolicy::Baseline,
            SchedulerPolicy::OldestMatchingRay,
            SchedulerPolicy::PrioritizeMostRays,
        ] {
            let config = SimConfig::paper_treelet_prefetch().with_scheduler(sched);
            let result = simulate(&bvh, &rays, &config);
            assert!(result.cycles > 0, "{sched} did not complete");
        }
    }

    #[test]
    fn dram_sees_traffic_on_cold_caches() {
        let (bvh, rays) = fixture();
        let result = simulate(&bvh, &rays, &SimConfig::paper_baseline());
        assert!(result.dram_to_l2_lines > 0);
        assert!(result.dram_utilization > 0.0);
        assert_eq!(result.dram_channel_accesses.len(), 4);
    }

    #[test]
    fn power_report_is_positive() {
        let (bvh, rays) = fixture();
        let result = simulate(&bvh, &rays, &SimConfig::paper_baseline());
        assert!(result.power.avg_power_w > 0.0);
        assert!(result.power.dynamic_nj > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_treelet_prefetch();
        config.layout = LayoutChoice::DepthFirst; // incompatible with Packed mapping
        let _ = simulate(&bvh, &rays, &config);
    }

    #[test]
    #[should_panic(expected = "at least one ray")]
    fn empty_rays_panic() {
        let (bvh, _) = fixture();
        let _ = simulate(&bvh, &[], &SimConfig::paper_baseline());
    }

    #[test]
    fn invalid_config_returns_typed_error() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_treelet_prefetch();
        config.layout = LayoutChoice::DepthFirst;
        match try_simulate(&bvh, &rays, &config) {
            Err(SimError::Config(crate::ConfigError::IncompatibleMapping { .. })) => {}
            other => panic!("expected IncompatibleMapping, got {other:?}"),
        }
    }

    #[test]
    fn zero_sms_is_an_error_not_a_panic() {
        // Validation must run before the memory system is built, or the
        // zero-SM assert inside MemorySystem::new fires first.
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.num_sms = 0;
        assert!(matches!(
            try_simulate(&bvh, &rays, &config),
            Err(SimError::Config(crate::ConfigError::ZeroSizedStructure))
        ));
        assert!(matches!(
            try_simulate_batches(&bvh, &[rays], &config),
            Err(SimError::Config(crate::ConfigError::ZeroSizedStructure))
        ));
    }

    #[test]
    fn empty_inputs_return_typed_errors() {
        let (bvh, _) = fixture();
        assert!(matches!(
            try_simulate(&bvh, &[], &SimConfig::paper_baseline()),
            Err(SimError::EmptyInput { what: "ray" })
        ));
        assert!(matches!(
            try_simulate_batches(&bvh, &[], &SimConfig::paper_baseline()),
            Err(SimError::EmptyInput { what: "batch" })
        ));
    }

    #[test]
    fn mismatched_treelets_are_a_coverage_error() {
        let (bvh, rays) = fixture();
        let other_scene = Scene::build_with_detail(SceneId::Bunny, 0.3);
        let other_bvh = WideBvh::build(other_scene.mesh.into_triangles());
        let foreign = TreeletAssignment::form(&other_bvh, 512);
        assert_ne!(bvh.node_count(), other_bvh.node_count());
        match try_simulate_with_treelets(&bvh, &rays, &SimConfig::paper_baseline(), &foreign) {
            Err(SimError::TreeletCoverage { nodes, assigned }) => {
                assert_eq!(nodes, bvh.node_count());
                assert_eq!(assigned, other_bvh.node_count());
            }
            other => panic!("expected TreeletCoverage, got {other:?}"),
        }
    }

    #[test]
    fn cycle_limit_returns_error_with_snapshot() {
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        // Far too few cycles to finish; the default progress window is
        // much larger, so the hard limit fires first.
        config.max_cycles = 300;
        match try_simulate(&bvh, &rays, &config) {
            Err(SimError::CycleLimitExceeded { limit, snapshot }) => {
                assert_eq!(limit, 300);
                assert_eq!(snapshot.cycle, 300);
                assert!(snapshot.rays_remaining > 0);
                assert_eq!(snapshot.warp_buffer_occupancy.len(), config.num_sms);
            }
            other => panic!("expected CycleLimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn dropped_dram_response_trips_the_watchdog() {
        // Swallow the very first DRAM response: its waiters can never
        // finish, and once every other ray retires nothing moves. The
        // watchdog must convert that livelock into an error instead of
        // spinning to max_cycles.
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.mem.fault_injection = Some(rt_gpu_sim::FaultInjection::drop_nth_dram_send(1, 0));
        config.progress_window = 5_000;
        match try_simulate(&bvh, &rays, &config) {
            Err(SimError::NoForwardProgress { window, snapshot }) => {
                assert_eq!(window, 5_000);
                assert!(snapshot.rays_remaining > 0);
                assert!(
                    snapshot.outstanding_requests > 0,
                    "the wedged request must appear in the snapshot"
                );
                assert!(!snapshot.outstanding_request_ids.is_empty());
            }
            other => panic!("expected NoForwardProgress, got {other:?}"),
        }
    }

    #[test]
    fn latency_faults_do_not_change_functional_results() {
        let (bvh, rays) = fixture();
        let clean = simulate(&bvh, &rays, &SimConfig::paper_treelet_prefetch());
        let mut faulty_cfg = SimConfig::paper_treelet_prefetch();
        faulty_cfg.mem.fault_injection = Some(rt_gpu_sim::FaultInjection::latency_storm(42));
        let faulty = try_simulate(&bvh, &rays, &faulty_cfg).expect("latency faults must complete");
        // Faults perturb timing only: identical traversal and demand
        // traffic, at least as many cycles.
        assert_eq!(faulty.traversal, clean.traversal);
        assert_eq!(faulty.l1.demand_accesses(), clean.l1.demand_accesses());
        assert!(faulty.cycles >= clean.cycles);
        // The same seed reproduces the same faulty timing.
        let again = try_simulate(&bvh, &rays, &faulty_cfg).unwrap();
        assert_eq!(faulty.cycles, again.cycles);
        assert_eq!(faulty.l1, again.l1);
    }

    /// Fresh per-test scratch directory under the system temp dir.
    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("treelet-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn determinism_across_entry_points_and_batch_splits() {
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_treelet_prefetch();
        let single_a = try_simulate(&bvh, &rays, &config).unwrap();
        let single_b = try_simulate(&bvh, &rays, &config).unwrap();
        assert_eq!(format!("{single_a:?}"), format!("{single_b:?}"));
        // One whole batch goes down the same path as try_simulate: the
        // results — final state digest included — are identical.
        let whole = try_simulate_batches(&bvh, std::slice::from_ref(&rays), &config).unwrap();
        assert_eq!(format!("{:?}", whole[0]), format!("{single_a:?}"));
        assert_eq!(whole[0].state_digest, single_a.state_digest);
        // Multi-batch sessions form warps per batch, so each split point
        // is its own timing trajectory; what determinism demands is that
        // every split reproduces itself exactly, run to run.
        for split in [16usize, 32, 48] {
            let (a, b) = rays.split_at(split);
            let batches = [a.to_vec(), b.to_vec()];
            let r1 = try_simulate_batches(&bvh, &batches, &config).unwrap();
            let r2 = try_simulate_batches(&bvh, &batches, &config).unwrap();
            assert_eq!(format!("{r1:?}"), format!("{r2:?}"), "split at {split}");
            assert_eq!(
                r1.last().unwrap().state_digest,
                r2.last().unwrap().state_digest,
                "split at {split}"
            );
        }
    }

    #[test]
    fn interrupted_runs_resume_bit_identical_across_scenes() {
        // The acceptance matrix: ≥3 scenes, including the treelet-prefetch
        // configuration, plus fault-injection (RNG state) and shader-mode
        // (bounce bookkeeping) variants of it.
        let mut faulty = SimConfig::paper_treelet_prefetch();
        faulty.mem.fault_injection = Some(rt_gpu_sim::FaultInjection::latency_storm(42));
        let mut shaded = SimConfig::paper_treelet_prefetch();
        shaded.shader = Some(crate::ShaderProgram::path_tracer());
        let cases = [
            (SceneId::Wknd, SimConfig::paper_baseline(), "wknd-baseline"),
            (
                SceneId::Bunny,
                SimConfig::paper_treelet_prefetch(),
                "bunny-prefetch",
            ),
            (
                SceneId::Park,
                SimConfig::paper_treelet_traversal_only(),
                "park-treelet",
            ),
            (SceneId::Wknd, faulty, "wknd-prefetch-faulty"),
            (SceneId::Wknd, shaded, "wknd-prefetch-shader"),
        ];
        let dir = ckpt_dir("resume");
        for (scene_id, config, name) in cases {
            let scene = Scene::build_with_detail(scene_id, 0.3);
            let rays = Workload::new(WorkloadKind::Primary, 8, 8).generate(&scene);
            let bvh = WideBvh::build(scene.mesh.into_triangles());
            let straight = try_simulate(&bvh, &rays, &config).unwrap();
            let every = (straight.cycles / 7).max(1);
            let opts = CheckpointOptions::new(every, dir.join(format!("{name}.rtsnap")))
                .with_digest_log(dir.join(format!("{name}.digests")));
            // Uninterrupted checkpointed run: bit-identical to the plain
            // run, with several epochs logged.
            let full = try_simulate_checkpointed(&bvh, &rays, &config, &opts).unwrap();
            assert_eq!(format!("{full:?}"), format!("{straight:?}"), "{name}");
            let log_path = opts.digest_log.as_ref().unwrap();
            let full_log = snapshot::read_digest_log(log_path).unwrap();
            assert!(
                full_log.len() >= 3,
                "{name}: expected several epochs, got {}",
                full_log.len()
            );
            // Interrupt mid-run via the cycle budget — the checkpoint from
            // the aborting epoch survives, exactly as after a SIGKILL
            // between epochs — then resume under the full budget.
            let mut truncated = config.clone();
            truncated.max_cycles = (straight.cycles * 2 / 3).max(every);
            match try_simulate_checkpointed(&bvh, &rays, &truncated, &opts) {
                Err(SimError::CycleLimitExceeded { .. }) => {}
                other => panic!("{name}: expected budget exhaustion, got {other:?}"),
            }
            let ck = snapshot::read_checkpoint(&opts.path).unwrap();
            assert!(
                ck.cycle < straight.cycles,
                "{name}: checkpoint must be mid-run"
            );
            assert!(ck.rays_remaining > 0, "{name}");
            let resumed = try_resume(&bvh, &rays, &config, &opts).unwrap();
            assert_eq!(
                format!("{resumed:?}"),
                format!("{straight:?}"),
                "{name}: resumed run must be bit-identical"
            );
            assert_eq!(resumed.state_digest, straight.state_digest, "{name}");
            // The digest history after resume matches the uninterrupted
            // run's epoch for epoch.
            let resumed_log = snapshot::read_digest_log(log_path).unwrap();
            assert_eq!(resumed_log, full_log, "{name}: digest histories differ");
            assert!(snapshot::first_divergence(&full_log, &resumed_log).is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_corrupt_and_foreign_checkpoints() {
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_baseline();
        let dir = ckpt_dir("reject");
        let path = dir.join("ck.rtsnap");
        let straight = try_simulate(&bvh, &rays, &config).unwrap();
        let opts = CheckpointOptions::new((straight.cycles / 4).max(1), &path);
        try_simulate_checkpointed(&bvh, &rays, &config, &opts).unwrap();
        // A checkpoint from a different configuration is refused up front.
        match try_resume(&bvh, &rays, &SimConfig::paper_treelet_traversal_only(), &opts) {
            Err(SimError::Snapshot(SnapshotError::IdentityMismatch { expected, found })) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected identity mismatch, got {other:?}"),
        }
        // A larger cycle budget is NOT a different run: resuming the
        // finished checkpoint under it replays the tail and matches.
        let mut roomy = config.clone();
        roomy.max_cycles = config.max_cycles + 1;
        let resumed = try_resume(&bvh, &rays, &roomy, &opts).unwrap();
        assert_eq!(resumed.state_digest, straight.state_digest);
        // Truncation, bit flips, and a missing file are all typed errors.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match try_resume(&bvh, &rays, &config, &opts) {
            Err(SimError::Snapshot(SnapshotError::Decode(_))) => {}
            other => panic!("expected decode error on truncation, got {other:?}"),
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        match try_resume(&bvh, &rays, &config, &opts) {
            Err(SimError::Snapshot(SnapshotError::Decode(_))) => {}
            other => panic!("expected decode error on bit flip, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
        match try_resume(&bvh, &rays, &config, &opts) {
            Err(SimError::Snapshot(SnapshotError::Io { .. })) => {}
            other => panic!("expected io error on missing file, got {other:?}"),
        }
        // A zero interval is a config error, not a runtime surprise.
        let bad = CheckpointOptions::new(0, dir.join("never.rtsnap"));
        assert!(matches!(
            try_simulate_checkpointed(&bvh, &rays, &config, &bad),
            Err(SimError::Config(crate::ConfigError::ZeroCheckpointInterval))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_tolerates_long_legitimate_stalls() {
        // A raygen stagger far longer than the progress window parks the
        // second warp for ages with nothing in flight; the watchdog must
        // count that scheduled future work, not abort.
        let (bvh, rays) = fixture();
        let mut config = SimConfig::paper_baseline();
        config.num_sms = 1;
        config.raygen_interval = 50_000;
        config.progress_window = 10_000;
        let result = try_simulate(&bvh, &rays, &config).expect("staggered run must complete");
        assert!(result.cycles > 50_000);
    }
}
