//! Crash-safe checkpoint containers and replay-digest logs.
//!
//! Long sweeps die — machines reboot, schedulers kill jobs, fault
//! injection wedges runs. This module gives the simulator a durable
//! restart point: the engine's complete dynamic state, serialized with
//! the same hand-rolled zero-dependency codec as `trace_io`, wrapped in
//! a versioned, checksummed, self-describing container that is written
//! atomically (temp file + rename) so a crash mid-write can never leave
//! a half-checkpoint behind.
//!
//! # Container format (version 2)
//!
//! Version 2 switched the payload to the dense-table engine encoding
//! (the fully-associative cache's LRU heap is rebuilt at restore instead
//! of being serialized, and warp-buffer pending lines are encoded from a
//! cursor into the rebuilt trace); version-1 checkpoints are refused with
//! a typed error. All integers little-endian, laid out by `rt_gpu_sim`'s
//! `ByteWriter`:
//!
//! | field            | bytes | meaning                                   |
//! |------------------|-------|-------------------------------------------|
//! | magic            | 8     | `RTSNAP02`                                |
//! | version          | 4     | container version (2)                     |
//! | identity         | 8     | FNV-1a digest of the run's inputs         |
//! | epoch            | 8     | checkpoint epoch (`cycle / every`)        |
//! | start_cycle      | 8     | memory-system cycle when the run began    |
//! | cycle            | 8     | memory-system cycle at the checkpoint     |
//! | rays_remaining   | 8     | unretired rays (diagnostic)               |
//! | payload length   | 8     | engine-state byte count                   |
//! | payload          | n     | canonical engine + memory-system state    |
//! | checksum         | 8     | FNV-1a over every preceding byte          |
//!
//! The *identity* pins a checkpoint to the exact scene, ray set, and
//! configuration that produced it (cycle budgets excluded, so an
//! exhausted run can resume under a larger budget); resuming against
//! different inputs is a typed error, not silent garbage. The payload's
//! FNV-1a digest doubles as the run's per-epoch *state digest*: two runs
//! are bit-identical exactly when their digest sequences match, which is
//! what [`first_divergence`] bisects.

use rt_gpu_sim::{fnv1a64, ByteReader, ByteWriter, DecodeError};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Leading bytes of every checkpoint file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RTSNAP02";
/// Current container version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem I/O failed (`what` names the operation).
    Io {
        /// The failing operation, e.g. "write checkpoint".
        what: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The checkpoint bytes are corrupt, truncated, or from an
    /// unsupported format version.
    Decode(DecodeError),
    /// The checkpoint was produced by a different scene, ray set, or
    /// configuration than the one being resumed.
    IdentityMismatch {
        /// Identity digest recorded in the checkpoint.
        expected: u64,
        /// Identity digest of the run attempting to resume.
        found: u64,
    },
    /// A digest-log line did not parse (`line` is 1-based).
    MalformedDigestLog {
        /// The offending line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { what, path, source } => {
                write!(f, "could not {what} {}: {source}", path.display())
            }
            SnapshotError::Decode(e) => write!(f, "invalid checkpoint: {e}"),
            SnapshotError::IdentityMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run \
                 (identity {expected:#018x}, this run is {found:#018x})"
            ),
            SnapshotError::MalformedDigestLog { line, message } => {
                write!(f, "digest log line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

/// A decoded checkpoint: header fields plus the opaque engine payload.
///
/// The payload's canonical bytes are produced and consumed by the
/// simulation engine; this container neither interprets nor re-orders
/// them, so `fnv1a64(&payload)` is the run's state digest at `cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Input-identity digest (scene + rays + canonicalized config).
    pub identity: u64,
    /// Checkpoint epoch (`cycle / checkpoint interval`).
    pub epoch: u64,
    /// Memory-system cycle when the interrupted run originally began.
    pub start_cycle: u64,
    /// Memory-system cycle at which the state was captured.
    pub cycle: u64,
    /// Rays not yet retired at capture time.
    pub rays_remaining: u64,
    /// Canonical engine + memory-system state bytes.
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// The FNV-1a digest of the payload — the per-epoch state digest.
    pub fn state_digest(&self) -> u64 {
        fnv1a64(&self.payload)
    }

    /// Serializes the checkpoint into its container bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u64(self.identity);
        w.put_u64(self.epoch);
        w.put_u64(self.start_cycle);
        w.put_u64(self.cycle);
        w.put_u64(self.rays_remaining);
        w.put_len(self.payload.len());
        w.put_bytes(&self.payload);
        let checksum = fnv1a64(w.bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Decodes a checkpoint container, verifying magic, version, and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Any corruption is a typed [`DecodeError`]: wrong magic, an
    /// unsupported version, truncation, trailing bytes, or a checksum
    /// mismatch (bit flips anywhere in the file).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_bytes(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version });
        }
        let identity = r.take_u64()?;
        let epoch = r.take_u64()?;
        let start_cycle = r.take_u64()?;
        let cycle = r.take_u64()?;
        let rays_remaining = r.take_u64()?;
        let n = r.take_len(1)?;
        let payload = r.take_bytes(n)?.to_vec();
        let body_len = r.position();
        let found = r.take_u64()?;
        r.expect_end()?;
        let expected = fnv1a64(&bytes[..body_len]);
        if found != expected {
            return Err(DecodeError::ChecksumMismatch { expected, found });
        }
        Ok(Checkpoint {
            identity,
            epoch,
            start_cycle,
            cycle,
            rays_remaining,
            payload,
        })
    }
}

/// Writes `bytes` to `path` atomically: the data lands in a sibling temp
/// file, is fsynced, and is renamed over the destination, so readers see
/// either the old checkpoint or the new one — never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    fn io_err(what: &'static str, path: PathBuf) -> impl FnOnce(std::io::Error) -> SnapshotError {
        move |source| SnapshotError::Io { what, path, source }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f =
            fs::File::create(&tmp).map_err(io_err("create temp checkpoint", tmp.clone()))?;
        f.write_all(bytes)
            .map_err(io_err("write checkpoint", tmp.clone()))?;
        f.sync_all().map_err(io_err("sync checkpoint", tmp.clone()))?;
    }
    fs::rename(&tmp, path).map_err(io_err("commit checkpoint", path.to_path_buf()))
}

/// Reads and decodes a checkpoint file.
///
/// # Errors
///
/// [`SnapshotError::Io`] if the file cannot be read,
/// [`SnapshotError::Decode`] if its contents are not a valid checkpoint.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, SnapshotError> {
    let bytes = fs::read(path).map_err(|source| SnapshotError::Io {
        what: "read checkpoint",
        path: path.to_path_buf(),
        source,
    })?;
    Ok(Checkpoint::from_bytes(&bytes)?)
}

/// One digest-log entry: the engine's state digest at an epoch boundary.
///
/// Logs are plain text, one record per line, so they survive partial
/// writes (a torn final line is rejected with a line number) and diff
/// cleanly:
///
/// ```text
/// epoch=3 cycle=3000 digest=0x04c11db700000000 rays_remaining=42
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestRecord {
    /// Checkpoint epoch.
    pub epoch: u64,
    /// Memory-system cycle at the epoch boundary.
    pub cycle: u64,
    /// FNV-1a state digest of the engine payload at that cycle.
    pub digest: u64,
    /// Rays not yet retired.
    pub rays_remaining: u64,
}

impl fmt::Display for DigestRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch={} cycle={} digest={:#018x} rays_remaining={}",
            self.epoch, self.cycle, self.digest, self.rays_remaining
        )
    }
}

impl DigestRecord {
    /// Parses one `key=value`-formatted log line.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MalformedDigestLog`] (with `line` as the
    /// reported line number) on missing keys or unparsable values.
    pub fn parse(text: &str, line: usize) -> Result<DigestRecord, SnapshotError> {
        let bad = |message: String| SnapshotError::MalformedDigestLog { line, message };
        let mut epoch = None;
        let mut cycle = None;
        let mut digest = None;
        let mut rays_remaining = None;
        for field in text.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("field `{field}` is not key=value")))?;
            let slot = match key {
                "epoch" => &mut epoch,
                "cycle" => &mut cycle,
                "digest" => &mut digest,
                "rays_remaining" => &mut rays_remaining,
                other => return Err(bad(format!("unknown field `{other}`"))),
            };
            let parsed = if let Some(hex) = value.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                value.parse()
            }
            .map_err(|e| bad(format!("bad value for `{key}`: {e}")))?;
            if slot.replace(parsed).is_some() {
                return Err(bad(format!("duplicate field `{key}`")));
            }
        }
        Ok(DigestRecord {
            epoch: epoch.ok_or_else(|| bad("missing field `epoch`".into()))?,
            cycle: cycle.ok_or_else(|| bad("missing field `cycle`".into()))?,
            digest: digest.ok_or_else(|| bad("missing field `digest`".into()))?,
            rays_remaining: rays_remaining
                .ok_or_else(|| bad("missing field `rays_remaining`".into()))?,
        })
    }
}

/// Parses a whole digest log (blank lines skipped).
///
/// # Errors
///
/// [`SnapshotError::MalformedDigestLog`] naming the first bad line.
pub fn parse_digest_log(text: &str) -> Result<Vec<DigestRecord>, SnapshotError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| DigestRecord::parse(l, i + 1))
        .collect()
}

/// Reads and parses a digest-log file.
///
/// # Errors
///
/// [`SnapshotError::Io`] on read failure, else as [`parse_digest_log`].
pub fn read_digest_log(path: &Path) -> Result<Vec<DigestRecord>, SnapshotError> {
    let text = fs::read_to_string(path).map_err(|source| SnapshotError::Io {
        what: "read digest log",
        path: path.to_path_buf(),
        source,
    })?;
    parse_digest_log(&text)
}

/// Finds the first epoch at which two digest logs disagree.
///
/// Because the simulator is deterministic, two runs of the same inputs
/// agree on every epoch up to their first divergence and (in practice)
/// disagree from there on — the agreement prefix is monotone. That lets
/// a binary search over the aligned records find the first divergent
/// epoch in `O(log n)` comparisons; `bisect-divergence` then prints the
/// two records at that epoch as the smallest reproducer of the drift.
///
/// Records are aligned by position after both logs are sorted by epoch.
/// Returns `None` when the logs agree on their entire common prefix
/// (including when one log is merely shorter — a truncated run is not a
/// divergence). Otherwise returns the pair of records at the first
/// divergent epoch.
pub fn first_divergence(
    a: &[DigestRecord],
    b: &[DigestRecord],
) -> Option<(DigestRecord, DigestRecord)> {
    let mut a: Vec<DigestRecord> = a.to_vec();
    let mut b: Vec<DigestRecord> = b.to_vec();
    a.sort_by_key(|r| r.epoch);
    b.sort_by_key(|r| r.epoch);
    let common = a.len().min(b.len());
    let diverged =
        |i: usize| a[i].epoch != b[i].epoch || a[i].cycle != b[i].cycle || a[i].digest != b[i].digest;
    if common == 0 || !diverged(common - 1) {
        return None;
    }
    // Invariant: everything before `lo` agrees, `hi` diverges.
    let (mut lo, mut hi) = (0usize, common - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if diverged(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some((a[hi], b[hi]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            identity: 0xdead_beef_cafe_f00d,
            epoch: 7,
            start_cycle: 0,
            cycle: 7000,
            rays_remaining: 42,
            payload: (0..=255u8).cycle().take(1000).collect(),
        }
    }

    #[test]
    fn container_round_trips() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("own encoding must decode");
        assert_eq!(back, ck);
        assert_eq!(back.state_digest(), fnv1a64(&ck.payload));
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::from_bytes(&bytes), Err(DecodeError::BadMagic));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version field
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(DecodeError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let good = sample().to_bytes();
        // Flip a payload byte and a header byte; both must be caught.
        for idx in [good.len() / 2, 20] {
            let mut bytes = good.clone();
            bytes[idx] ^= 0x01;
            match Checkpoint::from_bytes(&bytes) {
                Err(
                    DecodeError::ChecksumMismatch { .. }
                    | DecodeError::Malformed { .. }
                    | DecodeError::UnexpectedEof { .. },
                ) => {}
                other => panic!("corruption at {idx} not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let good = sample().to_bytes();
        for cut in [0, 1, 7, 8, 12, good.len() / 2, good.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&good[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("rtsnap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.rtsnap");
        let ck = sample();
        write_atomic(&path, &ck.to_bytes()).unwrap();
        // Overwrite with a newer epoch: rename replaces in place.
        let mut newer = ck.clone();
        newer.epoch = 8;
        write_atomic(&path, &newer.to_bytes()).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), newer);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_records_round_trip_through_text() {
        let rec = DigestRecord {
            epoch: 3,
            cycle: 3000,
            digest: 0x04c1_1db7_0000_00ff,
            rays_remaining: 42,
        };
        let text = rec.to_string();
        assert_eq!(DigestRecord::parse(&text, 1).unwrap(), rec);
        let log = format!("{text}\n\n{text}\n");
        assert_eq!(parse_digest_log(&log).unwrap(), vec![rec, rec]);
    }

    #[test]
    fn malformed_digest_lines_name_the_line() {
        let log = "epoch=1 cycle=10 digest=0x1 rays_remaining=5\nepoch=2 nope\n";
        match parse_digest_log(log) {
            Err(SnapshotError::MalformedDigestLog { line: 2, .. }) => {}
            other => panic!("expected line-2 error, got {other:?}"),
        }
        assert!(DigestRecord::parse("epoch=1 epoch=2", 1).is_err());
        assert!(DigestRecord::parse("epoch=1 cycle=1 digest=zz rays_remaining=0", 1).is_err());
    }

    fn rec(epoch: u64, digest: u64) -> DigestRecord {
        DigestRecord {
            epoch,
            cycle: epoch * 1000,
            digest,
            rays_remaining: 0,
        }
    }

    #[test]
    fn bisection_finds_the_first_divergent_epoch() {
        let a: Vec<DigestRecord> = (0..100).map(|e| rec(e, e)).collect();
        let mut b = a.clone();
        for r in &mut b[37..] {
            r.digest ^= 0xbad;
        }
        let (ra, rb) = first_divergence(&a, &b).expect("divergence must be found");
        assert_eq!(ra.epoch, 37);
        assert_eq!(ra.digest, 37);
        assert_eq!(rb.digest, 37 ^ 0xbad);
    }

    #[test]
    fn identical_and_prefix_logs_do_not_diverge() {
        let a: Vec<DigestRecord> = (0..50).map(|e| rec(e, e * 3)).collect();
        assert_eq!(first_divergence(&a, &a), None);
        // A truncated run that agrees on its whole prefix is not a
        // divergence.
        assert_eq!(first_divergence(&a, &a[..20]), None);
        assert_eq!(first_divergence(&a[..20], &a), None);
        assert_eq!(first_divergence(&a, &[]), None);
    }

    #[test]
    fn divergence_at_the_first_and_last_epoch() {
        let a: Vec<DigestRecord> = (0..10).map(|e| rec(e, 1)).collect();
        let mut b = a.clone();
        for r in &mut b {
            r.digest = 2;
        }
        assert_eq!(first_divergence(&a, &b).unwrap().0.epoch, 0);
        let mut c = a.clone();
        c[9].digest = 9;
        assert_eq!(first_divergence(&a, &c).unwrap().0.epoch, 9);
    }
}
