//! Simulation configuration (the paper's Table 1 plus the treelet knobs).

use crate::error::ConfigError;
use crate::prefetch::{MappingMode, PrefetchHeuristic, VoterKind};
use crate::traversal::{TraversalAlgorithm, TraversalOptions};
use crate::treelet::{FormationPolicy, DEFAULT_TREELET_BYTES};
use crate::workloads::BounceKind;
use rt_gpu_sim::MemConfig;
use std::fmt;

/// How BVH memory is laid out for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutChoice {
    /// Baseline depth-first node order.
    DepthFirst,
    /// Treelet-packed layout with an optional extra inter-treelet stride
    /// (Fig. 15's DRAM load-balancing knob).
    TreeletPacked {
        /// Extra bytes between treelet slots (0 or 256 in the paper).
        extra_stride: u64,
    },
    /// Unmodified (depth-first) layout plus a node-to-treelet mapping
    /// table the prefetcher must consult (§4.4).
    MappingTable,
}

impl fmt::Display for LayoutChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutChoice::DepthFirst => write!(f, "depth-first"),
            LayoutChoice::TreeletPacked { extra_stride } => {
                write!(f, "treelet-packed(+{extra_stride}B)")
            }
            LayoutChoice::MappingTable => write!(f, "mapping-table"),
        }
    }
}

/// Which prefetcher (if any) the RT unit runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchConfig {
    /// No prefetching (the baseline RT unit).
    None,
    /// The paper's treelet prefetcher.
    Treelet {
        /// Prefetch heuristic (§4.2).
        heuristic: PrefetchHeuristic,
        /// Majority voter implementation (§4.1.1).
        voter: VoterKind,
        /// Voter latency in cycles (Fig. 16 sweeps 0–512).
        latency: u64,
        /// How treelet membership is learned (§4.4).
        mapping: MappingMode,
    },
    /// The Lee et al. many-thread-aware stride prefetcher, implemented
    /// optimistically with infinite tables (Fig. 8's comparison).
    Mta,
    /// A global-history-buffer prefetcher (§2.3), the classic
    /// irregular-pattern prefetcher the paper argues cannot capture
    /// per-ray miss sequences.
    Ghb,
    /// The Demoullin et al. hash-based ray-path predictor: quantize a
    /// ray's origin and direction into a seeded hash key, remember the
    /// node-line path of the most recent same-key ray, and prefetch
    /// that path when a similar ray enters the warp buffer.
    Hash {
        /// Prediction-table capacity in entries (FIFO eviction).
        table_capacity: usize,
        /// Origin quantization bits per axis (grid of `2^bits` cells
        /// over the scene bounds).
        origin_bits: u32,
        /// Direction quantization bits per axis.
        dir_bits: u32,
        /// Node lines remembered (and prefetched) per path.
        max_path_lines: usize,
        /// Seed folded into the ray hash.
        seed: u64,
    },
}

impl PrefetchConfig {
    /// No prefetcher (the baseline RT unit).
    pub fn none() -> Self {
        PrefetchConfig::None
    }

    /// The paper's default treelet prefetcher: ALWAYS heuristic, ideal
    /// voter, packed layout.
    pub fn treelet() -> Self {
        PrefetchConfig::Treelet {
            heuristic: PrefetchHeuristic::Always,
            voter: VoterKind::Full,
            latency: 0,
            mapping: MappingMode::Packed,
        }
    }

    /// The Lee et al. many-thread-aware stride prefetcher.
    pub fn mta() -> Self {
        PrefetchConfig::Mta
    }

    /// The global-history-buffer prefetcher.
    pub fn ghb() -> Self {
        PrefetchConfig::Ghb
    }

    /// The hash-based ray-path predictor with its paper-flavored
    /// defaults: a 4096-entry table, 3-bit origin/direction grids, and
    /// 16-line paths.
    ///
    /// The grids must be coarse for the predictor to function at all:
    /// two rays only share a prediction when every quantized cell
    /// matches, so fine grids (5+ bits per axis) make keys effectively
    /// unique within a frame and the table never hits. Sweep
    /// `--hash-quant` to explore the aliasing/accuracy trade-off.
    pub fn hash() -> Self {
        PrefetchConfig::Hash {
            table_capacity: 4096,
            origin_bits: 3,
            dir_bits: 3,
            max_path_lines: 16,
            seed: 0x6861_7368, // "hash"
        }
    }

    /// The paper's default treelet prefetcher.
    #[deprecated(note = "use PrefetchConfig::treelet()")]
    pub fn treelet_default() -> Self {
        PrefetchConfig::treelet()
    }

    /// `true` if any prefetcher is active.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PrefetchConfig::None)
    }

    /// Validates the variant's own knobs (the cross-field layout checks
    /// live in [`SimConfig::validate`]).
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if let PrefetchConfig::Hash {
            table_capacity,
            origin_bits,
            dir_bits,
            max_path_lines,
            ..
        } = self
        {
            if *table_capacity == 0 {
                return Err(ConfigError::InvalidHashPrefetcher {
                    what: "table capacity must be nonzero",
                });
            }
            if *max_path_lines == 0 {
                return Err(ConfigError::InvalidHashPrefetcher {
                    what: "path line cap must be nonzero",
                });
            }
            if !(1..=16).contains(origin_bits) || !(1..=16).contains(dir_bits) {
                return Err(ConfigError::InvalidHashPrefetcher {
                    what: "quantization bits must be between 1 and 16",
                });
            }
        }
        Ok(())
    }
}

/// A simplified shader program the SM runs around its `traceRay` calls
/// (paper Fig. 2: warps execute shader code on the SM's execution units;
/// the RT unit only handles traversal).
///
/// Each warp issues `raygen_ops` shader operations (one per cycle on the
/// SM's shared issue port, arbitrated oldest-first across warps), calls
/// `traceRay`, waits for the RT unit, runs `shade_ops` operations on the
/// results, and — for `bounces > 0` — traces the bounce rays derived from
/// the hits, with dead lanes masked off SIMT-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaderProgram {
    /// Shader operations before the first `traceRay`.
    pub raygen_ops: u64,
    /// Shader operations between a generation's results and the next
    /// `traceRay` (closest-hit/miss shading).
    pub shade_ops: u64,
    /// Secondary ray generations (0 = primary rays only).
    pub bounces: u32,
    /// How bounce directions are derived from hits.
    pub bounce_kind: BounceKind,
    /// RNG seed for diffuse bounces.
    pub seed: u64,
}

impl ShaderProgram {
    /// A small path-tracing-style program: light raygen, one diffuse
    /// bounce, moderate shading.
    pub fn path_tracer() -> Self {
        ShaderProgram {
            raygen_ops: 32,
            shade_ops: 64,
            bounces: 1,
            bounce_kind: BounceKind::Diffuse,
            seed: 0x5ade,
        }
    }
}

/// Where treelet prefetches are installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchDestination {
    /// Into the requesting SM's L1 (the paper's design).
    #[default]
    L1,
    /// Into the shared L2 only — avoids L1 pollution at the cost of the
    /// L2 hit latency on first use (an extension experiment).
    L2,
}

impl fmt::Display for PrefetchDestination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrefetchDestination::L1 => "L1",
            PrefetchDestination::L2 => "L2",
        })
    }
}

/// RT-unit warp scheduling policy (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerPolicy {
    /// Oldest non-stalled warp (the baseline).
    Baseline,
    /// Oldest warp with a ray Matching the prefetched treelet (OMR).
    OldestMatchingRay,
    /// The warp with the Most Rays matching the prefetched treelet (PMR).
    PrioritizeMostRays,
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulerPolicy::Baseline => "baseline",
            SchedulerPolicy::OldestMatchingRay => "OMR",
            SchedulerPolicy::PrioritizeMostRays => "PMR",
        })
    }
}

/// Periodic checkpointing of a running simulation.
///
/// Every `every` cycles (an *epoch*), the engine serializes its complete
/// dynamic state into `path` — atomically, so a crash at any instant
/// leaves either the previous checkpoint or the new one, never a torn
/// file. `try_resume` restarts a killed run from that file and produces
/// a bit-identical [`SimResult`](crate::SimResult) to the uninterrupted
/// run.
///
/// # Examples
///
/// ```no_run
/// use treelet_rt::CheckpointOptions;
///
/// let opts = CheckpointOptions::new(10_000, "/tmp/run.rtsnap")
///     .with_digest_log("/tmp/run.digests");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Cycles between checkpoints (must be nonzero).
    pub every: u64,
    /// Checkpoint file, atomically replaced at each epoch.
    pub path: std::path::PathBuf,
    /// Optional replay-digest log: one `epoch=…` line per epoch,
    /// truncated back to the resumed epoch on resume. Two runs are
    /// bit-identical exactly when their logs match; `bisect-divergence`
    /// compares two such logs.
    pub digest_log: Option<std::path::PathBuf>,
}

impl CheckpointOptions {
    /// Checkpointing every `every` cycles into `path`, with no digest
    /// log.
    pub fn new(every: u64, path: impl Into<std::path::PathBuf>) -> Self {
        CheckpointOptions {
            every,
            path: path.into(),
            digest_log: None,
        }
    }

    /// Returns a copy that also appends per-epoch state digests to
    /// `path`.
    pub fn with_digest_log(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.digest_log = Some(path.into());
        self
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroCheckpointInterval`] if `every` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.every == 0 {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        Ok(())
    }
}

/// Full simulation configuration.
///
/// # Examples
///
/// ```
/// use treelet_rt::SimConfig;
///
/// let baseline = SimConfig::paper_baseline();
/// let treelet = SimConfig::paper_treelet_prefetch();
/// assert!(!baseline.prefetch.is_enabled());
/// assert!(treelet.prefetch.is_enabled());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of streaming multiprocessors (Table 1: 8).
    pub num_sms: usize,
    /// Threads per warp (Table 1: 32).
    pub warp_size: usize,
    /// RT-unit warp buffer entries (Table 1: 16).
    pub warp_buffer_size: usize,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Ray traversal algorithm.
    pub traversal: TraversalAlgorithm,
    /// Traversal ablation knobs (child ordering, early termination).
    pub traversal_options: TraversalOptions,
    /// Treelet formation growth policy (§3.1; extra policies explore the
    /// paper's §8 future work).
    pub formation: FormationPolicy,
    /// BVH memory layout.
    pub layout: LayoutChoice,
    /// Maximum treelet size in bytes (512 default; Fig. 19 sweeps).
    pub treelet_bytes: u64,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// Where treelet prefetches are installed (extension; the paper uses
    /// the L1).
    pub prefetch_destination: PrefetchDestination,
    /// Also prefetch the triangle data referenced by the treelet's leaf
    /// nodes (extension; the paper prefetches node records only).
    pub prefetch_triangles: bool,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// RT-unit operation latency of a ray-box (node) test, cycles.
    pub node_test_latency: u64,
    /// RT-unit operation latency of a ray-triangle (leaf) test, cycles.
    pub tri_test_latency: u64,
    /// Demand lines the RT unit's memory scheduler issues from the
    /// selected warp per cycle (the L1 access-queue width).
    pub issue_width: usize,
    /// Cycles of ray-generation shader work separating consecutive warps'
    /// `traceRay` issues on one SM (0 = all warps arrive immediately, the
    /// trace-replay idealization; a real shader core staggers them).
    /// Ignored when `shader` is set — the shader model supersedes it.
    pub raygen_interval: u64,
    /// Optional SM shader-pipeline model wrapped around the RT unit
    /// (None = pure trace replay, the paper's §5 methodology).
    pub shader: Option<ShaderProgram>,
    /// Prefetch queue capacity in entries.
    pub prefetch_queue_capacity: usize,
    /// Hard cycle limit (deadlock guard).
    pub max_cycles: u64,
    /// Forward-progress watchdog window, cycles: if no ray retires and no
    /// memory response drains for this many consecutive cycles (and no
    /// future work is scheduled), the run aborts with
    /// [`SimError::NoForwardProgress`](crate::SimError::NoForwardProgress)
    /// instead of spinning until `max_cycles`.
    pub progress_window: u64,
    /// Fast-forward the cycle loop across provably idle stretches (no
    /// queued work anywhere, every pending event strictly in the future).
    /// The skip is exact — cycle counts, occupancy integrals, watchdog
    /// behavior and state digests are bit-identical with it off — so it
    /// only trades wall-clock time. On by default; turn off to force the
    /// naive cycle-by-cycle loop (e.g. when bisecting the engine itself).
    pub idle_skip: bool,
}

impl SimConfig {
    /// The unmodified baseline RT unit: DFS traversal, depth-first layout,
    /// no prefetching.
    pub fn paper_baseline() -> Self {
        SimConfig {
            num_sms: 8,
            warp_size: 32,
            warp_buffer_size: 16,
            mem: MemConfig::paper_default(),
            traversal: TraversalAlgorithm::BaselineDfs,
            traversal_options: TraversalOptions::default(),
            formation: FormationPolicy::GreedyBfs,
            layout: LayoutChoice::DepthFirst,
            treelet_bytes: DEFAULT_TREELET_BYTES,
            prefetch: PrefetchConfig::None,
            prefetch_destination: PrefetchDestination::L1,
            prefetch_triangles: false,
            scheduler: SchedulerPolicy::Baseline,
            node_test_latency: 4,
            tri_test_latency: 8,
            issue_width: 4,
            raygen_interval: 0,
            shader: None,
            prefetch_queue_capacity: 64,
            max_cycles: 200_000_000,
            progress_window: 1_000_000,
            idle_skip: true,
        }
    }

    /// Treelet-based traversal without prefetching (Fig. 9's lower bars).
    pub fn paper_treelet_traversal_only() -> Self {
        SimConfig {
            traversal: TraversalAlgorithm::TwoStackTreelet,
            layout: LayoutChoice::TreeletPacked { extra_stride: 0 },
            ..SimConfig::paper_baseline()
        }
    }

    /// The paper's headline configuration (Fig. 7): treelet traversal +
    /// treelet prefetching with the ALWAYS heuristic, PMR scheduler, and
    /// 512-byte treelets.
    pub fn paper_treelet_prefetch() -> Self {
        SimConfig {
            traversal: TraversalAlgorithm::TwoStackTreelet,
            layout: LayoutChoice::TreeletPacked { extra_stride: 0 },
            prefetch: PrefetchConfig::treelet(),
            scheduler: SchedulerPolicy::PrioritizeMostRays,
            ..SimConfig::paper_baseline()
        }
    }

    /// Returns a copy with a different heuristic (treelet prefetch runs).
    pub fn with_heuristic(mut self, heuristic: PrefetchHeuristic) -> Self {
        if let PrefetchConfig::Treelet { heuristic: h, .. } = &mut self.prefetch {
            *h = heuristic;
        }
        self
    }

    /// Returns a copy with a different scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with a different treelet byte budget.
    pub fn with_treelet_bytes(mut self, bytes: u64) -> Self {
        self.treelet_bytes = bytes;
        self
    }

    /// Returns a copy with a different voter and latency.
    pub fn with_voter(mut self, kind: VoterKind, latency_cycles: u64) -> Self {
        if let PrefetchConfig::Treelet { voter, latency, .. } = &mut self.prefetch {
            *voter = kind;
            *latency = latency_cycles;
        }
        self
    }

    /// Returns a copy running the given prefetcher.
    ///
    /// For a treelet prefetcher the memory layout is reconciled with the
    /// mapping mode (packed layout for [`MappingMode::Packed`], the
    /// mapping-table layout otherwise), mirroring
    /// [`SimConfig::with_mapping_mode`]; other prefetchers leave the
    /// layout untouched.
    pub fn with_prefetcher(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        if let PrefetchConfig::Treelet { mapping, .. } = prefetch {
            self.layout = match mapping {
                MappingMode::Packed => LayoutChoice::TreeletPacked { extra_stride: 0 },
                _ => LayoutChoice::MappingTable,
            };
        }
        self
    }

    /// Returns a copy using the unmodified BVH + mapping-table option.
    pub fn with_mapping_mode(mut self, mode: MappingMode) -> Self {
        if let PrefetchConfig::Treelet { mapping, .. } = &mut self.prefetch {
            *mapping = mode;
        }
        self.layout = match mode {
            MappingMode::Packed => LayoutChoice::TreeletPacked { extra_stride: 0 },
            _ => LayoutChoice::MappingTable,
        };
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found: zero-sized structures, a
    /// treelet budget below one node, a prefetcher mapping mode
    /// incompatible with the memory layout, or a zero watchdog window.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_sms == 0 || self.warp_size == 0 || self.warp_buffer_size == 0 {
            return Err(ConfigError::ZeroSizedStructure);
        }
        if self.treelet_bytes < 64 {
            return Err(ConfigError::TreeletBudgetTooSmall {
                bytes: self.treelet_bytes,
            });
        }
        if self.progress_window == 0 {
            return Err(ConfigError::ZeroProgressWindow);
        }
        if let PrefetchConfig::Treelet { mapping, .. } = self.prefetch {
            match (mapping, self.layout) {
                (MappingMode::Packed, LayoutChoice::TreeletPacked { .. }) => {}
                (MappingMode::LooseWait | MappingMode::StrictWait, LayoutChoice::MappingTable) => {}
                (mapping, layout) => {
                    return Err(ConfigError::IncompatibleMapping { mapping, layout })
                }
            }
        }
        self.prefetch.validate()?;
        Ok(())
    }

    /// Warp-buffer ray capacity (the popularity-ratio denominator).
    pub fn warp_buffer_rays(&self) -> u32 {
        (self.warp_buffer_size * self.warp_size) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::paper_baseline().validate().unwrap();
        SimConfig::paper_treelet_traversal_only()
            .validate()
            .unwrap();
        SimConfig::paper_treelet_prefetch().validate().unwrap();
    }

    #[test]
    fn paper_table_1_values() {
        let c = SimConfig::paper_baseline();
        assert_eq!(c.num_sms, 8);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.warp_buffer_size, 16);
        assert_eq!(c.warp_buffer_rays(), 512);
        assert_eq!(c.mem.l1_lines * c.mem.line_bytes as usize, 64 * 1024);
        assert_eq!(c.mem.l2_lines * c.mem.line_bytes as usize, 3 * 1024 * 1024);
        assert_eq!(c.mem.core_clock_mhz, 1365);
        assert_eq!(c.mem.mem_clock_mhz, 3500);
    }

    #[test]
    fn mapping_mode_builder_keeps_config_consistent() {
        let strict = SimConfig::paper_treelet_prefetch().with_mapping_mode(MappingMode::StrictWait);
        strict.validate().unwrap();
        assert_eq!(strict.layout, LayoutChoice::MappingTable);
        let packed = strict.with_mapping_mode(MappingMode::Packed);
        packed.validate().unwrap();
        assert_eq!(
            packed.layout,
            LayoutChoice::TreeletPacked { extra_stride: 0 }
        );
    }

    #[test]
    fn inconsistent_mapping_is_rejected() {
        let mut c = SimConfig::paper_treelet_prefetch();
        c.layout = LayoutChoice::DepthFirst;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_modify_fields() {
        let c = SimConfig::paper_treelet_prefetch()
            .with_heuristic(PrefetchHeuristic::Partial)
            .with_scheduler(SchedulerPolicy::OldestMatchingRay)
            .with_treelet_bytes(1024)
            .with_voter(VoterKind::PseudoTwoLevel, 32);
        assert_eq!(c.treelet_bytes, 1024);
        assert_eq!(c.scheduler, SchedulerPolicy::OldestMatchingRay);
        match c.prefetch {
            PrefetchConfig::Treelet {
                heuristic,
                voter,
                latency,
                ..
            } => {
                assert_eq!(heuristic, PrefetchHeuristic::Partial);
                assert_eq!(voter, VoterKind::PseudoTwoLevel);
                assert_eq!(latency, 32);
            }
            other => panic!("unexpected prefetch config {other:?}"),
        }
    }

    #[test]
    fn checkpoint_options_validate() {
        let opts = CheckpointOptions::new(5_000, "/tmp/ck.rtsnap").with_digest_log("/tmp/ck.log");
        opts.validate().unwrap();
        assert_eq!(opts.every, 5_000);
        assert!(opts.digest_log.is_some());
        assert_eq!(
            CheckpointOptions::new(0, "/tmp/ck.rtsnap").validate(),
            Err(ConfigError::ZeroCheckpointInterval)
        );
    }

    #[test]
    fn zero_treelet_budget_rejected() {
        let mut c = SimConfig::paper_baseline();
        c.treelet_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut c = SimConfig::paper_baseline();
        c.num_sms = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSizedStructure));

        let mut c = SimConfig::paper_baseline();
        c.treelet_bytes = 32;
        assert_eq!(
            c.validate(),
            Err(ConfigError::TreeletBudgetTooSmall { bytes: 32 })
        );

        let mut c = SimConfig::paper_baseline();
        c.progress_window = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroProgressWindow));

        let mut c = SimConfig::paper_treelet_prefetch();
        c.layout = LayoutChoice::DepthFirst;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::IncompatibleMapping {
                mapping: MappingMode::Packed,
                layout: LayoutChoice::DepthFirst,
            })
        ));
    }
}
