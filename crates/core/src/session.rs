//! One front door for every way to run the simulator.
//!
//! Three PRs of feature growth left nine overlapping `simulate*` free
//! functions; [`SimSession`] replaces that combinatorial surface with a
//! builder. Construct a session over a BVH, a ray set (or batches of
//! them), and a config, opt into telemetry / checkpointing / an external
//! treelet assignment, and run:
//!
//! ```no_run
//! use rt_scene::{SceneId, Workload};
//! use treelet_rt::{Bench, SimConfig, SimSession};
//!
//! let bench = Bench::prepare(SceneId::Wknd, 0.5, Workload::paper_default());
//! let result = SimSession::new(bench.bvh(), bench.rays(), SimConfig::paper_treelet_prefetch())
//!     .run()
//!     .expect("simulation");
//! println!("{} cycles, digest {:#018x}", result.cycles, result.state_digest);
//! ```
//!
//! Every option combination funnels into the same engine invocation, so
//! the result — including its
//! [`state_digest`](crate::SimResult::state_digest) — is bit-identical
//! regardless of which observers (telemetry, checkpointing) are
//! attached.

use crate::config::{CheckpointOptions, PrefetchConfig, SimConfig};
use crate::error::{ConfigError, SimError};
use crate::sim::{run_identity, try_run_engine, SimResult};
use crate::snapshot::{self, SnapshotError};
use crate::telemetry::{Telemetry, TelemetryOptions};
use crate::treelet::TreeletAssignment;
use rt_bvh::WideBvh;
use rt_geometry::Ray;
use rt_gpu_sim::MemorySystem;
use std::borrow::Cow;

/// Where a session's rays come from.
#[derive(Debug, Clone, Copy)]
enum RaySource<'a> {
    /// One ray set, run to retirement in a single engine invocation.
    Single(&'a [Ray]),
    /// Ray batches run back-to-back through one memory hierarchy —
    /// caches stay warm between batches, as between the bounce
    /// generations of a wavefront renderer.
    Batches(&'a [Vec<Ray>]),
}

/// A configured simulation run: the builder front end over the engine.
///
/// Build with [`SimSession::new`] (one ray set) or
/// [`SimSession::batched`] (warm-cache batches), chain option setters,
/// and finish with one of the `run*` methods. Options compose: a
/// checkpointed run can collect telemetry, a resumed run keeps
/// checkpointing on the same cadence, and an external treelet
/// assignment works with all of them. The only exclusions are typed
/// errors, not panics: batched sessions reject checkpointing and
/// resume ([`ConfigError::UnsupportedBatchOption`]).
#[derive(Debug)]
pub struct SimSession<'a> {
    bvh: &'a WideBvh,
    rays: RaySource<'a>,
    config: Cow<'a, SimConfig>,
    telemetry: Option<TelemetryOptions>,
    checkpoint: Option<CheckpointOptions>,
    resume: bool,
    treelets: Option<&'a TreeletAssignment>,
}

impl<'a> SimSession<'a> {
    /// A session over one ray set.
    pub fn new(bvh: &'a WideBvh, rays: &'a [Ray], config: SimConfig) -> SimSession<'a> {
        SimSession {
            bvh,
            rays: RaySource::Single(rays),
            config: Cow::Owned(config),
            telemetry: None,
            checkpoint: None,
            resume: false,
            treelets: None,
        }
    }

    /// A session over one ray set that borrows its config — for call
    /// sites that keep a config alive anyway and should not pay a clone
    /// per run (sweeps run thousands of sessions off a handful of
    /// configs).
    pub fn borrowed(bvh: &'a WideBvh, rays: &'a [Ray], config: &'a SimConfig) -> SimSession<'a> {
        SimSession {
            bvh,
            rays: RaySource::Single(rays),
            config: Cow::Borrowed(config),
            telemetry: None,
            checkpoint: None,
            resume: false,
            treelets: None,
        }
    }

    /// A session over ray batches sharing one memory hierarchy: caches
    /// stay warm between batches, each result's `cycles` is its batch's
    /// own duration, and cache/DRAM counters accumulate across the
    /// session (prefetch effectiveness is finalized on the last batch).
    pub fn batched(bvh: &'a WideBvh, batches: &'a [Vec<Ray>], config: SimConfig) -> SimSession<'a> {
        SimSession {
            bvh,
            rays: RaySource::Batches(batches),
            config: Cow::Owned(config),
            telemetry: None,
            checkpoint: None,
            resume: false,
            treelets: None,
        }
    }

    /// The borrowing form of [`SimSession::batched`].
    pub fn batched_borrowed(
        bvh: &'a WideBvh,
        batches: &'a [Vec<Ray>],
        config: &'a SimConfig,
    ) -> SimSession<'a> {
        SimSession {
            bvh,
            rays: RaySource::Batches(batches),
            config: Cow::Borrowed(config),
            telemetry: None,
            checkpoint: None,
            resume: false,
            treelets: None,
        }
    }

    /// Collects a [`Telemetry`] time-series, sampling the engine's
    /// counters every `opts.every` cycles. Sampling is read-only — the
    /// run's `state_digest` is bit-identical with telemetry on or off.
    /// Retrieve the series with [`SimSession::run_with_telemetry`] or
    /// [`SimSession::run_batches_with_telemetry`].
    pub fn telemetry(mut self, opts: TelemetryOptions) -> SimSession<'a> {
        self.telemetry = Some(opts);
        self
    }

    /// Writes a crash-safe checkpoint of the complete simulator state
    /// every `opts.every` cycles (and, when configured, appends a
    /// per-epoch state digest to `opts.digest_log`).
    pub fn checkpoint(mut self, opts: CheckpointOptions) -> SimSession<'a> {
        self.checkpoint = Some(opts);
        self
    }

    /// Resumes from the checkpoint at the configured
    /// [`checkpoint`](SimSession::checkpoint) path instead of starting
    /// fresh. The inputs must be the ones that produced the checkpoint
    /// (`max_cycles` and `progress_window` excluded); a mismatch is
    /// refused with [`SnapshotError::IdentityMismatch`]. The resumed
    /// run's result is bit-identical to an uninterrupted run's.
    pub fn resume_from_checkpoint(mut self) -> SimSession<'a> {
        self.resume = true;
        self
    }

    /// Uses an externally supplied treelet assignment instead of forming
    /// one from the config's budget — for experiments that reuse a
    /// *stale* assignment (e.g. animated scenes whose BVH was refitted
    /// without re-forming treelets). The packed-layout slot size comes
    /// from the assignment's byte budget.
    pub fn treelets(mut self, treelets: &'a TreeletAssignment) -> SimSession<'a> {
        self.treelets = Some(treelets);
        self
    }

    /// Selects the prefetcher this session runs — the builder form of
    /// [`SimConfig::with_prefetcher`]. Combine with the
    /// [`PrefetchConfig`] constructors:
    ///
    /// ```no_run
    /// # use rt_scene::{SceneId, Workload};
    /// # use treelet_rt::{Bench, PrefetchConfig, SimConfig, SimSession};
    /// # let bench = Bench::prepare(SceneId::Wknd, 0.3, Workload::paper_default());
    /// let result = SimSession::new(bench.bvh(), bench.rays(), SimConfig::paper_baseline())
    ///     .prefetcher(PrefetchConfig::hash())
    ///     .run()
    ///     .expect("hash-predictor run");
    /// ```
    ///
    /// For a treelet prefetcher this also reconciles the BVH layout with
    /// the prefetcher's mapping mode (see
    /// [`SimConfig::with_prefetcher`]); a borrowed config is cloned on
    /// first write.
    pub fn prefetcher(mut self, prefetch: PrefetchConfig) -> SimSession<'a> {
        let config = self.config.to_mut();
        *config = config.clone().with_prefetcher(prefetch);
        self
    }

    /// Estimated cost of running this session, in the cost-model
    /// scheduler's work units: BVH node count × total ray count (all
    /// batches for a batched session). The same estimate
    /// [`Bench::estimated_cost`](crate::Bench::estimated_cost) feeds to
    /// [`run_weighted`](crate::run_weighted) — callers scheduling raw
    /// sessions across a pool can weigh them identically.
    pub fn estimated_cost(&self) -> u64 {
        let rays = match &self.rays {
            RaySource::Single(rays) => rays.len(),
            RaySource::Batches(batches) => batches.iter().map(Vec::len).sum(),
        };
        (self.bvh.node_count() as u64).saturating_mul(rays.max(1) as u64)
    }

    /// Runs the session to completion. For a batched session this
    /// returns the final batch's result (the one whose prefetch
    /// effectiveness is finalized); use [`SimSession::run_batches`] for
    /// all of them.
    ///
    /// # Errors
    ///
    /// - [`SimError::Config`] for an invalid config, a zero telemetry or
    ///   checkpoint interval, resume without checkpointing, or a batched
    ///   session with checkpointing,
    /// - [`SimError::EmptyInput`] for an empty ray set or batch list,
    /// - [`SimError::TreeletCoverage`] if an external assignment does
    ///   not cover the BVH,
    /// - [`SimError::CycleLimitExceeded`] / [`SimError::NoForwardProgress`]
    ///   from the watchdog,
    /// - [`SimError::Snapshot`] for checkpoint I/O failures, corrupt or
    ///   foreign checkpoints,
    /// - [`SimError::BatchPoisoned`] when a batch leaves the shared
    ///   hierarchy with broken request books.
    pub fn run(self) -> Result<SimResult, SimError> {
        let (mut results, _) = self.execute()?;
        Ok(results.pop().expect("execute returns at least one result"))
    }

    /// Runs the session and returns the collected telemetry alongside
    /// the result. Uses the configured
    /// [`telemetry`](SimSession::telemetry) options, or the default
    /// sampling interval when none were set.
    ///
    /// # Errors
    ///
    /// As [`SimSession::run`].
    pub fn run_with_telemetry(mut self) -> Result<(SimResult, Telemetry), SimError> {
        if self.telemetry.is_none() {
            self.telemetry = Some(TelemetryOptions::default());
        }
        let (mut results, telemetry) = self.execute()?;
        let result = results.pop().expect("execute returns at least one result");
        Ok((result, telemetry.expect("telemetry options were set")))
    }

    /// Runs a batched session, returning one result per batch. A
    /// single-ray-set session returns one result.
    ///
    /// # Errors
    ///
    /// As [`SimSession::run`]. A failing batch aborts the session;
    /// earlier batches' results are discarded.
    pub fn run_batches(self) -> Result<Vec<SimResult>, SimError> {
        Ok(self.execute()?.0)
    }

    /// [`SimSession::run_batches`] plus the telemetry series sampled
    /// across the whole session (cycle stamps are monotonic across
    /// batches, since batches share one clock).
    ///
    /// # Errors
    ///
    /// As [`SimSession::run`].
    pub fn run_batches_with_telemetry(mut self) -> Result<(Vec<SimResult>, Telemetry), SimError> {
        if self.telemetry.is_none() {
            self.telemetry = Some(TelemetryOptions::default());
        }
        let (results, telemetry) = self.execute()?;
        Ok((results, telemetry.expect("telemetry options were set")))
    }

    /// Validates the option combination, forms treelets when none were
    /// supplied, and drives the engine. Always returns at least one
    /// result on success.
    fn execute(self) -> Result<(Vec<SimResult>, Option<Telemetry>), SimError> {
        let SimSession {
            bvh,
            rays,
            config,
            telemetry,
            checkpoint,
            resume,
            treelets,
        } = self;
        config.validate()?;
        if let Some(opts) = &telemetry {
            opts.validate()?;
        }
        if let Some(opts) = &checkpoint {
            opts.validate()?;
        }
        if resume && checkpoint.is_none() {
            return Err(ConfigError::ResumeWithoutCheckpoint.into());
        }
        let formed;
        let treelets = match treelets {
            Some(t) => t,
            None => {
                formed = TreeletAssignment::try_form_with_policy(
                    bvh,
                    config.treelet_bytes,
                    config.formation,
                )?;
                &formed
            }
        };
        let mut collected = telemetry.as_ref().map(Telemetry::new);
        match rays {
            RaySource::Single(rays) => {
                let resumed = match (&checkpoint, resume) {
                    (Some(opts), true) => {
                        let ck = snapshot::read_checkpoint(&opts.path)?;
                        let identity = run_identity(bvh, rays, &config, treelets);
                        if ck.identity != identity {
                            return Err(SnapshotError::IdentityMismatch {
                                expected: ck.identity,
                                found: identity,
                            }
                            .into());
                        }
                        Some(ck)
                    }
                    _ => None,
                };
                let mem = MemorySystem::new(config.mem, config.num_sms);
                let (result, _) = try_run_engine(
                    bvh,
                    rays,
                    &config,
                    treelets,
                    mem,
                    true,
                    checkpoint.as_ref(),
                    resumed,
                    collected.as_mut(),
                )?;
                Ok((vec![result], collected))
            }
            RaySource::Batches(batches) => {
                if checkpoint.is_some() {
                    let what = if resume { "resume" } else { "checkpointing" };
                    return Err(ConfigError::UnsupportedBatchOption { what }.into());
                }
                if batches.is_empty() {
                    return Err(SimError::EmptyInput { what: "batch" });
                }
                let mut mem = MemorySystem::new(config.mem, config.num_sms);
                let mut results = Vec::with_capacity(batches.len());
                for (i, batch) in batches.iter().enumerate() {
                    let finalize = i + 1 == batches.len();
                    let (result, returned) = try_run_engine(
                        bvh,
                        batch,
                        &config,
                        treelets,
                        mem,
                        finalize,
                        None,
                        None,
                        collected.as_mut(),
                    )?;
                    // A completed batch can still have wrecked the
                    // hierarchy's request books (fault injection dropping
                    // a prefetch response nobody was waiting on); the
                    // next batch would inherit leaked MSHRs, so refuse
                    // with a typed error instead of running on.
                    let audit = returned.audit();
                    if !finalize
                        && (audit.double_completions > 0 || audit.dropped_responses > 0)
                    {
                        return Err(SimError::BatchPoisoned {
                            batch: i,
                            dropped_responses: audit.dropped_responses,
                            double_completions: audit.double_completions,
                        });
                    }
                    mem = returned;
                    results.push(result);
                }
                Ok((results, collected))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::{Scene, SceneId, Workload, WorkloadKind};

    fn fixture() -> (WideBvh, Vec<Ray>) {
        let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
        let rays = Workload::new(WorkloadKind::Primary, 8, 8).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        (bvh, rays)
    }

    /// Fresh per-test scratch directory under the system temp dir.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("treelet-session-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    #[allow(deprecated)]
    fn session_matches_every_legacy_entry_point() {
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_treelet_prefetch();
        let legacy = crate::try_simulate(&bvh, &rays, &config).unwrap();
        let session = SimSession::new(&bvh, &rays, config.clone()).run().unwrap();
        assert_eq!(legacy.state_digest, session.state_digest);
        assert_eq!(legacy.cycles, session.cycles);

        let treelets = TreeletAssignment::try_form(&bvh, config.treelet_bytes).unwrap();
        let legacy_t =
            crate::try_simulate_with_treelets(&bvh, &rays, &config, &treelets).unwrap();
        let session_t = SimSession::new(&bvh, &rays, config.clone())
            .treelets(&treelets)
            .run()
            .unwrap();
        assert_eq!(legacy_t.state_digest, session_t.state_digest);

        let opts = TelemetryOptions::new(128);
        let (legacy_r, legacy_tel) =
            crate::try_simulate_with_telemetry(&bvh, &rays, &config, &opts).unwrap();
        let (session_r, session_tel) = SimSession::new(&bvh, &rays, config.clone())
            .telemetry(opts)
            .run_with_telemetry()
            .unwrap();
        assert_eq!(legacy_r.state_digest, session_r.state_digest);
        assert_eq!(legacy_tel.samples(), session_tel.samples());

        let batches = vec![rays[..32].to_vec(), rays[32..].to_vec()];
        let legacy_b = crate::try_simulate_batches(&bvh, &batches, &config).unwrap();
        let session_b = SimSession::batched(&bvh, &batches, config)
            .run_batches()
            .unwrap();
        assert_eq!(legacy_b.len(), session_b.len());
        for (a, b) in legacy_b.iter().zip(&session_b) {
            assert_eq!(a.state_digest, b.state_digest);
            assert_eq!(a.cycles, b.cycles);
        }
    }

    #[test]
    fn full_builder_combination_is_zero_perturbation() {
        // Telemetry + checkpointing + an external treelet assignment in
        // one run — a combination the legacy entry points never offered.
        // All observers are read-only or digest-neutral, so the result
        // matches the bare run bit for bit.
        let (bvh, rays) = fixture();
        let config = SimConfig::paper_treelet_prefetch();
        let treelets = TreeletAssignment::try_form(&bvh, config.treelet_bytes).unwrap();
        let plain = SimSession::new(&bvh, &rays, config.clone()).run().unwrap();

        let dir = scratch("combo");
        let ck = CheckpointOptions::new(500, dir.join("combo.rtsnap"))
            .with_digest_log(dir.join("combo.digests"));
        let (decked, telemetry) = SimSession::new(&bvh, &rays, config.clone())
            .treelets(&treelets)
            .checkpoint(ck.clone())
            .telemetry(TelemetryOptions::new(250))
            .run_with_telemetry()
            .unwrap();
        assert_eq!(plain.state_digest, decked.state_digest);
        assert_eq!(plain.cycles, decked.cycles);
        assert!(!telemetry.is_empty());
        assert!(ck.path.exists(), "checkpoint left in place");

        // The left-over final checkpoint resumes — with telemetry still
        // attached — and replays the tail onto the same final state.
        let (resumed, _) = SimSession::new(&bvh, &rays, config)
            .treelets(&treelets)
            .checkpoint(ck)
            .resume_from_checkpoint()
            .telemetry(TelemetryOptions::new(250))
            .run_with_telemetry()
            .unwrap();
        assert_eq!(plain.state_digest, resumed.state_digest);
        assert_eq!(plain.cycles, resumed.cycles);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetcher_builder_rewrites_the_config() {
        let (bvh, rays) = fixture();
        let base = SimConfig::paper_baseline();
        let direct = SimSession::new(
            &bvh,
            &rays,
            base.clone().with_prefetcher(PrefetchConfig::mta()),
        )
        .run()
        .unwrap();
        // A borrowed config is cloned on first write, leaving the
        // original untouched.
        let built = SimSession::borrowed(&bvh, &rays, &base)
            .prefetcher(PrefetchConfig::mta())
            .run()
            .unwrap();
        assert_eq!(base.prefetch, PrefetchConfig::None);
        assert_eq!(direct.state_digest, built.state_digest);
        assert!(built.mta.is_some());

        // Hash runs surface hash stats and are deterministic.
        let a = SimSession::new(&bvh, &rays, base.clone())
            .prefetcher(PrefetchConfig::hash())
            .run()
            .unwrap();
        let b = SimSession::new(&bvh, &rays, base)
            .prefetcher(PrefetchConfig::hash())
            .run()
            .unwrap();
        assert_eq!(a.state_digest, b.state_digest);
        assert!(a.hash.is_some(), "hash stats reported");
    }

    #[test]
    fn resume_without_checkpoint_is_a_typed_error() {
        let (bvh, rays) = fixture();
        let err = SimSession::new(&bvh, &rays, SimConfig::paper_baseline())
            .resume_from_checkpoint()
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::ResumeWithoutCheckpoint)
        ));
        assert!(err.to_string().contains("requires checkpoint options"));
    }

    #[test]
    fn batched_sessions_reject_checkpointing_and_resume() {
        let (bvh, rays) = fixture();
        let batches = vec![rays.clone()];
        let ck = CheckpointOptions::new(500, std::env::temp_dir().join("never-written.rtsnap"));
        let err = SimSession::batched(&bvh, &batches, SimConfig::paper_baseline())
            .checkpoint(ck.clone())
            .run_batches()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::UnsupportedBatchOption {
                what: "checkpointing"
            })
        ));
        let err = SimSession::batched(&bvh, &batches, SimConfig::paper_baseline())
            .checkpoint(ck)
            .resume_from_checkpoint()
            .run_batches()
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::UnsupportedBatchOption { what: "resume" })
        ));
    }

    #[test]
    fn batched_telemetry_spans_the_whole_session() {
        let (bvh, rays) = fixture();
        let batches = vec![rays[..32].to_vec(), rays[32..].to_vec()];
        let config = SimConfig::paper_treelet_prefetch();
        let plain = SimSession::batched(&bvh, &batches, config.clone())
            .run_batches()
            .unwrap();
        let (sampled, telemetry) = SimSession::batched(&bvh, &batches, config)
            .telemetry(TelemetryOptions::new(128))
            .run_batches_with_telemetry()
            .unwrap();
        for (a, b) in plain.iter().zip(&sampled) {
            assert_eq!(a.state_digest, b.state_digest);
        }
        // One monotonic cycle axis across both batches — they share a
        // clock, so the series never rewinds at a batch boundary.
        let samples = telemetry.samples();
        assert!(!samples.is_empty());
        assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn poisoned_batch_is_a_typed_error_not_a_panic() {
        // Drop the nth DRAM response for increasing n. A dropped demand
        // response livelocks that batch (watchdog, typed error); a
        // dropped *prefetch* response lets the batch complete with
        // broken request books, which the session must refuse before
        // running the next batch — never carry corrupt state forward,
        // never panic.
        let (bvh, rays) = fixture();
        let batches = vec![rays[..32].to_vec(), rays[32..].to_vec()];
        let mut poisoned = 0;
        let mut watchdogged = 0;
        for n in 0..24 {
            let mut config = SimConfig::paper_treelet_prefetch();
            config.progress_window = 20_000;
            config.mem.fault_injection =
                Some(rt_gpu_sim::FaultInjection::drop_nth_dram_send(7, n));
            match SimSession::batched(&bvh, &batches, config).run_batches() {
                Ok(results) => assert_eq!(results.len(), 2),
                Err(SimError::BatchPoisoned {
                    dropped_responses, ..
                }) => {
                    assert!(dropped_responses > 0);
                    poisoned += 1;
                }
                Err(SimError::NoForwardProgress { .. })
                | Err(SimError::CycleLimitExceeded { .. }) => watchdogged += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // The sweep must have exercised the poisoned-handoff path (and
        // typically the watchdog path too) — otherwise this test proves
        // nothing.
        assert!(poisoned > 0, "no drop index poisoned a completed batch");
        assert!(watchdogged > 0, "no drop index hit a demand response");
    }
}
