//! A global-history-buffer (GHB) prefetcher, the classic
//! irregular-pattern CPU prefetcher the paper's §2.3/§2.4 argues is
//! unsuited to BVH traversal.
//!
//! The GHB links occurrences of the same miss address in temporal order
//! (Nesbit & Smith, HPCA 2004). On a miss, the prefetcher finds the
//! previous occurrence of the address in the history and prefetches the
//! addresses that followed it then, betting that history repeats. For ray
//! tracing, each ray's miss sequence is essentially unique (§2.4), so the
//! replayed successors rarely match the future — which is exactly what
//! this model demonstrates next to the treelet prefetcher in Fig. 8.

use std::collections::{HashMap, VecDeque};

use rt_gpu_sim::{ByteReader, ByteWriter, DecodeError};

/// Counters for the GHB prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GhbStats {
    /// Miss addresses observed.
    pub observed: u64,
    /// Observations whose address had a prior occurrence in the history.
    pub history_hits: u64,
    /// Prefetch lines enqueued.
    pub prefetches_enqueued: u64,
}

impl GhbStats {
    pub(crate) fn merge(&mut self, other: &GhbStats) {
        self.observed += other.observed;
        self.history_hits += other.history_hits;
        self.prefetches_enqueued += other.prefetches_enqueued;
    }
}

/// Global history buffer prefetcher with address-indexed lookup.
///
/// # Examples
///
/// ```
/// use treelet_rt::GhbPrefetcher;
///
/// let mut ghb = GhbPrefetcher::new(1024, 2, 64, 128);
/// // A repeating sequence lets the GHB predict successors.
/// for _ in 0..2 {
///     for addr in [0x1000u64, 0x2000, 0x3000] {
///         ghb.observe(addr);
///     }
/// }
/// assert!(ghb.pop().is_some());
/// ```
#[derive(Debug)]
pub struct GhbPrefetcher {
    /// Miss addresses in temporal order (bounded FIFO).
    history: VecDeque<u64>,
    /// Number of entries ever evicted from the front (so positions are
    /// stable indices into the virtual full history).
    evicted: u64,
    /// Most recent virtual position of each address.
    index: HashMap<u64, u64>,
    capacity: usize,
    degree: u32,
    line_bytes: u64,
    queue: VecDeque<u64>,
    queue_capacity: usize,
    stats: GhbStats,
}

impl GhbPrefetcher {
    /// Creates a GHB with `capacity` history entries, prefetching
    /// `degree` successors per history hit.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(capacity: usize, degree: u32, line_bytes: u64, queue_capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be nonzero");
        assert!(degree > 0, "prefetch degree must be nonzero");
        assert!(line_bytes > 0, "line size must be nonzero");
        assert!(queue_capacity > 0, "queue capacity must be nonzero");
        GhbPrefetcher {
            history: VecDeque::with_capacity(capacity),
            evicted: 0,
            index: HashMap::new(),
            capacity,
            degree,
            line_bytes,
            queue: VecDeque::new(),
            queue_capacity,
            stats: GhbStats::default(),
        }
    }

    /// A generous configuration (large history, degree 4) so the
    /// comparison is optimistic for the GHB, as the paper is for MTA.
    pub fn paper_default(line_bytes: u64) -> Self {
        GhbPrefetcher::new(4096, 4, line_bytes, 256)
    }

    /// Observes a demand miss at `addr`; on a history hit, enqueues the
    /// addresses that followed the previous occurrence.
    pub fn observe(&mut self, addr: u64) {
        self.stats.observed += 1;
        let line = addr / self.line_bytes * self.line_bytes;
        if let Some(&prev_pos) = self.index.get(&line) {
            self.stats.history_hits += 1;
            // Replay the successors of the previous occurrence.
            for k in 1..=self.degree as u64 {
                let virtual_pos = prev_pos + k;
                let Some(idx) = virtual_pos.checked_sub(self.evicted) else {
                    continue;
                };
                let Some(&succ) = self.history.get(idx as usize) else {
                    break;
                };
                if self.queue.len() >= self.queue_capacity {
                    break;
                }
                if succ != line {
                    self.queue.push_back(succ);
                    self.stats.prefetches_enqueued += 1;
                }
            }
        }
        // Append to the history, evicting the oldest if full.
        if self.history.len() == self.capacity {
            if let Some(old) = self.history.pop_front() {
                // Only clear the index if it still points at the evicted
                // position.
                if self.index.get(&old) == Some(&self.evicted) {
                    self.index.remove(&old);
                }
                self.evicted += 1;
            }
        }
        let pos = self.evicted + self.history.len() as u64;
        self.history.push_back(line);
        self.index.insert(line, pos);
    }

    /// Pops the next prefetch line address.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop_front()
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> GhbStats {
        self.stats
    }

    /// Serializes the dynamic prefetcher state (the index map sorted by
    /// address for a canonical byte stream; configuration fields are
    /// rebuilt from the simulator config at resume).
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.history.len());
        for &line in &self.history {
            w.put_u64(line);
        }
        w.put_u64(self.evicted);
        let mut index: Vec<(u64, u64)> = self.index.iter().map(|(&k, &v)| (k, v)).collect();
        index.sort_unstable();
        w.put_len(index.len());
        for (line, pos) in index {
            w.put_u64(line);
            w.put_u64(pos);
        }
        w.put_len(self.queue.len());
        for &line in &self.queue {
            w.put_u64(line);
        }
        w.put_u64(self.stats.observed);
        w.put_u64(self.stats.history_hits);
        w.put_u64(self.stats.prefetches_enqueued);
    }

    /// Restores dynamic state captured by
    /// [`GhbPrefetcher::encode_state`] onto a freshly constructed
    /// prefetcher (same configuration).
    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        let n = r.take_len(8)?;
        if n > self.capacity {
            return Err(DecodeError::malformed(format!(
                "GHB history length {n} exceeds capacity {}",
                self.capacity
            )));
        }
        self.history = VecDeque::with_capacity(self.capacity);
        for _ in 0..n {
            let line = r.take_u64()?;
            self.history.push_back(line);
        }
        self.evicted = r.take_u64()?;
        let n = r.take_len(16)?;
        let mut index = HashMap::with_capacity(n);
        for _ in 0..n {
            let line = r.take_u64()?;
            let pos = r.take_u64()?;
            if index.insert(line, pos).is_some() {
                return Err(DecodeError::malformed(format!(
                    "duplicate GHB index entry for line {line:#x}"
                )));
            }
        }
        self.index = index;
        let n = r.take_len(8)?;
        self.queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            let line = r.take_u64()?;
            self.queue.push_back(line);
        }
        self.stats = GhbStats {
            observed: r.take_u64()?,
            history_hits: r.take_u64()?,
            prefetches_enqueued: r.take_u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeating_sequence_replays_successors() {
        let mut g = GhbPrefetcher::new(64, 2, 64, 64);
        for _ in 0..2 {
            for addr in [0x1000u64, 0x2000, 0x3000, 0x4000] {
                g.observe(addr);
            }
        }
        // Second pass: each address finds its first occurrence and
        // prefetches what followed it.
        assert!(g.stats().history_hits >= 4);
        assert_eq!(g.pop(), Some(0x2000));
    }

    #[test]
    fn unique_addresses_never_prefetch() {
        let mut g = GhbPrefetcher::new(64, 4, 64, 64);
        for i in 0..50u64 {
            g.observe(0x1000 + i * 4096);
        }
        assert_eq!(g.stats().history_hits, 0);
        assert_eq!(g.queue_len(), 0);
    }

    #[test]
    fn history_capacity_evicts_oldest() {
        let mut g = GhbPrefetcher::new(4, 1, 64, 64);
        for addr in [0x1000u64, 0x2000, 0x3000, 0x4000, 0x5000] {
            g.observe(addr);
        }
        // 0x1000 was evicted: revisiting it is not a history hit.
        g.observe(0x1000);
        assert_eq!(g.stats().history_hits, 0);
        // 0x3000 is still resident: revisiting it hits.
        g.observe(0x3000);
        assert_eq!(g.stats().history_hits, 1);
    }

    #[test]
    fn addresses_are_line_aligned() {
        let mut g = GhbPrefetcher::new(64, 1, 64, 64);
        g.observe(0x1010);
        g.observe(0x2020);
        g.observe(0x1030); // same line as 0x1010
        assert_eq!(g.stats().history_hits, 1);
        assert_eq!(g.pop(), Some(0x2000));
    }

    #[test]
    fn queue_capacity_is_respected() {
        let mut g = GhbPrefetcher::new(64, 8, 64, 2);
        for _ in 0..3 {
            for addr in [0x1000u64, 0x2000, 0x3000, 0x4000, 0x5000] {
                g.observe(addr);
            }
        }
        assert!(g.queue_len() <= 2);
    }

    #[test]
    fn self_successor_is_skipped() {
        let mut g = GhbPrefetcher::new(64, 1, 64, 64);
        g.observe(0x1000);
        g.observe(0x1000); // history hit whose successor is itself
        assert_eq!(g.queue_len(), 0);
    }
}
