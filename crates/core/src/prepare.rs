//! Content-addressed preparation cache: skip scene generation, BVH
//! construction, and ray generation when an identical preparation has
//! run before.
//!
//! Preparing a [`Bench`] is deterministic: the scene id, detail factor,
//! workload parameters, and BVH build parameters fully determine the
//! built tree, the generated rays, and the default treelet assignment.
//! That makes preparation *content-addressable* — a 64-bit FNV digest
//! over those inputs ([`prepare_cache_key`]) names the finished
//! artifact, and a [`BvhCache`] directory maps keys to serialized
//! `RTBVH01` containers ([`BvhArtifact`]).
//!
//! ## Cache identity rules
//!
//! The key covers everything that changes the *prepared bytes*:
//!
//! - scene id and detail factor (geometry),
//! - workload kind, resolution, and seed (rays),
//! - the BVH builder's `max_leaf_tris` (tree shape),
//! - the artifact codec version (format).
//!
//! It deliberately excludes *budget-style knobs* that only affect how a
//! prepared bench is later simulated — treelet byte budgets, prefetch
//! configuration, scheduler policy — the same rule the rt-served store
//! applies to its result identities. The artifact carries the
//! default-budget treelet assignment as a rider section; a simulation
//! sweeping other budgets re-forms in O(nodes), which is noise next to
//! the SAH build.
//!
//! ## Store rules (mirroring the rt-served store)
//!
//! - **Atomic writes**: entries land in a `.tmp` sibling and are
//!   renamed into place, so readers see a whole artifact or none.
//! - **Corrupt entry = self-healing miss**: any decode failure —
//!   truncation, bit rot, version skew, or a semantically bogus
//!   payload — deletes the entry and falls back to a fresh build that
//!   repopulates it. A damaged cache can cost time, never correctness.
//! - **Best-effort population**: a cache that cannot be written (disk
//!   full, permissions) degrades to pass-through with a warning.

use crate::experiments::Bench;
use crate::treelet::{TreeletAssignment, DEFAULT_TREELET_BYTES};
use rt_bvh::{BvhArtifact, BVH_ARTIFACT_VERSION, DEFAULT_MAX_LEAF_TRIS};
use rt_geometry::Ray;
use rt_gpu_sim::{fnv1a64, ByteReader, ByteWriter, DecodeError};
use rt_scene::{SceneId, Workload, WorkloadKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Artifact rider section holding the generated workload rays.
const RAYS_SECTION: u32 = u32::from_le_bytes(*b"RAYS");

/// Artifact rider section holding the default-budget treelet assignment.
const TREELET_SECTION: u32 = u32::from_le_bytes(*b"TRLT");

/// Serialized size of one ray (8 × f32), the decoder's allocation guard.
const RAY_BYTES: usize = 32;

fn workload_kind_tag(kind: WorkloadKind) -> u8 {
    // Explicit tags, not discriminants: reordering the enum must not
    // silently invalidate every cache on disk.
    match kind {
        WorkloadKind::Primary => 0,
        WorkloadKind::Diffuse => 1,
        WorkloadKind::Shadow => 2,
    }
}

/// The content key naming the preparation of (`scene`, `detail`,
/// `workload`): a FNV-1a 64 digest over every input that changes the
/// prepared artifact, including the codec version, so a format bump
/// repopulates cleanly alongside old entries instead of tripping over
/// them.
pub fn prepare_cache_key(scene: SceneId, detail: f32, workload: &Workload) -> u64 {
    let mut w = ByteWriter::new();
    w.put_bytes(b"rt-prepare-key");
    w.put_u32(BVH_ARTIFACT_VERSION);
    let name = scene.name();
    w.put_len(name.len());
    w.put_bytes(name.as_bytes());
    w.put_u32(detail.to_bits());
    w.put_u8(workload_kind_tag(workload.kind));
    w.put_u32(workload.width);
    w.put_u32(workload.height);
    w.put_u64(workload.seed);
    w.put_u32(DEFAULT_MAX_LEAF_TRIS);
    fnv1a64(w.bytes())
}

/// Serializes a prepared bench into `RTBVH01` container bytes under
/// content key `key`: the built tree, plus the generated rays and the
/// default-budget treelet assignment as rider sections, so a cache hit
/// skips *all* of preparation — not just the BVH build.
pub fn encode_prepared_bench(bench: &Bench, key: u64) -> Vec<u8> {
    let mut artifact = BvhArtifact::new(key, bench.bvh().clone());
    let mut rays = ByteWriter::new();
    rays.put_len(bench.rays().len());
    for r in bench.rays() {
        rays.put_f32(r.origin.x);
        rays.put_f32(r.origin.y);
        rays.put_f32(r.origin.z);
        rays.put_f32(r.direction.x);
        rays.put_f32(r.direction.y);
        rays.put_f32(r.direction.z);
        rays.put_f32(r.t_min);
        rays.put_f32(r.t_max);
    }
    artifact.push_section(RAYS_SECTION, rays.into_bytes());
    let assignment = TreeletAssignment::form(bench.bvh(), DEFAULT_TREELET_BYTES);
    let mut treelets = ByteWriter::new();
    assignment.encode(&mut treelets);
    artifact.push_section(TREELET_SECTION, treelets.into_bytes());
    artifact.to_bytes()
}

/// Decodes an artifact written by [`encode_prepared_bench`] back into a
/// ready-to-simulate [`Bench`] for `scene` plus its cached
/// default-budget [`TreeletAssignment`], verifying the container
/// (magic, version, checksum), the echoed content key, the tree's
/// structural invariants, and the assignment's coverage of the tree.
///
/// # Errors
///
/// Any corruption, version skew, or identity mismatch is a typed
/// [`DecodeError`] — cache layers treat every one as a miss.
pub fn decode_prepared_bench(
    scene: SceneId,
    key: u64,
    bytes: &[u8],
) -> Result<(Bench, TreeletAssignment), DecodeError> {
    let artifact = BvhArtifact::from_bytes(bytes)?;
    if artifact.identity != key {
        return Err(DecodeError::malformed(format!(
            "artifact identity {:#018x} does not match key {key:#018x} (mis-filed entry)",
            artifact.identity
        )));
    }
    let ray_bytes = artifact
        .section(RAYS_SECTION)
        .ok_or_else(|| DecodeError::malformed("artifact has no ray section"))?;
    let mut r = ByteReader::new(ray_bytes);
    let count = r.take_len(RAY_BYTES)?;
    let mut rays = Vec::with_capacity(count);
    for _ in 0..count {
        let origin = rt_geometry::Vec3::new(r.take_f32()?, r.take_f32()?, r.take_f32()?);
        let direction = rt_geometry::Vec3::new(r.take_f32()?, r.take_f32()?, r.take_f32()?);
        let t_min = r.take_f32()?;
        let t_max = r.take_f32()?;
        // Struct literal, not `Ray::new`: constructors may normalize;
        // the cache must reproduce the generated rays bit for bit.
        rays.push(Ray {
            origin,
            direction,
            t_min,
            t_max,
        });
    }
    r.expect_end()?;
    let treelet_bytes = artifact
        .section(TREELET_SECTION)
        .ok_or_else(|| DecodeError::malformed("artifact has no treelet section"))?;
    let mut t = ByteReader::new(treelet_bytes);
    let assignment = TreeletAssignment::decode(&mut t, artifact.bvh.node_count())?;
    t.expect_end()?;
    Ok((
        Bench::from_cached_parts(scene, artifact.bvh, rays),
        assignment,
    ))
}

/// An on-disk preparation cache directory: one `RTBVH01` file per
/// content key, with atomic writes and self-healing reads.
///
/// The cache is safe to share between concurrent preparers (threads or
/// processes): writers race by renaming complete temp files over the
/// same destination — last writer wins with identical bytes — and
/// readers only ever see whole artifacts.
#[derive(Debug)]
pub struct BvhCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BvhCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any error creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<BvhCache> {
        let root = dir.into();
        std::fs::create_dir_all(&root)?;
        Ok(BvhCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The cache named by the `RT_BVH_CACHE` environment variable, if
    /// set and non-empty. An unusable directory warns on stderr and
    /// disables caching rather than failing the run.
    pub fn from_env() -> Option<BvhCache> {
        let dir = std::env::var("RT_BVH_CACHE").ok()?;
        if dir.trim().is_empty() {
            return None;
        }
        match BvhCache::open(&dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("warning: RT_BVH_CACHE={dir} is unusable ({e}); preparing uncached");
                None
            }
        }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Artifact path for a content key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.rtbvh"))
    }

    /// Cache hits served so far (monotonic, shared across threads).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (including self-healed corrupt entries) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Loads the prepared bench for `key`, or `None` on a miss. A
    /// present-but-undecodable entry is deleted (self-healing) and
    /// reported as a miss; the caller rebuilds and repopulates.
    pub(crate) fn load(&self, key: u64, scene: SceneId) -> Option<Bench> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_prepared_bench(scene, key, &bytes) {
            Ok((bench, _assignment)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bench)
            }
            Err(e) => {
                eprintln!(
                    "warning: discarding corrupt cache entry {} ({e})",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly prepared bench under `key`, atomically
    /// (write-then-rename). Failures warn and leave the cache
    /// unpopulated — never fail a preparation over cache I/O.
    pub(crate) fn store(&self, key: u64, bench: &Bench) {
        let path = self.entry_path(key);
        let bytes = encode_prepared_bench(bench, key);
        if let Err(e) = crate::snapshot::write_atomic(&path, &bytes) {
            eprintln!("warning: could not cache {} ({e})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::WorkloadKind;

    fn temp_cache(name: &str) -> BvhCache {
        let dir = std::env::temp_dir().join(format!("rt-bvh-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BvhCache::open(dir).expect("temp cache")
    }

    fn workload() -> Workload {
        Workload::new(WorkloadKind::Primary, 8, 8)
    }

    /// FNV digest over a bench's observable prepared state — the
    /// "bit-identical" oracle the cache tests compare against.
    fn bench_digest(bench: &Bench) -> u64 {
        fnv1a64(&encode_prepared_bench(bench, 0))
    }

    #[test]
    fn cold_miss_then_warm_hit_is_bit_identical() {
        let cache = temp_cache("warm");
        let cold =
            Bench::try_prepare_cached(SceneId::Wknd, 0.2, workload(), Some(&cache)).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let warm =
            Bench::try_prepare_cached(SceneId::Wknd, 0.2, workload(), Some(&cache)).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(bench_digest(&cold), bench_digest(&warm));
        let uncached = Bench::try_prepare(SceneId::Wknd, 0.2, workload()).unwrap();
        assert_eq!(bench_digest(&uncached), bench_digest(&warm));
    }

    #[test]
    fn corrupt_entry_self_heals_with_identical_result() {
        let cache = temp_cache("heal");
        let cold =
            Bench::try_prepare_cached(SceneId::Bunny, 0.2, workload(), Some(&cache)).unwrap();
        let key = prepare_cache_key(SceneId::Bunny, 0.2, &workload());
        let path = cache.entry_path(key);
        // Flip a bit in the middle of the entry.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let healed =
            Bench::try_prepare_cached(SceneId::Bunny, 0.2, workload(), Some(&cache)).unwrap();
        assert_eq!(cache.hits(), 0, "corrupt entry must not count as a hit");
        assert_eq!(bench_digest(&cold), bench_digest(&healed));
        // The rebuild repopulated a valid entry.
        let rewarmed =
            Bench::try_prepare_cached(SceneId::Bunny, 0.2, workload(), Some(&cache)).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(bench_digest(&cold), bench_digest(&rewarmed));
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let cache = temp_cache("trunc");
        let _ = Bench::try_prepare_cached(SceneId::Wknd, 0.15, workload(), Some(&cache)).unwrap();
        let key = prepare_cache_key(SceneId::Wknd, 0.15, &workload());
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(cache.load(key, SceneId::Wknd).is_none());
        assert!(!path.exists(), "self-healing must remove the bad entry");
    }

    #[test]
    fn key_separates_every_preparation_input() {
        let base = prepare_cache_key(SceneId::Wknd, 0.5, &workload());
        assert_ne!(base, prepare_cache_key(SceneId::Bunny, 0.5, &workload()));
        assert_ne!(base, prepare_cache_key(SceneId::Wknd, 0.25, &workload()));
        let mut wl = workload();
        wl.kind = WorkloadKind::Diffuse;
        assert_ne!(base, prepare_cache_key(SceneId::Wknd, 0.5, &wl));
        let mut wl = workload();
        wl.width = 16;
        assert_ne!(base, prepare_cache_key(SceneId::Wknd, 0.5, &wl));
        let mut wl = workload();
        wl.seed ^= 1;
        assert_ne!(base, prepare_cache_key(SceneId::Wknd, 0.5, &wl));
        // Same inputs, same key — the whole point.
        assert_eq!(base, prepare_cache_key(SceneId::Wknd, 0.5, &workload()));
    }

    #[test]
    fn decoded_assignment_matches_fresh_formation() {
        let bench = Bench::try_prepare(SceneId::Wknd, 0.2, workload()).unwrap();
        let key = 9;
        let bytes = encode_prepared_bench(&bench, key);
        let (decoded, assignment) = decode_prepared_bench(SceneId::Wknd, key, &bytes).unwrap();
        let fresh = TreeletAssignment::form(decoded.bvh(), DEFAULT_TREELET_BYTES);
        assert_eq!(assignment, fresh);
    }

    #[test]
    fn wrong_key_is_refused() {
        let bench = Bench::try_prepare(SceneId::Wknd, 0.2, workload()).unwrap();
        let bytes = encode_prepared_bench(&bench, 1);
        match decode_prepared_bench(SceneId::Wknd, 2, &bytes) {
            Err(DecodeError::Malformed { .. }) => {}
            other => panic!("expected identity mismatch, got {other:?}"),
        }
    }
}
