//! Hash-based ray-path prediction prefetcher (Demoullin, Gubran,
//! Aamodt — *Hash-Based Ray Path Prediction*, arXiv:1910.01304).
//!
//! The predictor exploits ray coherence directly: two rays with nearly
//! the same origin and direction traverse nearly the same BVH path. Each
//! ray is reduced to a small integer key by quantizing its origin (in
//! scene-bounds-normalized coordinates) and direction onto coarse grids
//! and hashing the grid cells with a seeded FNV-1a mixed through the
//! rt-rng generator. A bounded table maps keys to the node-line path the
//! most recent same-key ray actually took; when a new ray enters the
//! warp buffer, the table is probed and the remembered path's cache
//! lines are enqueued as prefetches. The table and queue are fully
//! snapshot-serializable so checkpointed runs resume bit-identically.
//!
//! Unlike the treelet voter (which predicts one treelet per decision
//! from warp-buffer popularity) or MTA/GHB (which learn from the demand
//! address stream), the hash predictor learns from *retired rays*: a
//! ray's recorded path only enters the table once the ray completes, so
//! predictions always reflect a full, real traversal.

use rt_geometry::{Aabb, Ray};
use rt_gpu_sim::{fnv1a64, ByteReader, ByteWriter, DecodeError, FxHashMap};
use rt_rng::SmallRng;
use std::collections::VecDeque;

/// Counters the hash-path predictor accumulates during a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HashPathStats {
    /// Rays observed entering the warp buffer (table probes).
    pub rays_hashed: u64,
    /// Probes that found a remembered path for the ray's key.
    pub table_hits: u64,
    /// Retired rays whose paths were recorded into the table.
    pub paths_recorded: u64,
    /// Table entries evicted to stay within capacity (FIFO order).
    pub evictions: u64,
    /// Predicted path lines enqueued for prefetch.
    pub lines_enqueued: u64,
    /// Predicted lines dropped because the prefetch queue was full.
    pub queue_full_drops: u64,
}

impl HashPathStats {
    /// Fraction of probes that found a remembered path, or 0 when no
    /// rays were observed.
    pub fn hit_rate(&self) -> f64 {
        if self.rays_hashed == 0 {
            0.0
        } else {
            self.table_hits as f64 / self.rays_hashed as f64
        }
    }

    pub(crate) fn merge(&mut self, other: &HashPathStats) {
        self.rays_hashed += other.rays_hashed;
        self.table_hits += other.table_hits;
        self.paths_recorded += other.paths_recorded;
        self.evictions += other.evictions;
        self.lines_enqueued += other.lines_enqueued;
        self.queue_full_drops += other.queue_full_drops;
    }
}

/// Quantizes one normalized coordinate in `[0, 1]` onto a `bits`-wide
/// grid, clamping out-of-range values into the edge cells.
fn quantize_unit(t: f32, bits: u32) -> u32 {
    let cells = 1u32 << bits;
    // NaN lands in cell zero, like everything at or below the range.
    if t.is_nan() || t <= 0.0 {
        return 0;
    }
    let cell = (t * cells as f32) as u32;
    cell.min(cells - 1)
}

/// Hashes a ray's quantized origin and direction into its prediction
/// key.
///
/// The origin is normalized by the scene bounds before quantization so
/// the grid resolution adapts to the scene; the direction is normalized
/// to unit length and mapped from `[-1, 1]` to `[0, 1]` per axis. The
/// six grid cells plus the seed feed FNV-1a, and the raw hash is mixed
/// through one [`SmallRng`] step for avalanche — two keys differing in
/// one grid cell share no bit structure.
pub fn hash_ray_key(
    ray: &Ray,
    scene_bounds: &Aabb,
    origin_bits: u32,
    dir_bits: u32,
    seed: u64,
) -> u64 {
    let extent = scene_bounds.extent();
    let norm = |v: f32, min: f32, ext: f32| if ext > 0.0 { (v - min) / ext } else { 0.0 };
    let o = ray.origin;
    let d = ray.direction;
    let len = (d.x * d.x + d.y * d.y + d.z * d.z).sqrt();
    // Degenerate directions (zero-length or NaN) collapse to cell zero
    // rather than inheriting whatever the [-1, 1] -> [0, 1] remap makes
    // of them.
    let dir = |c: f32| if len > 0.0 { (c / len + 1.0) * 0.5 } else { 0.0 };
    let cells = [
        quantize_unit(norm(o.x, scene_bounds.min.x, extent.x), origin_bits),
        quantize_unit(norm(o.y, scene_bounds.min.y, extent.y), origin_bits),
        quantize_unit(norm(o.z, scene_bounds.min.z, extent.z), origin_bits),
        quantize_unit(dir(d.x), dir_bits),
        quantize_unit(dir(d.y), dir_bits),
        quantize_unit(dir(d.z), dir_bits),
    ];
    let mut buf = [0u8; 32];
    buf[..8].copy_from_slice(&seed.to_le_bytes());
    for (i, cell) in cells.iter().enumerate() {
        buf[8 + 4 * i..8 + 4 * (i + 1)].copy_from_slice(&cell.to_le_bytes());
    }
    SmallRng::seed_from_u64(fnv1a64(&buf)).next_u64()
}

/// The hash-based ray-path predictor.
///
/// Drives prefetches from two hooks the engine calls per ray: when a
/// ray *enters* the warp buffer its key probes the prediction table and
/// any remembered path is enqueued; when a ray *retires* its actual
/// node-line path is recorded under its key. The table is bounded and
/// evicts its oldest key first; re-recording an existing key replaces
/// the path in place without refreshing its age.
#[derive(Debug, Clone)]
pub struct HashPathPrefetcher {
    table: FxHashMap<u64, Vec<u64>>,
    /// Keys in insertion order — the FIFO eviction schedule.
    order: VecDeque<u64>,
    table_capacity: usize,
    max_path_lines: usize,
    queue: VecDeque<u64>,
    queue_capacity: usize,
    stats: HashPathStats,
}

impl HashPathPrefetcher {
    /// Creates a predictor with the given table capacity (entries),
    /// prefetch-queue capacity (lines), and per-path line cap.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    pub fn new(table_capacity: usize, queue_capacity: usize, max_path_lines: usize) -> Self {
        assert!(table_capacity > 0, "hash prediction table must hold entries");
        assert!(queue_capacity > 0, "prefetch queue must hold entries");
        assert!(max_path_lines > 0, "paths must keep at least one line");
        HashPathPrefetcher {
            table: FxHashMap::default(),
            order: VecDeque::new(),
            table_capacity,
            max_path_lines,
            queue: VecDeque::new(),
            queue_capacity,
            stats: HashPathStats::default(),
        }
    }

    /// Probes the table with an entering ray's key and enqueues the
    /// remembered path's lines (front first) when present.
    pub fn observe_enter(&mut self, key: u64) {
        self.stats.rays_hashed += 1;
        let Some(path) = self.table.get(&key) else {
            return;
        };
        self.stats.table_hits += 1;
        for &line in path {
            if self.queue.len() < self.queue_capacity {
                self.queue.push_back(line);
                self.stats.lines_enqueued += 1;
            } else {
                self.stats.queue_full_drops += 1;
            }
        }
    }

    /// Records a retired ray's node-line path under its key, truncating
    /// to the path cap and evicting the oldest key at capacity.
    pub fn record_path(&mut self, key: u64, path: &[u64]) {
        if path.is_empty() {
            return;
        }
        self.stats.paths_recorded += 1;
        let kept = &path[..path.len().min(self.max_path_lines)];
        if let Some(existing) = self.table.get_mut(&key) {
            existing.clear();
            existing.extend_from_slice(kept);
            return;
        }
        if self.order.len() == self.table_capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.table.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.table.insert(key, kept.to_vec());
        self.order.push_back(key);
    }

    /// Pops the next predicted line to prefetch.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop_front()
    }

    /// Lines waiting in the prefetch queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Keys currently remembered in the prediction table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> HashPathStats {
        self.stats
    }

    /// Serializes the dynamic state (table in insertion order, queue,
    /// counters) for a checkpoint.
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_len(self.order.len());
        for key in &self.order {
            w.put_u64(*key);
            let path = &self.table[key];
            w.put_len(path.len());
            for &line in path {
                w.put_u64(line);
            }
        }
        w.put_len(self.queue.len());
        for &line in &self.queue {
            w.put_u64(line);
        }
        let s = &self.stats;
        for v in [
            s.rays_hashed,
            s.table_hits,
            s.paths_recorded,
            s.evictions,
            s.lines_enqueued,
            s.queue_full_drops,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores the dynamic state written by [`Self::encode_state`].
    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        let entries = r.take_len(8)?;
        if entries > self.table_capacity {
            return Err(DecodeError::malformed(
                "hash prediction table exceeds configured capacity",
            ));
        }
        self.table.clear();
        self.order.clear();
        for _ in 0..entries {
            let key = r.take_u64()?;
            let lines = r.take_len(8)?;
            if lines > self.max_path_lines {
                return Err(DecodeError::malformed(
                    "hash path exceeds configured line cap",
                ));
            }
            let mut path = Vec::with_capacity(lines);
            for _ in 0..lines {
                path.push(r.take_u64()?);
            }
            if self.table.insert(key, path).is_some() {
                return Err(DecodeError::malformed(
                    "duplicate key in hash prediction table",
                ));
            }
            self.order.push_back(key);
        }
        let queued = r.take_len(8)?;
        if queued > self.queue_capacity {
            return Err(DecodeError::malformed(
                "hash prefetch queue exceeds configured capacity",
            ));
        }
        self.queue.clear();
        for _ in 0..queued {
            self.queue.push_back(r.take_u64()?);
        }
        self.stats = HashPathStats {
            rays_hashed: r.take_u64()?,
            table_hits: r.take_u64()?,
            paths_recorded: r.take_u64()?,
            evictions: r.take_u64()?,
            lines_enqueued: r.take_u64()?,
            queue_full_drops: r.take_u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::Vec3;

    fn bounds() -> Aabb {
        Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0))
    }

    fn ray(ox: f32, oy: f32, oz: f32, dx: f32, dy: f32, dz: f32) -> Ray {
        Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz))
    }

    #[test]
    fn nearby_rays_share_a_key_and_distant_rays_do_not() {
        let b = bounds();
        let a = hash_ray_key(&ray(0.10, 0.10, 0.10, 0.0, 0.0, 1.0), &b, 4, 4, 7);
        let near = hash_ray_key(&ray(0.11, 0.10, 0.10, 0.0, 0.0, 1.0), &b, 4, 4, 7);
        let far = hash_ray_key(&ray(-0.9, -0.9, -0.9, 1.0, 0.0, 0.0), &b, 4, 4, 7);
        assert_eq!(a, near, "rays in the same grid cells share a key");
        assert_ne!(a, far, "rays in distant cells get distinct keys");
    }

    #[test]
    fn key_depends_on_seed_and_quantization() {
        let b = bounds();
        let r = ray(0.3, -0.2, 0.5, 0.2, 0.9, -0.1);
        let base = hash_ray_key(&r, &b, 5, 5, 1);
        assert_ne!(base, hash_ray_key(&r, &b, 5, 5, 2), "seed changes the key");
        assert_ne!(
            base,
            hash_ray_key(&r, &b, 3, 5, 1),
            "quantization changes the key"
        );
    }

    #[test]
    fn direction_scale_does_not_change_the_key() {
        let b = bounds();
        let a = hash_ray_key(&ray(0.0, 0.0, 0.0, 0.0, 0.0, 1.0), &b, 4, 4, 0);
        let scaled = hash_ray_key(&ray(0.0, 0.0, 0.0, 0.0, 0.0, 42.0), &b, 4, 4, 0);
        assert_eq!(a, scaled, "direction is normalized before hashing");
    }

    #[test]
    fn degenerate_rays_hash_without_panicking() {
        let b = Aabb::from_point(Vec3::new(0.0, 0.0, 0.0));
        let zero = ray(0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let nan = ray(f32::NAN, 0.0, 0.0, f32::NAN, 0.0, 0.0);
        let k0 = hash_ray_key(&zero, &b, 4, 4, 0);
        let k1 = hash_ray_key(&nan, &b, 4, 4, 0);
        assert_eq!(k0, k1, "degenerate coordinates collapse to cell zero");
    }

    #[test]
    fn enter_predicts_only_after_a_same_key_retire() {
        let mut p = HashPathPrefetcher::new(8, 16, 4);
        p.observe_enter(42);
        assert_eq!(p.queue_len(), 0, "cold table predicts nothing");
        p.record_path(42, &[0x100, 0x140, 0x180]);
        p.observe_enter(42);
        assert_eq!(p.pop(), Some(0x100));
        assert_eq!(p.pop(), Some(0x140));
        assert_eq!(p.pop(), Some(0x180));
        assert_eq!(p.pop(), None);
        let s = p.stats();
        assert_eq!((s.rays_hashed, s.table_hits, s.lines_enqueued), (2, 1, 3));
    }

    #[test]
    fn table_evicts_fifo_at_capacity_and_caps_paths() {
        let mut p = HashPathPrefetcher::new(2, 16, 2);
        p.record_path(1, &[0x10, 0x20, 0x30]);
        p.record_path(2, &[0x40]);
        p.record_path(1, &[0x50]); // replace in place, no age refresh
        p.record_path(3, &[0x60]); // evicts key 1 (oldest)
        assert_eq!(p.table_len(), 2);
        assert_eq!(p.stats().evictions, 1);
        p.observe_enter(1);
        assert_eq!(p.pop(), None, "evicted key predicts nothing");
        p.observe_enter(2);
        assert_eq!(p.pop(), Some(0x40));
        // The three-line path was capped at two lines on record.
        p.record_path(4, &[0x70, 0x80, 0x90]); // evicts key 2
        p.observe_enter(4);
        assert_eq!((p.pop(), p.pop(), p.pop()), (Some(0x70), Some(0x80), None));
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut p = HashPathPrefetcher::new(4, 2, 4);
        p.record_path(9, &[1, 2, 3, 4]);
        p.observe_enter(9);
        assert_eq!(p.queue_len(), 2);
        let s = p.stats();
        assert_eq!((s.lines_enqueued, s.queue_full_drops), (2, 2));
    }

    #[test]
    fn state_round_trips_through_the_codec() {
        let mut p = HashPathPrefetcher::new(4, 8, 4);
        p.record_path(1, &[0x10, 0x20]);
        p.record_path(2, &[0x30]);
        p.observe_enter(1);
        p.observe_enter(7);
        let mut w = ByteWriter::new();
        p.encode_state(&mut w);
        let bytes = w.into_bytes();

        let mut q = HashPathPrefetcher::new(4, 8, 4);
        let mut r = ByteReader::new(&bytes);
        q.restore_state(&mut r).expect("restore");
        r.expect_end().expect("consumed");
        assert_eq!(p.stats(), q.stats());
        assert_eq!(p.table_len(), q.table_len());
        let mut w2 = ByteWriter::new();
        q.encode_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-encode is bit-identical");
    }

    #[test]
    fn restore_rejects_oversized_state() {
        let mut p = HashPathPrefetcher::new(4, 8, 2);
        p.record_path(1, &[0x10, 0x20]);
        let mut w = ByteWriter::new();
        p.encode_state(&mut w);
        let bytes = w.into_bytes();
        // A predictor configured with a smaller path cap refuses it.
        let mut q = HashPathPrefetcher::new(4, 8, 1);
        assert!(q.restore_state(&mut ByteReader::new(&bytes)).is_err());
        // As does one with a smaller table.
        let mut p2 = HashPathPrefetcher::new(4, 8, 2);
        p2.record_path(1, &[0x10]);
        p2.record_path(2, &[0x20]);
        let mut w2 = ByteWriter::new();
        p2.encode_state(&mut w2);
        let mut q2 = HashPathPrefetcher::new(1, 8, 2);
        assert!(q2
            .restore_state(&mut ByteReader::new(&w2.into_bytes()))
            .is_err());
    }
}
