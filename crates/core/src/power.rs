//! Event-energy power model (the paper uses AccelWattch; §5 notes the
//! prefetcher's extra power is captured as extra prefetch loads, which is
//! exactly what this model counts).

/// Dynamic activity counts collected by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// L1 probes (demand + prefetch).
    pub l1_accesses: u64,
    /// L2 accesses (L1 miss traffic + prefetch fills).
    pub l2_accesses: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// Ray-box (node) tests executed by the operation units.
    pub box_tests: u64,
    /// Ray-triangle tests executed by the operation units.
    pub tri_tests: u64,
}

/// Per-event energies in nanojoules plus static power, loosely calibrated
/// to GPU-class components (the absolute scale cancels in the paper's
/// normalized Fig. 7 comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per L1 access (nJ).
    pub l1_access_nj: f64,
    /// Energy per L2 access (nJ).
    pub l2_access_nj: f64,
    /// Energy per DRAM line transfer (nJ).
    pub dram_access_nj: f64,
    /// Energy per ray-box test (nJ).
    pub box_test_nj: f64,
    /// Energy per ray-triangle test (nJ).
    pub tri_test_nj: f64,
    /// Static (leakage + constant) power per SM, watts.
    pub static_watts_per_sm: f64,
}

impl EnergyModel {
    /// Default calibration.
    pub fn paper_default() -> Self {
        EnergyModel {
            l1_access_nj: 0.08,
            l2_access_nj: 0.4,
            dram_access_nj: 3.0,
            box_test_nj: 0.05,
            tri_test_nj: 0.1,
            static_watts_per_sm: 1.2,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_default()
    }
}

/// Energy and average power of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic energy (nJ).
    pub dynamic_nj: f64,
    /// Static energy (nJ).
    pub static_nj: f64,
    /// Average power (W) over the run.
    pub avg_power_w: f64,
    /// Total energy (nJ).
    pub total_nj: f64,
}

impl EnergyModel {
    /// Evaluates the model over `counts` for a run of `cycles` core
    /// cycles on `num_sms` SMs at `core_clock_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` or `core_clock_mhz` is zero.
    pub fn evaluate(
        &self,
        counts: &ActivityCounts,
        cycles: u64,
        num_sms: usize,
        core_clock_mhz: u64,
    ) -> PowerReport {
        assert!(cycles > 0, "cannot evaluate power over zero cycles");
        assert!(core_clock_mhz > 0, "clock must be nonzero");
        let dynamic_nj = counts.l1_accesses as f64 * self.l1_access_nj
            + counts.l2_accesses as f64 * self.l2_access_nj
            + counts.dram_accesses as f64 * self.dram_access_nj
            + counts.box_tests as f64 * self.box_test_nj
            + counts.tri_tests as f64 * self.tri_test_nj;
        let seconds = cycles as f64 / (core_clock_mhz as f64 * 1e6);
        let static_nj = self.static_watts_per_sm * num_sms as f64 * seconds * 1e9;
        let total_nj = dynamic_nj + static_nj;
        PowerReport {
            dynamic_nj,
            static_nj,
            total_nj,
            avg_power_w: total_nj * 1e-9 / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> ActivityCounts {
        ActivityCounts {
            l1_accesses: 1000,
            l2_accesses: 100,
            dram_accesses: 10,
            box_tests: 500,
            tri_tests: 50,
        }
    }

    #[test]
    fn dynamic_energy_sums_events() {
        let m = EnergyModel::paper_default();
        let r = m.evaluate(&counts(), 1_000_000, 8, 1365);
        let expected = 1000.0 * 0.08 + 100.0 * 0.4 + 10.0 * 3.0 + 500.0 * 0.05 + 50.0 * 0.1;
        assert!((r.dynamic_nj - expected).abs() < 1e-9);
        assert!(r.total_nj > r.dynamic_nj);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::paper_default();
        let short = m.evaluate(&counts(), 1_000_000, 8, 1365);
        let long = m.evaluate(&counts(), 2_000_000, 8, 1365);
        assert!((long.static_nj / short.static_nj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let m = EnergyModel::paper_default();
        let r = m.evaluate(&counts(), 1_365_000, 8, 1365);
        // 1_365_000 cycles at 1365 MHz = 1 ms.
        let watts = r.total_nj * 1e-9 / 1e-3;
        assert!((r.avg_power_w - watts).abs() < 1e-9);
    }

    #[test]
    fn fewer_cycles_same_work_raises_power_but_lowers_energy() {
        // A faster run with identical dynamic activity has slightly higher
        // average power but lower total energy — the paper's "same power"
        // argument.
        let m = EnergyModel::paper_default();
        let slow = m.evaluate(&counts(), 2_000_000, 8, 1365);
        let fast = m.evaluate(&counts(), 1_400_000, 8, 1365);
        assert!(fast.total_nj < slow.total_nj);
        assert!(fast.avg_power_w > slow.avg_power_w);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn zero_cycles_panics() {
        EnergyModel::paper_default().evaluate(&ActivityCounts::default(), 0, 8, 1365);
    }
}
