//! The comparison prefetcher: Lee et al.'s many-thread-aware stride
//! prefetching (MICRO 2010), implemented optimistically with infinite
//! tables, as the paper does for its Fig. 8 comparison.
//!
//! The prefetcher observes demand-load addresses per warp, detects
//! constant strides, and prefetches ahead of the detected stream —
//! including an inter-thread distance so that a *later* warp benefits.
//! On BVH pointer-chasing traffic the detector rarely finds stable
//! strides, which is exactly the paper's point.

use std::collections::{HashMap, VecDeque};

use rt_gpu_sim::{ByteReader, ByteWriter, DecodeError};

/// Per-warp stride detector state.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u32,
    valid: bool,
}

/// Counters for the MTA prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtaStats {
    /// Demand loads observed.
    pub observed: u64,
    /// Observations that confirmed the current stride.
    pub stride_confirmations: u64,
    /// Prefetch lines enqueued.
    pub prefetches_enqueued: u64,
}

impl MtaStats {
    pub(crate) fn merge(&mut self, other: &MtaStats) {
        self.observed += other.observed;
        self.stride_confirmations += other.stride_confirmations;
        self.prefetches_enqueued += other.prefetches_enqueued;
    }
}

/// Many-thread-aware stride prefetcher with unbounded per-warp tables.
///
/// # Examples
///
/// ```
/// use treelet_rt::MtaPrefetcher;
///
/// let mut mta = MtaPrefetcher::new(2, 2, 64, 256);
/// for i in 0..4 {
///     mta.observe(0, 0x1000 + i * 64);
/// }
/// assert!(mta.pop().is_some(), "a stable stride must trigger prefetches");
/// ```
#[derive(Debug)]
pub struct MtaPrefetcher {
    tables: HashMap<u32, StrideEntry>,
    queue: VecDeque<u64>,
    /// Confirmations required before prefetching.
    threshold: u32,
    /// Prefetch degree (lines ahead).
    degree: u32,
    line_bytes: u64,
    queue_capacity: usize,
    stats: MtaStats,
}

impl MtaPrefetcher {
    /// Creates a prefetcher with the given confidence `threshold`,
    /// prefetch `degree`, cache line size, and queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `degree`, `line_bytes`, or `queue_capacity` is zero.
    pub fn new(threshold: u32, degree: u32, line_bytes: u64, queue_capacity: usize) -> Self {
        assert!(degree > 0, "prefetch degree must be nonzero");
        assert!(line_bytes > 0, "line size must be nonzero");
        assert!(queue_capacity > 0, "queue capacity must be nonzero");
        MtaPrefetcher {
            tables: HashMap::new(),
            queue: VecDeque::new(),
            threshold,
            degree,
            line_bytes,
            queue_capacity,
            stats: MtaStats::default(),
        }
    }

    /// The paper-style configuration: confirm after 2 repeats, prefetch
    /// 4 lines ahead.
    pub fn paper_default(line_bytes: u64) -> Self {
        MtaPrefetcher::new(2, 4, line_bytes, 256)
    }

    /// Observes a demand load from `warp` at byte address `addr` and
    /// enqueues prefetches if its stride stream is stable.
    pub fn observe(&mut self, warp: u32, addr: u64) {
        self.stats.observed += 1;
        let entry = self.tables.entry(warp).or_default();
        if entry.valid {
            let stride = addr as i64 - entry.last_addr as i64;
            if stride == entry.stride && stride != 0 {
                entry.confidence += 1;
                self.stats.stride_confirmations += 1;
            } else {
                entry.stride = stride;
                entry.confidence = 0;
            }
        }
        entry.last_addr = addr;
        entry.valid = true;
        if entry.confidence >= self.threshold {
            let stride = entry.stride;
            for k in 1..=self.degree as i64 {
                let target = addr as i64 + stride * k;
                if target < 0 {
                    break;
                }
                let line = target as u64 / self.line_bytes * self.line_bytes;
                if self.queue.len() >= self.queue_capacity {
                    break;
                }
                if self.queue.back() != Some(&line) {
                    self.queue.push_back(line);
                    self.stats.prefetches_enqueued += 1;
                }
            }
        }
    }

    /// Pops the next prefetch line address.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop_front()
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> MtaStats {
        self.stats
    }

    /// Serializes the dynamic prefetcher state (per-warp tables sorted by
    /// warp id for a canonical byte stream; the configuration fields are
    /// rebuilt from the simulator config at resume).
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        let mut tables: Vec<(u32, StrideEntry)> =
            self.tables.iter().map(|(&k, &v)| (k, v)).collect();
        tables.sort_unstable_by_key(|&(k, _)| k);
        w.put_len(tables.len());
        for (warp, e) in tables {
            w.put_u32(warp);
            w.put_u64(e.last_addr);
            w.put_i64(e.stride);
            w.put_u32(e.confidence);
            w.put_bool(e.valid);
        }
        w.put_len(self.queue.len());
        for &line in &self.queue {
            w.put_u64(line);
        }
        w.put_u64(self.stats.observed);
        w.put_u64(self.stats.stride_confirmations);
        w.put_u64(self.stats.prefetches_enqueued);
    }

    /// Restores dynamic state captured by
    /// [`MtaPrefetcher::encode_state`] onto a freshly constructed
    /// prefetcher (same configuration).
    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        let n = r.take_len(25)?;
        let mut tables = HashMap::with_capacity(n);
        for _ in 0..n {
            let warp = r.take_u32()?;
            let entry = StrideEntry {
                last_addr: r.take_u64()?,
                stride: r.take_i64()?,
                confidence: r.take_u32()?,
                valid: r.take_bool()?,
            };
            if tables.insert(warp, entry).is_some() {
                return Err(DecodeError::malformed(format!(
                    "duplicate MTA table entry for warp {warp}"
                )));
            }
        }
        self.tables = tables;
        let n = r.take_len(8)?;
        self.queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            let line = r.take_u64()?;
            self.queue.push_back(line);
        }
        self.stats = MtaStats {
            observed: r.take_u64()?,
            stride_confirmations: r.take_u64()?,
            prefetches_enqueued: r.take_u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_is_detected_and_prefetched() {
        let mut m = MtaPrefetcher::new(2, 2, 64, 64);
        for i in 0..4u64 {
            m.observe(0, 0x1000 + i * 128);
        }
        // After 2 confirmations (3rd and 4th access), prefetches of
        // addr + stride, addr + 2*stride appear.
        assert!(m.queue_len() > 0);
        let first = m.pop().unwrap();
        assert_eq!(first, (0x1000 + 3 * 128 + 128) / 64 * 64);
    }

    #[test]
    fn irregular_addresses_never_prefetch() {
        let mut m = MtaPrefetcher::new(2, 4, 64, 64);
        // Pointer-chasing-like irregular sequence.
        for addr in [0x1000u64, 0x8040, 0x2280, 0x91c0, 0x0440, 0x7a00] {
            m.observe(0, addr);
        }
        assert_eq!(m.queue_len(), 0);
        assert_eq!(m.stats().prefetches_enqueued, 0);
    }

    #[test]
    fn streams_are_tracked_per_warp() {
        let mut m = MtaPrefetcher::new(1, 1, 64, 64);
        // Warp 0 strides by 64; warp 1 interleaves with unrelated
        // addresses and must not break warp 0's stream.
        for i in 0..4u64 {
            m.observe(0, 0x1000 + i * 64);
            m.observe(1, 0xdead_0000 + i * 7777);
        }
        assert!(m.stats().stride_confirmations >= 2);
        assert!(m.queue_len() > 0);
    }

    #[test]
    fn zero_stride_is_not_a_stream() {
        let mut m = MtaPrefetcher::new(1, 2, 64, 64);
        for _ in 0..5 {
            m.observe(0, 0x1000);
        }
        assert_eq!(m.queue_len(), 0);
    }

    #[test]
    fn queue_capacity_bounds_prefetches() {
        let mut m = MtaPrefetcher::new(0, 8, 64, 4);
        for i in 0..10u64 {
            m.observe(0, 0x1000 + i * 64);
        }
        assert!(m.queue_len() <= 4);
    }

    #[test]
    fn negative_strides_work() {
        let mut m = MtaPrefetcher::new(2, 1, 64, 64);
        for i in (0..5u64).rev() {
            m.observe(0, 0x10000 + i * 256);
        }
        assert!(m.queue_len() > 0);
        // Prefetches follow the descending stream: each is one stride
        // below the triggering access, so the last is below 0x10000.
        let mut last = u64::MAX;
        while let Some(line) = m.pop() {
            assert!(line < last, "descending stream expected");
            last = line;
        }
        assert!(last < 0x10000);
    }
}
