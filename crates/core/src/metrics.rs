//! Analytical treelet-quality metrics.
//!
//! Formation policy changes prefetch quality before any simulation runs:
//! these metrics quantify an assignment's structure — how deep treelets
//! are (pointer-chase coverage per prefetch), how many tree edges cross
//! treelet boundaries (traversal transfers to the other-treelet stack),
//! and the surface-area-weighted expected utility of prefetched bytes.
//! They explain the `abl01_formation` simulation results.

use crate::treelet::TreeletAssignment;
use rt_bvh::{WideBvh, NODE_SIZE_BYTES};
use std::fmt;

/// Structural quality metrics of a treelet assignment over a BVH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeletMetrics {
    /// Number of treelets.
    pub count: usize,
    /// Mean occupied fraction of the byte budget.
    pub mean_occupancy: f64,
    /// Mean treelet depth (longest root-to-member path inside the
    /// treelet; 1 = single node). Deeper treelets cover more of a ray's
    /// pointer chase per prefetch.
    pub mean_depth: f64,
    /// Fraction of tree edges that cross treelet boundaries. Every
    /// crossing is a deferral to the other-treelet stack during the
    /// two-stack traversal.
    pub cut_edge_fraction: f64,
    /// Surface-area-weighted byte utility: the fraction of all prefetched
    /// bytes (nodes, weighted by the probability a random ray touches
    /// them — their bounding-box surface area relative to the root's)
    /// that land in multi-node treelets. Singleton-treelet bytes always
    /// arrive with their own demand load, so they contribute nothing.
    pub weighted_byte_utility: f64,
}

impl TreeletMetrics {
    /// Computes the metrics of `treelets` over `bvh`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the BVH's node count.
    pub fn of(bvh: &WideBvh, treelets: &TreeletAssignment) -> TreeletMetrics {
        let n = bvh.node_count();
        let covered: usize = treelets.as_slices().iter().map(Vec::len).sum();
        assert_eq!(n, covered, "assignment covers {covered} of {n} nodes");

        // Parent map for depth computation.
        let mut parent = vec![u32::MAX; n];
        let mut edges = 0u64;
        let mut cut_edges = 0u64;
        for (i, node) in bvh.nodes().iter().enumerate() {
            for c in node.child_nodes() {
                parent[c as usize] = i as u32;
                edges += 1;
                if treelets.of_node(c) != treelets.of_node(i as u32) {
                    cut_edges += 1;
                }
            }
        }

        let mut depth_total = 0usize;
        for g in 0..treelets.count() as u32 {
            let mut deepest = 1usize;
            for &m in treelets.members(g) {
                let mut d = 1usize;
                let mut cur = m;
                while parent[cur as usize] != u32::MAX
                    && treelets.of_node(parent[cur as usize]) == g
                {
                    cur = parent[cur as usize];
                    d += 1;
                }
                deepest = deepest.max(d);
            }
            depth_total += deepest;
        }

        let root_area = bvh.root_aabb().surface_area().max(1e-12) as f64;
        let mut weighted_total = 0.0f64;
        let mut weighted_useful = 0.0f64;
        for g in 0..treelets.count() as u32 {
            let members = treelets.members(g);
            let weight: f64 = members
                .iter()
                .map(|&m| {
                    (bvh.nodes()[m as usize].aabb().surface_area() as f64 / root_area)
                        * NODE_SIZE_BYTES as f64
                })
                .sum();
            weighted_total += weight;
            if members.len() > 1 {
                weighted_useful += weight;
            }
        }

        TreeletMetrics {
            count: treelets.count(),
            mean_occupancy: treelets.mean_occupancy(),
            mean_depth: depth_total as f64 / treelets.count().max(1) as f64,
            cut_edge_fraction: if edges == 0 {
                0.0
            } else {
                cut_edges as f64 / edges as f64
            },
            weighted_byte_utility: if weighted_total <= 0.0 {
                0.0
            } else {
                weighted_useful / weighted_total
            },
        }
    }
}

impl fmt::Display for TreeletMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} treelets, depth {:.2}, {:.0}% occupancy, {:.0}% cut edges, {:.0}% weighted utility",
            self.count,
            self.mean_depth,
            self.mean_occupancy * 100.0,
            self.cut_edge_fraction * 100.0,
            self.weighted_byte_utility * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treelet::FormationPolicy;
    use rt_geometry::{Triangle, Vec3};

    fn grid_bvh(n: usize) -> WideBvh {
        let tris: Vec<Triangle> = (0..n)
            .map(|i| {
                let x = (i % 32) as f32 * 2.0;
                let z = (i / 32) as f32 * 2.0;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                )
            })
            .collect();
        WideBvh::build(tris)
    }

    #[test]
    fn singleton_treelets_have_zero_utility_and_full_cut() {
        let bvh = grid_bvh(200);
        let singletons = TreeletAssignment::form(&bvh, 64);
        let m = TreeletMetrics::of(&bvh, &singletons);
        assert_eq!(m.count, bvh.node_count());
        assert!((m.mean_depth - 1.0).abs() < 1e-12);
        assert!((m.cut_edge_fraction - 1.0).abs() < 1e-12);
        assert_eq!(m.weighted_byte_utility, 0.0);
    }

    #[test]
    fn single_treelet_tree_has_no_cut_edges() {
        let bvh = grid_bvh(20);
        // A budget big enough for the whole tree.
        let whole = TreeletAssignment::form(&bvh, bvh.node_count() as u64 * 64);
        let m = TreeletMetrics::of(&bvh, &whole);
        assert_eq!(m.count, 1);
        assert_eq!(m.cut_edge_fraction, 0.0);
        assert!((m.weighted_byte_utility - 1.0).abs() < 1e-12);
        assert!(m.mean_depth as u32 >= bvh.depth().saturating_sub(0));
    }

    #[test]
    fn bigger_budgets_cut_fewer_edges() {
        let bvh = grid_bvh(600);
        let small = TreeletMetrics::of(&bvh, &TreeletAssignment::form(&bvh, 256));
        let large = TreeletMetrics::of(&bvh, &TreeletAssignment::form(&bvh, 2048));
        assert!(large.cut_edge_fraction <= small.cut_edge_fraction + 1e-12);
    }

    #[test]
    fn dfs_formation_is_deeper_on_average() {
        let bvh = grid_bvh(800);
        let bfs = TreeletMetrics::of(
            &bvh,
            &TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::GreedyBfs),
        );
        let dfs = TreeletMetrics::of(
            &bvh,
            &TreeletAssignment::form_with_policy(&bvh, 512, FormationPolicy::GreedyDfs),
        );
        assert!(dfs.mean_depth >= bfs.mean_depth);
    }

    #[test]
    fn display_is_informative() {
        let bvh = grid_bvh(50);
        let m = TreeletMetrics::of(&bvh, &TreeletAssignment::form(&bvh, 512));
        let text = m.to_string();
        assert!(text.contains("treelets"));
        assert!(text.contains("cut edges"));
    }
}
