//! Secondary-ray workload generation.
//!
//! The paper (§2.4) motivates treelet prefetching with the incoherence of
//! secondary and reflection rays, which "traverse drastically different
//! parts of the BVH tree due to the different ray bounces". This module
//! derives such rays by actually tracing a base generation against the
//! BVH and bouncing at the hit points — the closest functional equivalent
//! of the shader-generated bounce rays a full Vulkan pipeline would
//! produce.

use rt_rng::{Rng, SmallRng};
use rt_bvh::WideBvh;
use rt_geometry::{Ray, Vec3};

/// How bounce directions are chosen at each hit point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BounceKind {
    /// Cosine-weighted hemisphere sampling around the geometric normal
    /// (diffuse global-illumination rays — maximally incoherent).
    Diffuse,
    /// Mirror reflection of the incoming direction (reflection rays).
    Specular,
}

impl std::fmt::Display for BounceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BounceKind::Diffuse => "diffuse",
            BounceKind::Specular => "specular",
        })
    }
}

/// Traces `base` rays against `bvh` and returns one bounce ray per hit
/// (missing rays produce no bounce). Deterministic for a given `seed`.
///
/// # Examples
///
/// ```no_run
/// use rt_bvh::WideBvh;
/// use rt_scene::{Scene, SceneId, Workload};
/// use treelet_rt::{bounce_rays, BounceKind};
///
/// let scene = Scene::build_with_detail(SceneId::Bunny, 0.5);
/// let primary = Workload::paper_default().generate(&scene);
/// let bvh = WideBvh::build(scene.mesh.into_triangles());
/// let bounces = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 7);
/// assert!(bounces.len() <= primary.len());
/// ```
pub fn bounce_rays(bvh: &WideBvh, base: &[Ray], kind: BounceKind, seed: u64) -> Vec<Ray> {
    let wrapped: Vec<Option<Ray>> = base.iter().copied().map(Some).collect();
    bounce_rays_indexed(bvh, &wrapped, kind, seed)
        .into_iter()
        .flatten()
        .collect()
}

/// Lane-preserving variant of [`bounce_rays`]: slot `i` of the result is
/// the bounce of slot `i` of `base`, or `None` where the lane was already
/// dead or missed — the form a SIMT warp needs, where dead lanes stay in
/// place.
pub fn bounce_rays_indexed(
    bvh: &WideBvh,
    base: &[Option<Ray>],
    kind: BounceKind,
    seed: u64,
) -> Vec<Option<Ray>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    base.iter()
        .map(|slot| {
            let ray = slot.as_ref()?;
            let hit = bvh.intersect(ray);
            let prim = hit.primitive?;
            let p = ray.at(hit.t);
            let tri = bvh.triangles()[prim as usize];
            let n = {
                let n = tri.normal();
                let n = if n.length_squared() > 1e-12 {
                    n.normalized()
                } else {
                    Vec3::Y
                };
                // Face the normal against the incoming ray.
                if n.dot(ray.direction) > 0.0 {
                    -n
                } else {
                    n
                }
            };
            let dir = match kind {
                BounceKind::Diffuse => sample_hemisphere(&mut rng, n),
                BounceKind::Specular => ray.direction - n * (2.0 * ray.direction.dot(n)),
            };
            Some(Ray::new(p + n * 1e-3, dir.normalized()))
        })
        .collect()
}

/// Cosine-weighted hemisphere sample around `normal`.
fn sample_hemisphere<R: Rng>(rng: &mut R, normal: Vec3) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
        );
        let len2 = v.length_squared();
        if len2 > 1e-6 && len2 <= 1.0 {
            let dir = (normal + v / len2.sqrt()).normalized();
            if dir.dot(normal) > 0.0 {
                return dir;
            }
        }
    }
}

/// Mean pairwise direction coherence of a ray set: 1 = identical
/// directions, 0 = isotropic. Used to verify that bounce generations are
/// less coherent than primary rays.
///
/// # Panics
///
/// Panics if `rays` is empty.
pub fn direction_coherence(rays: &[Ray]) -> f64 {
    assert!(!rays.is_empty(), "need at least one ray");
    // |mean direction| is 1 for identical rays and ~0 for isotropic sets.
    let mut sum = Vec3::ZERO;
    for r in rays {
        sum += r.direction.normalized();
    }
    (sum / rays.len() as f32).length() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::{Scene, SceneId, Workload, WorkloadKind};

    fn fixture() -> (WideBvh, Vec<Ray>) {
        let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
        let rays = Workload::new(WorkloadKind::Primary, 16, 16).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        (bvh, rays)
    }

    #[test]
    fn bounces_originate_at_hit_surfaces() {
        let (bvh, primary) = fixture();
        let bounces = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 1);
        assert!(!bounces.is_empty(), "some primary rays must hit");
        let scene_box = bvh.root_aabb();
        for b in &bounces {
            assert!(
                scene_box.contains_point(b.origin),
                "bounce origin off-surface"
            );
            assert!((b.direction.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn bounce_count_equals_hit_count() {
        let (bvh, primary) = fixture();
        let hits = primary.iter().filter(|r| bvh.intersect(r).is_hit()).count();
        let bounces = bounce_rays(&bvh, &primary, BounceKind::Specular, 1);
        assert_eq!(bounces.len(), hits);
    }

    #[test]
    fn diffuse_bounces_are_less_coherent_than_primary() {
        let (bvh, primary) = fixture();
        let bounces = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 1);
        assert!(
            direction_coherence(&bounces) < direction_coherence(&primary),
            "diffuse bounces should be less coherent"
        );
    }

    #[test]
    fn specular_bounces_leave_the_surface() {
        let (bvh, primary) = fixture();
        for (ray, bounce) in primary
            .iter()
            .filter(|r| bvh.intersect(r).is_hit())
            .zip(bounce_rays(&bvh, &primary, BounceKind::Specular, 1))
        {
            // The specular direction reverses the normal component: its
            // dot with the incoming direction is < 1.
            assert!(bounce.direction.dot(ray.direction.normalized()) < 1.0 - 1e-6);
        }
    }

    #[test]
    fn bounces_are_deterministic_per_seed() {
        let (bvh, primary) = fixture();
        let a = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 42);
        let b = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 42);
        assert_eq!(a, b);
        let c = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 43);
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn coherence_metric_extremes() {
        let same = vec![Ray::new(Vec3::ZERO, Vec3::X); 8];
        assert!((direction_coherence(&same) - 1.0).abs() < 1e-6);
        let opposed = vec![
            Ray::new(Vec3::ZERO, Vec3::X),
            Ray::new(Vec3::ZERO, -Vec3::X),
        ];
        assert!(direction_coherence(&opposed) < 1e-6);
    }
}
