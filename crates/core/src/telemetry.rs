//! Opt-in runtime telemetry: a zero-perturbation time-series of
//! microarchitectural counters sampled every N cycles.
//!
//! The paper's core evidence is time-resolved — prefetch timeliness
//! (Fig. 10), L2→L1 bandwidth (Fig. 11), per-channel DRAM load
//! imbalance (Fig. 15) — but [`SimResult`](crate::SimResult) only
//! reports end-of-run aggregates. The [`Telemetry`] sink collects one
//! [`TelemetrySample`] per epoch by reading the engine's and memory
//! hierarchy's counters through `&self` accessors only: nothing the
//! state digest covers is touched, so a run's
//! [`state_digest`](crate::SimResult::state_digest) is bit-identical
//! with telemetry on or off. Disabled runs pay one `Option` check per
//! cycle, the same gating the checkpoint runner uses.
//!
//! Samples accumulate in memory; CSV/JSON export happens after the run
//! so the simulation itself never performs I/O.

use crate::error::ConfigError;
use std::io::Write;
use std::path::Path;

/// Default sampling interval in core cycles.
pub const DEFAULT_TELEMETRY_EVERY: u64 = 1000;

/// Telemetry sampling parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Sample every this many core cycles (must be nonzero).
    pub every: u64,
}

impl TelemetryOptions {
    /// Sampling every `every` cycles.
    pub fn new(every: u64) -> TelemetryOptions {
        TelemetryOptions { every }
    }

    /// Rejects a zero sampling interval.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.every == 0 {
            return Err(ConfigError::ZeroTelemetryInterval);
        }
        Ok(())
    }
}

impl Default for TelemetryOptions {
    fn default() -> TelemetryOptions {
        TelemetryOptions {
            every: DEFAULT_TELEMETRY_EVERY,
        }
    }
}

/// One telemetry epoch: every counter is the value *at* `cycle`
/// (cumulative counters are running totals, depths are instantaneous).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Core cycle the sample was taken at.
    pub cycle: u64,
    /// Rays not yet retired.
    pub rays_remaining: u64,
    /// Occupied warp-buffer slots across all SMs.
    pub warp_buffer_occupancy: usize,
    /// Warps waiting for a buffer slot across all SMs.
    pub warp_queue_depth: usize,
    /// Entries in the RT-unit scheduler's test heaps across all SMs.
    pub test_heap_depth: usize,
    /// Lines waiting in the treelet prefetch queues across all SMs.
    pub prefetch_queue_depth: usize,
    /// Requests in flight anywhere in the memory hierarchy.
    pub outstanding_requests: usize,
    /// Cumulative L1 demand hit rate across all SMs.
    pub l1_hit_rate: f64,
    /// MSHRs currently allocated across all L1s.
    pub l1_mshrs_in_use: usize,
    /// Cumulative demand accesses rejected by full L1 MSHRs.
    pub l1_mshr_rejections: u64,
    /// Cumulative L2 demand hit rate.
    pub l2_hit_rate: f64,
    /// MSHRs currently allocated at the L2.
    pub l2_mshrs_in_use: usize,
    /// Entries queued at the L2 partitions.
    pub l2_queue_depth: usize,
    /// Cumulative lines returned from L2 to the L1s (Fig. 11).
    pub l2_to_l1_lines: u64,
    /// Cumulative lines filled from DRAM into the L2.
    pub dram_to_l2_lines: u64,
    /// Cumulative useful prefetches (fill landed before the demand).
    pub prefetch_useful: u64,
    /// Cumulative late prefetches (demand arrived first).
    pub prefetch_late: u64,
    /// Cumulative useless prefetches (evicted or stranded untouched).
    pub prefetch_useless: u64,
    /// Instantaneous in-flight request count per DRAM channel.
    pub dram_channel_queue: Vec<usize>,
    /// Cumulative accesses per DRAM channel (Fig. 15).
    pub dram_channel_accesses: Vec<u64>,
    /// Cumulative bytes serviced per DRAM channel.
    pub dram_channel_bytes: Vec<u64>,
}

impl TelemetrySample {
    /// The fixed scalar columns, in CSV order.
    const SCALAR_COLUMNS: &'static [&'static str] = &[
        "cycle",
        "rays_remaining",
        "warp_buffer_occupancy",
        "warp_queue_depth",
        "test_heap_depth",
        "prefetch_queue_depth",
        "outstanding_requests",
        "l1_hit_rate",
        "l1_mshrs_in_use",
        "l1_mshr_rejections",
        "l2_hit_rate",
        "l2_mshrs_in_use",
        "l2_queue_depth",
        "l2_to_l1_lines",
        "dram_to_l2_lines",
        "prefetch_useful",
        "prefetch_late",
        "prefetch_useless",
    ];

    fn scalar_values(&self) -> Vec<String> {
        vec![
            self.cycle.to_string(),
            self.rays_remaining.to_string(),
            self.warp_buffer_occupancy.to_string(),
            self.warp_queue_depth.to_string(),
            self.test_heap_depth.to_string(),
            self.prefetch_queue_depth.to_string(),
            self.outstanding_requests.to_string(),
            format!("{:.6}", self.l1_hit_rate),
            self.l1_mshrs_in_use.to_string(),
            self.l1_mshr_rejections.to_string(),
            format!("{:.6}", self.l2_hit_rate),
            self.l2_mshrs_in_use.to_string(),
            self.l2_queue_depth.to_string(),
            self.l2_to_l1_lines.to_string(),
            self.dram_to_l2_lines.to_string(),
            self.prefetch_useful.to_string(),
            self.prefetch_late.to_string(),
            self.prefetch_useless.to_string(),
        ]
    }
}

/// In-memory telemetry sink: one sample per epoch, exported to CSV or
/// JSON after the run.
#[derive(Debug, Clone)]
pub struct Telemetry {
    every: u64,
    samples: Vec<TelemetrySample>,
}

impl Telemetry {
    /// An empty sink sampling at `opts.every` (callers validate `opts`
    /// first; a zero interval never reaches the engine).
    pub fn new(opts: &TelemetryOptions) -> Telemetry {
        Telemetry {
            every: opts.every,
            samples: Vec::new(),
        }
    }

    /// The sampling interval in core cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Appends one epoch.
    pub(crate) fn record(&mut self, sample: TelemetrySample) {
        self.samples.push(sample);
    }

    /// The collected time-series, oldest first.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Number of epochs collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no epoch was collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn channels(&self) -> usize {
        self.samples
            .first()
            .map_or(0, |s| s.dram_channel_accesses.len())
    }

    /// The CSV header row for this sink's channel count.
    pub fn csv_header(&self) -> String {
        let mut cols: Vec<String> = TelemetrySample::SCALAR_COLUMNS
            .iter()
            .map(|c| c.to_string())
            .collect();
        for ch in 0..self.channels() {
            cols.push(format!("ch{ch}_queue_depth"));
            cols.push(format!("ch{ch}_accesses"));
            cols.push(format!("ch{ch}_bytes"));
        }
        cols.join(",")
    }

    /// Renders the time-series as CSV: a header row, then one row per
    /// epoch with per-channel `ch{i}_queue_depth`/`ch{i}_accesses`/
    /// `ch{i}_bytes` triples after the scalar columns.
    pub fn to_csv(&self) -> String {
        let mut out = self.csv_header();
        out.push('\n');
        for s in &self.samples {
            let mut cells = s.scalar_values();
            for ch in 0..self.channels() {
                cells.push(s.dram_channel_queue.get(ch).copied().unwrap_or(0).to_string());
                cells.push(s.dram_channel_accesses.get(ch).copied().unwrap_or(0).to_string());
                cells.push(s.dram_channel_bytes.get(ch).copied().unwrap_or(0).to_string());
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the time-series as a JSON array of objects; the scalar
    /// columns become numeric fields and the per-channel series become
    /// arrays (`dram_channel_queue`, `dram_channel_accesses`,
    /// `dram_channel_bytes`).
    pub fn to_json(&self) -> String {
        fn json_u64s(values: &[u64]) -> String {
            let items: Vec<String> = values.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        }
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let queues: Vec<String> = s.dram_channel_queue.iter().map(usize::to_string).collect();
            out.push_str(&format!(
                "{{\"cycle\":{},\"rays_remaining\":{},\"warp_buffer_occupancy\":{},\
                 \"warp_queue_depth\":{},\"test_heap_depth\":{},\"prefetch_queue_depth\":{},\
                 \"outstanding_requests\":{},\"l1_hit_rate\":{:.6},\"l1_mshrs_in_use\":{},\
                 \"l1_mshr_rejections\":{},\"l2_hit_rate\":{:.6},\"l2_mshrs_in_use\":{},\
                 \"l2_queue_depth\":{},\"l2_to_l1_lines\":{},\"dram_to_l2_lines\":{},\
                 \"prefetch_useful\":{},\"prefetch_late\":{},\"prefetch_useless\":{},\
                 \"dram_channel_queue\":[{}],\"dram_channel_accesses\":{},\
                 \"dram_channel_bytes\":{}}}",
                s.cycle,
                s.rays_remaining,
                s.warp_buffer_occupancy,
                s.warp_queue_depth,
                s.test_heap_depth,
                s.prefetch_queue_depth,
                s.outstanding_requests,
                s.l1_hit_rate,
                s.l1_mshrs_in_use,
                s.l1_mshr_rejections,
                s.l2_hit_rate,
                s.l2_mshrs_in_use,
                s.l2_queue_depth,
                s.l2_to_l1_lines,
                s.dram_to_l2_lines,
                s.prefetch_useful,
                s.prefetch_late,
                s.prefetch_useless,
                queues.join(","),
                json_u64s(&s.dram_channel_accesses),
                json_u64s(&s.dram_channel_bytes),
            ));
        }
        out.push(']');
        out
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64) -> TelemetrySample {
        TelemetrySample {
            cycle,
            rays_remaining: 10,
            warp_buffer_occupancy: 3,
            warp_queue_depth: 2,
            test_heap_depth: 5,
            prefetch_queue_depth: 1,
            outstanding_requests: 4,
            l1_hit_rate: 0.5,
            l1_mshrs_in_use: 2,
            l1_mshr_rejections: 0,
            l2_hit_rate: 0.25,
            l2_mshrs_in_use: 1,
            l2_queue_depth: 0,
            l2_to_l1_lines: 100,
            dram_to_l2_lines: 40,
            prefetch_useful: 7,
            prefetch_late: 2,
            prefetch_useless: 1,
            dram_channel_queue: vec![1, 0, 2, 0],
            dram_channel_accesses: vec![10, 11, 12, 13],
            dram_channel_bytes: vec![640, 704, 768, 832],
        }
    }

    #[test]
    fn options_validate_rejects_zero_interval() {
        assert!(TelemetryOptions::new(1).validate().is_ok());
        assert_eq!(
            TelemetryOptions::new(0).validate(),
            Err(ConfigError::ZeroTelemetryInterval)
        );
        assert_eq!(TelemetryOptions::default().every, DEFAULT_TELEMETRY_EVERY);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_epoch() {
        let mut t = Telemetry::new(&TelemetryOptions::new(100));
        assert!(t.is_empty());
        t.record(sample(100));
        t.record(sample(200));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let header: Vec<&str> = lines[0].split(',').collect();
        assert!(header.contains(&"cycle"));
        assert!(header.contains(&"prefetch_useful"));
        assert!(header.contains(&"ch0_queue_depth"));
        assert!(header.contains(&"ch3_bytes"));
        // Every row has exactly as many cells as the header has columns.
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header.len());
        }
        // Per-channel triples land in header order.
        let row: Vec<&str> = lines[1].split(',').collect();
        let ch2_accesses = header.iter().position(|&c| c == "ch2_accesses").unwrap();
        assert_eq!(row[ch2_accesses], "12");
    }

    #[test]
    fn json_is_an_array_of_epoch_objects() {
        let mut t = Telemetry::new(&TelemetryOptions::new(100));
        t.record(sample(100));
        let json = t.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"cycle\":100"));
        assert!(json.contains("\"dram_channel_accesses\":[10,11,12,13]"));
        assert!(json.contains("\"prefetch_late\":2"));
        // Balanced braces: one object, no trailing comma.
        assert_eq!(json.matches('{').count(), 1);
        assert_eq!(json.matches('}').count(), 1);
    }

    #[test]
    fn empty_sink_renders_header_only_csv_and_empty_json() {
        let t = Telemetry::new(&TelemetryOptions::default());
        assert_eq!(t.to_csv().lines().count(), 1);
        assert_eq!(t.to_json(), "[]");
    }
}
