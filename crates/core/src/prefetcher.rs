//! The unified [`Prefetcher`] trait — one dispatch surface for every
//! prefetcher the RT unit can run.
//!
//! Before this module, `sim.rs` hard-coded three per-variant paths
//! (treelet voter, MTA, GHB): every hook in the cycle loop — decision
//! sampling, demand observation, queue draining, idle-skip bounds,
//! snapshot codec, stats folding — matched on the concrete type. The
//! trait distills those hooks into one contract, and the engine drives a
//! single enum-dispatched [`PrefetcherUnit`] handle instead. Adding a
//! predictor now means implementing the trait and adding one enum arm,
//! not editing six call sites.
//!
//! The hooks, in cycle-loop order:
//!
//! - [`Prefetcher::observe_ray_enter`] — a ray entered the warp buffer
//!   (the hash predictor probes its table here),
//! - [`Prefetcher::decide`] — once per cycle with a [`WarpBufferView`]
//!   of the resident rays (the treelet voter samples and stages votes),
//! - [`Prefetcher::observe_demand`] — the memory scheduler issued a
//!   demand line (MTA trains on every access, GHB on misses),
//! - [`Prefetcher::pop_entry`] — the scheduler was idle and can issue
//!   one prefetch,
//! - [`Prefetcher::observe_ray_retire`] — a ray completed (the hash
//!   predictor records its path),
//! - [`Prefetcher::encode_state`] / [`Prefetcher::restore_state`] — the
//!   RTSNAP checkpoint codec.

use crate::config::{PrefetchConfig, SimConfig};
use crate::ghb::{GhbPrefetcher, GhbStats};
use crate::hashpath::{HashPathPrefetcher, HashPathStats};
use crate::mta::{MtaPrefetcher, MtaStats};
use crate::prefetch::{
    full_vote_counts, MappingMode, PrefetchEntry, PrefetcherStats, TreeletPrefetcher, Vote,
    VoterKind,
};
use rt_gpu_sim::{ByteReader, ByteWriter, CountTable, CountVec, DecodeError};
use std::fmt;

/// A read-only view of one SM's warp buffer, handed to
/// [`Prefetcher::decide`] each cycle.
///
/// Exposes exactly what the paper's voter hardware can see: per-treelet
/// ray counts (global and per warp), the number of resident rays, the
/// mapping mode, and the address translation from treelet ids to cache
/// lines.
pub struct WarpBufferView<'a> {
    mapping: MappingMode,
    resident_rays: u32,
    counts_global: &'a CountTable,
    per_warp: PerWarpVisitor<'a>,
    treelet_lines: &'a dyn Fn(u32) -> &'a [u64],
    meta_line: &'a dyn Fn(u32) -> u64,
}

/// Visits each occupied warp slot's treelet counts in slot order.
pub type PerWarpVisitor<'a> = &'a dyn Fn(&mut dyn FnMut(&CountVec));

impl fmt::Debug for WarpBufferView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarpBufferView")
            .field("mapping", &self.mapping)
            .field("resident_rays", &self.resident_rays)
            .finish_non_exhaustive()
    }
}

impl<'a> WarpBufferView<'a> {
    /// Assembles a view from the engine's per-SM state.
    ///
    /// `per_warp` visits each occupied warp slot's treelet counts in
    /// slot order; `treelet_lines` and `meta_line` translate a treelet
    /// id to its cache lines under the run's memory layout.
    pub fn new(
        mapping: MappingMode,
        resident_rays: u32,
        counts_global: &'a CountTable,
        per_warp: PerWarpVisitor<'a>,
        treelet_lines: &'a dyn Fn(u32) -> &'a [u64],
        meta_line: &'a dyn Fn(u32) -> u64,
    ) -> Self {
        WarpBufferView {
            mapping,
            resident_rays,
            counts_global,
            per_warp,
            treelet_lines,
            meta_line,
        }
    }

    /// The run's treelet-membership mapping mode.
    pub fn mapping(&self) -> MappingMode {
        self.mapping
    }

    /// Rays currently resident in the warp buffer.
    pub fn resident_rays(&self) -> u32 {
        self.resident_rays
    }

    /// `true` if any resident ray reports a next treelet.
    pub fn has_rays(&self) -> bool {
        !self.counts_global.is_empty()
    }

    /// The cache lines of a treelet's nodes (front first).
    pub fn treelet_lines(&self, treelet: u32) -> &'a [u64] {
        (self.treelet_lines)(treelet)
    }

    /// The mapping-table line that gates a treelet's prefetch.
    pub fn meta_line(&self, treelet: u32) -> u64 {
        (self.meta_line)(treelet)
    }

    /// The ideal full vote over all resident rays (§4.1).
    pub fn full_vote(&self) -> Option<Vote> {
        full_vote_counts(self.counts_global)
    }

    /// The two-level pseudo vote (Fig. 5): each warp elects its own
    /// winner, a second level accumulates the per-warp winners, and the
    /// overall winner's popularity is recomputed exactly.
    pub fn pseudo_vote(&self) -> Option<Vote> {
        let mut second: Vec<(u32, u32)> = Vec::new();
        (self.per_warp)(&mut |warp| {
            if let Some((winner, count)) = warp
                .iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            {
                match second.iter_mut().find(|e| e.0 == winner) {
                    Some(e) => e.1 += count,
                    None => second.push((winner, count)),
                }
            }
        });
        let winner = second
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?
            .0;
        Some(Vote {
            treelet: winner,
            popularity: self.counts_global.get(winner),
        })
    }
}

/// Per-kind statistics from one prefetcher unit, used to fold per-SM
/// counters into a run total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchUnitStats {
    /// Treelet-voter counters.
    Treelet(PrefetcherStats),
    /// MTA stride-prefetcher counters.
    Mta(MtaStats),
    /// Global-history-buffer counters.
    Ghb(GhbStats),
    /// Hash-path-predictor counters.
    Hash(HashPathStats),
}

impl PrefetchUnitStats {
    /// Accumulates another unit's counters into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two values come from different prefetcher kinds —
    /// a run configures the same kind on every SM.
    pub fn merge(&mut self, other: &PrefetchUnitStats) {
        match (self, other) {
            (PrefetchUnitStats::Treelet(a), PrefetchUnitStats::Treelet(b)) => a.merge(b),
            (PrefetchUnitStats::Mta(a), PrefetchUnitStats::Mta(b)) => a.merge(b),
            (PrefetchUnitStats::Ghb(a), PrefetchUnitStats::Ghb(b)) => a.merge(b),
            (PrefetchUnitStats::Hash(a), PrefetchUnitStats::Hash(b)) => a.merge(b),
            _ => panic!("cannot merge statistics from different prefetcher kinds"),
        }
    }
}

/// The contract every RT-unit prefetcher implements.
///
/// Hooks with default no-op bodies are optional: a predictor only
/// overrides the signals it learns from. See the module docs for the
/// cycle-loop order in which the engine calls each hook.
pub trait Prefetcher {
    /// Short lowercase kind name ("treelet", "mta", "ghb", "hash").
    fn name(&self) -> &'static str;

    /// Once-per-cycle decision hook with the SM's warp-buffer view.
    fn decide(&mut self, _now: u64, _view: &WarpBufferView<'_>) {}

    /// The memory scheduler issued a demand line for `warp`; `missed`
    /// is `true` when the L1 lookup did not hit.
    fn observe_demand(&mut self, _warp: u32, _line: u64, _missed: bool) {}

    /// A ray entered the warp buffer with prediction key `key`.
    fn observe_ray_enter(&mut self, _key: u64) {}

    /// A ray with prediction key `key` retired after touching `path`
    /// (node cache lines, front first, consecutive duplicates removed).
    fn observe_ray_retire(&mut self, _key: u64, _path: &[u64]) {}

    /// Pops the next prefetch to issue, if any.
    fn pop_entry(&mut self) -> Option<PrefetchEntry>;

    /// Returns gated lines to the queue front after their mapping-table
    /// line arrived (treelet mapping modes only).
    fn release_gated(&mut self, _lines: Vec<u64>) {}

    /// Entries waiting in the prefetch queue.
    fn queue_len(&self) -> usize;

    /// The cycle at which a staged (latency-delayed) decision applies,
    /// if one is pending — an idle-skip wake-up bound.
    fn staged_ready_at(&self) -> Option<u64> {
        None
    }

    /// The next cycle at which [`Prefetcher::decide`] could act, if the
    /// predictor samples on a schedule — an idle-skip wake-up bound.
    fn next_decision_at(&self) -> Option<u64> {
        None
    }

    /// The treelet most recently prefetched, if the predictor tracks
    /// one (drives the OMR/PMR schedulers).
    fn last_prefetched_treelet(&self) -> Option<u32> {
        None
    }

    /// Counters accumulated so far.
    fn unit_stats(&self) -> PrefetchUnitStats;

    /// Serializes the predictor's dynamic state for a checkpoint.
    fn encode_state(&self, w: &mut ByteWriter);

    /// Restores state written by [`Prefetcher::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the bytes are malformed or exceed
    /// the predictor's configured capacities.
    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError>;
}

impl Prefetcher for TreeletPrefetcher {
    fn name(&self) -> &'static str {
        "treelet"
    }

    fn decide(&mut self, now: u64, view: &WarpBufferView<'_>) {
        let lines = |t: u32| view.treelet_lines(t);
        let meta = |t: u32| view.meta_line(t);
        // Poll unconditionally: it also applies staged decisions whose
        // latency elapsed, which must happen even with no rays resident.
        if !(self.poll(now, view.mapping(), lines, meta) && view.has_rays()) {
            return;
        }
        self.set_resident_rays(view.resident_rays());
        let full = view.full_vote();
        let chosen = match self.voter() {
            VoterKind::Full => full,
            VoterKind::PseudoTwoLevel => view.pseudo_vote(),
        };
        self.submit(now, chosen, full, view.mapping(), lines, meta);
    }

    fn pop_entry(&mut self) -> Option<PrefetchEntry> {
        self.pop()
    }

    fn release_gated(&mut self, lines: Vec<u64>) {
        TreeletPrefetcher::release_gated(self, lines);
    }

    fn queue_len(&self) -> usize {
        TreeletPrefetcher::queue_len(self)
    }

    fn staged_ready_at(&self) -> Option<u64> {
        TreeletPrefetcher::staged_ready_at(self)
    }

    fn next_decision_at(&self) -> Option<u64> {
        Some(self.next_sample_at())
    }

    fn last_prefetched_treelet(&self) -> Option<u32> {
        self.last_prefetched()
    }

    fn unit_stats(&self) -> PrefetchUnitStats {
        PrefetchUnitStats::Treelet(self.stats())
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        TreeletPrefetcher::encode_state(self, w);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        TreeletPrefetcher::restore_state(self, r)
    }
}

impl Prefetcher for MtaPrefetcher {
    fn name(&self) -> &'static str {
        "mta"
    }

    fn observe_demand(&mut self, warp: u32, line: u64, _missed: bool) {
        self.observe(warp, line);
    }

    fn pop_entry(&mut self) -> Option<PrefetchEntry> {
        self.pop().map(PrefetchEntry::Line)
    }

    fn queue_len(&self) -> usize {
        MtaPrefetcher::queue_len(self)
    }

    fn unit_stats(&self) -> PrefetchUnitStats {
        PrefetchUnitStats::Mta(self.stats())
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        MtaPrefetcher::encode_state(self, w);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        MtaPrefetcher::restore_state(self, r)
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        "ghb"
    }

    fn observe_demand(&mut self, _warp: u32, line: u64, missed: bool) {
        // The GHB trains on the miss stream only (§2.3).
        if missed {
            self.observe(line);
        }
    }

    fn pop_entry(&mut self) -> Option<PrefetchEntry> {
        self.pop().map(PrefetchEntry::Line)
    }

    fn queue_len(&self) -> usize {
        GhbPrefetcher::queue_len(self)
    }

    fn unit_stats(&self) -> PrefetchUnitStats {
        PrefetchUnitStats::Ghb(self.stats())
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        GhbPrefetcher::encode_state(self, w);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        GhbPrefetcher::restore_state(self, r)
    }
}

impl Prefetcher for HashPathPrefetcher {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn observe_ray_enter(&mut self, key: u64) {
        self.observe_enter(key);
    }

    fn observe_ray_retire(&mut self, key: u64, path: &[u64]) {
        self.record_path(key, path);
    }

    fn pop_entry(&mut self) -> Option<PrefetchEntry> {
        self.pop().map(PrefetchEntry::Line)
    }

    fn queue_len(&self) -> usize {
        HashPathPrefetcher::queue_len(self)
    }

    fn unit_stats(&self) -> PrefetchUnitStats {
        PrefetchUnitStats::Hash(self.stats())
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        HashPathPrefetcher::encode_state(self, w);
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        HashPathPrefetcher::restore_state(self, r)
    }
}

/// One SM's prefetcher, enum-dispatched so the engine's hot loop pays a
/// predictable branch instead of a vtable call.
#[derive(Debug)]
pub(crate) enum PrefetcherUnit {
    Treelet(TreeletPrefetcher),
    Mta(MtaPrefetcher),
    Ghb(GhbPrefetcher),
    Hash(HashPathPrefetcher),
}

macro_rules! delegate {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PrefetcherUnit::Treelet($p) => $body,
            PrefetcherUnit::Mta($p) => $body,
            PrefetcherUnit::Ghb($p) => $body,
            PrefetcherUnit::Hash($p) => $body,
        }
    };
}

impl PrefetcherUnit {
    /// Builds the unit a configuration asks for, or `None` for the
    /// baseline RT unit.
    pub(crate) fn from_config(config: &SimConfig) -> Option<PrefetcherUnit> {
        match config.prefetch {
            PrefetchConfig::None => None,
            PrefetchConfig::Treelet {
                heuristic,
                voter,
                latency,
                ..
            } => Some(PrefetcherUnit::Treelet(TreeletPrefetcher::new(
                heuristic,
                voter,
                latency,
                config.warp_buffer_rays(),
                config.prefetch_queue_capacity,
            ))),
            PrefetchConfig::Mta => Some(PrefetcherUnit::Mta(MtaPrefetcher::paper_default(
                config.mem.line_bytes,
            ))),
            PrefetchConfig::Ghb => Some(PrefetcherUnit::Ghb(GhbPrefetcher::paper_default(
                config.mem.line_bytes,
            ))),
            PrefetchConfig::Hash {
                table_capacity,
                max_path_lines,
                ..
            } => Some(PrefetcherUnit::Hash(HashPathPrefetcher::new(
                table_capacity,
                config.prefetch_queue_capacity,
                max_path_lines,
            ))),
        }
    }
}

impl Prefetcher for PrefetcherUnit {
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }

    fn decide(&mut self, now: u64, view: &WarpBufferView<'_>) {
        delegate!(self, p => p.decide(now, view))
    }

    fn observe_demand(&mut self, warp: u32, line: u64, missed: bool) {
        delegate!(self, p => p.observe_demand(warp, line, missed))
    }

    fn observe_ray_enter(&mut self, key: u64) {
        delegate!(self, p => p.observe_ray_enter(key))
    }

    fn observe_ray_retire(&mut self, key: u64, path: &[u64]) {
        delegate!(self, p => p.observe_ray_retire(key, path))
    }

    fn pop_entry(&mut self) -> Option<PrefetchEntry> {
        delegate!(self, p => p.pop_entry())
    }

    fn release_gated(&mut self, lines: Vec<u64>) {
        delegate!(self, p => Prefetcher::release_gated(p, lines))
    }

    fn queue_len(&self) -> usize {
        delegate!(self, p => Prefetcher::queue_len(p))
    }

    fn staged_ready_at(&self) -> Option<u64> {
        delegate!(self, p => Prefetcher::staged_ready_at(p))
    }

    fn next_decision_at(&self) -> Option<u64> {
        delegate!(self, p => p.next_decision_at())
    }

    fn last_prefetched_treelet(&self) -> Option<u32> {
        delegate!(self, p => p.last_prefetched_treelet())
    }

    fn unit_stats(&self) -> PrefetchUnitStats {
        delegate!(self, p => p.unit_stats())
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        delegate!(self, p => Prefetcher::encode_state(p, w))
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        delegate!(self, p => Prefetcher::restore_state(p, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_fixture<'a>(
        counts: &'a CountTable,
        per_warp: &'a dyn Fn(&mut dyn FnMut(&CountVec)),
        lines: &'a dyn Fn(u32) -> &'a [u64],
        meta: &'a dyn Fn(u32) -> u64,
    ) -> WarpBufferView<'a> {
        WarpBufferView::new(MappingMode::Packed, 8, counts, per_warp, lines, meta)
    }

    #[test]
    fn pseudo_vote_matches_the_free_function() {
        let mut a = CountVec::with_capacity(4);
        a.add(1, 3);
        a.add(2, 1);
        let mut b = CountVec::with_capacity(4);
        b.add(2, 2);
        let mut global = CountTable::with_key_capacity(8);
        global.add(1, 3);
        global.add(2, 3);
        let warps = [a, b];
        let per_warp = |f: &mut dyn FnMut(&CountVec)| {
            for w in &warps {
                f(w);
            }
        };
        static NO_LINES: [u64; 0] = [];
        let lines = |_t: u32| NO_LINES.as_slice();
        let meta = |_t: u32| 0u64;
        let view = view_fixture(&global, &per_warp, &lines, &meta);
        let expected = crate::prefetch::pseudo_vote_counts(warps.iter(), &global);
        assert_eq!(view.pseudo_vote(), expected);
        assert_eq!(view.full_vote(), full_vote_counts(&global));
    }

    #[test]
    fn unit_construction_follows_the_config() {
        let base = SimConfig::paper_baseline();
        assert!(PrefetcherUnit::from_config(&base).is_none());
        let names: Vec<&str> = [
            PrefetchConfig::treelet(),
            PrefetchConfig::mta(),
            PrefetchConfig::ghb(),
            PrefetchConfig::hash(),
        ]
        .into_iter()
        .map(|p| {
            let cfg = SimConfig::paper_baseline().with_prefetcher(p);
            PrefetcherUnit::from_config(&cfg).expect("unit").name()
        })
        .collect();
        assert_eq!(names, ["treelet", "mta", "ghb", "hash"]);
    }

    #[test]
    fn default_hooks_are_inert() {
        let cfg = SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta());
        let mut unit = PrefetcherUnit::from_config(&cfg).expect("unit");
        unit.observe_ray_enter(7);
        unit.observe_ray_retire(7, &[1, 2, 3]);
        Prefetcher::release_gated(&mut unit, vec![1]);
        assert_eq!(Prefetcher::queue_len(&unit), 0);
        assert_eq!(unit.staged_ready_at(), None);
        assert_eq!(unit.next_decision_at(), None);
        assert_eq!(unit.last_prefetched_treelet(), None);
    }

    #[test]
    #[should_panic(expected = "different prefetcher kinds")]
    fn merging_mismatched_stats_panics() {
        let mut a = PrefetchUnitStats::Mta(MtaStats::default());
        a.merge(&PrefetchUnitStats::Ghb(GhbStats::default()));
    }
}
