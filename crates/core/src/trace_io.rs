//! Serialization of compiled memory-access traces.
//!
//! The per-ray dependent cache-line sequences the timing model replays
//! are the natural interchange artifact for memory-system studies: dump
//! them here to feed other cache/DRAM simulators, or to inspect exactly
//! what the RT unit fetches.
//!
//! Format (line-oriented text; `#` starts a comment):
//!
//! ```text
//! ray 0
//! step node=17 treelet=2 leaf=0 lines=100000040
//! step node=63 treelet=9 leaf=1 lines=100000fc0,100002000,100002040
//! ray 1
//! ...
//! ```
//!
//! Addresses are hexadecimal without `0x`. Steps are dependent: within a
//! ray, step *i+1* cannot issue until step *i*'s lines returned.

use crate::traversal::CompiledStep;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error from trace parsing.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Malformed { line, message } => {
                write!(f, "malformed trace at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes compiled traces in the text format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_traces<W: Write>(mut w: W, traces: &[Vec<CompiledStep>]) -> io::Result<()> {
    writeln!(
        w,
        "# treelet-rt compiled memory trace, {} rays",
        traces.len()
    )?;
    for (i, steps) in traces.iter().enumerate() {
        writeln!(w, "ray {i}")?;
        for s in steps {
            write!(
                w,
                "step node={} treelet={} leaf={} lines=",
                s.node,
                s.treelet,
                u8::from(s.is_leaf)
            )?;
            for (k, line) in s.lines.iter().enumerate() {
                if k > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{line:x}")?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Parses traces written by [`write_traces`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or malformed input.
pub fn read_traces<R: BufRead>(r: R) -> Result<Vec<Vec<CompiledStep>>, ParseTraceError> {
    let mut traces: Vec<Vec<CompiledStep>> = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let malformed = |message: String| ParseTraceError::Malformed {
            line: line_no,
            message,
        };
        if let Some(index_text) = text.strip_prefix("ray ") {
            let index: usize = index_text
                .trim()
                .parse()
                .map_err(|e| malformed(format!("bad ray index: {e}")))?;
            if index != traces.len() {
                return Err(malformed(format!(
                    "ray {index} out of order (expected {})",
                    traces.len()
                )));
            }
            traces.push(Vec::new());
        } else if let Some(rest) = text.strip_prefix("step ") {
            let current = traces
                .last_mut()
                .ok_or_else(|| malformed("step before any ray".into()))?;
            let mut node = None;
            let mut treelet = None;
            let mut leaf = None;
            let mut lines = None;
            for field in rest.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("field {field:?} has no '='")))?;
                match key {
                    "node" => {
                        node = Some(value.parse().map_err(|e| malformed(format!("node: {e}")))?)
                    }
                    "treelet" => {
                        treelet = Some(
                            value
                                .parse()
                                .map_err(|e| malformed(format!("treelet: {e}")))?,
                        )
                    }
                    "leaf" => {
                        leaf = Some(match value {
                            "0" => false,
                            "1" => true,
                            other => {
                                return Err(malformed(format!("leaf must be 0/1, got {other}")))
                            }
                        })
                    }
                    "lines" => {
                        let mut parsed = Vec::new();
                        for addr in value.split(',') {
                            parsed.push(
                                u64::from_str_radix(addr, 16)
                                    .map_err(|e| malformed(format!("address {addr:?}: {e}")))?,
                            );
                        }
                        lines = Some(parsed);
                    }
                    other => return Err(malformed(format!("unknown field {other:?}"))),
                }
            }
            current.push(CompiledStep {
                node: node.ok_or_else(|| malformed("missing node".into()))?,
                treelet: treelet.ok_or_else(|| malformed("missing treelet".into()))?,
                is_leaf: leaf.ok_or_else(|| malformed("missing leaf".into()))?,
                lines: lines.ok_or_else(|| malformed("missing lines".into()))?,
            });
        } else {
            return Err(malformed(format!("unrecognized line {text:?}")));
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<CompiledStep>> {
        vec![
            vec![
                CompiledStep {
                    node: 0,
                    treelet: 0,
                    lines: vec![0x1_0000_0000],
                    is_leaf: false,
                },
                CompiledStep {
                    node: 9,
                    treelet: 3,
                    lines: vec![0x1_0000_0240, 0x1_0001_0000, 0x1_0001_0040],
                    is_leaf: true,
                },
            ],
            vec![],
            vec![CompiledStep {
                node: 2,
                treelet: 1,
                lines: vec![0x1_0000_0080],
                is_leaf: false,
            }],
        ]
    }

    #[test]
    fn round_trip_preserves_traces() {
        let traces = sample();
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &traces).unwrap();
        let parsed = read_traces(buffer.as_slice()).unwrap();
        assert_eq!(parsed, traces);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nray 0\n# inner comment\nstep node=1 treelet=2 leaf=0 lines=40\n";
        let parsed = read_traces(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0][0].lines, vec![0x40]);
    }

    #[test]
    fn out_of_order_ray_errors() {
        let text = "ray 1\n";
        let err = read_traces(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn step_before_ray_errors() {
        let text = "step node=1 treelet=2 leaf=0 lines=40\n";
        assert!(read_traces(text.as_bytes()).is_err());
    }

    #[test]
    fn missing_field_errors_with_line_number() {
        let text = "ray 0\nstep node=1 leaf=0 lines=40\n";
        let err = read_traces(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("treelet"));
    }

    #[test]
    fn bad_hex_address_errors() {
        let text = "ray 0\nstep node=1 treelet=2 leaf=0 lines=zz\n";
        assert!(read_traces(text.as_bytes()).is_err());
    }

    #[test]
    fn real_scene_traces_round_trip() {
        use crate::traversal::{compile_trace, trace_ray, TraversalAlgorithm};
        use crate::treelet::TreeletAssignment;
        let scene = rt_scene::Scene::build_with_detail(rt_scene::SceneId::Wknd, 0.3);
        let rays = rt_scene::Workload::new(rt_scene::WorkloadKind::Primary, 8, 8).generate(&scene);
        let bvh = rt_bvh::WideBvh::build(scene.mesh.into_triangles());
        let treelets = TreeletAssignment::form(&bvh, 512);
        let image = rt_bvh::MemoryImage::depth_first(&bvh);
        let traces: Vec<Vec<CompiledStep>> = rays
            .iter()
            .map(|r| {
                compile_trace(
                    &trace_ray(&bvh, &treelets, r, TraversalAlgorithm::TwoStackTreelet),
                    &image,
                    64,
                )
            })
            .collect();
        let mut buffer = Vec::new();
        write_traces(&mut buffer, &traces).unwrap();
        assert_eq!(read_traces(buffer.as_slice()).unwrap(), traces);
    }
}
