//! The hardware treelet prefetcher (paper §4.1–§4.2, §6.5).
//!
//! The prefetcher watches the warp buffer, finds the most popular
//! *next treelet* among resident rays with a majority voter, applies a
//! prefetch heuristic, and pushes the treelet's cache lines into a
//! prefetch queue that drains when the RT unit's memory scheduler is idle.

use rt_gpu_sim::{ByteReader, ByteWriter, CountTable, CountVec, DecodeError, FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// Majority voter implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoterKind {
    /// An idealized single-cycle voter over all rays in the warp buffer.
    Full,
    /// The paper's practical two-level pseudo voter: a per-warp first
    /// level followed by a second level over per-warp winners. May
    /// disagree with [`VoterKind::Full`] when no clear majority exists
    /// (Fig. 17).
    PseudoTwoLevel,
}

/// The most popular treelet and how many warp-buffer rays will visit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// Winning treelet id.
    pub treelet: u32,
    /// Exact number of rays in the buffer whose next treelet matches
    /// (computed by the address comparator + ones counter, Fig. 4).
    pub popularity: u32,
}

/// Computes the idealized full vote: the exact mode over every ray's next
/// treelet. Returns `None` when no ray is resident.
pub fn full_vote(warps: &[Vec<u32>]) -> Option<Vote> {
    let mut counts = std::collections::HashMap::new();
    for w in warps {
        for &t in w {
            *counts.entry(t).or_insert(0u32) += 1;
        }
    }
    // Deterministic tie-break: lowest treelet id.
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(treelet, popularity)| Vote {
            treelet,
            popularity,
        })
}

/// Computes the two-level pseudo vote (Fig. 5): each warp elects its own
/// most popular treelet with a 32-entry table, then a 16-entry second
/// level accumulates the per-warp winners (weighted by their in-warp
/// counts) and picks the overall winner. The exact popularity of the
/// winner is then recomputed by the address comparator.
pub fn pseudo_vote(warps: &[Vec<u32>]) -> Option<Vote> {
    let mut second = std::collections::HashMap::new();
    for w in warps {
        let mut first = std::collections::HashMap::new();
        for &t in w {
            *first.entry(t).or_insert(0u32) += 1;
        }
        if let Some((winner, count)) = first
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        {
            *second.entry(winner).or_insert(0u32) += count;
        }
    }
    let winner = second
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?
        .0;
    // The popularity tracker compares the winner to every ray (exact).
    let popularity = warps
        .iter()
        .flat_map(|w| w.iter())
        .filter(|&&t| t == winner)
        .count() as u32;
    Some(Vote {
        treelet: winner,
        popularity,
    })
}

/// Computes the full vote from per-treelet ray counts (the simulator's
/// incrementally maintained form of the warp-buffer view).
///
/// The comparator is a total order over distinct keys (count, then lower
/// treelet id), so the table's arbitrary iteration order cannot change
/// the winner.
pub fn full_vote_counts(global: &CountTable) -> Option<Vote> {
    global
        .iter_nonzero()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(treelet, popularity)| Vote {
            treelet,
            popularity,
        })
}

/// Computes the two-level pseudo vote from per-warp treelet counts, using
/// `global` counts for the winner's exact popularity.
pub fn pseudo_vote_counts<'a, I>(per_warp: I, global: &CountTable) -> Option<Vote>
where
    I: IntoIterator<Item = &'a CountVec>,
{
    // Per-SM warp counts are tiny (at most one entry per resident warp),
    // so the second level is a linear scan rather than a hashed table.
    let mut second: Vec<(u32, u32)> = Vec::new();
    for warp in per_warp {
        if let Some((winner, count)) = warp
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        {
            match second.iter_mut().find(|e| e.0 == winner) {
                Some(e) => e.1 += count,
                None => second.push((winner, count)),
            }
        }
    }
    let winner = second
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?
        .0;
    Some(Vote {
        treelet: winner,
        popularity: global.get(winner),
    })
}

/// Prefetch heuristic (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchHeuristic {
    /// Always prefetch the most popular treelet (unless it equals the
    /// previously prefetched one).
    Always,
    /// Prefetch only when the winner's popularity ratio exceeds the
    /// threshold in `[0, 1]`.
    Popularity(f32),
    /// Prefetch a popularity-proportional prefix of the treelet (upper
    /// levels first — treelets are formed breadth-first).
    Partial,
}

impl std::fmt::Display for PrefetchHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchHeuristic::Always => write!(f, "ALWAYS"),
            PrefetchHeuristic::Popularity(t) => write!(f, "POPULARITY:{t}"),
            PrefetchHeuristic::Partial => write!(f, "PARTIAL"),
        }
    }
}

/// How the prefetcher learns treelet membership and node addresses
/// (paper §4.4, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingMode {
    /// The BVH is repacked into the treelet layout: treelet identity and
    /// extent come straight from the address bits. No metadata loads.
    Packed,
    /// Unmodified BVH with a node-to-treelet mapping table; the mapping
    /// load is inserted into the prefetch queue ahead of the prefetches
    /// (the paper's optimistic *Loose Wait*).
    LooseWait,
    /// Unmodified BVH with a mapping table; prefetches may only enter the
    /// queue after the mapping load returns (the paper's pessimistic
    /// *Strict Wait*).
    StrictWait,
}

/// One entry of the prefetch queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchEntry {
    /// Prefetch one cache line of treelet data.
    Line(u64),
    /// Load a mapping-table entry; under [`MappingMode::StrictWait`] the
    /// dependent lines are released only when this load completes.
    Meta {
        /// Address of the 4-byte mapping-table entry (its cache line).
        addr: u64,
        /// Treelet lines gated on this load (empty under Loose Wait,
        /// where lines are enqueued immediately after the meta entry).
        gated_lines: Vec<u64>,
    },
}

/// Prefetcher activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Votes computed.
    pub decisions: u64,
    /// Decisions that passed the heuristic and enqueued a treelet.
    pub treelets_enqueued: u64,
    /// Lines pushed into the prefetch queue.
    pub lines_enqueued: u64,
    /// Decisions suppressed by the duplicate-treelet register.
    pub duplicate_suppressed: u64,
    /// Decisions suppressed by the heuristic threshold.
    pub threshold_suppressed: u64,
    /// Decisions dropped because the queue was full.
    pub queue_full_drops: u64,
    /// Sampling rounds where the pseudo voter agreed with the full voter
    /// (Fig. 17 numerator; only counted when both voters produce a vote).
    pub pseudo_agreements: u64,
    /// Sampling rounds where both voters produced a vote.
    pub pseudo_comparisons: u64,
}

impl PrefetcherStats {
    pub(crate) fn merge(&mut self, other: &PrefetcherStats) {
        self.decisions += other.decisions;
        self.treelets_enqueued += other.treelets_enqueued;
        self.lines_enqueued += other.lines_enqueued;
        self.duplicate_suppressed += other.duplicate_suppressed;
        self.threshold_suppressed += other.threshold_suppressed;
        self.queue_full_drops += other.queue_full_drops;
        self.pseudo_agreements += other.pseudo_agreements;
        self.pseudo_comparisons += other.pseudo_comparisons;
    }

    /// Pseudo-voter decision accuracy (Fig. 17).
    pub fn voter_accuracy(&self) -> f64 {
        if self.pseudo_comparisons == 0 {
            1.0
        } else {
            self.pseudo_agreements as f64 / self.pseudo_comparisons as f64
        }
    }
}

/// The treelet prefetcher attached to one RT unit.
///
/// Drive it by calling [`TreeletPrefetcher::maybe_decide`] once per cycle
/// with a view of the warp buffer, and popping entries with
/// [`TreeletPrefetcher::pop`] on cycles where the memory scheduler is
/// idle.
#[derive(Debug)]
pub struct TreeletPrefetcher {
    heuristic: PrefetchHeuristic,
    voter: VoterKind,
    /// Cycles per decision and decision staleness (Fig. 16 sweep).
    latency: u64,
    /// Warp-buffer ray capacity (upper bound of the popularity-ratio
    /// denominator).
    max_rays: u32,
    /// Rays currently resident in the warp buffer. The paper divides the
    /// popularity by the buffer's maximum ray count; with the 32×32
    /// workload only a few warps are ever resident, which would make
    /// every threshold unreachable, so the ratio uses the resident count
    /// (clamped to the capacity) — the fraction of present rays that
    /// benefit, which is what the heuristic throttles on.
    resident_rays: u32,
    queue: VecDeque<PrefetchEntry>,
    queue_capacity: usize,
    last_prefetched: Option<u32>,
    /// A decision computed at sample time, applied `latency` cycles later.
    staged: Option<(u64, Vote)>,
    next_sample_at: u64,
    stats: PrefetcherStats,
}

impl TreeletPrefetcher {
    /// Creates a prefetcher.
    ///
    /// `latency` is the majority-voter delay in cycles: decisions are
    /// sampled every `max(latency, 1)` cycles and take effect `latency`
    /// cycles after sampling (0 = idealized single-cycle voter).
    ///
    /// # Panics
    ///
    /// Panics if `max_rays` or `queue_capacity` is zero, or a popularity
    /// threshold is outside `[0, 1]`.
    pub fn new(
        heuristic: PrefetchHeuristic,
        voter: VoterKind,
        latency: u64,
        max_rays: u32,
        queue_capacity: usize,
    ) -> TreeletPrefetcher {
        assert!(max_rays > 0, "warp buffer must hold at least one ray");
        assert!(queue_capacity > 0, "prefetch queue needs capacity");
        if let PrefetchHeuristic::Popularity(t) = heuristic {
            assert!((0.0..=1.0).contains(&t), "threshold must be in [0, 1]");
        }
        TreeletPrefetcher {
            heuristic,
            voter,
            latency,
            max_rays,
            resident_rays: max_rays,
            queue: VecDeque::new(),
            queue_capacity,
            last_prefetched: None,
            staged: None,
            next_sample_at: 0,
            stats: PrefetcherStats::default(),
        }
    }

    /// The configured heuristic.
    pub fn heuristic(&self) -> PrefetchHeuristic {
        self.heuristic
    }

    /// The treelet most recently enqueued for prefetch (what the OMR/PMR
    /// schedulers match against).
    pub fn last_prefetched(&self) -> Option<u32> {
        self.last_prefetched
    }

    /// Updates the number of rays currently resident in the warp buffer
    /// (the popularity-ratio denominator).
    pub fn set_resident_rays(&mut self, rays: u32) {
        self.resident_rays = rays.max(1);
    }

    /// The configured voter.
    pub fn voter(&self) -> VoterKind {
        self.voter
    }

    /// Releases any staged decision whose latency has elapsed, and reports
    /// whether the prefetcher wants a fresh warp-buffer sample this cycle.
    ///
    /// When this returns `true`, compute the vote (with
    /// [`full_vote_counts`] / [`pseudo_vote_counts`] or the list-based
    /// variants) and pass it to [`TreeletPrefetcher::submit`].
    pub fn poll<F, M, L>(
        &mut self,
        now: u64,
        mapping: MappingMode,
        treelet_lines: F,
        meta_line: M,
    ) -> bool
    where
        F: Fn(u32) -> L,
        M: Fn(u32) -> u64,
        L: AsRef<[u64]>,
    {
        if let Some((ready_at, vote)) = self.staged {
            if now >= ready_at {
                self.staged = None;
                self.apply(vote, mapping, &treelet_lines, &meta_line);
            }
        }
        now >= self.next_sample_at && self.staged.is_none()
    }

    /// Submits a sampled vote at cycle `now`.
    ///
    /// `chosen` is the vote of the configured voter; `full` is the
    /// idealized full vote, supplied (when cheap to compute) to account
    /// pseudo-voter accuracy (Fig. 17).
    pub fn submit<F, M, L>(
        &mut self,
        now: u64,
        chosen: Option<Vote>,
        full: Option<Vote>,
        mapping: MappingMode,
        treelet_lines: F,
        meta_line: M,
    ) where
        F: Fn(u32) -> L,
        M: Fn(u32) -> u64,
        L: AsRef<[u64]>,
    {
        self.next_sample_at = now + self.latency.max(1);
        if self.voter == VoterKind::PseudoTwoLevel {
            if let (Some(p), Some(f)) = (chosen, full) {
                self.stats.pseudo_comparisons += 1;
                if p.treelet == f.treelet {
                    self.stats.pseudo_agreements += 1;
                }
            }
        }
        let Some(vote) = chosen else { return };
        self.stats.decisions += 1;
        if self.latency == 0 {
            self.apply(vote, mapping, &treelet_lines, &meta_line);
        } else {
            self.staged = Some((now + self.latency, vote));
        }
    }

    /// Runs the complete sample-vote-apply pipeline for cycle `now` from a
    /// warp-buffer view (the list-based convenience form of
    /// [`TreeletPrefetcher::poll`] + [`TreeletPrefetcher::submit`]).
    ///
    /// `warp_treelets[w]` lists the next treelet of each active ray of
    /// warp-buffer entry `w`. `treelet_lines(t)` returns treelet `t`'s
    /// cache lines front-to-back, and `meta_line(t)` the line of its
    /// mapping-table entry (consulted for the Loose/Strict Wait modes).
    pub fn maybe_decide<F, M, L>(
        &mut self,
        now: u64,
        warp_treelets: &[Vec<u32>],
        mapping: MappingMode,
        treelet_lines: F,
        meta_line: M,
    ) where
        F: Fn(u32) -> L,
        M: Fn(u32) -> u64,
        L: AsRef<[u64]>,
    {
        if !self.poll(now, mapping, &treelet_lines, &meta_line) {
            return;
        }
        let full = full_vote(warp_treelets);
        let chosen = match self.voter {
            VoterKind::Full => full,
            VoterKind::PseudoTwoLevel => pseudo_vote(warp_treelets),
        };
        self.submit(now, chosen, full, mapping, treelet_lines, meta_line);
    }

    fn apply<F, M, L>(&mut self, vote: Vote, mapping: MappingMode, treelet_lines: &F, meta_line: &M)
    where
        F: Fn(u32) -> L,
        M: Fn(u32) -> u64,
        L: AsRef<[u64]>,
    {
        // Duplicate-treelet register (§4.1): never prefetch the same
        // treelet twice in a row.
        if self.last_prefetched == Some(vote.treelet) {
            self.stats.duplicate_suppressed += 1;
            return;
        }
        let denominator = self.resident_rays.clamp(1, self.max_rays);
        let ratio = vote.popularity as f32 / denominator as f32;
        let fetched = treelet_lines(vote.treelet);
        let all = fetched.as_ref();
        let lines: &[u64] = match self.heuristic {
            PrefetchHeuristic::Always => all,
            PrefetchHeuristic::Popularity(threshold) => {
                if ratio < threshold {
                    self.stats.threshold_suppressed += 1;
                    return;
                }
                all
            }
            PrefetchHeuristic::Partial => {
                if all.is_empty() {
                    all
                } else {
                    let take = ((all.len() as f32 * ratio).ceil() as usize).clamp(1, all.len());
                    &all[..take]
                }
            }
        };
        if lines.is_empty() {
            return;
        }
        let entries_needed = match mapping {
            MappingMode::Packed => lines.len(),
            _ => lines.len() + 1,
        };
        if self.queue.len() + entries_needed > self.queue_capacity {
            self.stats.queue_full_drops += 1;
            return;
        }
        self.stats.treelets_enqueued += 1;
        self.stats.lines_enqueued += lines.len() as u64;
        self.last_prefetched = Some(vote.treelet);
        match mapping {
            MappingMode::Packed => {
                for &l in lines {
                    self.queue.push_back(PrefetchEntry::Line(l));
                }
            }
            MappingMode::LooseWait => {
                // Mapping load rides the queue ahead of the prefetches but
                // nothing waits for it (best case).
                self.queue.push_back(PrefetchEntry::Meta {
                    addr: meta_line(vote.treelet),
                    gated_lines: Vec::new(),
                });
                for &l in lines {
                    self.queue.push_back(PrefetchEntry::Line(l));
                }
            }
            MappingMode::StrictWait => {
                // Prefetches enter the queue only after the mapping load
                // returns (worst case): gate them on the meta entry.
                self.queue.push_back(PrefetchEntry::Meta {
                    addr: meta_line(vote.treelet),
                    gated_lines: lines.to_vec(),
                });
            }
        }
    }

    /// Pops the next prefetch entry (call when the memory scheduler is
    /// idle, per §4.1).
    pub fn pop(&mut self) -> Option<PrefetchEntry> {
        self.queue.pop_front()
    }

    /// Re-inserts lines released by a completed Strict-Wait mapping load,
    /// at the front of the queue.
    pub fn release_gated(&mut self, lines: Vec<u64>) {
        for l in lines.into_iter().rev() {
            self.queue.push_front(PrefetchEntry::Line(l));
        }
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cycle at which the currently staged decision will apply, if any
    /// (used by the engine's idle-cycle skip to bound a fast-forward).
    pub fn staged_ready_at(&self) -> Option<u64> {
        self.staged.map(|(ready_at, _)| ready_at)
    }

    /// Earliest cycle at which the prefetcher wants a fresh warp-buffer
    /// sample (used by the engine's idle-cycle skip).
    pub fn next_sample_at(&self) -> u64 {
        self.next_sample_at
    }

    /// Activity counters.
    pub fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    /// Serializes the dynamic prefetcher state (the configuration fields
    /// are rebuilt from [`SimConfig`](crate::SimConfig) at resume).
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.resident_rays);
        w.put_len(self.queue.len());
        for entry in &self.queue {
            encode_prefetch_entry(entry, w);
        }
        match self.last_prefetched {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                w.put_u32(t);
            }
        }
        match self.staged {
            None => w.put_bool(false),
            Some((ready_at, vote)) => {
                w.put_bool(true);
                w.put_u64(ready_at);
                w.put_u32(vote.treelet);
                w.put_u32(vote.popularity);
            }
        }
        w.put_u64(self.next_sample_at);
        for v in [
            self.stats.decisions,
            self.stats.treelets_enqueued,
            self.stats.lines_enqueued,
            self.stats.duplicate_suppressed,
            self.stats.threshold_suppressed,
            self.stats.queue_full_drops,
            self.stats.pseudo_agreements,
            self.stats.pseudo_comparisons,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores dynamic state captured by
    /// [`TreeletPrefetcher::encode_state`] onto a freshly constructed
    /// prefetcher (same configuration).
    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), DecodeError> {
        self.resident_rays = r.take_u32()?;
        let n = r.take_len(9)?;
        self.queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            let entry = decode_prefetch_entry(r)?;
            self.queue.push_back(entry);
        }
        self.last_prefetched = if r.take_bool()? {
            Some(r.take_u32()?)
        } else {
            None
        };
        self.staged = if r.take_bool()? {
            let ready_at = r.take_u64()?;
            let treelet = r.take_u32()?;
            let popularity = r.take_u32()?;
            Some((
                ready_at,
                Vote {
                    treelet,
                    popularity,
                },
            ))
        } else {
            None
        };
        self.next_sample_at = r.take_u64()?;
        self.stats = PrefetcherStats {
            decisions: r.take_u64()?,
            treelets_enqueued: r.take_u64()?,
            lines_enqueued: r.take_u64()?,
            duplicate_suppressed: r.take_u64()?,
            threshold_suppressed: r.take_u64()?,
            queue_full_drops: r.take_u64()?,
            pseudo_agreements: r.take_u64()?,
            pseudo_comparisons: r.take_u64()?,
        };
        Ok(())
    }
}

fn encode_prefetch_entry(entry: &PrefetchEntry, w: &mut ByteWriter) {
    match entry {
        PrefetchEntry::Line(addr) => {
            w.put_u8(0);
            w.put_u64(*addr);
        }
        PrefetchEntry::Meta { addr, gated_lines } => {
            w.put_u8(1);
            w.put_u64(*addr);
            w.put_len(gated_lines.len());
            for &line in gated_lines {
                w.put_u64(line);
            }
        }
    }
}

fn decode_prefetch_entry(r: &mut ByteReader<'_>) -> Result<PrefetchEntry, DecodeError> {
    match r.take_u8()? {
        0 => Ok(PrefetchEntry::Line(r.take_u64()?)),
        1 => {
            let addr = r.take_u64()?;
            let n = r.take_len(8)?;
            let mut gated_lines = Vec::with_capacity(n);
            for _ in 0..n {
                gated_lines.push(r.take_u64()?);
            }
            Ok(PrefetchEntry::Meta { addr, gated_lines })
        }
        t => Err(DecodeError::malformed(format!(
            "unknown prefetch entry tag {t}"
        ))),
    }
}

/// Storage/area arithmetic of the two-level pseudo majority voter
/// (paper §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoterAreaModel {
    /// First-level entries (one per thread of a warp).
    pub first_level_entries: u32,
    /// Second-level entries (one per warp-buffer slot).
    pub second_level_entries: u32,
    /// Treelet address bits (512-byte-aligned roots need 23 bits).
    pub address_bits: u32,
}

impl VoterAreaModel {
    /// The paper's parameters: 32-entry first level, 16-entry second
    /// level, 23-bit treelet addresses.
    pub fn paper_default() -> Self {
        VoterAreaModel {
            first_level_entries: 32,
            second_level_entries: 16,
            address_bits: 23,
        }
    }

    /// Count-field bits of a table: enough to count its entries, with the
    /// early-majority optimization (a count over half the table size
    /// immediately wins, so `ceil(log2(entries)) - 1` bits suffice... the
    /// paper uses 4 bits for 32 entries and 3 for 16).
    fn count_bits(entries: u32) -> u32 {
        32 - (entries - 1).leading_zeros() - 1
    }

    /// First-level table storage in bytes (the paper's 108 B).
    pub fn first_level_table_bytes(&self) -> u32 {
        let bits = self.first_level_entries
            * (self.address_bits + Self::count_bits(self.first_level_entries));
        bits.div_ceil(8)
    }

    /// Second-level table storage in bytes (the paper's 52 B).
    pub fn second_level_table_bytes(&self) -> u32 {
        let bits = self.second_level_entries
            * (self.address_bits + Self::count_bits(self.second_level_entries));
        bits.div_ceil(8)
    }

    /// Synthesized area of the voter's sequential logic in µm²
    /// (FreePDK45, the paper's 461 µm²).
    pub fn sequential_area_um2(&self) -> f64 {
        461.0
    }

    /// Voter latency in cycles for a given number of replicated
    /// first-level tables: with one table the voter counts one thread per
    /// cycle over the whole buffer (512 cycles); replication divides it.
    ///
    /// # Panics
    ///
    /// Panics if `first_level_tables` is zero.
    pub fn latency_cycles(&self, first_level_tables: u32) -> u64 {
        assert!(first_level_tables > 0, "need at least one table");
        let total_threads = self.first_level_entries * self.second_level_entries;
        (total_threads / first_level_tables.min(self.second_level_entries)) as u64
    }
}

/// Per-prefetch usefulness in the paper's timeliness taxonomy (Fig. 10):
/// *useful* prefetches land before the demand access, *late* ones are
/// still in flight when the demand arrives (the demand sees at best a
/// partial latency saving), and *useless* ones are evicted — or the run
/// ends — without ever being touched by a demand access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchUsefulness {
    /// Prefetches that completed before their first demand access.
    pub useful: u64,
    /// Prefetches whose demand access arrived while the fill was still
    /// in flight.
    pub late: u64,
    /// Prefetches evicted (or left behind at end of run) untouched.
    pub useless: u64,
}

impl PrefetchUsefulness {
    /// Folds the cache model's five-way timeliness counters
    /// ([`PrefetchEffect`](rt_gpu_sim::PrefetchEffect)) into the paper's
    /// three-way taxonomy: `timely` fills are useful; `late` and
    /// `too_late` fills both mean the demand arrived first; `early`
    /// (evicted before use) and `unused` fills are useless.
    pub fn from_effect(e: &rt_gpu_sim::PrefetchEffect) -> PrefetchUsefulness {
        PrefetchUsefulness {
            useful: e.timely,
            late: e.late + e.too_late,
            useless: e.early + e.unused,
        }
    }

    /// Total classified prefetches.
    pub fn total(&self) -> u64 {
        self.useful + self.late + self.useless
    }
}

/// Event-level classifier for prefetch usefulness.
///
/// Feed it the lifecycle events of prefetched lines — issue, fill,
/// demand access, eviction — and it classifies each line the first time
/// its fate is decided:
///
/// - demand access after the fill completed → **useful**
/// - demand access while the fill is still in flight → **late**
/// - eviction (or [`finalize`](Self::finalize)) with no demand access →
///   **useless**
///
/// Repeat demand hits on an already-classified line are ignored; a line
/// re-prefetched after eviction starts a new lifecycle.
#[derive(Debug, Clone, Default)]
pub struct UsefulnessTracker {
    /// Prefetches issued whose fill has not yet arrived.
    in_flight: FxHashSet<u64>,
    /// Filled prefetched lines, mapped to "touched by a demand access".
    resident: FxHashMap<u64, bool>,
    counts: PrefetchUsefulness,
}

impl UsefulnessTracker {
    /// Creates an empty tracker.
    pub fn new() -> UsefulnessTracker {
        UsefulnessTracker::default()
    }

    /// A prefetch for `line` was issued to the memory system.
    pub fn on_issue(&mut self, line: u64) {
        if !self.resident.contains_key(&line) {
            self.in_flight.insert(line);
        }
    }

    /// The prefetch fill for `line` arrived from the memory system.
    pub fn on_fill(&mut self, line: u64) {
        if self.in_flight.remove(&line) {
            self.resident.insert(line, false);
        }
    }

    /// A demand access touched `line`.
    pub fn on_demand(&mut self, line: u64) {
        if self.in_flight.remove(&line) {
            // Demand arrived before the fill: the prefetch was late. The
            // fill will still land; track it as an already-touched
            // resident line so the eviction does not double-count it.
            self.counts.late += 1;
            self.resident.insert(line, true);
        } else if let Some(touched) = self.resident.get_mut(&line) {
            if !*touched {
                *touched = true;
                self.counts.useful += 1;
            }
        }
    }

    /// `line` was evicted from the cache.
    pub fn on_evict(&mut self, line: u64) {
        if let Some(touched) = self.resident.remove(&line) {
            if !touched {
                self.counts.useless += 1;
            }
        }
    }

    /// Counts classified so far (lines still resident or in flight are
    /// not yet counted).
    pub fn counts(&self) -> PrefetchUsefulness {
        self.counts
    }

    /// Ends the run: every line never touched by a demand access —
    /// resident or still in flight — is classified useless.
    pub fn finalize(mut self) -> PrefetchUsefulness {
        self.counts.useless += self.in_flight.len() as u64;
        self.counts.useless += self.resident.values().filter(|&&t| !t).count() as u64;
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(t: u32) -> Vec<u64> {
        (0..8).map(|i| (t as u64) * 512 + i * 64).collect()
    }

    fn meta_of(t: u32) -> u64 {
        0x9000_0000 + (t as u64) * 4 / 64 * 64
    }

    #[test]
    fn full_vote_finds_mode() {
        let warps = vec![vec![1, 1, 2], vec![2, 2, 2]];
        let v = full_vote(&warps).unwrap();
        assert_eq!(v.treelet, 2);
        assert_eq!(v.popularity, 4);
    }

    #[test]
    fn full_vote_empty_is_none() {
        assert_eq!(full_vote(&[]), None);
        assert_eq!(full_vote(&[vec![], vec![]]), None);
    }

    #[test]
    fn full_vote_tie_breaks_to_lower_id() {
        let warps = vec![vec![3, 3, 7, 7]];
        assert_eq!(full_vote(&warps).unwrap().treelet, 3);
    }

    #[test]
    fn pseudo_vote_matches_full_on_clear_majority() {
        let warps = vec![vec![5; 10], vec![5; 8], vec![1, 2, 3]];
        let p = pseudo_vote(&warps).unwrap();
        let f = full_vote(&warps).unwrap();
        assert_eq!(p.treelet, f.treelet);
        assert_eq!(p.popularity, 18);
    }

    #[test]
    fn counts_based_votes_match_list_based() {
        let warps = vec![vec![1, 1, 2, 9], vec![2, 2, 9], vec![9, 9, 9]];
        let mut global = CountTable::default();
        let per_warp: Vec<CountVec> = warps
            .iter()
            .map(|w| {
                let mut m = CountVec::default();
                for &t in w {
                    m.increment(t);
                    global.increment(t);
                }
                m
            })
            .collect();
        assert_eq!(full_vote(&warps), full_vote_counts(&global));
        assert_eq!(
            pseudo_vote(&warps),
            pseudo_vote_counts(per_warp.iter(), &global)
        );
    }

    #[test]
    fn counts_votes_ignore_zero_entries() {
        // A key whose count returned to zero must not win a vote.
        let mut global = CountTable::default();
        global.increment(5);
        global.decrement(5);
        assert_eq!(full_vote_counts(&global), None);
        let mut warp = CountVec::default();
        warp.increment(5);
        warp.decrement(5);
        assert_eq!(pseudo_vote_counts([&warp], &global), None);
    }

    #[test]
    fn pseudo_vote_can_disagree_without_majority() {
        // Treelet 9 is globally most common (6 rays) but never wins a
        // warp; each warp's winner is unique. The pseudo voter picks one
        // of the per-warp winners.
        let warps = vec![
            vec![1, 1, 1, 9, 9],
            vec![2, 2, 2, 9, 9],
            vec![3, 3, 3, 9, 9],
        ];
        let f = full_vote(&warps).unwrap();
        assert_eq!(f.treelet, 9);
        let p = pseudo_vote(&warps).unwrap();
        assert_ne!(p.treelet, 9);
    }

    fn prefetcher(h: PrefetchHeuristic) -> TreeletPrefetcher {
        TreeletPrefetcher::new(h, VoterKind::Full, 0, 512, 64)
    }

    #[test]
    fn always_enqueues_winning_treelet_lines() {
        let mut p = prefetcher(PrefetchHeuristic::Always);
        let warps = vec![vec![4, 4, 4]];
        p.maybe_decide(0, &warps, MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 8);
        assert_eq!(p.pop(), Some(PrefetchEntry::Line(4 * 512)));
        assert_eq!(p.last_prefetched(), Some(4));
        assert_eq!(p.stats().treelets_enqueued, 1);
    }

    #[test]
    fn duplicate_treelet_suppressed() {
        let mut p = prefetcher(PrefetchHeuristic::Always);
        let warps = vec![vec![4, 4]];
        p.maybe_decide(0, &warps, MappingMode::Packed, lines_of, meta_of);
        p.maybe_decide(1, &warps, MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.stats().duplicate_suppressed, 1);
        assert_eq!(p.queue_len(), 8); // only one treelet's worth
    }

    #[test]
    fn popularity_threshold_gates() {
        let mut p = TreeletPrefetcher::new(
            PrefetchHeuristic::Popularity(0.5),
            VoterKind::Full,
            0,
            8, // max rays
            64,
        );
        // 3 of 8 rays -> ratio 0.375 < 0.5: suppressed.
        p.maybe_decide(0, &[vec![4, 4, 4]], MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 0);
        assert_eq!(p.stats().threshold_suppressed, 1);
        // 5 of 8 -> passes.
        p.maybe_decide(1, &[vec![4; 5]], MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 8);
    }

    #[test]
    fn partial_prefetches_popularity_fraction_from_front() {
        let mut p = TreeletPrefetcher::new(PrefetchHeuristic::Partial, VoterKind::Full, 0, 16, 64);
        // 8 of 16 rays -> half the treelet (4 of 8 lines), front first.
        p.maybe_decide(0, &[vec![4; 8]], MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 4);
        assert_eq!(p.pop(), Some(PrefetchEntry::Line(4 * 512)));
    }

    #[test]
    fn loose_wait_prepends_meta_load() {
        let mut p = prefetcher(PrefetchHeuristic::Always);
        p.maybe_decide(0, &[vec![4, 4]], MappingMode::LooseWait, lines_of, meta_of);
        assert_eq!(p.queue_len(), 9);
        match p.pop().unwrap() {
            PrefetchEntry::Meta { gated_lines, .. } => assert!(gated_lines.is_empty()),
            other => panic!("expected meta first, got {other:?}"),
        }
    }

    #[test]
    fn strict_wait_gates_lines_on_meta() {
        let mut p = prefetcher(PrefetchHeuristic::Always);
        p.maybe_decide(0, &[vec![4, 4]], MappingMode::StrictWait, lines_of, meta_of);
        assert_eq!(p.queue_len(), 1);
        let entry = p.pop().unwrap();
        match entry {
            PrefetchEntry::Meta { gated_lines, .. } => {
                assert_eq!(gated_lines.len(), 8);
                p.release_gated(gated_lines);
                assert_eq!(p.queue_len(), 8);
                assert_eq!(p.pop(), Some(PrefetchEntry::Line(4 * 512)));
            }
            other => panic!("expected gated meta, got {other:?}"),
        }
    }

    #[test]
    fn latency_stages_decisions() {
        let mut p = TreeletPrefetcher::new(PrefetchHeuristic::Always, VoterKind::Full, 32, 512, 64);
        let warps = vec![vec![4, 4]];
        p.maybe_decide(0, &warps, MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 0, "decision must not apply before latency");
        for t in 1..32 {
            p.maybe_decide(t, &warps, MappingMode::Packed, lines_of, meta_of);
        }
        assert_eq!(p.queue_len(), 0);
        p.maybe_decide(32, &warps, MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.queue_len(), 8);
    }

    #[test]
    fn queue_capacity_drops_decisions() {
        let mut p = TreeletPrefetcher::new(
            PrefetchHeuristic::Always,
            VoterKind::Full,
            0,
            512,
            10, // fits one treelet (8 lines) but not two
        );
        p.maybe_decide(0, &[vec![4, 4]], MappingMode::Packed, lines_of, meta_of);
        p.maybe_decide(1, &[vec![5, 5]], MappingMode::Packed, lines_of, meta_of);
        assert_eq!(p.stats().queue_full_drops, 1);
        assert_eq!(p.queue_len(), 8);
    }

    #[test]
    fn pseudo_accuracy_tracked() {
        let mut p = TreeletPrefetcher::new(
            PrefetchHeuristic::Always,
            VoterKind::PseudoTwoLevel,
            0,
            512,
            64,
        );
        p.maybe_decide(0, &[vec![4, 4]], MappingMode::Packed, lines_of, meta_of);
        let s = p.stats();
        assert_eq!(s.pseudo_comparisons, 1);
        assert_eq!(s.pseudo_agreements, 1);
        assert!((s.voter_accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_model_matches_paper_numbers() {
        let m = VoterAreaModel::paper_default();
        assert_eq!(m.first_level_table_bytes(), 108);
        assert_eq!(m.second_level_table_bytes(), 52);
        assert_eq!(m.sequential_area_um2(), 461.0);
        // 1 first-level table -> 512-cycle voter; 16 tables -> 32 cycles;
        // 4 tables -> 128 cycles (all from §6.5).
        assert_eq!(m.latency_cycles(1), 512);
        assert_eq!(m.latency_cycles(4), 128);
        assert_eq!(m.latency_cycles(16), 32);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn invalid_threshold_panics() {
        let _ = TreeletPrefetcher::new(
            PrefetchHeuristic::Popularity(1.5),
            VoterKind::Full,
            0,
            512,
            64,
        );
    }

    #[test]
    fn useful_sequence_issue_fill_then_demand() {
        let mut t = UsefulnessTracker::new();
        t.on_issue(0x100);
        t.on_fill(0x100);
        t.on_demand(0x100);
        // A second hit on the same line does not double-count.
        t.on_demand(0x100);
        t.on_evict(0x100);
        let c = t.finalize();
        assert_eq!(
            c,
            PrefetchUsefulness {
                useful: 1,
                late: 0,
                useless: 0
            }
        );
    }

    #[test]
    fn late_sequence_demand_beats_fill() {
        let mut t = UsefulnessTracker::new();
        t.on_issue(0x200);
        t.on_demand(0x200); // demand arrives while the fill is in flight
        t.on_fill(0x200);
        t.on_evict(0x200);
        let c = t.finalize();
        assert_eq!(
            c,
            PrefetchUsefulness {
                useful: 0,
                late: 1,
                useless: 0
            }
        );
    }

    #[test]
    fn useless_sequences_evicted_or_stranded_untouched() {
        let mut t = UsefulnessTracker::new();
        // Filled, never demanded, evicted.
        t.on_issue(0x300);
        t.on_fill(0x300);
        t.on_evict(0x300);
        assert_eq!(t.counts().useless, 1);
        // Filled, never demanded, still resident at end of run.
        t.on_issue(0x400);
        t.on_fill(0x400);
        // Issued, never even filled by end of run.
        t.on_issue(0x500);
        let c = t.finalize();
        assert_eq!(
            c,
            PrefetchUsefulness {
                useful: 0,
                late: 0,
                useless: 3
            }
        );
    }

    #[test]
    fn mixed_sequence_classifies_each_line_once() {
        let mut t = UsefulnessTracker::new();
        for line in [0x100, 0x200, 0x300] {
            t.on_issue(line);
        }
        t.on_fill(0x100);
        t.on_demand(0x100); // useful
        t.on_demand(0x200); // late (fill still in flight)
        t.on_fill(0x200);
        t.on_fill(0x300);
        t.on_evict(0x300); // useless
        assert_eq!(
            t.counts(),
            PrefetchUsefulness {
                useful: 1,
                late: 1,
                useless: 1
            }
        );
        assert_eq!(t.counts().total(), 3);
        assert_eq!(t.finalize().total(), 3);
    }

    #[test]
    fn taxonomy_folds_the_cache_effect_counters() {
        let e = rt_gpu_sim::PrefetchEffect {
            too_late: 2,
            late: 3,
            timely: 5,
            early: 7,
            unused: 11,
        };
        let u = PrefetchUsefulness::from_effect(&e);
        assert_eq!(u.useful, 5);
        assert_eq!(u.late, 5);
        assert_eq!(u.useless, 18);
        assert_eq!(u.total(), e.total());
    }
}
