//! Parallel execution of independent simulation jobs.
//!
//! Suites and config sweeps are embarrassingly parallel: every
//! (scene, config) cell is an isolated, deterministic, single-threaded
//! simulation. This module shards such cells across a small hand-rolled
//! scoped thread pool (no external dependencies — the build is offline)
//! while preserving the serial contract exactly:
//!
//! - **Deterministic ordering** — results come back in job-index order
//!   no matter which worker finished first.
//! - **Bit-identical results** — each job runs the same single-threaded
//!   simulation a serial loop would, so every
//!   [`state_digest`](crate::SimResult::state_digest) matches the
//!   `jobs == 1` run bit for bit.
//! - **`jobs == 1` is literally serial** — the closure runs inline on
//!   the caller's thread; no worker threads are spawned.
//!
//! Two pools are provided. [`run_indexed`] is the legacy uniform-cost
//! pool: workers claim one index at a time from an atomic counter, which
//! is fine when every job costs about the same. [`run_weighted`] is the
//! cost-model scheduler used by [`Sweep`] and the `rt-bench` suite: each
//! cell carries an estimated cost (BVH node count × ray count), cheap
//! cells run inline on the caller's thread, expensive cells are sorted
//! longest-first and claimed in cost-weighted chunks, and the worker
//! count never exceeds the machine's actual core count — spawning more
//! CPU-bound workers than cores is pure context-switch overhead, which
//! is exactly the parallel-slower-than-serial regression this scheduler
//! fixes on small machines.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::experiments::Bench;
use crate::sim::SimResult;
use rt_scene::SceneId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Parses an `RT_JOBS`-style override: a positive integer means "use
/// exactly this many workers"; anything else is ignored.
fn jobs_from_env(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// The machine's available parallelism, or 1 when it cannot be
/// determined.
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default worker count: the `RT_JOBS` environment variable when it is
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    let env = std::env::var("RT_JOBS").ok();
    jobs_from_env(env.as_deref()).unwrap_or_else(hardware_parallelism)
}

/// [`default_jobs`] capped at the number of cells actually on offer —
/// an 8-core box running a 3-cell sweep gets 3 workers, not 8 threads
/// with five of them idle. Always at least 1, even for zero cells.
pub fn default_jobs_for(cells: usize) -> usize {
    default_jobs().min(cells).max(1)
}

/// Runs `run(0..count)` across `jobs` workers and returns the results in
/// index order.
///
/// Workers claim indices from a shared atomic counter (dynamic load
/// balancing: a slow job never stalls the queue behind it) and collect
/// `(index, result)` pairs privately; the pairs are merged and sorted
/// after the scope joins, so output order is independent of completion
/// order. With `jobs == 1` the closure runs inline on the caller's
/// thread — byte-for-byte today's serial behaviour.
///
/// This is the *uniform-cost* pool: every index is assumed equally
/// expensive. When per-job cost estimates exist, [`run_weighted`]
/// schedules better.
///
/// # Panics
///
/// Panics if `jobs` is zero, and resumes the panic of any `run` call
/// that panics (callers wanting per-job isolation wrap `run` in
/// `catch_unwind`, as [`Suite::run_all_robust_with`] does in `rt-bench`).
pub fn run_indexed<T, F>(jobs: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    if jobs == 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, run) = (&next, &run);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(count))
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, run(i)));
                    }
                    mine
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| {
                w.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Cells estimated cheaper than this (in [`Bench::estimated_cost`]
/// units: BVH nodes × rays) run inline on the caller's thread — the
/// cross-thread handoff costs more than the work.
pub const INLINE_COST: u64 = 32_768;

/// Minimum estimated cost of one claimable chunk. Chunks are sized at
/// `max(total_big_cost / (4 × workers), CHUNK_MIN_COST)` so each worker
/// sees ~4 claims of load-balancing slack without the claim traffic of
/// one-cell-at-a-time scheduling.
pub const CHUNK_MIN_COST: u64 = 262_144;

/// A cost-model execution plan for a set of weighted cells, produced by
/// [`plan_schedule`] and executed by [`run_scheduled`].
///
/// The plan partitions cells into *inline* work (cheap cells the caller
/// runs itself, in index order) and *chunks* of expensive cells (sorted
/// longest-first, claimed dynamically by the worker pool). `workers`
/// counts every participating thread including the caller; a plan with
/// `workers == 1` degenerates to the plain serial loop and spawns
/// nothing.
#[derive(Debug, Clone)]
pub struct Schedule {
    cells: usize,
    inline: Vec<usize>,
    chunks: Vec<Vec<usize>>,
    workers: usize,
    inline_cost: u64,
    chunked_cost: u64,
}

impl Schedule {
    /// Total number of cells the plan covers.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Threads that will participate, caller included. `1` means fully
    /// serial: no threads are spawned.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cell indices the caller runs inline, in index order.
    pub fn inline_cells(&self) -> &[usize] {
        &self.inline
    }

    /// The cost-weighted chunks of expensive cells, in claim order
    /// (largest first).
    pub fn chunks(&self) -> &[Vec<usize>] {
        &self.chunks
    }

    /// Summed estimated cost of the inline cells.
    pub fn inline_cost(&self) -> u64 {
        self.inline_cost
    }

    /// Summed estimated cost of the chunked cells.
    pub fn chunked_cost(&self) -> u64 {
        self.chunked_cost
    }

    /// A serial plan: every cell inline on the caller, nothing spawned.
    fn serial(costs: &[u64]) -> Schedule {
        Schedule {
            cells: costs.len(),
            inline: (0..costs.len()).collect(),
            chunks: Vec::new(),
            workers: 1,
            inline_cost: costs.iter().sum(),
            chunked_cost: 0,
        }
    }
}

/// Plans a cost-model schedule for `costs.len()` cells on `jobs`
/// requested workers, clamped to the machine's available parallelism.
/// See [`plan_schedule_with`] for the planning rules.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn plan_schedule(jobs: usize, costs: &[u64]) -> Schedule {
    plan_schedule_with(jobs, hardware_parallelism(), costs)
}

/// [`plan_schedule`] with the hardware parallelism injected — the pure,
/// deterministic core, so tests (and a 1-core CI box) can exercise
/// multi-worker plans.
///
/// Rules:
///
/// - cells estimated below [`INLINE_COST`] run inline on the caller;
/// - the remaining cells are sorted longest-first (stable: ties keep
///   index order) and packed greedily into chunks of at least
///   `max(total / (4 × workers), CHUNK_MIN_COST)` estimated cost;
/// - `workers = min(jobs, hardware, chunks + 1 if there is inline work)`
///   and never below 1 — the scheduler refuses to oversubscribe the
///   machine no matter how many jobs were requested, because an extra
///   CPU-bound worker per core is a context-switch tax, not a speedup.
///
/// The caller's thread is worker #0: it runs the inline cells first,
/// then joins the chunk-claiming loop alongside the `workers − 1`
/// spawned threads.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn plan_schedule_with(jobs: usize, hardware: usize, costs: &[u64]) -> Schedule {
    assert!(jobs > 0, "need at least one worker");
    let budget = jobs.min(hardware.max(1));
    if budget <= 1 || costs.len() <= 1 {
        return Schedule::serial(costs);
    }

    let mut inline = Vec::new();
    let mut big: Vec<(usize, u64)> = Vec::new();
    for (i, &c) in costs.iter().enumerate() {
        if c < INLINE_COST {
            inline.push(i);
        } else {
            big.push((i, c));
        }
    }
    if big.is_empty() {
        return Schedule::serial(costs);
    }
    // Longest-first; the sort is stable, so equal costs keep index order.
    big.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let chunked_cost: u64 = big.iter().map(|&(_, c)| c).sum();
    let target = (chunked_cost / (4 * budget as u64)).max(CHUNK_MIN_COST);

    let mut chunks: Vec<Vec<usize>> = Vec::new();
    let mut cur = Vec::new();
    let mut cur_cost = 0u64;
    for (i, c) in big {
        cur.push(i);
        cur_cost += c;
        if cur_cost >= target {
            chunks.push(std::mem::take(&mut cur));
            cur_cost = 0;
        }
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }

    let workers = budget
        .min(chunks.len() + usize::from(!inline.is_empty()))
        .max(1);
    if workers <= 1 {
        return Schedule::serial(costs);
    }
    Schedule {
        cells: costs.len(),
        inline_cost: inline.iter().map(|&i| costs[i]).sum(),
        inline,
        chunks,
        workers,
        chunked_cost,
    }
}

/// Executes a [`Schedule`]: spawns `workers − 1` threads to claim
/// chunks while the caller runs the inline cells and then joins the
/// claim loop. Results come back in cell-index order regardless of which
/// worker ran what; a `workers == 1` plan runs every cell inline in
/// index order with zero spawns.
///
/// Cost estimates steer *placement only* — a wildly mispredicted cost
/// still runs exactly once and lands in the right output slot; dynamic
/// chunk claiming absorbs the imbalance.
///
/// # Panics
///
/// Panics if `schedule` does not cover exactly `0..schedule.cells()`,
/// and resumes the panic of any `run` call that panics.
pub fn run_scheduled<T, F>(schedule: &Schedule, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let count = schedule.cells;
    if schedule.workers <= 1 {
        return (0..count).map(run).collect();
    }
    debug_assert_eq!(
        schedule.inline.len() + schedule.chunks.iter().map(Vec::len).sum::<usize>(),
        count,
        "schedule must cover every cell exactly once"
    );
    let next = AtomicUsize::new(0);
    let (next, run) = (&next, &run);
    let chunks = &schedule.chunks;
    let claim_into = move |mine: &mut Vec<(usize, T)>| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunks.len() {
            break;
        }
        for &i in &chunks[c] {
            mine.push((i, run(i)));
        }
    };
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let spawned: Vec<_> = (1..schedule.workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    claim_into(&mut mine);
                    mine
                })
            })
            .collect();
        // Worker #0 (the caller): inline cells first, then chunks.
        let mut mine: Vec<(usize, T)> =
            schedule.inline.iter().map(|&i| (i, run(i))).collect();
        claim_into(&mut mine);
        spawned
            .into_iter()
            .flat_map(|w| {
                w.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .chain(mine)
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Runs `run(0..costs.len())` under the cost-model scheduler: plans with
/// [`plan_schedule`] and executes with [`run_scheduled`]. Results are in
/// index order and bit-identical to a serial loop for any `jobs`.
///
/// # Panics
///
/// Panics if `jobs` is zero, and resumes the panic of any `run` call
/// that panics.
pub fn run_weighted<T, F>(jobs: usize, costs: &[u64], run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_scheduled(&plan_schedule(jobs, costs), run)
}

/// Renders a panic payload's message, if it carried one.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs `f` with panics contained at the job boundary: a panic becomes
/// [`SimError::WorkerPanicked`] carrying the job index and the panic
/// message, instead of unwinding through the worker pool and killing
/// every sibling job's results.
///
/// This is the robust-path complement to [`run_indexed`]'s
/// resume-unwind behaviour: sweeps and suite harnesses wrap each cell's
/// runner in `catch_job_panic` so one poisoned cell is reported as a
/// typed per-cell error while the rest of the grid completes.
pub fn catch_job_panic<T>(
    job: usize,
    f: impl FnOnce() -> Result<T, SimError>,
) -> Result<T, SimError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(SimError::WorkerPanicked {
            job,
            message: panic_message(&*payload).to_string(),
        }),
    }
}

/// One cell of a [`Sweep`]: which config label and scene produced it,
/// and what came out.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Label of the configuration that produced this cell. Shared with
    /// the sweep's config column (and every sibling cell of the same
    /// config) instead of cloned per cell.
    pub label: Arc<str>,
    /// The scene this cell simulated.
    pub scene: SceneId,
    /// The cell's result, or why it could not run.
    pub result: Result<SimResult, SimError>,
}

/// A (scene × config) sweep grid: prepared benches crossed with labeled
/// configurations, run cell-by-cell across a worker pool.
///
/// # Examples
///
/// ```no_run
/// use rt_scene::{SceneId, Workload};
/// use treelet_rt::{Bench, SimConfig, Sweep};
///
/// let benches = vec![
///     Bench::prepare(SceneId::Wknd, 0.5, Workload::paper_default()),
///     Bench::prepare(SceneId::Car, 0.5, Workload::paper_default()),
/// ];
/// let sweep = Sweep::new(benches)
///     .with_config("baseline", SimConfig::paper_baseline())
///     .with_config("prefetch", SimConfig::paper_treelet_prefetch());
/// for cell in sweep.run_parallel(4) {
///     let cycles = cell.result.map(|r| r.cycles);
///     println!("{}/{}: {cycles:?}", cell.label, cell.scene);
/// }
/// ```
#[derive(Debug)]
pub struct Sweep {
    benches: Vec<Bench>,
    configs: Vec<(Arc<str>, SimConfig)>,
}

impl Sweep {
    /// A sweep over `benches` with no configurations yet.
    pub fn new(benches: Vec<Bench>) -> Sweep {
        Sweep {
            benches,
            configs: Vec::new(),
        }
    }

    /// Adds a labeled configuration column to the grid.
    pub fn with_config(mut self, label: impl Into<Arc<str>>, config: SimConfig) -> Sweep {
        self.configs.push((label.into(), config));
        self
    }

    /// The prepared benches, in grid row order.
    pub fn benches(&self) -> &[Bench] {
        &self.benches
    }

    /// The labeled configurations, in grid column order.
    pub fn configs(&self) -> &[(Arc<str>, SimConfig)] {
        &self.configs
    }

    /// Number of (scene, config) cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.benches.len() * self.configs.len()
    }

    /// Per-cell cost estimates in grid (config-major) order, from each
    /// bench's [`Bench::estimated_cost`] — the inputs the cost-model
    /// scheduler plans with.
    pub fn cell_costs(&self) -> Vec<u64> {
        let per_bench: Vec<u64> = self.benches.iter().map(Bench::estimated_cost).collect();
        (0..self.cell_count())
            .map(|i| per_bench[i % per_bench.len().max(1)])
            .collect()
    }

    /// Runs every (scene, config) cell under the cost-model scheduler
    /// (see [`run_weighted`]) with at most `jobs` workers, returning
    /// outcomes in config-major order (all scenes of the first config,
    /// then the second, …) regardless of completion order. Each cell is
    /// an independent single-threaded simulation, so every result —
    /// including its [`state_digest`](crate::SimResult::state_digest) —
    /// is bit-identical to what `jobs == 1` produces.
    ///
    /// A cell whose simulation panics is contained at the cell boundary
    /// and reported as [`SimError::WorkerPanicked`] in that cell's
    /// outcome; the rest of the grid still completes.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn run_parallel(&self, jobs: usize) -> Vec<SweepOutcome> {
        let per_config = self.benches.len();
        let costs = self.cell_costs();
        run_weighted(jobs, &costs, |i| {
            let (label, config) = &self.configs[i / per_config];
            let bench = &self.benches[i % per_config];
            SweepOutcome {
                label: Arc::clone(label),
                scene: bench.scene(),
                result: catch_job_panic(i, || bench.try_run(config)),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::{Workload, WorkloadKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_indexed_handles_empty_and_serial() {
        let none: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(none.is_empty());
        let serial: Vec<usize> = run_indexed(1, 5, |i| i * 2);
        assert_eq!(serial, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn run_indexed_preserves_order_under_a_slow_first_job() {
        // The first job sleeps while the others race ahead; results must
        // still come back in index order, and every index must run
        // exactly once.
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = run_indexed(4, 16, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn run_indexed_with_more_workers_than_jobs() {
        let out: Vec<usize> = run_indexed(8, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn run_indexed_rejects_zero_workers() {
        let _ = run_indexed(0, 1, |i| i);
    }

    #[test]
    #[should_panic(expected = "job 2 exploded")]
    fn run_indexed_propagates_worker_panics() {
        let _ = run_indexed(2, 4, |i| {
            if i == 2 {
                panic!("job 2 exploded");
            }
            i
        });
    }

    #[test]
    fn jobs_env_override_parses_strictly() {
        assert_eq!(jobs_from_env(Some("3")), Some(3));
        assert_eq!(jobs_from_env(Some(" 8 ")), Some(8));
        assert_eq!(jobs_from_env(Some("0")), None);
        assert_eq!(jobs_from_env(Some("-2")), None);
        assert_eq!(jobs_from_env(Some("many")), None);
        assert_eq!(jobs_from_env(Some("")), None);
        assert_eq!(jobs_from_env(None), None);
    }

    #[test]
    fn default_jobs_for_caps_at_cell_count() {
        assert_eq!(default_jobs_for(0), 1);
        assert_eq!(default_jobs_for(1), 1);
        let unbounded = default_jobs();
        assert!(default_jobs_for(2) <= 2);
        assert!(default_jobs_for(usize::MAX) == unbounded);
    }

    #[test]
    fn plan_serial_when_one_worker_or_one_cell() {
        let plan = plan_schedule_with(1, 8, &[1_000_000, 2_000_000]);
        assert_eq!(plan.workers(), 1);
        assert!(plan.chunks().is_empty());
        assert_eq!(plan.inline_cells(), &[0, 1]);
        let plan = plan_schedule_with(4, 8, &[5_000_000]);
        assert_eq!(plan.workers(), 1);
        let plan = plan_schedule_with(4, 8, &[]);
        assert_eq!(plan.workers(), 1);
        assert_eq!(plan.cells(), 0);
    }

    #[test]
    fn plan_clamps_workers_to_hardware() {
        // 4 requested workers on a 1-core machine: the scheduler refuses
        // to oversubscribe — this is the parallel-slower-than-serial fix.
        let costs = vec![10_000_000; 8];
        let plan = plan_schedule_with(4, 1, &costs);
        assert_eq!(plan.workers(), 1);
        let plan = plan_schedule_with(4, 2, &costs);
        assert!(plan.workers() <= 2);
    }

    #[test]
    fn plan_inlines_cheap_cells_and_chunks_big_ones() {
        // Two tiny cells (below INLINE_COST) and four expensive ones.
        let costs = vec![
            10,
            50_000_000,
            20,
            60_000_000,
            70_000_000,
            40_000_000,
        ];
        let plan = plan_schedule_with(4, 8, &costs);
        assert_eq!(plan.inline_cells(), &[0, 2]);
        assert_eq!(plan.inline_cost(), 30);
        assert_eq!(plan.chunked_cost(), 220_000_000);
        assert!(plan.workers() > 1);
        // Every big cell appears exactly once across the chunks, and the
        // claim order is longest-cell-first.
        let mut chunked: Vec<usize> = plan.chunks().iter().flatten().copied().collect();
        assert_eq!(chunked.first(), Some(&4)); // 70M is the longest
        chunked.sort_unstable();
        assert_eq!(chunked, vec![1, 3, 4, 5]);
        // Coverage: inline + chunks == all cells.
        assert_eq!(plan.inline_cells().len() + chunked.len(), plan.cells());
    }

    #[test]
    fn plan_ties_keep_index_order() {
        let costs = vec![1_000_000; 5];
        let plan = plan_schedule_with(2, 8, &costs);
        let order: Vec<usize> = plan.chunks().iter().flatten().copied().collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_scheduled_matches_serial_for_multiworker_plans() {
        // Force a genuinely multi-worker plan (hardware injected as 4)
        // so the spawned-thread path runs even on a 1-core CI box, and
        // check index order plus exactly-once execution.
        let costs: Vec<u64> = (0..32).map(|i| (i as u64 + 1) * 100_000).collect();
        let plan = plan_schedule_with(4, 4, &costs);
        assert!(plan.workers() > 1, "plan must exercise the threaded path");
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = run_scheduled(&plan, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i * 3
        });
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn run_weighted_survives_cost_misprediction() {
        // Costs are deliberately inverted: the cell estimated cheapest
        // is actually the slowest. Placement may be suboptimal but the
        // contract holds — every cell runs exactly once, results are in
        // index order.
        let costs: Vec<u64> = (0..16).map(|i| (16 - i) * 1_000_000).collect();
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = run_weighted(8, &costs, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 15 {
                // The "cheapest" estimate is the real straggler.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::SeqCst), 16);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn run_scheduled_propagates_worker_panics() {
        let costs = vec![10_000_000; 8];
        let plan = plan_schedule_with(4, 4, &costs);
        let _ = run_scheduled(&plan, |i| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }

    #[test]
    fn catch_job_panic_surfaces_a_typed_error() {
        // Silence the default panic hook so the contained panic does not
        // spray a backtrace into test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ok: Result<u32, SimError> = catch_job_panic(0, || Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let typed: Result<u32, SimError> =
            catch_job_panic(1, || Err(SimError::EmptyInput { what: "ray" }));
        assert!(matches!(typed, Err(SimError::EmptyInput { .. })));
        let panicked: Result<u32, SimError> = catch_job_panic(2, || panic!("cell exploded"));
        std::panic::set_hook(prev);
        match panicked {
            Err(SimError::WorkerPanicked { job, message }) => {
                assert_eq!(job, 2);
                assert!(message.contains("cell exploded"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*s), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(&*s), "non-string panic payload");
    }

    fn two_scene_sweep() -> Sweep {
        let workload = Workload::new(WorkloadKind::Primary, 4, 4);
        Sweep::new(vec![
            Bench::prepare(SceneId::Wknd, 0.1, workload),
            Bench::prepare(SceneId::Car, 0.1, workload),
        ])
        .with_config("baseline", SimConfig::paper_baseline())
        .with_config("prefetch", SimConfig::paper_treelet_prefetch())
    }

    #[test]
    fn sweep_shares_labels_instead_of_cloning() {
        let sweep = two_scene_sweep();
        let outcomes = sweep.run_parallel(2);
        // Both cells of a config hold the *same* allocation as the
        // sweep's config column: 3 = column + 2 cells.
        let (label, _) = &sweep.configs()[0];
        assert_eq!(Arc::strong_count(label), 3);
        assert!(Arc::ptr_eq(&outcomes[0].label, &outcomes[1].label));
    }

    #[test]
    fn sweep_costs_follow_the_grid() {
        let sweep = two_scene_sweep();
        let costs = sweep.cell_costs();
        assert_eq!(costs.len(), 4);
        // Config-major: costs repeat per config column.
        assert_eq!(costs[0], costs[2]);
        assert_eq!(costs[1], costs[3]);
        assert_eq!(costs[0], sweep.benches()[0].estimated_cost());
        assert!(costs.iter().all(|&c| c > 0));
    }

    #[test]
    fn small_sweep_cells_take_the_inline_path() {
        // The cells the cross-jobs digest tests run are all below the
        // inline threshold, so those tests genuinely exercise the
        // inline-small-cell path of the scheduler.
        let sweep = two_scene_sweep();
        let costs = sweep.cell_costs();
        assert!(costs.iter().all(|&c| c < INLINE_COST), "costs: {costs:?}");
        let plan = plan_schedule_with(4, 8, &costs);
        assert_eq!(plan.workers(), 1);
        assert_eq!(plan.inline_cells().len(), costs.len());
    }

    #[test]
    fn sweep_digests_identical_across_job_counts() {
        // The tentpole contract: `--jobs N` is bit-identical to serial.
        let sweep = two_scene_sweep();
        let digests = |jobs: usize| -> Vec<(Arc<str>, SceneId, u64)> {
            sweep
                .run_parallel(jobs)
                .into_iter()
                .map(|c| (c.label, c.scene, c.result.expect("cell completes").state_digest))
                .collect()
        };
        let serial = digests(1);
        assert_eq!(serial.len(), 4);
        // Config-major ordering: both scenes of a label are adjacent.
        assert_eq!(&*serial[0].0, "baseline");
        assert_eq!(&*serial[1].0, "baseline");
        assert_eq!(serial[0].1, SceneId::Wknd);
        assert_eq!(serial[1].1, SceneId::Car);
        assert_eq!(serial, digests(2));
        assert_eq!(serial, digests(4));
    }

    #[test]
    fn sweep_digests_identical_under_forced_multiworker_plan() {
        // The scheduler's threaded path (unreachable behind the hardware
        // clamp on a 1-core box) must still produce serial digests: plan
        // with injected hardware, execute directly.
        let sweep = two_scene_sweep();
        let per_config = sweep.benches().len();
        let costs = sweep.cell_costs();
        let serial: Vec<u64> = sweep
            .run_parallel(1)
            .into_iter()
            .map(|c| c.result.expect("cell completes").state_digest)
            .collect();
        let plan = plan_schedule_with(4, 4, &costs);
        let threaded: Vec<u64> = run_scheduled(&plan, |i| {
            let (_, config) = &sweep.configs()[i / per_config];
            let bench = &sweep.benches()[i % per_config];
            bench.try_run(config).expect("cell completes").state_digest
        });
        assert_eq!(serial, threaded);
    }

    #[test]
    fn sweep_reports_typed_errors_per_cell() {
        let mut bad = SimConfig::paper_baseline();
        bad.num_sms = 0;
        let workload = Workload::new(WorkloadKind::Primary, 2, 2);
        let sweep = Sweep::new(vec![Bench::prepare(SceneId::Wknd, 0.1, workload)])
            .with_config("good", SimConfig::paper_baseline())
            .with_config("bad", bad);
        let outcomes = sweep.run_parallel(2);
        assert!(outcomes[0].result.is_ok());
        assert!(matches!(
            outcomes[1].result,
            Err(SimError::Config(_))
        ));
    }
}
