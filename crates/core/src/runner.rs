//! Parallel execution of independent simulation jobs.
//!
//! Suites and config sweeps are embarrassingly parallel: every
//! (scene, config) cell is an isolated, deterministic, single-threaded
//! simulation. This module shards such cells across a small hand-rolled
//! scoped thread pool (no external dependencies — the build is offline)
//! while preserving the serial contract exactly:
//!
//! - **Deterministic ordering** — results come back in job-index order
//!   no matter which worker finished first.
//! - **Bit-identical results** — each job runs the same single-threaded
//!   simulation a serial loop would, so every
//!   [`state_digest`](crate::SimResult::state_digest) matches the
//!   `jobs == 1` run bit for bit.
//! - **`jobs == 1` is literally serial** — the closure runs inline on
//!   the caller's thread; no worker threads are spawned.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::experiments::Bench;
use crate::sim::SimResult;
use rt_scene::SceneId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism, or 1 when
/// it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `run(0..count)` across `jobs` workers and returns the results in
/// index order.
///
/// Workers claim indices from a shared atomic counter (dynamic load
/// balancing: a slow job never stalls the queue behind it) and collect
/// `(index, result)` pairs privately; the pairs are merged and sorted
/// after the scope joins, so output order is independent of completion
/// order. With `jobs == 1` the closure runs inline on the caller's
/// thread — byte-for-byte today's serial behaviour.
///
/// # Panics
///
/// Panics if `jobs` is zero, and resumes the panic of any `run` call
/// that panics (callers wanting per-job isolation wrap `run` in
/// `catch_unwind`, as [`Suite::run_all_robust_with`] does in `rt-bench`).
pub fn run_indexed<T, F>(jobs: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    if jobs == 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, run) = (&next, &run);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs.min(count))
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, run(i)));
                    }
                    mine
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| {
                w.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Renders a panic payload's message, if it carried one.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs `f` with panics contained at the job boundary: a panic becomes
/// [`SimError::WorkerPanicked`] carrying the job index and the panic
/// message, instead of unwinding through the worker pool and killing
/// every sibling job's results.
///
/// This is the robust-path complement to [`run_indexed`]'s
/// resume-unwind behaviour: sweeps and suite harnesses wrap each cell's
/// runner in `catch_job_panic` so one poisoned cell is reported as a
/// typed per-cell error while the rest of the grid completes.
pub fn catch_job_panic<T>(
    job: usize,
    f: impl FnOnce() -> Result<T, SimError>,
) -> Result<T, SimError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(SimError::WorkerPanicked {
            job,
            message: panic_message(&*payload).to_string(),
        }),
    }
}

/// One cell of a [`Sweep`]: which config label and scene produced it,
/// and what came out.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Label of the configuration that produced this cell.
    pub label: String,
    /// The scene this cell simulated.
    pub scene: SceneId,
    /// The cell's result, or why it could not run.
    pub result: Result<SimResult, SimError>,
}

/// A (scene × config) sweep grid: prepared benches crossed with labeled
/// configurations, run cell-by-cell across a worker pool.
///
/// # Examples
///
/// ```no_run
/// use rt_scene::{SceneId, Workload};
/// use treelet_rt::{Bench, SimConfig, Sweep};
///
/// let benches = vec![
///     Bench::prepare(SceneId::Wknd, 0.5, Workload::paper_default()),
///     Bench::prepare(SceneId::Car, 0.5, Workload::paper_default()),
/// ];
/// let sweep = Sweep::new(benches)
///     .with_config("baseline", SimConfig::paper_baseline())
///     .with_config("prefetch", SimConfig::paper_treelet_prefetch());
/// for cell in sweep.run_parallel(4) {
///     let cycles = cell.result.map(|r| r.cycles);
///     println!("{}/{}: {cycles:?}", cell.label, cell.scene);
/// }
/// ```
#[derive(Debug)]
pub struct Sweep {
    benches: Vec<Bench>,
    configs: Vec<(String, SimConfig)>,
}

impl Sweep {
    /// A sweep over `benches` with no configurations yet.
    pub fn new(benches: Vec<Bench>) -> Sweep {
        Sweep {
            benches,
            configs: Vec::new(),
        }
    }

    /// Adds a labeled configuration column to the grid.
    pub fn with_config(mut self, label: impl Into<String>, config: SimConfig) -> Sweep {
        self.configs.push((label.into(), config));
        self
    }

    /// The prepared benches, in grid row order.
    pub fn benches(&self) -> &[Bench] {
        &self.benches
    }

    /// The labeled configurations, in grid column order.
    pub fn configs(&self) -> &[(String, SimConfig)] {
        &self.configs
    }

    /// Number of (scene, config) cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.benches.len() * self.configs.len()
    }

    /// Runs every (scene, config) cell across `jobs` workers, returning
    /// outcomes in config-major order (all scenes of the first config,
    /// then the second, …) regardless of completion order. Each cell is
    /// an independent single-threaded simulation, so every result —
    /// including its [`state_digest`](crate::SimResult::state_digest) —
    /// is bit-identical to what `jobs == 1` produces.
    ///
    /// A cell whose simulation panics is contained at the cell boundary
    /// and reported as [`SimError::WorkerPanicked`] in that cell's
    /// outcome; the rest of the grid still completes.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn run_parallel(&self, jobs: usize) -> Vec<SweepOutcome> {
        let per_config = self.benches.len();
        run_indexed(jobs, self.cell_count(), |i| {
            let (label, config) = &self.configs[i / per_config];
            let bench = &self.benches[i % per_config];
            SweepOutcome {
                label: label.clone(),
                scene: bench.scene(),
                result: catch_job_panic(i, || bench.try_run(config)),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_scene::{Workload, WorkloadKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_indexed_handles_empty_and_serial() {
        let none: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(none.is_empty());
        let serial: Vec<usize> = run_indexed(1, 5, |i| i * 2);
        assert_eq!(serial, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn run_indexed_preserves_order_under_a_slow_first_job() {
        // The first job sleeps while the others race ahead; results must
        // still come back in index order, and every index must run
        // exactly once.
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = run_indexed(4, 16, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn run_indexed_with_more_workers_than_jobs() {
        let out: Vec<usize> = run_indexed(8, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn run_indexed_rejects_zero_workers() {
        let _ = run_indexed(0, 1, |i| i);
    }

    #[test]
    #[should_panic(expected = "job 2 exploded")]
    fn run_indexed_propagates_worker_panics() {
        let _ = run_indexed(2, 4, |i| {
            if i == 2 {
                panic!("job 2 exploded");
            }
            i
        });
    }

    #[test]
    fn catch_job_panic_surfaces_a_typed_error() {
        // Silence the default panic hook so the contained panic does not
        // spray a backtrace into test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ok: Result<u32, SimError> = catch_job_panic(0, || Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let typed: Result<u32, SimError> =
            catch_job_panic(1, || Err(SimError::EmptyInput { what: "ray" }));
        assert!(matches!(typed, Err(SimError::EmptyInput { .. })));
        let panicked: Result<u32, SimError> = catch_job_panic(2, || panic!("cell exploded"));
        std::panic::set_hook(prev);
        match panicked {
            Err(SimError::WorkerPanicked { job, message }) => {
                assert_eq!(job, 2);
                assert!(message.contains("cell exploded"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*s), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(&*s), "non-string panic payload");
    }

    fn two_scene_sweep() -> Sweep {
        let workload = Workload::new(WorkloadKind::Primary, 4, 4);
        Sweep::new(vec![
            Bench::prepare(SceneId::Wknd, 0.1, workload),
            Bench::prepare(SceneId::Car, 0.1, workload),
        ])
        .with_config("baseline", SimConfig::paper_baseline())
        .with_config("prefetch", SimConfig::paper_treelet_prefetch())
    }

    #[test]
    fn sweep_digests_identical_across_job_counts() {
        // The tentpole contract: `--jobs N` is bit-identical to serial.
        let sweep = two_scene_sweep();
        let digests = |jobs: usize| -> Vec<(String, SceneId, u64)> {
            sweep
                .run_parallel(jobs)
                .into_iter()
                .map(|c| (c.label, c.scene, c.result.expect("cell completes").state_digest))
                .collect()
        };
        let serial = digests(1);
        assert_eq!(serial.len(), 4);
        // Config-major ordering: both scenes of a label are adjacent.
        assert_eq!(serial[0].0, "baseline");
        assert_eq!(serial[1].0, "baseline");
        assert_eq!(serial[0].1, SceneId::Wknd);
        assert_eq!(serial[1].1, SceneId::Car);
        assert_eq!(serial, digests(2));
        assert_eq!(serial, digests(4));
    }

    #[test]
    fn sweep_reports_typed_errors_per_cell() {
        let mut bad = SimConfig::paper_baseline();
        bad.num_sms = 0;
        let workload = Workload::new(WorkloadKind::Primary, 2, 2);
        let sweep = Sweep::new(vec![Bench::prepare(SceneId::Wknd, 0.1, workload)])
            .with_config("good", SimConfig::paper_baseline())
            .with_config("bad", bad);
        let outcomes = sweep.run_parallel(2);
        assert!(outcomes[0].result.is_ok());
        assert!(matches!(
            outcomes[1].result,
            Err(SimError::Config(_))
        ));
    }
}
