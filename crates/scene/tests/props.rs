//! Property-based tests for scene generation, workloads, and OBJ I/O.

use rt_geometry::{Triangle, Vec3};
use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};
use rt_scene::{parse_obj, write_obj, Camera, Mesh, Scene, SceneId, Workload, WorkloadKind};

fn coord(rng: &mut SmallRng) -> f32 {
    rng.gen_range(-1000.0f32..1000.0)
}

fn triangle(rng: &mut SmallRng) -> Triangle {
    let v = |rng: &mut SmallRng| Vec3::new(coord(rng), coord(rng), coord(rng));
    let (a, b, c) = (v(rng), v(rng), v(rng));
    Triangle::new(a, b, c)
}

fn soup(rng: &mut SmallRng, max: usize) -> Vec<Triangle> {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| triangle(rng)).collect()
}

#[test]
fn obj_write_parse_round_trip() {
    forall("obj_write_parse_round_trip", 64, |rng| {
        let mesh = Mesh::from_triangles(soup(rng, 40));
        let mut text = Vec::new();
        write_obj(&mut text, &mesh).unwrap();
        let parsed = parse_obj(text.as_slice()).unwrap();
        assert_eq!(parsed.triangles(), mesh.triangles());
    });
}

#[test]
fn mesh_translation_moves_aabb_exactly() {
    forall("mesh_translation_moves_aabb_exactly", 64, |rng| {
        let n = rng.gen_range(1..20usize);
        let tris: Vec<Triangle> = (0..n).map(|_| triangle(rng)).collect();
        let mesh = Mesh::from_triangles(tris);
        let offset = Vec3::new(coord(rng), coord(rng), coord(rng));
        let moved = mesh.translated(offset);
        let a = mesh.aabb();
        let b = moved.aabb();
        // Component-wise translation within float tolerance.
        let tol = 1e-2 * (1.0 + offset.length() + a.extent().length());
        assert!((b.min - (a.min + offset)).length() <= tol);
        assert!((b.max - (a.max + offset)).length() <= tol);
    });
}

#[test]
fn camera_rays_are_unit_and_deterministic() {
    forall("camera_rays_are_unit_and_deterministic", 64, |rng| {
        let eye = Vec3::new(
            rng.gen_range(-50.0f32..50.0),
            rng.gen_range(1.0f32..50.0) + 60.0,
            rng.gen_range(-50.0f32..50.0),
        );
        let (px, py) = (rng.gen_range(0..16u32), rng.gen_range(0..16u32));
        let cam = Camera::look_at(eye, Vec3::ZERO, Vec3::Y, 1.0, 1.0);
        let a = cam.ray(px, py, 16, 16);
        let b = cam.ray(px, py, 16, 16);
        assert_eq!(a, b);
        assert!((a.direction.length() - 1.0).abs() < 1e-4);
        assert_eq!(a.origin, eye);
    });
}

#[test]
fn workloads_are_deterministic_per_seed() {
    forall("workloads_are_deterministic_per_seed", 8, |rng| {
        let seed = rng.gen::<u64>();
        let scene = Scene::build_with_detail(SceneId::Ship, 0.25);
        let w = Workload::new(WorkloadKind::Diffuse, 4, 4).with_seed(seed);
        assert_eq!(w.generate(&scene), w.generate(&scene));
    });
}

#[test]
fn scene_detail_never_produces_empty_or_nonfinite() {
    forall("scene_detail_never_produces_empty_or_nonfinite", 16, |rng| {
        // A cheap scene across a detail range: always non-empty, always
        // finite geometry.
        let detail = rng.gen_range(0.1f32..0.5);
        let scene = Scene::build_with_detail(SceneId::Wknd, detail);
        assert!(!scene.mesh.is_empty());
        for t in scene.mesh.triangles() {
            assert!(t.v0.is_finite() && t.v1.is_finite() && t.v2.is_finite());
        }
    });
}
