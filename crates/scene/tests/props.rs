//! Property-based tests for scene generation, workloads, and OBJ I/O.

use proptest::collection::vec;
use proptest::prelude::*;
use rt_geometry::{Triangle, Vec3};
use rt_scene::{parse_obj, write_obj, Camera, Mesh, Scene, SceneId, Workload, WorkloadKind};

fn coord() -> impl Strategy<Value = f32> {
    -1000.0f32..1000.0
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (
        coord(),
        coord(),
        coord(),
        coord(),
        coord(),
        coord(),
        coord(),
        coord(),
        coord(),
    )
        .prop_map(|(a, b, c, d, e, f, g, h, i)| {
            Triangle::new(Vec3::new(a, b, c), Vec3::new(d, e, f), Vec3::new(g, h, i))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn obj_write_parse_round_trip(tris in vec(triangle(), 0..40)) {
        let mesh = Mesh::from_triangles(tris);
        let mut text = Vec::new();
        write_obj(&mut text, &mesh).unwrap();
        let parsed = parse_obj(text.as_slice()).unwrap();
        prop_assert_eq!(parsed.triangles(), mesh.triangles());
    }

    #[test]
    fn mesh_translation_moves_aabb_exactly(
        tris in vec(triangle(), 1..20),
        dx in coord(), dy in coord(), dz in coord()
    ) {
        let mesh = Mesh::from_triangles(tris);
        let offset = Vec3::new(dx, dy, dz);
        let moved = mesh.translated(offset);
        let a = mesh.aabb();
        let b = moved.aabb();
        // Component-wise translation within float tolerance.
        let tol = 1e-2 * (1.0 + offset.length() + a.extent().length());
        prop_assert!((b.min - (a.min + offset)).length() <= tol);
        prop_assert!((b.max - (a.max + offset)).length() <= tol);
    }

    #[test]
    fn camera_rays_are_unit_and_deterministic(
        ex in -50.0f32..50.0, ey in 1.0f32..50.0, ez in -50.0f32..50.0,
        px in 0u32..16, py in 0u32..16
    ) {
        let eye = Vec3::new(ex, ey + 60.0, ez);
        let cam = Camera::look_at(eye, Vec3::ZERO, Vec3::Y, 1.0, 1.0);
        let a = cam.ray(px, py, 16, 16);
        let b = cam.ray(px, py, 16, 16);
        prop_assert_eq!(a, b);
        prop_assert!((a.direction.length() - 1.0).abs() < 1e-4);
        prop_assert_eq!(a.origin, eye);
    }

    #[test]
    fn workloads_are_deterministic_per_seed(seed in any::<u64>()) {
        let scene = Scene::build_with_detail(SceneId::Ship, 0.25);
        let w = Workload::new(WorkloadKind::Diffuse, 4, 4).with_seed(seed);
        prop_assert_eq!(w.generate(&scene), w.generate(&scene));
    }

    #[test]
    fn scene_detail_never_produces_empty_or_nonfinite(detail in 0.1f32..0.5) {
        // A cheap scene across a detail range: always non-empty, always
        // finite geometry.
        let scene = Scene::build_with_detail(SceneId::Wknd, detail);
        prop_assert!(!scene.mesh.is_empty());
        for t in scene.mesh.triangles() {
            prop_assert!(t.v0.is_finite() && t.v1.is_finite() && t.v2.is_finite());
        }
    }
}
