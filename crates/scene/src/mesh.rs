//! Triangle mesh container and transformation helpers.

use rt_geometry::{Aabb, Triangle, Vec3};

/// A bag of triangles forming a scene or object.
///
/// `Mesh` is intentionally simple: the BVH builder consumes triangles by
/// value and all scene generators produce meshes by appending primitives.
///
/// # Examples
///
/// ```
/// use rt_scene::Mesh;
/// use rt_geometry::{Triangle, Vec3};
///
/// let mut mesh = Mesh::new();
/// mesh.push(Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y));
/// assert_eq!(mesh.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    triangles: Vec<Triangle>,
}

impl Mesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        Mesh::default()
    }

    /// Creates a mesh from a vector of triangles.
    pub fn from_triangles(triangles: Vec<Triangle>) -> Self {
        Mesh { triangles }
    }

    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// `true` if the mesh holds no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Appends one triangle.
    pub fn push(&mut self, tri: Triangle) {
        self.triangles.push(tri);
    }

    /// Appends all triangles of `other`.
    pub fn append(&mut self, other: &Mesh) {
        self.triangles.extend_from_slice(&other.triangles);
    }

    /// Borrows the triangles.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Consumes the mesh, returning its triangles.
    pub fn into_triangles(self) -> Vec<Triangle> {
        self.triangles
    }

    /// Bounding box of all triangles (empty box for an empty mesh).
    pub fn aabb(&self) -> Aabb {
        let mut b = Aabb::empty();
        for t in &self.triangles {
            b.grow_box(&t.aabb());
        }
        b
    }

    /// Returns a copy translated by `offset`.
    pub fn translated(&self, offset: Vec3) -> Mesh {
        self.mapped(|v| v + offset)
    }

    /// Returns a copy scaled component-wise by `factors` about the origin.
    pub fn scaled(&self, factors: Vec3) -> Mesh {
        self.mapped(|v| v * factors)
    }

    /// Returns a copy rotated about the Y axis by `angle` radians.
    pub fn rotated_y(&self, angle: f32) -> Mesh {
        let (s, c) = angle.sin_cos();
        self.mapped(|v| Vec3::new(c * v.x + s * v.z, v.y, -s * v.x + c * v.z))
    }

    /// Returns a copy with every vertex transformed by `f`.
    pub fn mapped<F: Fn(Vec3) -> Vec3>(&self, f: F) -> Mesh {
        Mesh {
            triangles: self
                .triangles
                .iter()
                .map(|t| Triangle::new(f(t.v0), f(t.v1), f(t.v2)))
                .collect(),
        }
    }
}

impl FromIterator<Triangle> for Mesh {
    fn from_iter<I: IntoIterator<Item = Triangle>>(iter: I) -> Self {
        Mesh {
            triangles: iter.into_iter().collect(),
        }
    }
}

impl Extend<Triangle> for Mesh {
    fn extend<I: IntoIterator<Item = Triangle>>(&mut self, iter: I) {
        self.triangles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_at(x: f32) -> Triangle {
        Triangle::new(
            Vec3::new(x, 0.0, 0.0),
            Vec3::new(x + 1.0, 0.0, 0.0),
            Vec3::new(x, 1.0, 0.0),
        )
    }

    #[test]
    fn empty_mesh() {
        let m = Mesh::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.aabb().is_empty());
    }

    #[test]
    fn push_and_append() {
        let mut a = Mesh::new();
        a.push(tri_at(0.0));
        let mut b = Mesh::new();
        b.push(tri_at(5.0));
        b.push(tri_at(6.0));
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn aabb_covers_all_triangles() {
        let m: Mesh = vec![tri_at(0.0), tri_at(10.0)].into_iter().collect();
        let b = m.aabb();
        assert_eq!(b.min.x, 0.0);
        assert_eq!(b.max.x, 11.0);
    }

    #[test]
    fn translation_moves_aabb() {
        let m = Mesh::from_triangles(vec![tri_at(0.0)]);
        let t = m.translated(Vec3::new(0.0, 5.0, 0.0));
        assert_eq!(t.aabb().min.y, 5.0);
        // Original unchanged.
        assert_eq!(m.aabb().min.y, 0.0);
    }

    #[test]
    fn scaling_scales_extent() {
        let m = Mesh::from_triangles(vec![tri_at(0.0)]);
        let s = m.scaled(Vec3::splat(2.0));
        assert_eq!(s.aabb().extent(), m.aabb().extent() * 2.0);
    }

    #[test]
    fn rotation_preserves_triangle_count_and_area() {
        let m = Mesh::from_triangles(vec![tri_at(0.0)]);
        let r = m.rotated_y(std::f32::consts::FRAC_PI_2);
        assert_eq!(r.len(), 1);
        let a0 = m.triangles()[0].area();
        let a1 = r.triangles()[0].area();
        assert!((a0 - a1).abs() < 1e-5);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: Mesh = (0..3).map(|i| tri_at(i as f32)).collect();
        m.extend((3..5).map(|i| tri_at(i as f32)));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn into_triangles_round_trip() {
        let m = Mesh::from_triangles(vec![tri_at(1.0)]);
        let v = m.into_triangles();
        assert_eq!(v.len(), 1);
    }
}
