//! Procedural primitive generators used to assemble the evaluation scenes.
//!
//! Every generator is deterministic for a given set of parameters; scenes
//! that need randomness take an explicit RNG so that workloads are
//! reproducible across runs.

use crate::Mesh;
use crate::SceneError;
use rt_rng::Rng;
use rt_geometry::{Triangle, Vec3};

/// Ceiling on the triangles a single generator call may produce (2²⁶,
/// ~67 M — well above any paper scene, well below allocation-until-OOM).
///
/// Parameterized generators compute their triangle count in closed form
/// *before* allocating and return
/// [`SceneError::TooManyTriangles`] when a runaway detail factor (e.g.
/// `--detail 1e30` saturating resolutions to `u32::MAX`) would blow past
/// it, so bad input fails in microseconds instead of hanging.
pub const MAX_GENERATOR_TRIANGLES: u64 = 1 << 26;

/// Fails fast when a generator would produce more than
/// [`MAX_GENERATOR_TRIANGLES`] triangles. Counts are computed in `u128`
/// so `u32::MAX`-saturated resolutions cannot overflow the check itself.
fn budget(requested: u128) -> Result<(), SceneError> {
    if requested > MAX_GENERATOR_TRIANGLES as u128 {
        return Err(SceneError::TooManyTriangles {
            requested: requested.min(u64::MAX as u128) as u64,
            limit: MAX_GENERATOR_TRIANGLES,
        });
    }
    Ok(())
}

/// Tessellated rectangle in the XZ plane at height `y`, spanning
/// `[-half, half]²`, subdivided into `res × res` quads (2 triangles each).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·res²` exceeds the ceiling.
pub fn ground_plane(half: f32, y: f32, res: u32) -> Result<Mesh, SceneError> {
    let res = res.max(1);
    budget(2 * res as u128 * res as u128)?;
    let mut mesh = Mesh::new();
    let step = 2.0 * half / res as f32;
    for i in 0..res {
        for j in 0..res {
            let x0 = -half + i as f32 * step;
            let z0 = -half + j as f32 * step;
            let (x1, z1) = (x0 + step, z0 + step);
            let a = Vec3::new(x0, y, z0);
            let b = Vec3::new(x1, y, z0);
            let c = Vec3::new(x1, y, z1);
            let d = Vec3::new(x0, y, z1);
            mesh.push(Triangle::new(a, b, c));
            mesh.push(Triangle::new(a, c, d));
        }
    }
    Ok(mesh)
}

/// Axis-aligned box with corners `min`/`max` (12 triangles).
pub fn cuboid(min: Vec3, max: Vec3) -> Mesh {
    let p = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
    let (a, b) = (min, max);
    let v = [
        p(a.x, a.y, a.z),
        p(b.x, a.y, a.z),
        p(b.x, b.y, a.z),
        p(a.x, b.y, a.z),
        p(a.x, a.y, b.z),
        p(b.x, a.y, b.z),
        p(b.x, b.y, b.z),
        p(a.x, b.y, b.z),
    ];
    let quads = [
        [0, 1, 2, 3], // -z
        [5, 4, 7, 6], // +z
        [4, 0, 3, 7], // -x
        [1, 5, 6, 2], // +x
        [4, 5, 1, 0], // -y
        [3, 2, 6, 7], // +y
    ];
    let mut mesh = Mesh::new();
    for q in quads {
        mesh.push(Triangle::new(v[q[0]], v[q[1]], v[q[2]]));
        mesh.push(Triangle::new(v[q[0]], v[q[2]], v[q[3]]));
    }
    mesh
}

/// Latitude/longitude sphere with `stacks × slices` resolution.
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·stacks·slices` exceeds the
/// ceiling.
pub fn uv_sphere(center: Vec3, radius: f32, stacks: u32, slices: u32) -> Result<Mesh, SceneError> {
    displaced_sphere(center, radius, stacks, slices, |_, _| 0.0)
}

/// Sphere whose radius is perturbed by `displace(theta, phi)` — used for
/// organic "blob" objects (bunny/fox stand-ins).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·stacks·slices` exceeds the
/// ceiling.
pub fn displaced_sphere<F: Fn(f32, f32) -> f32>(
    center: Vec3,
    radius: f32,
    stacks: u32,
    slices: u32,
    displace: F,
) -> Result<Mesh, SceneError> {
    let stacks = stacks.max(2);
    let slices = slices.max(3);
    budget(2 * stacks as u128 * slices as u128)?;
    let vertex = |i: u32, j: u32| {
        let theta = std::f32::consts::PI * i as f32 / stacks as f32;
        let phi = 2.0 * std::f32::consts::PI * j as f32 / slices as f32;
        let r = radius * (1.0 + displace(theta, phi));
        center
            + Vec3::new(
                r * theta.sin() * phi.cos(),
                r * theta.cos(),
                r * theta.sin() * phi.sin(),
            )
    };
    let mut mesh = Mesh::new();
    for i in 0..stacks {
        for j in 0..slices {
            let j1 = (j + 1) % slices;
            let (a, b, c, d) = (
                vertex(i, j),
                vertex(i + 1, j),
                vertex(i + 1, j1),
                vertex(i, j1),
            );
            if i > 0 {
                mesh.push(Triangle::new(a, b, d));
            }
            if i + 1 < stacks {
                mesh.push(Triangle::new(b, c, d));
            }
            if i == 0 {
                mesh.push(Triangle::new(a, b, c));
            } else if i + 1 == stacks {
                // bottom cap handled by the first triangle above
            }
        }
    }
    Ok(mesh)
}

/// Open cone with apex above the base center (tree/stand-in foliage).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·slices` exceeds the ceiling.
pub fn cone(
    base_center: Vec3,
    base_radius: f32,
    height: f32,
    slices: u32,
) -> Result<Mesh, SceneError> {
    let slices = slices.max(3);
    budget(2 * slices as u128)?;
    let apex = base_center + Vec3::new(0.0, height, 0.0);
    let ring = |j: u32| {
        let phi = 2.0 * std::f32::consts::PI * j as f32 / slices as f32;
        base_center + Vec3::new(base_radius * phi.cos(), 0.0, base_radius * phi.sin())
    };
    let mut mesh = Mesh::new();
    for j in 0..slices {
        let (a, b) = (ring(j), ring((j + 1) % slices));
        mesh.push(Triangle::new(a, b, apex));
        mesh.push(Triangle::new(b, a, base_center)); // base disk
    }
    Ok(mesh)
}

/// Open cylinder along +Y (tree trunks, columns).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·slices` exceeds the ceiling.
pub fn cylinder(
    base_center: Vec3,
    radius: f32,
    height: f32,
    slices: u32,
) -> Result<Mesh, SceneError> {
    let slices = slices.max(3);
    budget(2 * slices as u128)?;
    let ring = |j: u32, y: f32| {
        let phi = 2.0 * std::f32::consts::PI * j as f32 / slices as f32;
        base_center + Vec3::new(radius * phi.cos(), y, radius * phi.sin())
    };
    let mut mesh = Mesh::new();
    for j in 0..slices {
        let j1 = (j + 1) % slices;
        let (a, b) = (ring(j, 0.0), ring(j1, 0.0));
        let (c, d) = (ring(j1, height), ring(j, height));
        mesh.push(Triangle::new(a, b, c));
        mesh.push(Triangle::new(a, c, d));
    }
    Ok(mesh)
}

/// Tube swept along a helix (spring stand-in).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·segments·sides` exceeds the
/// ceiling.
pub fn helix_tube(
    center: Vec3,
    coil_radius: f32,
    tube_radius: f32,
    turns: f32,
    height: f32,
    segments: u32,
    sides: u32,
) -> Result<Mesh, SceneError> {
    let segments = segments.max(2);
    let sides = sides.max(3);
    budget(2 * segments as u128 * sides as u128)?;
    let spine = |i: u32| {
        let t = i as f32 / segments as f32;
        let angle = turns * 2.0 * std::f32::consts::PI * t;
        center
            + Vec3::new(
                coil_radius * angle.cos(),
                height * t,
                coil_radius * angle.sin(),
            )
    };
    let ring = |i: u32| -> Vec<Vec3> {
        let p = spine(i);
        let next = spine((i + 1).min(segments));
        let prev = spine(i.saturating_sub(1));
        let tangent = {
            let d = next - prev;
            if d.length_squared() > 1e-12 {
                d.normalized()
            } else {
                Vec3::Y
            }
        };
        let n0 = if tangent.largest_axis() == 1 {
            Vec3::X
        } else {
            Vec3::Y
        };
        let u = tangent.cross(n0).normalized();
        let v = tangent.cross(u);
        (0..sides)
            .map(|k| {
                let a = 2.0 * std::f32::consts::PI * k as f32 / sides as f32;
                p + (u * a.cos() + v * a.sin()) * tube_radius
            })
            .collect()
    };
    let mut mesh = Mesh::new();
    let mut prev = ring(0);
    for i in 1..=segments {
        let cur = ring(i);
        for k in 0..sides as usize {
            let k1 = (k + 1) % sides as usize;
            mesh.push(Triangle::new(prev[k], cur[k], cur[k1]));
            mesh.push(Triangle::new(prev[k], cur[k1], prev[k1]));
        }
        prev = cur;
    }
    Ok(mesh)
}

/// Heightfield terrain over `[-half, half]²` with `res × res` cells and
/// height given by `height(x, z)`.
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `2·res²` exceeds the ceiling.
pub fn terrain<F: Fn(f32, f32) -> f32>(
    half: f32,
    res: u32,
    height: F,
) -> Result<Mesh, SceneError> {
    let res = res.max(1);
    budget(2 * res as u128 * res as u128)?;
    let step = 2.0 * half / res as f32;
    let point = |i: u32, j: u32| {
        let x = -half + i as f32 * step;
        let z = -half + j as f32 * step;
        Vec3::new(x, height(x, z), z)
    };
    let mut mesh = Mesh::new();
    for i in 0..res {
        for j in 0..res {
            let a = point(i, j);
            let b = point(i + 1, j);
            let c = point(i + 1, j + 1);
            let d = point(i, j + 1);
            mesh.push(Triangle::new(a, b, c));
            mesh.push(Triangle::new(a, c, d));
        }
    }
    Ok(mesh)
}

/// `count` random small triangles scattered uniformly inside a box — the
/// maximally incoherent "confetti" workload (party stand-in).
///
/// # Errors
///
/// [`SceneError::TooManyTriangles`] if `count` exceeds the ceiling.
pub fn confetti<R: Rng>(
    rng: &mut R,
    count: usize,
    min: Vec3,
    max: Vec3,
    size: f32,
) -> Result<Mesh, SceneError> {
    budget(count as u128)?;
    let mut mesh = Mesh::new();
    let ext = max - min;
    for _ in 0..count {
        let p = min
            + Vec3::new(
                rng.gen::<f32>() * ext.x,
                rng.gen::<f32>() * ext.y,
                rng.gen::<f32>() * ext.z,
            );
        let rv = |rng: &mut R| {
            Vec3::new(
                rng.gen::<f32>() - 0.5,
                rng.gen::<f32>() - 0.5,
                rng.gen::<f32>() - 0.5,
            ) * size
        };
        mesh.push(Triangle::new(p + rv(rng), p + rv(rng), p + rv(rng)));
    }
    Ok(mesh)
}

/// Deterministic value-noise-like ripple used to displace organic shapes.
/// Cheap, smooth, and reproducible without a noise dependency.
pub fn ripple(theta: f32, phi: f32, octaves: u32, amplitude: f32) -> f32 {
    let mut sum = 0.0;
    let mut amp = amplitude;
    let mut freq = 3.0;
    for _ in 0..octaves {
        sum += amp * (freq * theta).sin() * (freq * phi + 0.7).cos();
        amp *= 0.5;
        freq *= 2.1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_rng::SmallRng;

    #[test]
    fn ground_plane_counts() {
        let m = ground_plane(10.0, 0.0, 4).unwrap();
        assert_eq!(m.len(), 4 * 4 * 2);
        let b = m.aabb();
        assert_eq!(b.min, Vec3::new(-10.0, 0.0, -10.0));
        assert_eq!(b.max, Vec3::new(10.0, 0.0, 10.0));
    }

    #[test]
    fn cuboid_has_12_triangles_and_tight_bounds() {
        let m = cuboid(Vec3::ZERO, Vec3::ONE);
        assert_eq!(m.len(), 12);
        assert_eq!(m.aabb().min, Vec3::ZERO);
        assert_eq!(m.aabb().max, Vec3::ONE);
    }

    #[test]
    fn sphere_bounds_match_radius() {
        let m = uv_sphere(Vec3::ZERO, 2.0, 8, 12).unwrap();
        assert!(!m.is_empty());
        let b = m.aabb();
        assert!(b.max.max_component() <= 2.0 + 1e-4);
        assert!(b.min.min_component() >= -2.0 - 1e-4);
        // No degenerate triangles emitted.
        assert!(m.triangles().iter().all(|t| !t.is_degenerate()));
    }

    #[test]
    fn displaced_sphere_respects_displacement() {
        let m = displaced_sphere(Vec3::ZERO, 1.0, 8, 12, |_, _| 0.5).unwrap();
        let b = m.aabb();
        assert!(b.max.max_component() > 1.2);
    }

    #[test]
    fn cone_and_cylinder_counts() {
        assert_eq!(cone(Vec3::ZERO, 1.0, 2.0, 8).unwrap().len(), 16);
        assert_eq!(cylinder(Vec3::ZERO, 1.0, 2.0, 8).unwrap().len(), 16);
    }

    #[test]
    fn helix_tube_spans_height() {
        let m = helix_tube(Vec3::ZERO, 2.0, 0.2, 3.0, 5.0, 32, 6).unwrap();
        let b = m.aabb();
        assert!(b.max.y > 4.5);
        assert!(b.min.y < 0.5);
        assert_eq!(m.len(), 32 * 6 * 2);
    }

    #[test]
    fn terrain_follows_height_function() {
        let m = terrain(5.0, 8, |x, z| 0.1 * (x + z)).unwrap();
        assert_eq!(m.len(), 8 * 8 * 2);
        let b = m.aabb();
        assert!(b.max.y <= 1.0 + 1e-4);
        assert!(b.min.y >= -1.0 - 1e-4);
    }

    #[test]
    fn confetti_is_deterministic_per_seed() {
        let mut r1 = SmallRng::seed_from_u64(7);
        let mut r2 = SmallRng::seed_from_u64(7);
        let a = confetti(&mut r1, 50, Vec3::ZERO, Vec3::ONE, 0.05).unwrap();
        let b = confetti(&mut r2, 50, Vec3::ZERO, Vec3::ONE, 0.05).unwrap();
        assert_eq!(a.len(), 50);
        assert_eq!(a.triangles()[10], b.triangles()[10]);
    }

    #[test]
    fn confetti_stays_near_box() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = confetti(&mut rng, 100, Vec3::ZERO, Vec3::splat(4.0), 0.1).unwrap();
        let b = m.aabb();
        assert!(b.min.min_component() >= -0.2);
        assert!(b.max.max_component() <= 4.2);
    }

    #[test]
    fn ripple_is_bounded() {
        for i in 0..50 {
            let v = ripple(i as f32 * 0.1, i as f32 * 0.2, 3, 0.2);
            assert!(v.abs() < 0.5);
        }
    }

    #[test]
    fn oversized_requests_fail_fast_without_allocating() {
        // 2 * u32::MAX^2 overflows u64; the budget math must still reject
        // it promptly instead of wrapping around or allocating.
        let mut rng = SmallRng::seed_from_u64(1);
        let big = u32::MAX;
        assert!(ground_plane(1.0, 0.0, big).is_err());
        assert!(uv_sphere(Vec3::ZERO, 1.0, big, big).is_err());
        assert!(displaced_sphere(Vec3::ZERO, 1.0, big, big, |_, _| 0.0).is_err());
        assert!(cone(Vec3::ZERO, 1.0, 1.0, big).is_err());
        assert!(cylinder(Vec3::ZERO, 1.0, 1.0, big).is_err());
        assert!(helix_tube(Vec3::ZERO, 1.0, 0.1, 1.0, 1.0, big, big).is_err());
        assert!(terrain(1.0, big, |_, _| 0.0).is_err());
        assert!(confetti(
            &mut rng,
            (MAX_GENERATOR_TRIANGLES + 1) as usize,
            Vec3::ZERO,
            Vec3::ONE,
            0.1
        )
        .is_err());
    }

    #[test]
    fn over_budget_error_reports_request_and_limit() {
        match ground_plane(1.0, 0.0, u32::MAX) {
            Err(SceneError::TooManyTriangles { requested, limit }) => {
                assert_eq!(limit, MAX_GENERATOR_TRIANGLES);
                assert!(requested > limit);
            }
            other => panic!("expected TooManyTriangles, got {other:?}"),
        }
    }
}
