//! Minimal Wavefront OBJ triangle loader.
//!
//! The evaluation suite is procedural, but downstream users will want to
//! run their own scenes: this loader reads the `v`/`f` subset of OBJ that
//! triangle meshes need (positions and faces, with fans for polygons),
//! ignoring normals, texture coordinates, materials, and groups.

use crate::Mesh;
use rt_geometry::{Triangle, Vec3};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Error from OBJ parsing.
#[derive(Debug)]
pub enum ParseObjError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ParseObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseObjError::Io(e) => write!(f, "i/o error reading obj: {e}"),
            ParseObjError::Malformed { line, message } => {
                write!(f, "malformed obj at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseObjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseObjError::Io(e) => Some(e),
            ParseObjError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseObjError {
    fn from(e: std::io::Error) -> Self {
        ParseObjError::Io(e)
    }
}

/// Parses OBJ text from `reader` into a triangle mesh.
///
/// Faces with more than three vertices are fan-triangulated. Negative
/// indices (relative references) are supported. Unknown line types are
/// ignored, as OBJ consumers conventionally do.
///
/// # Errors
///
/// Returns [`ParseObjError`] on I/O failure, unparsable coordinates, or
/// out-of-range vertex references.
///
/// # Examples
///
/// ```
/// use rt_scene::parse_obj;
///
/// let obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n";
/// let mesh = parse_obj(obj.as_bytes())?;
/// assert_eq!(mesh.len(), 1);
/// # Ok::<(), rt_scene::ParseObjError>(())
/// ```
pub fn parse_obj<R: BufRead>(reader: R) -> Result<Mesh, ParseObjError> {
    let mut vertices: Vec<Vec3> = Vec::new();
    let mut mesh = Mesh::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut coord = |name: &str| -> Result<f32, ParseObjError> {
                    parts
                        .next()
                        .ok_or_else(|| ParseObjError::Malformed {
                            line: line_no,
                            message: format!("vertex missing {name} coordinate"),
                        })?
                        .parse()
                        .map_err(|e| ParseObjError::Malformed {
                            line: line_no,
                            message: format!("bad {name} coordinate: {e}"),
                        })
                };
                let (x, y, z) = (coord("x")?, coord("y")?, coord("z")?);
                vertices.push(Vec3::new(x, y, z));
            }
            Some("f") => {
                let mut face: Vec<Vec3> = Vec::new();
                for vert in parts {
                    // "i", "i/t", "i/t/n", "i//n" — the index before the
                    // first slash is the position reference.
                    let index_text = vert.split('/').next().unwrap_or(vert);
                    let raw: i64 = index_text.parse().map_err(|e| ParseObjError::Malformed {
                        line: line_no,
                        message: format!("bad face index {index_text:?}: {e}"),
                    })?;
                    let resolved = if raw > 0 {
                        raw as usize - 1
                    } else if raw < 0 {
                        let back = (-raw) as usize;
                        vertices.len().checked_sub(back).ok_or_else(|| {
                            ParseObjError::Malformed {
                                line: line_no,
                                message: format!("relative index {raw} underflows"),
                            }
                        })?
                    } else {
                        return Err(ParseObjError::Malformed {
                            line: line_no,
                            message: "face index 0 is not valid in obj".into(),
                        });
                    };
                    let v = vertices.get(resolved).copied().ok_or_else(|| {
                        ParseObjError::Malformed {
                            line: line_no,
                            message: format!(
                                "face references vertex {raw} but only {} exist",
                                vertices.len()
                            ),
                        }
                    })?;
                    face.push(v);
                }
                if face.len() < 3 {
                    return Err(ParseObjError::Malformed {
                        line: line_no,
                        message: format!("face has {} vertices, need at least 3", face.len()),
                    });
                }
                for i in 1..face.len() - 1 {
                    mesh.push(Triangle::new(face[0], face[i], face[i + 1]));
                }
            }
            // Comments, normals, texcoords, materials, groups, objects...
            _ => {}
        }
    }
    Ok(mesh)
}

/// Writes `mesh` as OBJ text (three `v` lines and one `f` per triangle;
/// no vertex sharing). Coordinates use Rust's shortest round-trip float
/// formatting, so [`parse_obj`] reads back bit-identical triangles.
///
/// # Errors
///
/// Propagates writer failures.
///
/// # Examples
///
/// ```
/// use rt_geometry::{Triangle, Vec3};
/// use rt_scene::{parse_obj, write_obj, Mesh};
///
/// let mesh = Mesh::from_triangles(vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let mut text = Vec::new();
/// write_obj(&mut text, &mesh)?;
/// assert_eq!(parse_obj(text.as_slice())?.triangles(), mesh.triangles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_obj<W: std::io::Write>(mut w: W, mesh: &Mesh) -> std::io::Result<()> {
    writeln!(w, "# rt-scene export, {} triangles", mesh.len())?;
    for (i, t) in mesh.triangles().iter().enumerate() {
        for v in [t.v0, t.v1, t.v2] {
            writeln!(w, "v {:?} {:?} {:?}", v.x, v.y, v.z)?;
        }
        let base = i * 3;
        writeln!(w, "f {} {} {}", base + 1, base + 2, base + 3)?;
    }
    Ok(())
}

/// Loads an OBJ file from `path`.
///
/// # Errors
///
/// Returns [`ParseObjError`] if the file cannot be read or parsed.
pub fn load_obj<P: AsRef<Path>>(path: P) -> Result<Mesh, ParseObjError> {
    let file = std::fs::File::open(path)?;
    parse_obj(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_triangle() {
        let mesh = parse_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n".as_bytes()).unwrap();
        assert_eq!(mesh.len(), 1);
        let t = mesh.triangles()[0];
        assert_eq!(t.v1, Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn quad_fan_triangulates() {
        let obj = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
        let mesh = parse_obj(obj.as_bytes()).unwrap();
        assert_eq!(mesh.len(), 2);
    }

    #[test]
    fn slashed_indices_and_comments() {
        let obj = "# a comment\nv 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nvt 0 0\nf 1/1/1 2/1/1 3/1/1\n";
        let mesh = parse_obj(obj.as_bytes()).unwrap();
        assert_eq!(mesh.len(), 1);
    }

    #[test]
    fn double_slash_indices() {
        let obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1//1 2//1 3//1\n";
        assert_eq!(parse_obj(obj.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn negative_indices_resolve_relative() {
        let obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n";
        let mesh = parse_obj(obj.as_bytes()).unwrap();
        assert_eq!(mesh.len(), 1);
        assert_eq!(mesh.triangles()[0].v0, Vec3::ZERO);
    }

    #[test]
    fn out_of_range_index_errors() {
        let obj = "v 0 0 0\nf 1 2 3\n";
        let err = parse_obj(obj.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn zero_index_errors() {
        let obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n";
        assert!(parse_obj(obj.as_bytes()).is_err());
    }

    #[test]
    fn bad_coordinate_errors_with_line() {
        let err = parse_obj("v 0 zero 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn two_vertex_face_errors() {
        let obj = "v 0 0 0\nv 1 0 0\nf 1 2\n";
        assert!(parse_obj(obj.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_mesh() {
        assert!(parse_obj("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn load_obj_round_trip_via_tempfile() {
        let path = std::env::temp_dir().join("rt_scene_obj_test.obj");
        std::fs::write(&path, "v 0 0 0\nv 2 0 0\nv 0 2 0\nf 1 2 3\n").unwrap();
        let mesh = load_obj(&path).unwrap();
        assert_eq!(mesh.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_obj_round_trips_exactly() {
        use rt_geometry::Triangle;
        let mesh = Mesh::from_triangles(vec![
            Triangle::new(
                Vec3::new(0.1, -2.75, 3.3333333),
                Vec3::new(1e-7, 42.0, -0.0),
                Vec3::new(f32::MIN_POSITIVE, 1.5, 9.25),
            ),
            Triangle::new(
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            ),
        ]);
        let mut text = Vec::new();
        write_obj(&mut text, &mesh).unwrap();
        let parsed = parse_obj(text.as_slice()).unwrap();
        assert_eq!(parsed.triangles(), mesh.triangles());
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let err = parse_obj("f 1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("malformed"));
        assert!(err.source().is_none());
        let io_err = ParseObjError::from(std::io::Error::other("boom"));
        assert!(io_err.source().is_some());
    }
}
