//! Ray workload generation.
//!
//! The paper evaluates primary rays at 1 sample per pixel and discusses the
//! incoherence of secondary rays at length. This module produces both:
//! coherent camera rays and incoherent diffuse-bounce-style rays sampled
//! from the scene surface.

use crate::Scene;
use rt_rng::{Rng, SmallRng};
use rt_geometry::{Ray, Vec3};
use std::fmt;

/// The kind of ray workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// One camera ray per pixel (coherent; the paper's main setting).
    Primary,
    /// Rays spawned from random surface points into the cosine-weighted
    /// hemisphere around the surface normal (incoherent, like secondary
    /// global-illumination rays).
    Diffuse,
    /// Rays from random surface points toward a point light (shadow rays:
    /// common origin structure but divergent directions).
    Shadow,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadKind::Primary => "primary",
            WorkloadKind::Diffuse => "diffuse",
            WorkloadKind::Shadow => "shadow",
        };
        f.write_str(name)
    }
}

/// Specification of a ray workload.
///
/// # Examples
///
/// ```
/// use rt_scene::{Scene, SceneId, Workload, WorkloadKind};
///
/// let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
/// let rays = Workload::new(WorkloadKind::Primary, 16, 16).generate(&scene);
/// assert_eq!(rays.len(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// The kind of rays to generate.
    pub kind: WorkloadKind,
    /// Image width in pixels (ray count is `width * height`).
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// RNG seed for the incoherent workloads.
    pub seed: u64,
}

impl Workload {
    /// Creates a workload of `width * height` rays.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(kind: WorkloadKind, width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "workload dimensions must be nonzero"
        );
        Workload {
            kind,
            width,
            height,
            seed: 0x7265_616c,
        }
    }

    /// The paper's default: 32×32 primary rays (1 SPP).
    pub fn paper_default() -> Self {
        Workload::new(WorkloadKind::Primary, 32, 32)
    }

    /// Returns a copy with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of rays.
    pub fn ray_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Generates the rays for `scene`.
    pub fn generate(&self, scene: &Scene) -> Vec<Ray> {
        match self.kind {
            WorkloadKind::Primary => scene.camera.primary_rays(self.width, self.height),
            WorkloadKind::Diffuse => self.surface_rays(scene, SurfaceRayStyle::Hemisphere),
            WorkloadKind::Shadow => self.surface_rays(scene, SurfaceRayStyle::TowardLight),
        }
    }

    fn surface_rays(&self, scene: &Scene, style: SurfaceRayStyle) -> Vec<Ray> {
        let tris = scene.mesh.triangles();
        assert!(!tris.is_empty(), "cannot sample rays from an empty scene");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let aabb = scene.mesh.aabb();
        let light = aabb.center() + Vec3::new(0.0, aabb.extent().y.max(1.0) * 1.5, 0.0);
        (0..self.ray_count())
            .map(|_| {
                let tri = &tris[rng.gen_range(0..tris.len())];
                // Uniform barycentric sample of the triangle.
                let (mut u, mut v) = (rng.gen::<f32>(), rng.gen::<f32>());
                if u + v > 1.0 {
                    u = 1.0 - u;
                    v = 1.0 - v;
                }
                let p = tri.v0 + (tri.v1 - tri.v0) * u + (tri.v2 - tri.v0) * v;
                let n = {
                    let n = tri.normal();
                    if n.length_squared() > 1e-12 {
                        n.normalized()
                    } else {
                        Vec3::Y
                    }
                };
                let dir = match style {
                    SurfaceRayStyle::Hemisphere => sample_hemisphere(&mut rng, n),
                    SurfaceRayStyle::TowardLight => {
                        let d = light - p;
                        if d.length_squared() > 1e-12 {
                            d.normalized()
                        } else {
                            n
                        }
                    }
                };
                // Offset along the normal to avoid self-intersection.
                Ray::new(p + n * 1e-3, dir)
            })
            .collect()
    }
}

#[derive(Clone, Copy)]
enum SurfaceRayStyle {
    Hemisphere,
    TowardLight,
}

/// Cosine-weighted hemisphere sample around `normal`.
fn sample_hemisphere<R: Rng>(rng: &mut R, normal: Vec3) -> Vec3 {
    // Rejection-free: sample a point on the unit sphere, add the normal,
    // and normalize (Lambertian trick from ray tracing in one weekend).
    loop {
        let v = Vec3::new(
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
            rng.gen::<f32>() * 2.0 - 1.0,
        );
        let len2 = v.length_squared();
        if len2 > 1e-6 && len2 <= 1.0 {
            let dir = (normal + v / len2.sqrt()).normalized();
            // Guard against the antipodal sample canceling the normal.
            if dir.dot(normal) > 0.0 {
                return dir;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneId;

    fn tiny_scene() -> Scene {
        Scene::build_with_detail(SceneId::Wknd, 0.2)
    }

    #[test]
    fn primary_workload_matches_camera() {
        let scene = tiny_scene();
        let rays = Workload::new(WorkloadKind::Primary, 8, 8).generate(&scene);
        assert_eq!(rays.len(), 64);
        let direct = scene.camera.primary_rays(8, 8);
        assert_eq!(rays[17], direct[17]);
    }

    #[test]
    fn paper_default_is_32x32_primary() {
        let w = Workload::paper_default();
        assert_eq!(w.ray_count(), 1024);
        assert_eq!(w.kind, WorkloadKind::Primary);
    }

    #[test]
    fn diffuse_rays_are_deterministic_and_unit_length() {
        let scene = tiny_scene();
        let w = Workload::new(WorkloadKind::Diffuse, 8, 8);
        let a = w.generate(&scene);
        let b = w.generate(&scene);
        assert_eq!(a.len(), 64);
        assert_eq!(a[10], b[10]);
        for r in &a {
            assert!((r.direction.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn different_seeds_give_different_diffuse_rays() {
        let scene = tiny_scene();
        let a = Workload::new(WorkloadKind::Diffuse, 8, 8).generate(&scene);
        let b = Workload::new(WorkloadKind::Diffuse, 8, 8)
            .with_seed(99)
            .generate(&scene);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn diffuse_origins_lie_near_scene_surface() {
        let scene = tiny_scene();
        let aabb = scene.mesh.aabb();
        let mut grown = aabb;
        grown.grow_point(aabb.min - rt_geometry::Vec3::splat(0.1));
        grown.grow_point(aabb.max + rt_geometry::Vec3::splat(0.1));
        for r in Workload::new(WorkloadKind::Diffuse, 8, 8).generate(&scene) {
            assert!(grown.contains_point(r.origin));
        }
    }

    #[test]
    fn shadow_rays_point_upward_on_average() {
        let scene = tiny_scene();
        let rays = Workload::new(WorkloadKind::Shadow, 8, 8).generate(&scene);
        let mean_y: f32 = rays.iter().map(|r| r.direction.y).sum::<f32>() / rays.len() as f32;
        // The light sits above the scene, so shadow rays mostly go up.
        assert!(mean_y > 0.0);
    }

    #[test]
    fn workload_kind_display() {
        assert_eq!(WorkloadKind::Primary.to_string(), "primary");
        assert_eq!(WorkloadKind::Diffuse.to_string(), "diffuse");
        assert_eq!(WorkloadKind::Shadow.to_string(), "shadow");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = Workload::new(WorkloadKind::Primary, 0, 8);
    }
}
