//! Pinhole camera generating primary rays.

use rt_geometry::{Ray, Vec3};

/// A pinhole camera that shoots one primary ray per pixel.
///
/// Matches the paper's workload setup: 1 sample per pixel at a small
/// resolution (the paper uses 32×32 to bound simulation time).
///
/// # Examples
///
/// ```
/// use rt_scene::Camera;
/// use rt_geometry::Vec3;
///
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 1.0, 5.0),
///     Vec3::ZERO,
///     Vec3::Y,
///     60.0_f32.to_radians(),
///     1.0,
/// );
/// let rays = cam.primary_rays(32, 32);
/// assert_eq!(rays.len(), 32 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    origin: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
}

impl Camera {
    /// Creates a camera at `eye` looking at `target`.
    ///
    /// `vfov` is the vertical field of view in radians; `aspect` is the
    /// width/height ratio of the image plane.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eye == target` or `up` is parallel to the
    /// view direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, vfov: f32, aspect: f32) -> Self {
        let h = (vfov * 0.5).tan();
        let viewport_height = 2.0 * h;
        let viewport_width = aspect * viewport_height;

        let w = (eye - target).normalized();
        let u = up.cross(w).normalized();
        let v = w.cross(u);

        let horizontal = u * viewport_width;
        let vertical = v * viewport_height;
        let lower_left = eye - horizontal * 0.5 - vertical * 0.5 - w;
        Camera {
            origin: eye,
            lower_left,
            horizontal,
            vertical,
        }
    }

    /// Camera position.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// Primary ray through the center of pixel `(px, py)` of a
    /// `width`×`height` image. Pixel `(0, 0)` is the lower-left corner.
    pub fn ray(&self, px: u32, py: u32, width: u32, height: u32) -> Ray {
        let s = (px as f32 + 0.5) / width as f32;
        let t = (py as f32 + 0.5) / height as f32;
        let dir = self.lower_left + self.horizontal * s + self.vertical * t - self.origin;
        Ray::new(self.origin, dir.normalized())
    }

    /// All primary rays of a `width`×`height` image in row-major order
    /// (the dispatch order warps receive them in).
    pub fn primary_rays(&self, width: u32, height: u32) -> Vec<Ray> {
        let mut rays = Vec::with_capacity((width * height) as usize);
        for py in 0..height {
            for px in 0..width {
                rays.push(self.ray(px, py, width, height));
            }
        }
        rays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::Y,
            90.0_f32.to_radians(),
            1.0,
        )
    }

    #[test]
    fn rays_originate_at_eye() {
        let cam = test_camera();
        for r in cam.primary_rays(4, 4) {
            assert_eq!(r.origin, Vec3::new(0.0, 0.0, 5.0));
            assert!((r.direction.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn center_ray_points_at_target() {
        let cam = test_camera();
        // 1x1 image: the single ray goes through the image center.
        let r = cam.ray(0, 0, 1, 1);
        // Looking from +Z toward the origin: direction ~ -Z.
        assert!(r.direction.z < -0.99);
        assert!(r.direction.x.abs() < 1e-5);
        assert!(r.direction.y.abs() < 1e-5);
    }

    #[test]
    fn corner_rays_diverge() {
        let cam = test_camera();
        let bl = cam.ray(0, 0, 8, 8);
        let tr = cam.ray(7, 7, 8, 8);
        assert!(bl.direction.x < 0.0 && bl.direction.y < 0.0);
        assert!(tr.direction.x > 0.0 && tr.direction.y > 0.0);
    }

    #[test]
    fn primary_rays_count_and_order() {
        let cam = test_camera();
        let rays = cam.primary_rays(3, 2);
        assert_eq!(rays.len(), 6);
        // Row-major: the bottom row points below the axis, the top row above.
        assert!(rays[0].direction.y < 0.0);
        assert!(rays[3].direction.y > 0.0);
        assert!(rays[0].direction.y < rays[3].direction.y);
        // Within a row, the x component increases left to right.
        assert!(rays[0].direction.x < rays[1].direction.x);
    }

    #[test]
    fn wider_fov_spreads_rays() {
        let narrow = Camera::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::Y,
            30.0_f32.to_radians(),
            1.0,
        );
        let wide = test_camera();
        let n = narrow.ray(0, 0, 2, 2);
        let w = wide.ray(0, 0, 2, 2);
        // The wide camera's corner ray deviates more from the view axis.
        assert!(w.direction.x.abs() > n.direction.x.abs());
    }
}
