//! The sixteen evaluation scenes.
//!
//! The paper evaluates on sixteen LumiBench scenes built by Embree. Those
//! assets are not redistributable, so this module provides *procedural
//! stand-ins* with the same names, chosen so that the relative BVH scale
//! ordering of the paper's Table 2 is preserved (WKND tiny and
//! cache-resident, CAR/ROBOT by far the largest, etc.) and so that each
//! scene exercises a distinct spatial structure (terrain, dense shell,
//! scattered incoherent confetti, architectural interior, ...).
//!
//! Scenes are fully deterministic: the same [`SceneId`] and detail level
//! always produce the same triangles.

use crate::generators::{
    cone, confetti, cuboid, cylinder, displaced_sphere, ground_plane, helix_tube, ripple, terrain,
    uv_sphere,
};
use crate::{Camera, Mesh, SceneError};
use rt_rng::SmallRng;
use rt_geometry::{Aabb, Vec3};
use std::fmt;

/// Identifier of one of the sixteen evaluation scenes (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SceneId {
    Wknd,
    Park,
    Car,
    Robot,
    Sprng,
    Party,
    Fox,
    Frst,
    Lands,
    Bunny,
    Crnvl,
    Ship,
    Spnza,
    Bath,
    Ref,
    Chsnt,
}

/// BVH statistics the paper reports for a scene in Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperSceneStats {
    /// BVH tree size in megabytes (Embree build).
    pub tree_size_mb: f64,
    /// BVH tree depth.
    pub tree_depth: u32,
    /// Number of 512-byte treelets.
    pub total_treelets: u64,
}

impl SceneId {
    /// All sixteen scenes in the paper's Table 2 order.
    pub const ALL: [SceneId; 16] = [
        SceneId::Wknd,
        SceneId::Park,
        SceneId::Car,
        SceneId::Robot,
        SceneId::Sprng,
        SceneId::Party,
        SceneId::Fox,
        SceneId::Frst,
        SceneId::Lands,
        SceneId::Bunny,
        SceneId::Crnvl,
        SceneId::Ship,
        SceneId::Spnza,
        SceneId::Bath,
        SceneId::Ref,
        SceneId::Chsnt,
    ];

    /// The scene's short name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Wknd => "WKND",
            SceneId::Park => "PARK",
            SceneId::Car => "CAR",
            SceneId::Robot => "ROBOT",
            SceneId::Sprng => "SPRNG",
            SceneId::Party => "PARTY",
            SceneId::Fox => "FOX",
            SceneId::Frst => "FRST",
            SceneId::Lands => "LANDS",
            SceneId::Bunny => "BUNNY",
            SceneId::Crnvl => "CRNVL",
            SceneId::Ship => "SHIP",
            SceneId::Spnza => "SPNZA",
            SceneId::Bath => "BATH",
            SceneId::Ref => "REF",
            SceneId::Chsnt => "CHSNT",
        }
    }

    /// Parses a scene name as printed in the paper (case-insensitive).
    pub fn from_name(name: &str) -> Option<SceneId> {
        let upper = name.to_ascii_uppercase();
        SceneId::ALL.into_iter().find(|s| s.name() == upper)
    }

    /// The statistics the paper's Table 2 reports for this scene
    /// (Embree-built BVH, 512 B maximum treelet size).
    pub fn paper_stats(self) -> PaperSceneStats {
        let (tree_size_mb, tree_depth, total_treelets) = match self {
            SceneId::Wknd => (0.2, 7, 519),
            SceneId::Park => (501.9, 14, 3_946_335),
            SceneId::Car => (1_233.6, 16, 10_186_555),
            SceneId::Robot => (1_721.3, 18, 13_532_923),
            SceneId::Sprng => (164.3, 14, 1_286_479),
            SceneId::Party => (143.8, 14, 1_137_508),
            SceneId::Fox => (597.8, 15, 4_638_757),
            SceneId::Frst => (348.6, 14, 2_764_433),
            SceneId::Lands => (279.2, 12, 2_293_559),
            SceneId::Bunny => (12.2, 11, 71_424),
            SceneId::Crnvl => (37.3, 16, 299_373),
            SceneId::Ship => (0.5, 12, 4_323),
            SceneId::Spnza => (22.0, 16, 176_804),
            SceneId::Bath => (104.2, 16, 821_975),
            SceneId::Ref => (37.1, 13, 305_404),
            SceneId::Chsnt => (25.5, 12, 204_634),
        };
        PaperSceneStats {
            tree_size_mb,
            tree_depth,
            total_treelets,
        }
    }
}

impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated scene: its triangles plus a camera framing them.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Which of the sixteen scenes this is.
    pub id: SceneId,
    /// The scene geometry.
    pub mesh: Mesh,
    /// A camera framing the geometry, used for primary-ray workloads.
    pub camera: Camera,
}

impl Scene {
    /// Builds the scene at full evaluation detail (`detail = 1.0`).
    pub fn build(id: SceneId) -> Scene {
        Scene::build_with_detail(id, 1.0)
    }

    /// Builds the scene with a linear detail multiplier.
    ///
    /// Triangle counts scale roughly with `detail²`; tests use small values
    /// (e.g. `0.2`) for fast miniature scenes with the same structure.
    ///
    /// # Panics
    ///
    /// Panics if `detail` is not finite and positive, or if the scene
    /// would exceed the generator triangle ceiling; use
    /// [`Scene::try_build_with_detail`] for a typed error instead.
    pub fn build_with_detail(id: SceneId, detail: f32) -> Scene {
        match Scene::try_build_with_detail(id, detail) {
            Ok(scene) => scene,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the scene with a linear detail multiplier, returning a
    /// typed [`SceneError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SceneError::InvalidDetail`] when `detail` is zero, negative,
    /// NaN, or infinite; [`SceneError::TooManyTriangles`] when the
    /// scaled scene would exceed
    /// [`MAX_GENERATOR_TRIANGLES`](crate::generators::MAX_GENERATOR_TRIANGLES)
    /// triangles in a single generator call (the fail-fast guard
    /// against runaway detail factors).
    pub fn try_build_with_detail(id: SceneId, detail: f32) -> Result<Scene, SceneError> {
        if !(detail.is_finite() && detail > 0.0) {
            return Err(SceneError::InvalidDetail { detail });
        }
        let mesh = build_mesh(id, detail)?;
        let camera = framing_camera(&mesh.aabb());
        Ok(Scene { id, mesh, camera })
    }

    /// Number of triangles in the scene.
    pub fn triangle_count(&self) -> usize {
        self.mesh.len()
    }
}

/// Places a camera on a diagonal looking at the scene center, at the
/// distance where the bounding box slightly overfills the viewport (so
/// that most primary rays do real traversal work, as in the paper's
/// scenes). Deterministic for a given AABB.
fn framing_camera(aabb: &Aabb) -> Camera {
    let center = aabb.center();
    let extent = aabb.extent();
    // Flat scenes (terrains) are viewed from higher up so the ground
    // fills the frame; tall/compact scenes from a shallower diagonal.
    let dir = if extent.y < 0.25 * extent.x.max(extent.z) {
        // Near-top-down: the ground plane fills the square viewport.
        Vec3::new(0.22, 0.92, 0.28).normalized()
    } else {
        Vec3::new(0.55, 0.4, 0.73).normalized()
    };
    let vfov = 50.0_f32.to_radians();
    let tan_h = (vfov * 0.5).tan();
    // Fit distance: smallest t such that every AABB corner projects
    // inside the square frustum of a camera at `center + dir * t`.
    let w = dir;
    let u = Vec3::Y.cross(w).normalized();
    let v = w.cross(u);
    let mut t_fit = 1.0f32;
    let mut t_front = 1.0f32;
    for ix in [aabb.min.x, aabb.max.x] {
        for iy in [aabb.min.y, aabb.max.y] {
            for iz in [aabb.min.z, aabb.max.z] {
                let q = Vec3::new(ix, iy, iz) - center;
                let along = q.dot(w);
                t_fit = t_fit.max(along + q.dot(u).abs() / tan_h);
                t_fit = t_fit.max(along + q.dot(v).abs() / tan_h);
                t_front = t_front.max(along);
            }
        }
    }
    // 0.55 = strong overfill (most pixels cover geometry); never closer
    // than just outside the geometry.
    let t = (t_fit * 0.55).max(t_front * 1.1);
    Camera::look_at(center + dir * t, center, Vec3::Y, vfov, 1.0)
}

/// Scales a linear resolution by the detail factor (minimum `lo`).
fn res(base: u32, detail: f32, lo: u32) -> u32 {
    ((base as f32 * detail).round() as u32).max(lo)
}

/// Scales an instance count by `detail²` (counts are area-like).
fn count(base: usize, detail: f32, lo: usize) -> usize {
    ((base as f32 * detail * detail).round() as usize).max(lo)
}

fn build_mesh(id: SceneId, d: f32) -> Result<Mesh, SceneError> {
    match id {
        SceneId::Wknd => wknd(d),
        SceneId::Park => park(d),
        SceneId::Car => car(d),
        SceneId::Robot => robot(d),
        SceneId::Sprng => sprng(d),
        SceneId::Party => party(d),
        SceneId::Fox => fox(d),
        SceneId::Frst => frst(d),
        SceneId::Lands => lands(d),
        SceneId::Bunny => bunny(d),
        SceneId::Crnvl => crnvl(d),
        SceneId::Ship => ship(d),
        SceneId::Spnza => spnza(d),
        SceneId::Bath => bath(d),
        SceneId::Ref => rf(d),
        SceneId::Chsnt => chsnt(d),
    }
}

/// Tiny "one weekend" scene: three spheres on a plane. Its BVH fits in the
/// L1 cache, which is why the paper sees no speedup on it.
fn wknd(d: f32) -> Result<Mesh, SceneError> {
    let mut m = ground_plane(12.0, 0.0, res(8, d, 2))?;
    for (i, r) in [1.0f32, 0.8, 1.2].iter().enumerate() {
        let x = -4.0 + 4.0 * i as f32;
        m.append(&uv_sphere(
            Vec3::new(x, *r, 0.0),
            *r,
            res(12, d, 4),
            res(16, d, 6),
        )?);
    }
    Ok(m)
}

/// Park: rolling terrain with scattered trees and rocks.
fn park(d: f32) -> Result<Mesh, SceneError> {
    let mut rng = SmallRng::seed_from_u64(0x5041_524b);
    let mut m = terrain(80.0, res(100, d, 8), |x, z| {
        2.0 * (0.05 * x).sin() * (0.06 * z).cos()
    })?;
    type Place<'a> = &'a mut (dyn FnMut(&mut SmallRng, Vec3) -> Result<Mesh, SceneError> + 'a);
    let mut place = |n: usize, f: Place<'_>| -> Result<(), SceneError> {
        use rt_rng::Rng;
        for _ in 0..n {
            let x = rng.gen_range(-75.0..75.0);
            let z = rng.gen_range(-75.0..75.0);
            let y = 2.0 * (0.05f32 * x).sin() * (0.06f32 * z).cos();
            let sub = f(&mut rng, Vec3::new(x, y, z))?;
            m.append(&sub);
        }
        Ok(())
    };
    place(count(400, d, 4), &mut |rng, p| {
        use rt_rng::Rng;
        let h: f32 = rng.gen_range(3.0..7.0);
        let mut t = cylinder(p, 0.3, h * 0.4, res(10, d, 4))?;
        t.append(&cone(
            p + Vec3::new(0.0, h * 0.4, 0.0),
            h * 0.35,
            h * 0.6,
            res(20, d, 5),
        )?);
        Ok(t)
    })?;
    place(count(120, d, 2), &mut |rng, p| {
        use rt_rng::Rng;
        let r: f32 = rng.gen_range(0.3..0.9);
        uv_sphere(
            p + Vec3::new(0.0, r * 0.5, 0.0),
            r,
            res(8, d, 3),
            res(10, d, 4),
        )
    })?;
    Ok(m)
}

/// Car: one very dense triangle shell (body) with wheels — the largest
/// scenes in the paper are dense scanned/CAD surfaces like this.
fn car(d: f32) -> Result<Mesh, SceneError> {
    let body = displaced_sphere(Vec3::ZERO, 1.0, res(180, d, 12), res(280, d, 16), |t, p| {
        0.04 * ripple(t, p, 3, 1.0)
    })?
    .scaled(Vec3::new(4.2, 1.25, 1.8));
    let mut m = body;
    for (sx, sz) in [(-1.0f32, -1.0f32), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
        let wheel = uv_sphere(Vec3::ZERO, 0.6, res(24, d, 6), res(36, d, 8))?
            .scaled(Vec3::new(1.0, 1.0, 0.45))
            .translated(Vec3::new(2.4 * sx, -1.0, 1.8 * sz));
        m.append(&wheel);
    }
    m.append(&cuboid(
        Vec3::new(-1.6, -0.4, -1.0),
        Vec3::new(1.6, 0.6, 1.0),
    ));
    Ok(m)
}

/// Robot: articulated figure built from many dense organic segments — the
/// deepest, largest BVH of the suite.
fn robot(d: f32) -> Result<Mesh, SceneError> {
    let blob = |c: Vec3, r: Vec3, st: u32, sl: u32| -> Result<Mesh, SceneError> {
        Ok(
            displaced_sphere(Vec3::ZERO, 1.0, res(st, d, 8), res(sl, d, 10), |t, p| {
                0.05 * ripple(t, p, 2, 1.0)
            })?
            .scaled(r)
            .translated(c),
        )
    };
    let mut m = blob(Vec3::new(0.0, 3.0, 0.0), Vec3::new(1.4, 2.0, 0.9), 120, 180)?; // torso
    m.append(&blob(Vec3::new(0.0, 6.0, 0.0), Vec3::splat(0.9), 70, 100)?); // head
    for side in [-1.0f32, 1.0] {
        // Arms: two segments each.
        m.append(&blob(
            Vec3::new(1.9 * side, 4.2, 0.0),
            Vec3::new(0.45, 1.1, 0.45),
            50,
            70,
        )?);
        m.append(&blob(
            Vec3::new(2.1 * side, 2.2, 0.3),
            Vec3::new(0.4, 1.0, 0.4),
            50,
            70,
        )?);
        // Legs: two segments each.
        m.append(&blob(
            Vec3::new(0.7 * side, 0.2, 0.0),
            Vec3::new(0.5, 1.2, 0.5),
            50,
            70,
        )?);
        m.append(&blob(
            Vec3::new(0.7 * side, -2.0, 0.2),
            Vec3::new(0.45, 1.1, 0.5),
            50,
            70,
        )?);
    }
    Ok(m)
}

/// Springs: two interleaved helical coils.
fn sprng(d: f32) -> Result<Mesh, SceneError> {
    let mut m = helix_tube(
        Vec3::ZERO,
        2.0,
        0.25,
        9.0,
        8.0,
        res(600, d, 24),
        res(16, d, 5),
    )?;
    m.append(&helix_tube(
        Vec3::new(5.0, 0.0, 0.0),
        1.4,
        0.2,
        12.0,
        8.0,
        res(500, d, 20),
        res(14, d, 5),
    )?);
    m.append(&ground_plane(10.0, -0.2, res(10, d, 2))?);
    Ok(m)
}

/// Party: uniformly scattered confetti — maximal ray divergence. The paper
/// notes PARTY is the scene where treelet traversal costs the most.
fn party(d: f32) -> Result<Mesh, SceneError> {
    let mut rng = SmallRng::seed_from_u64(0x5041_5254);
    confetti(
        &mut rng,
        count(36_000, d, 64),
        Vec3::new(-10.0, 0.0, -10.0),
        Vec3::new(10.0, 10.0, 10.0),
        0.35,
    )
}

/// Fox: organic body + head + tail, dense smooth surfaces.
fn fox(d: f32) -> Result<Mesh, SceneError> {
    let organic = |c: Vec3, r: Vec3, st: u32, sl: u32, seed: f32| -> Result<Mesh, SceneError> {
        Ok(displaced_sphere(
            Vec3::ZERO,
            1.0,
            res(st, d, 8),
            res(sl, d, 10),
            move |t, p| 0.08 * ripple(t + seed, p, 3, 1.0),
        )?
        .scaled(r)
        .translated(c))
    };
    let mut m = organic(
        Vec3::new(0.0, 1.2, 0.0),
        Vec3::new(2.2, 1.1, 1.0),
        140,
        200,
        0.0,
    )?;
    m.append(&organic(
        Vec3::new(2.6, 1.9, 0.0),
        Vec3::splat(0.7),
        60,
        90,
        1.3,
    )?);
    m.append(&helix_tube(
        Vec3::new(-2.2, 1.0, 0.0),
        0.5,
        0.25,
        1.5,
        1.5,
        res(300, d, 12),
        res(10, d, 4),
    )?);
    for side in [-1.0f32, 1.0] {
        m.append(&cone(
            Vec3::new(2.7, 2.4, 0.35 * side),
            0.2,
            0.6,
            res(10, d, 4),
        )?);
        m.append(&cylinder(
            Vec3::new(1.2, 0.0, 0.5 * side),
            0.18,
            1.2,
            res(10, d, 4),
        )?);
        m.append(&cylinder(
            Vec3::new(-1.2, 0.0, 0.5 * side),
            0.18,
            1.2,
            res(10, d, 4),
        )?);
    }
    Ok(m)
}

/// Forest: terrain densely covered with two-tier conifer trees.
fn frst(d: f32) -> Result<Mesh, SceneError> {
    let mut rng = SmallRng::seed_from_u64(0x4652_5354);
    let mut m = terrain(60.0, res(60, d, 6), |x, z| {
        1.5 * (0.08 * x).cos() * (0.07 * z).sin()
    })?;
    use rt_rng::Rng;
    for _ in 0..count(600, d, 6) {
        let x = rng.gen_range(-56.0..56.0);
        let z = rng.gen_range(-56.0..56.0);
        let y = 1.5 * (0.08f32 * x).cos() * (0.07f32 * z).sin();
        let h: f32 = rng.gen_range(3.0..6.5);
        let p = Vec3::new(x, y, z);
        m.append(&cylinder(p, 0.25, h * 0.3, res(8, d, 3))?);
        m.append(&cone(
            p + Vec3::new(0.0, h * 0.3, 0.0),
            h * 0.3,
            h * 0.45,
            res(16, d, 5),
        )?);
        m.append(&cone(
            p + Vec3::new(0.0, h * 0.55, 0.0),
            h * 0.22,
            h * 0.45,
            res(12, d, 4),
        )?);
    }
    Ok(m)
}

/// Landscape: one large high-resolution heightfield.
fn lands(d: f32) -> Result<Mesh, SceneError> {
    terrain(100.0, res(150, d, 10), |x, z| {
        6.0 * (0.03 * x).sin() * (0.04 * z).cos()
            + 2.0 * (0.11 * x + 1.0).cos() * (0.09 * z).sin()
            + 0.5 * (0.31 * x).sin() * (0.37 * z).cos()
    })
}

/// Bunny: a single medium-resolution organic blob.
fn bunny(d: f32) -> Result<Mesh, SceneError> {
    let mut m = displaced_sphere(
        Vec3::new(0.0, 1.0, 0.0),
        1.0,
        res(64, d, 8),
        res(82, d, 10),
        |t, p| 0.12 * ripple(t, p, 4, 1.0),
    )?;
    for side in [-1.0f32, 1.0] {
        m.append(
            &uv_sphere(Vec3::ZERO, 0.45, res(16, d, 5), res(20, d, 6))?
                .scaled(Vec3::new(0.35, 1.0, 0.2))
                .translated(Vec3::new(0.35 * side, 2.2, 0.0)),
        );
    }
    Ok(m)
}

/// Carnival: a mixture of structured rides, tents, and booths.
fn crnvl(d: f32) -> Result<Mesh, SceneError> {
    let mut rng = SmallRng::seed_from_u64(0x4352_4e56);
    use rt_rng::Rng;
    let mut m = ground_plane(40.0, 0.0, res(30, d, 4))?;
    // Ferris wheel: a ring of cabins plus a rim tube.
    let wheel_center = Vec3::new(0.0, 11.0, -15.0);
    m.append(&helix_tube(
        wheel_center - Vec3::new(0.0, 0.0, 0.0),
        9.0,
        0.3,
        1.0,
        0.01,
        res(200, d, 16),
        res(8, d, 4),
    )?);
    for k in 0..count(24, d, 4) {
        let a = 2.0 * std::f32::consts::PI * k as f32 / count(24, d, 4) as f32;
        let c = wheel_center + Vec3::new(9.0 * a.cos(), 9.0 * a.sin(), 0.0);
        m.append(&cuboid(c - Vec3::splat(0.7), c + Vec3::splat(0.7)));
    }
    // Carousel.
    m.append(&cylinder(
        Vec3::new(15.0, 0.0, 5.0),
        5.0,
        0.5,
        res(32, d, 8),
    )?);
    m.append(&cone(Vec3::new(15.0, 4.0, 5.0), 5.5, 2.5, res(32, d, 8))?);
    for k in 0..count(16, d, 3) {
        let a = 2.0 * std::f32::consts::PI * k as f32 / count(16, d, 3) as f32;
        let c = Vec3::new(15.0 + 4.0 * a.cos(), 1.8, 5.0 + 4.0 * a.sin());
        m.append(&uv_sphere(c, 0.6, res(16, d, 5), res(24, d, 6))?);
    }
    // Tents.
    for _ in 0..count(20, d, 3) {
        let x = rng.gen_range(-35.0..35.0);
        let z = rng.gen_range(-35.0..35.0);
        let r: f32 = rng.gen_range(1.5..3.5);
        m.append(&cone(Vec3::new(x, 0.0, z), r, r * 1.4, res(24, d, 6))?);
    }
    Ok(m)
}

/// Ship: a small hull with masts and deck structures — like WKND, a small
/// BVH, but deeper.
fn ship(d: f32) -> Result<Mesh, SceneError> {
    let hull = displaced_sphere(Vec3::ZERO, 1.0, res(24, d, 8), res(36, d, 10), |t, p| {
        0.05 * ripple(t, p, 2, 1.0)
    })?
    .scaled(Vec3::new(4.0, 1.2, 1.4))
    .translated(Vec3::new(0.0, 1.0, 0.0));
    let mut m = hull;
    for x in [-1.5f32, 1.5] {
        m.append(&cylinder(Vec3::new(x, 2.0, 0.0), 0.12, 5.0, res(8, d, 4))?);
        m.append(&cuboid(
            Vec3::new(x - 1.2, 4.0, -0.05),
            Vec3::new(x + 1.2, 6.0, 0.05),
        ));
    }
    m.append(&cuboid(
        Vec3::new(-1.0, 2.0, -0.9),
        Vec3::new(1.0, 2.8, 0.9),
    ));
    Ok(m)
}

/// Sponza-like atrium: floor, walls, and a colonnade.
fn spnza(d: f32) -> Result<Mesh, SceneError> {
    let mut m = ground_plane(30.0, 0.0, res(28, d, 4))?;
    // Four walls (vertical planes via mapping from a ground plane).
    let wall = ground_plane(30.0, 0.0, res(28, d, 4))?;
    m.append(
        &wall
            .mapped(|v| Vec3::new(v.x, v.z + 30.0, -30.0))
            .scaled(Vec3::new(1.0, 0.35, 1.0)),
    );
    m.append(
        &wall
            .mapped(|v| Vec3::new(v.x, v.z + 30.0, 30.0))
            .scaled(Vec3::new(1.0, 0.35, 1.0)),
    );
    m.append(
        &wall
            .mapped(|v| Vec3::new(-30.0, v.z + 30.0, v.x))
            .scaled(Vec3::new(1.0, 0.35, 1.0)),
    );
    m.append(
        &wall
            .mapped(|v| Vec3::new(30.0, v.z + 30.0, v.x))
            .scaled(Vec3::new(1.0, 0.35, 1.0)),
    );
    // Two rows of columns with capitals.
    for row in [-12.0f32, 12.0] {
        for k in 0..14 {
            let x = -26.0 + 4.0 * k as f32;
            let base = Vec3::new(x, 0.0, row);
            m.append(&cylinder(base, 0.8, 8.0, res(16, d, 6))?);
            m.append(&cuboid(
                base + Vec3::new(-1.1, 8.0, -1.1),
                base + Vec3::new(1.1, 9.0, 1.1),
            ));
            m.append(&uv_sphere(
                base + Vec3::new(0.0, 7.6, 0.0),
                1.0,
                res(10, d, 4),
                res(14, d, 5),
            )?);
        }
    }
    Ok(m)
}

/// Bathroom: a tiled room with a tub, sink, and plumbing.
fn bath(d: f32) -> Result<Mesh, SceneError> {
    let mut m = ground_plane(12.0, 0.0, res(50, d, 6))?;
    let wall = ground_plane(12.0, 0.0, res(40, d, 5))?;
    m.append(&wall.mapped(|v| Vec3::new(v.x, v.z + 12.0, -12.0)));
    m.append(&wall.mapped(|v| Vec3::new(-12.0, v.z + 12.0, v.x)));
    // Tub: a squashed open blob.
    m.append(
        &displaced_sphere(Vec3::ZERO, 1.0, res(80, d, 10), res(120, d, 12), |t, p| {
            0.03 * ripple(t, p, 2, 1.0)
        })?
        .scaled(Vec3::new(3.2, 1.1, 1.8))
        .translated(Vec3::new(-6.0, 1.0, -8.0)),
    );
    // Sink.
    m.append(&uv_sphere(
        Vec3::new(6.0, 2.6, -10.0),
        1.0,
        res(40, d, 8),
        res(60, d, 10),
    )?);
    m.append(&cuboid(
        Vec3::new(5.0, 0.0, -11.0),
        Vec3::new(7.0, 2.2, -9.0),
    ));
    // Plumbing: helical pipe runs.
    m.append(&helix_tube(
        Vec3::new(10.0, 0.5, -11.5),
        0.6,
        0.12,
        6.0,
        8.0,
        res(240, d, 12),
        res(8, d, 4),
    )?);
    Ok(m)
}

/// Reflection test room: mirror spheres and boxes in an enclosure.
fn rf(d: f32) -> Result<Mesh, SceneError> {
    let mut m = ground_plane(16.0, 0.0, res(20, d, 4))?;
    let wall = ground_plane(16.0, 0.0, res(16, d, 3))?;
    m.append(&wall.mapped(|v| Vec3::new(v.x, v.z + 16.0, -16.0)));
    m.append(&wall.mapped(|v| Vec3::new(-16.0, v.z + 16.0, v.x)));
    let mut rng = SmallRng::seed_from_u64(0x5245_465f);
    use rt_rng::Rng;
    for _ in 0..count(6, d, 2) {
        let p = Vec3::new(
            rng.gen_range(-10.0..10.0),
            rng.gen_range(1.5..4.0),
            rng.gen_range(-10.0..10.0),
        );
        m.append(&uv_sphere(p, 1.5, res(24, d, 6), res(36, d, 8))?);
    }
    for _ in 0..count(8, d, 2) {
        let p = Vec3::new(rng.gen_range(-12.0..12.0), 0.0, rng.gen_range(-12.0..12.0));
        let s: f32 = rng.gen_range(0.8..2.0);
        m.append(&cuboid(p, p + Vec3::new(s, s * 1.5, s)));
    }
    Ok(m)
}

/// Chestnut tree: trunk, branches, a dense canopy, and fallen nuts.
fn chsnt(d: f32) -> Result<Mesh, SceneError> {
    let mut m = ground_plane(20.0, 0.0, res(16, d, 3))?;
    m.append(&cylinder(Vec3::ZERO, 0.9, 6.0, res(24, d, 6))?);
    let mut rng = SmallRng::seed_from_u64(0x4348_534e);
    use rt_rng::Rng;
    for k in 0..5 {
        let a = 2.0 * std::f32::consts::PI * k as f32 / 5.0;
        m.append(
            &cylinder(Vec3::ZERO, 0.3, 3.5, res(10, d, 4))?
                .rotated_y(a)
                .mapped(|v| {
                    Vec3::new(
                        v.x + v.y * 0.5 * a.cos(),
                        v.y + 5.0,
                        v.z + v.y * 0.5 * a.sin(),
                    )
                }),
        );
    }
    m.append(&displaced_sphere(
        Vec3::new(0.0, 9.5, 0.0),
        4.0,
        res(70, d, 10),
        res(105, d, 12),
        |t, p| 0.15 * ripple(t, p, 4, 1.0),
    )?);
    for _ in 0..count(30, d, 3) {
        let p = Vec3::new(rng.gen_range(-6.0..6.0), 0.15, rng.gen_range(-6.0..6.0));
        m.append(&uv_sphere(p, 0.15, res(6, d, 3), res(8, d, 4))?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_round_trip_through_names() {
        for id in SceneId::ALL {
            assert_eq!(SceneId::from_name(id.name()), Some(id));
            assert_eq!(SceneId::from_name(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(SceneId::from_name("NOPE"), None);
    }

    #[test]
    fn paper_stats_match_table_2_spot_checks() {
        assert_eq!(SceneId::Wknd.paper_stats().tree_depth, 7);
        assert_eq!(SceneId::Robot.paper_stats().total_treelets, 13_532_923);
        assert_eq!(SceneId::Ship.paper_stats().tree_size_mb, 0.5);
    }

    #[test]
    fn every_scene_builds_at_low_detail() {
        for id in SceneId::ALL {
            let s = Scene::build_with_detail(id, 0.15);
            assert!(!s.mesh.is_empty(), "{id} produced an empty mesh");
            assert!(!s.mesh.aabb().is_empty());
            assert!(
                s.mesh.triangles().iter().all(|t| t.aabb().min.is_finite()),
                "{id} produced non-finite triangles"
            );
        }
    }

    #[test]
    fn scenes_are_deterministic() {
        let a = Scene::build_with_detail(SceneId::Party, 0.2);
        let b = Scene::build_with_detail(SceneId::Party, 0.2);
        assert_eq!(a.mesh.len(), b.mesh.len());
        assert_eq!(a.mesh.triangles()[7], b.mesh.triangles()[7]);
    }

    #[test]
    fn detail_scales_triangle_count() {
        let small = Scene::build_with_detail(SceneId::Lands, 0.1);
        let large = Scene::build_with_detail(SceneId::Lands, 0.3);
        assert!(large.mesh.len() > 3 * small.mesh.len());
    }

    #[test]
    fn size_ordering_matches_paper_extremes() {
        // At equal detail, the stand-ins preserve the paper's extremes:
        // WKND/SHIP smallest, CAR/ROBOT largest.
        let d = 0.25;
        let wknd = Scene::build_with_detail(SceneId::Wknd, d).triangle_count();
        let ship = Scene::build_with_detail(SceneId::Ship, d).triangle_count();
        let car = Scene::build_with_detail(SceneId::Car, d).triangle_count();
        let robot = Scene::build_with_detail(SceneId::Robot, d).triangle_count();
        assert!(wknd < car && wknd < robot);
        assert!(ship < car && ship < robot);
        assert!(car.max(robot) > 8 * wknd);
    }

    #[test]
    fn camera_frames_scene() {
        let s = Scene::build_with_detail(SceneId::Wknd, 0.3);
        let aabb = s.mesh.aabb();
        // Camera is outside the bounding box looking at the contents.
        assert!(!aabb.contains_point(s.camera.origin()));
    }

    #[test]
    #[should_panic(expected = "detail must be positive")]
    fn zero_detail_panics() {
        let _ = Scene::build_with_detail(SceneId::Wknd, 0.0);
    }

    #[test]
    fn non_finite_detail_is_a_typed_error() {
        for bad in [f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 0.0, -1.0] {
            match Scene::try_build_with_detail(SceneId::Wknd, bad) {
                Err(SceneError::InvalidDetail { detail }) => {
                    assert!(detail.is_nan() == bad.is_nan() || detail == bad);
                }
                other => panic!("detail {bad} produced {other:?}"),
            }
        }
    }

    #[test]
    fn huge_detail_fails_fast_with_typed_error() {
        // Every builder's first generator call is detail-scaled, so a
        // runaway detail factor must fail at the budget check instead of
        // allocating until OOM (this used to hang).
        for id in SceneId::ALL {
            match Scene::try_build_with_detail(id, 1e30) {
                Err(SceneError::TooManyTriangles { requested, limit }) => {
                    assert!(requested > limit, "{id}: {requested} <= {limit}");
                }
                other => panic!("{id} at detail 1e30 produced {other:?}"),
            }
        }
    }
}
