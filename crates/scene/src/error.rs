//! Typed scene-construction errors.

use std::fmt;

/// Why a scene (or one of its procedural generators) refused to build.
///
/// Both variants exist to turn what used to be a panic or an unbounded
/// allocation into a prompt, typed failure the CLI can map to its
/// invalid-input exit code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SceneError {
    /// The detail factor is zero, negative, NaN, or infinite.
    InvalidDetail {
        /// The rejected detail factor.
        detail: f32,
    },
    /// A generator call would exceed the per-call triangle ceiling
    /// ([`MAX_GENERATOR_TRIANGLES`](crate::generators::MAX_GENERATOR_TRIANGLES))
    /// — the fail-fast guard against runaway detail factors allocating
    /// until OOM.
    TooManyTriangles {
        /// Triangles the call would have generated (saturating).
        requested: u64,
        /// The ceiling it exceeded.
        limit: u64,
    },
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneError::InvalidDetail { detail } => {
                write!(f, "detail must be positive and finite, got {detail}")
            }
            SceneError::TooManyTriangles { requested, limit } => {
                write!(
                    f,
                    "scene generation would produce {requested} triangles \
                     (ceiling {limit}); lower the detail factor"
                )
            }
        }
    }
}

impl std::error::Error for SceneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_cause() {
        // The legacy panic message asserted "detail must be positive";
        // the typed error keeps that prefix.
        let e = SceneError::InvalidDetail {
            detail: f32::INFINITY,
        };
        assert!(e.to_string().contains("detail must be positive"));
        let e = SceneError::TooManyTriangles {
            requested: 1 << 40,
            limit: 1 << 26,
        };
        assert!(e.to_string().contains("triangles"));
        assert!(e.to_string().contains("detail"));
    }
}
