//! Procedural evaluation scenes and ray workloads for the treelet
//! prefetching reproduction.
//!
//! The paper evaluates on sixteen LumiBench scenes (Table 2). Those assets
//! are not redistributable, so this crate generates *procedural stand-ins*
//! with the same names and the same relative BVH-scale ordering. See
//! `DESIGN.md` at the repository root for the substitution rationale.
//!
//! # Examples
//!
//! Build a scene and generate the paper's default 32×32 primary-ray
//! workload:
//!
//! ```
//! use rt_scene::{Scene, SceneId, Workload};
//!
//! let scene = Scene::build_with_detail(SceneId::Wknd, 0.3);
//! let rays = Workload::paper_default().generate(&scene);
//! assert_eq!(rays.len(), 1024);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod camera;
mod error;
pub mod generators;
mod mesh;
mod obj;
mod rays;
mod scenes;

pub use camera::Camera;
pub use error::SceneError;
pub use mesh::Mesh;
pub use obj::{load_obj, parse_obj, write_obj, ParseObjError};
pub use rays::{Workload, WorkloadKind};
pub use scenes::{PaperSceneStats, Scene, SceneId};
