//! Property-based tests for BVH construction and memory layout.

use rt_bvh::{MemoryImage, PackOptions, WideBvh, WideNode, NODE_SIZE_BYTES, WIDE_ARITY};
use rt_geometry::{Ray, Triangle, Vec3};
use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};

fn coord(rng: &mut SmallRng) -> f32 {
    rng.gen_range(-50.0f32..50.0)
}

fn triangle(rng: &mut SmallRng) -> Triangle {
    let p = Vec3::new(coord(rng), coord(rng), coord(rng));
    let edge = |rng: &mut SmallRng| {
        Vec3::new(
            rng.gen_range(-2.0f32..2.0),
            rng.gen_range(-2.0f32..2.0),
            rng.gen_range(-2.0f32..2.0),
        )
    };
    let (a, b) = (edge(rng), edge(rng));
    Triangle::new(p, p + a, p + b)
}

fn soup(rng: &mut SmallRng) -> Vec<Triangle> {
    let n = rng.gen_range(1..120usize);
    (0..n).map(|_| triangle(rng)).collect()
}

/// Walks the tree, checking reachability, arity, containment, and that
/// every triangle is covered exactly once.
fn validate_structure(bvh: &WideBvh) -> Result<(), String> {
    let mut visited = vec![false; bvh.node_count()];
    let mut covered = vec![false; bvh.triangles().len()];
    let mut stack = vec![bvh.root()];
    while let Some(n) = stack.pop() {
        if visited[n as usize] {
            return Err(format!("node {n} reachable twice"));
        }
        visited[n as usize] = true;
        match &bvh.nodes()[n as usize] {
            WideNode::Internal { children } => {
                if children.is_empty() || children.len() > WIDE_ARITY {
                    return Err(format!("node {n} has {} children", children.len()));
                }
                for c in children {
                    if !c.aabb.contains_box(&bvh.nodes()[c.node as usize].aabb()) {
                        return Err(format!("child {} escapes stored bounds", c.node));
                    }
                    stack.push(c.node);
                }
            }
            WideNode::Leaf { first, count, aabb } => {
                for i in *first..*first + *count {
                    if covered[i as usize] {
                        return Err(format!("triangle {i} in two leaves"));
                    }
                    covered[i as usize] = true;
                    if !aabb.contains_box(&bvh.triangles()[i as usize].aabb()) {
                        return Err(format!("triangle {i} escapes leaf bounds"));
                    }
                }
            }
        }
    }
    if !visited.iter().all(|&v| v) {
        return Err("unreachable nodes".into());
    }
    if !covered.iter().all(|&c| c) {
        return Err("uncovered triangles".into());
    }
    Ok(())
}

#[test]
fn arbitrary_soups_build_valid_trees() {
    forall("arbitrary_soups_build_valid_trees", 64, |rng| {
        let bvh = WideBvh::build(soup(rng));
        if let Err(e) = validate_structure(&bvh) {
            panic!("{e}");
        }
    });
}

#[test]
fn bvh_intersect_matches_brute_force() {
    forall("bvh_intersect_matches_brute_force", 64, |rng| {
        let tris = soup(rng);
        let o = Vec3::new(coord(rng), coord(rng), coord(rng));
        let dir = loop {
            let d = Vec3::new(
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
                rng.gen_range(-1.0f32..1.0),
            );
            if d.x.abs() + d.y.abs() + d.z.abs() > 0.1 {
                break d;
            }
        };
        let ray = Ray::new(o, dir);
        let brute = tris
            .iter()
            .filter_map(|t| t.intersect(&ray))
            .fold(f32::INFINITY, f32::min);
        let bvh = WideBvh::build(tris);
        let hit = bvh.intersect(&ray);
        if brute.is_finite() {
            assert!(hit.is_hit(), "bvh missed a brute-force hit at t={brute}");
            assert!(
                (hit.t - brute).abs() < 1e-3 * brute.max(1.0),
                "bvh t={} brute t={}",
                hit.t,
                brute
            );
        } else {
            assert!(!hit.is_hit(), "bvh found a phantom hit at t={}", hit.t);
        }
    });
}

#[test]
fn depth_first_layout_is_compact_and_unique() {
    forall("depth_first_layout_is_compact_and_unique", 64, |rng| {
        let bvh = WideBvh::build(soup(rng));
        let image = MemoryImage::depth_first(&bvh);
        let mut addrs: Vec<u64> = (0..bvh.node_count() as u32)
            .map(|n| image.node_addr(n))
            .collect();
        addrs.sort_unstable();
        for (i, w) in addrs.windows(2).enumerate() {
            assert!(w[0] != w[1], "duplicate address for node pair at {i}");
        }
        assert_eq!(
            addrs[addrs.len() - 1] - addrs[0],
            (bvh.node_count() as u64 - 1) * NODE_SIZE_BYTES
        );
    });
}

#[test]
fn treelet_packed_layout_keeps_groups_in_slots() {
    forall("treelet_packed_layout_keeps_groups_in_slots", 64, |rng| {
        let bvh = WideBvh::build(soup(rng));
        // Trivial chunked grouping is enough to exercise the layout.
        let groups: Vec<Vec<u32>> = (0..bvh.node_count() as u32)
            .collect::<Vec<_>>()
            .chunks(8)
            .map(|c| c.to_vec())
            .collect();
        let image = MemoryImage::treelet_packed(&bvh, &groups, PackOptions::paper_default());
        for (g, members) in groups.iter().enumerate() {
            let (base, bytes) = image.group_extent(g as u32);
            assert_eq!(bytes, members.len() as u64 * NODE_SIZE_BYTES);
            for &m in members {
                let a = image.node_addr(m);
                assert!(a >= base && a < base + bytes);
            }
        }
    });
}

#[test]
fn leaf_capacity_is_always_respected() {
    forall("leaf_capacity_is_always_respected", 64, |rng| {
        let bvh = rt_bvh::WideBvhBuilder::new().max_leaf_tris(3).build(soup(rng));
        for node in bvh.nodes() {
            if let WideNode::Leaf { count, .. } = node {
                assert!(*count <= 3);
            }
        }
    });
}
