//! Property-based tests for BVH construction and memory layout.

use proptest::collection::vec;
use proptest::prelude::*;
use rt_bvh::{MemoryImage, PackOptions, WideBvh, WideNode, NODE_SIZE_BYTES, WIDE_ARITY};
use rt_geometry::{Ray, Triangle, Vec3};

fn coord() -> impl Strategy<Value = f32> {
    -50.0f32..50.0
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (
        coord(),
        coord(),
        coord(),
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
    )
        .prop_map(|(x, y, z, a, b, c, d, e, f)| {
            let p = Vec3::new(x, y, z);
            Triangle::new(p, p + Vec3::new(a, b, c), p + Vec3::new(d, e, f))
        })
}

fn soup() -> impl Strategy<Value = Vec<Triangle>> {
    vec(triangle(), 1..120)
}

/// Walks the tree, checking reachability, arity, containment, and that
/// every triangle is covered exactly once.
fn validate_structure(bvh: &WideBvh) -> Result<(), String> {
    let mut visited = vec![false; bvh.node_count()];
    let mut covered = vec![false; bvh.triangles().len()];
    let mut stack = vec![bvh.root()];
    while let Some(n) = stack.pop() {
        if visited[n as usize] {
            return Err(format!("node {n} reachable twice"));
        }
        visited[n as usize] = true;
        match &bvh.nodes()[n as usize] {
            WideNode::Internal { children } => {
                if children.is_empty() || children.len() > WIDE_ARITY {
                    return Err(format!("node {n} has {} children", children.len()));
                }
                for c in children {
                    if !c.aabb.contains_box(&bvh.nodes()[c.node as usize].aabb()) {
                        return Err(format!("child {} escapes stored bounds", c.node));
                    }
                    stack.push(c.node);
                }
            }
            WideNode::Leaf { first, count, aabb } => {
                for i in *first..*first + *count {
                    if covered[i as usize] {
                        return Err(format!("triangle {i} in two leaves"));
                    }
                    covered[i as usize] = true;
                    if !aabb.contains_box(&bvh.triangles()[i as usize].aabb()) {
                        return Err(format!("triangle {i} escapes leaf bounds"));
                    }
                }
            }
        }
    }
    if !visited.iter().all(|&v| v) {
        return Err("unreachable nodes".into());
    }
    if !covered.iter().all(|&c| c) {
        return Err("uncovered triangles".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_soups_build_valid_trees(tris in soup()) {
        let bvh = WideBvh::build(tris);
        if let Err(e) = validate_structure(&bvh) {
            prop_assert!(false, "{}", e);
        }
    }

    #[test]
    fn bvh_intersect_matches_brute_force(
        tris in soup(),
        ox in coord(), oy in coord(), oz in coord(),
        dx in -1.0f32..1.0, dy in -1.0f32..1.0, dz in -1.0f32..1.0,
    ) {
        prop_assume!(dx.abs() + dy.abs() + dz.abs() > 0.1);
        let ray = Ray::new(Vec3::new(ox, oy, oz), Vec3::new(dx, dy, dz));
        let brute = tris
            .iter()
            .filter_map(|t| t.intersect(&ray))
            .fold(f32::INFINITY, f32::min);
        let bvh = WideBvh::build(tris);
        let hit = bvh.intersect(&ray);
        if brute.is_finite() {
            prop_assert!(hit.is_hit(), "bvh missed a brute-force hit at t={brute}");
            prop_assert!((hit.t - brute).abs() < 1e-3 * brute.max(1.0),
                "bvh t={} brute t={}", hit.t, brute);
        } else {
            prop_assert!(!hit.is_hit(), "bvh found a phantom hit at t={}", hit.t);
        }
    }

    #[test]
    fn depth_first_layout_is_compact_and_unique(tris in soup()) {
        let bvh = WideBvh::build(tris);
        let image = MemoryImage::depth_first(&bvh);
        let mut addrs: Vec<u64> =
            (0..bvh.node_count() as u32).map(|n| image.node_addr(n)).collect();
        addrs.sort_unstable();
        for (i, w) in addrs.windows(2).enumerate() {
            prop_assert!(w[0] != w[1], "duplicate address for node pair at {i}");
        }
        prop_assert_eq!(
            addrs[addrs.len() - 1] - addrs[0],
            (bvh.node_count() as u64 - 1) * NODE_SIZE_BYTES
        );
    }

    #[test]
    fn treelet_packed_layout_keeps_groups_in_slots(tris in soup()) {
        let bvh = WideBvh::build(tris);
        // Trivial chunked grouping is enough to exercise the layout.
        let groups: Vec<Vec<u32>> = (0..bvh.node_count() as u32)
            .collect::<Vec<_>>()
            .chunks(8)
            .map(|c| c.to_vec())
            .collect();
        let image = MemoryImage::treelet_packed(&bvh, &groups, PackOptions::paper_default());
        for (g, members) in groups.iter().enumerate() {
            let (base, bytes) = image.group_extent(g as u32);
            prop_assert_eq!(bytes, members.len() as u64 * NODE_SIZE_BYTES);
            for &m in members {
                let a = image.node_addr(m);
                prop_assert!(a >= base && a < base + bytes);
            }
        }
    }

    #[test]
    fn leaf_capacity_is_always_respected(tris in soup()) {
        let bvh = rt_bvh::WideBvhBuilder::new().max_leaf_tris(3).build(tris);
        for node in bvh.nodes() {
            if let WideNode::Leaf { count, .. } = node {
                prop_assert!(*count <= 3);
            }
        }
    }
}
