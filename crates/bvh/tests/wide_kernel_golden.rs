//! Golden cross-check of the batched 6-wide AABB kernel against the
//! scalar slab test, over every scene of the evaluation suite.
//!
//! Traversal now tests child bounds through [`ChildSoa`]'s batched
//! [`WideAabb`] kernel instead of per-child [`Aabb::intersect`] calls.
//! The simulator's state digests are pinned to the scalar path's exact
//! float results, so the wide kernel must agree *bitwise* — same hit
//! verdict and identical entry-distance bits — on every lane of every
//! internal node, for rays representative of the real workloads. A
//! single ULP of drift here would silently shift traversal order and
//! break the golden digests two crates up.

use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId, Workload, WorkloadKind};

#[test]
fn wide_kernel_matches_scalar_bitwise_on_all_suite_scenes() {
    for id in SceneId::ALL {
        let scene = Scene::build_with_detail(id, 0.1);
        let rays = Workload::new(WorkloadKind::Primary, 8, 8).generate(&scene);
        let bvh = WideBvh::build(scene.mesh.into_triangles());
        let soa = bvh.children_soa();
        assert_eq!(soa.len(), bvh.node_count(), "{id}: SoA table incomplete");
        let mut lanes = 0u64;
        let mut hits = 0u64;
        for ray in &rays {
            let inv = ray.inv_direction();
            for record in soa {
                let wide = record.bounds.intersect(ray, inv);
                for lane in 0..record.len() {
                    lanes += 1;
                    let scalar = record.bounds.get(lane).intersect(ray, inv);
                    let wide_entry = wide.entry(lane);
                    match scalar {
                        Some(t) => {
                            hits += 1;
                            let w = wide_entry.unwrap_or_else(|| {
                                panic!("{id}: lane {lane} missed where scalar hit")
                            });
                            assert_eq!(
                                w.to_bits(),
                                t.to_bits(),
                                "{id}: lane {lane} entry distance drifted ({w} vs {t})"
                            );
                        }
                        None => assert!(
                            wide_entry.is_none(),
                            "{id}: lane {lane} hit where scalar missed"
                        ),
                    }
                }
            }
        }
        // The comparison must have had teeth: real lanes, and real hits
        // (primary rays into the scene always strike the upper tree).
        assert!(lanes > 0, "{id}: no lanes compared");
        assert!(hits > 0, "{id}: no lane ever hit");
    }
}
