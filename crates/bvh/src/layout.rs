//! BVH memory images: assignment of byte addresses to node records and
//! triangle data.
//!
//! The paper evaluates three layouts (§4.4, §6.4):
//!
//! - the **baseline** depth-first layout an ordinary builder emits,
//! - the **treelet-packed** layout where nodes of the same treelet are
//!   contiguous and treelet roots are aligned to the maximum treelet size
//!   (so the prefetcher can identify a treelet from the upper address
//!   bits), optionally with an extra inter-treelet stride for DRAM load
//!   balancing (Fig. 15),
//! - an unmodified layout plus a **node-to-treelet mapping table** (4 bytes
//!   per node) that the prefetcher must load before it can prefetch.

use crate::wide::{WideBvh, NODE_SIZE_BYTES, TRIANGLE_SIZE_BYTES};

/// Base address of the BVH node region.
pub const NODE_REGION_BASE: u64 = 0x1_0000_0000;

/// Which layout strategy produced a [`MemoryImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Nodes in depth-first order (baseline builder output).
    DepthFirst,
    /// Nodes grouped by treelet, roots aligned to the treelet slot size.
    TreeletPacked,
}

/// Options for the treelet-packed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackOptions {
    /// Slot reserved per treelet; treelet roots are `slot_bytes +
    /// extra_stride` apart. Must be a multiple of the 64-byte node size
    /// and at least one node.
    pub slot_bytes: u64,
    /// Extra padding between treelet slots (the paper's 256-byte DRAM
    /// load-balancing stride, Fig. 15).
    pub extra_stride: u64,
}

impl PackOptions {
    /// The paper's default: 512-byte slots, no extra stride.
    pub fn paper_default() -> Self {
        PackOptions {
            slot_bytes: 512,
            extra_stride: 0,
        }
    }

    /// Returns a copy with the given extra stride.
    pub fn with_extra_stride(mut self, stride: u64) -> Self {
        self.extra_stride = stride;
        self
    }
}

impl Default for PackOptions {
    fn default() -> Self {
        PackOptions::paper_default()
    }
}

/// Byte-address assignment for every node record and triangle of a BVH.
///
/// # Examples
///
/// ```
/// use rt_bvh::{MemoryImage, WideBvh};
/// use rt_geometry::{Triangle, Vec3};
///
/// let bvh = WideBvh::build(vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let image = MemoryImage::depth_first(&bvh);
/// assert_eq!(image.node_addr(0) % 64, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryImage {
    kind: LayoutKind,
    node_addrs: Vec<u64>,
    /// Per-group (treelet) base address and occupied bytes, for
    /// treelet-packed layouts.
    groups: Vec<(u64, u64)>,
    /// Treelet group of each node (treelet-packed layouts only).
    group_of: Vec<u32>,
    tri_base: u64,
    tri_count: u64,
    mapping_table_base: Option<u64>,
    node_count: usize,
    total_bytes: u64,
}

impl MemoryImage {
    /// Lays out nodes in depth-first order — the baseline layout.
    pub fn depth_first(bvh: &WideBvh) -> MemoryImage {
        let n = bvh.node_count();
        let mut node_addrs = vec![0u64; n];
        let mut next = NODE_REGION_BASE;
        let mut stack = vec![bvh.root()];
        let mut placed = 0usize;
        while let Some(id) = stack.pop() {
            node_addrs[id as usize] = next;
            next += NODE_SIZE_BYTES;
            placed += 1;
            // Push children in reverse so the first child is placed next
            // (true depth-first address order).
            let children: Vec<u32> = bvh.nodes()[id as usize].child_nodes().collect();
            for &c in children.iter().rev() {
                stack.push(c);
            }
        }
        debug_assert_eq!(placed, n, "depth-first layout missed nodes");
        Self::finish(
            LayoutKind::DepthFirst,
            node_addrs,
            Vec::new(),
            Vec::new(),
            next,
            bvh,
        )
    }

    /// Lays out nodes grouped by treelet.
    ///
    /// `treelets[g]` lists the node indices of treelet `g` in their
    /// within-treelet order (treelet root first; the paper forms treelets
    /// breadth-first so upper-level nodes come first). Each treelet
    /// occupies one fixed-size slot so treelet identity is visible in the
    /// upper address bits.
    ///
    /// # Panics
    ///
    /// Panics if a treelet exceeds its slot, if a node appears in more
    /// than one treelet, or if some node is in no treelet.
    pub fn treelet_packed(
        bvh: &WideBvh,
        treelets: &[Vec<u32>],
        options: PackOptions,
    ) -> MemoryImage {
        assert!(
            options.slot_bytes >= NODE_SIZE_BYTES
                && options.slot_bytes.is_multiple_of(NODE_SIZE_BYTES),
            "slot_bytes must be a positive multiple of the node size"
        );
        let n = bvh.node_count();
        let mut node_addrs = vec![u64::MAX; n];
        let mut group_of = vec![u32::MAX; n];
        let pitch = options.slot_bytes + options.extra_stride;
        let mut groups = Vec::with_capacity(treelets.len());
        for (g, members) in treelets.iter().enumerate() {
            let base = NODE_REGION_BASE + g as u64 * pitch;
            let bytes = members.len() as u64 * NODE_SIZE_BYTES;
            assert!(
                bytes <= options.slot_bytes,
                "treelet {g} occupies {bytes} bytes, over the {} byte slot",
                options.slot_bytes
            );
            for (i, &node) in members.iter().enumerate() {
                assert!(
                    node_addrs[node as usize] == u64::MAX,
                    "node {node} assigned to two treelets"
                );
                node_addrs[node as usize] = base + i as u64 * NODE_SIZE_BYTES;
                group_of[node as usize] = g as u32;
            }
            groups.push((base, bytes));
        }
        assert!(
            node_addrs.iter().all(|&a| a != u64::MAX),
            "some nodes are in no treelet"
        );
        let end = NODE_REGION_BASE + treelets.len() as u64 * pitch;
        Self::finish(
            LayoutKind::TreeletPacked,
            node_addrs,
            groups,
            group_of,
            end,
            bvh,
        )
    }

    fn finish(
        kind: LayoutKind,
        node_addrs: Vec<u64>,
        groups: Vec<(u64, u64)>,
        group_of: Vec<u32>,
        node_region_end: u64,
        bvh: &WideBvh,
    ) -> MemoryImage {
        let tri_base = align_up(node_region_end, 256);
        let tri_count = bvh.triangles().len() as u64;
        let total_bytes = tri_base + tri_count * TRIANGLE_SIZE_BYTES - NODE_REGION_BASE;
        MemoryImage {
            kind,
            node_count: node_addrs.len(),
            node_addrs,
            groups,
            group_of,
            tri_base,
            tri_count,
            mapping_table_base: None,
            total_bytes,
        }
    }

    /// Appends a node-to-treelet mapping table region (4 bytes per node,
    /// paper §4.4) after the triangle data. Requires treelet groups, i.e.
    /// makes sense on an image built with treelet knowledge — the paper's
    /// "unmodified BVH + mapping table" case is modeled as a depth-first
    /// image whose prefetcher consults this table.
    pub fn with_mapping_table(mut self) -> MemoryImage {
        let base = align_up(self.tri_base + self.tri_count * TRIANGLE_SIZE_BYTES, 256);
        self.mapping_table_base = Some(base);
        self.total_bytes = base + self.node_count as u64 * 4 - NODE_REGION_BASE;
        self
    }

    /// Which layout strategy built this image.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Byte address of a node record.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_addr(&self, node: u32) -> u64 {
        self.node_addrs[node as usize]
    }

    /// Byte address of a triangle's data.
    ///
    /// # Panics
    ///
    /// Panics if `tri` is out of range.
    pub fn triangle_addr(&self, tri: u32) -> u64 {
        assert!((tri as u64) < self.tri_count, "triangle {tri} out of range");
        self.tri_base + tri as u64 * TRIANGLE_SIZE_BYTES
    }

    /// Address of a node's 4-byte mapping-table entry, if the image has a
    /// mapping table.
    pub fn mapping_entry_addr(&self, node: u32) -> Option<u64> {
        self.mapping_table_base.map(|b| b + node as u64 * 4)
    }

    /// `true` if the image carries a mapping table region.
    pub fn has_mapping_table(&self) -> bool {
        self.mapping_table_base.is_some()
    }

    /// Number of treelet groups (zero for non-treelet layouts).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Base address and occupied bytes of treelet `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range (including on non-treelet
    /// layouts, which have no groups).
    pub fn group_extent(&self, group: u32) -> (u64, u64) {
        self.groups[group as usize]
    }

    /// Treelet group of `node` (treelet-packed layouts only).
    pub fn group_of(&self, node: u32) -> Option<u32> {
        self.group_of
            .get(node as usize)
            .copied()
            .filter(|_| self.kind == LayoutKind::TreeletPacked)
    }

    /// Number of node records in the image.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total footprint in bytes, from the node region base to the end of
    /// the last region.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WideBvh;
    use rt_geometry::{Triangle, Vec3};

    fn grid(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 12) as f32 * 2.0;
                let z = (i / 12) as f32 * 2.0;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                )
            })
            .collect()
    }

    /// Trivial treelet partition: consecutive runs of `k` nodes in index
    /// order (formation order doesn't matter for layout tests).
    fn chunked_treelets(bvh: &WideBvh, k: usize) -> Vec<Vec<u32>> {
        (0..bvh.node_count() as u32)
            .collect::<Vec<_>>()
            .chunks(k)
            .map(|c| c.to_vec())
            .collect()
    }

    #[test]
    fn depth_first_assigns_unique_aligned_addresses() {
        let bvh = WideBvh::build(grid(100));
        let img = MemoryImage::depth_first(&bvh);
        let mut addrs: Vec<u64> = (0..bvh.node_count() as u32)
            .map(|n| img.node_addr(n))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), bvh.node_count());
        assert!(addrs.iter().all(|a| a % NODE_SIZE_BYTES == 0));
        // Contiguous: first is the base, last is base + (n-1)*64.
        assert_eq!(addrs[0], NODE_REGION_BASE);
        assert_eq!(
            addrs[addrs.len() - 1],
            NODE_REGION_BASE + (bvh.node_count() as u64 - 1) * NODE_SIZE_BYTES
        );
    }

    #[test]
    fn depth_first_root_comes_first() {
        let bvh = WideBvh::build(grid(50));
        let img = MemoryImage::depth_first(&bvh);
        assert_eq!(img.node_addr(bvh.root()), NODE_REGION_BASE);
    }

    #[test]
    fn depth_first_first_child_adjacent_to_parent() {
        let bvh = WideBvh::build(grid(50));
        let img = MemoryImage::depth_first(&bvh);
        let first_child = bvh.nodes()[0].child_nodes().next().unwrap();
        assert_eq!(img.node_addr(first_child), NODE_REGION_BASE + 64);
    }

    #[test]
    fn treelet_packed_slots_are_aligned() {
        let bvh = WideBvh::build(grid(64));
        let treelets = chunked_treelets(&bvh, 8);
        let img = MemoryImage::treelet_packed(&bvh, &treelets, PackOptions::paper_default());
        for g in 0..img.group_count() as u32 {
            let (base, bytes) = img.group_extent(g);
            assert_eq!((base - NODE_REGION_BASE) % 512, 0);
            assert!(bytes <= 512);
        }
    }

    #[test]
    fn treelet_packed_members_contiguous_in_order() {
        let bvh = WideBvh::build(grid(64));
        let treelets = chunked_treelets(&bvh, 8);
        let img = MemoryImage::treelet_packed(&bvh, &treelets, PackOptions::paper_default());
        for (g, members) in treelets.iter().enumerate() {
            let (base, _) = img.group_extent(g as u32);
            for (i, &m) in members.iter().enumerate() {
                assert_eq!(img.node_addr(m), base + i as u64 * 64);
                assert_eq!(img.group_of(m), Some(g as u32));
            }
        }
    }

    #[test]
    fn extra_stride_spreads_roots() {
        let bvh = WideBvh::build(grid(64));
        let treelets = chunked_treelets(&bvh, 8);
        let plain = MemoryImage::treelet_packed(&bvh, &treelets, PackOptions::paper_default());
        let strided = MemoryImage::treelet_packed(
            &bvh,
            &treelets,
            PackOptions::paper_default().with_extra_stride(256),
        );
        let (b0, _) = plain.group_extent(0);
        let (b1, _) = plain.group_extent(1);
        assert_eq!(b1 - b0, 512);
        let (s0, _) = strided.group_extent(0);
        let (s1, _) = strided.group_extent(1);
        assert_eq!(s1 - s0, 768);
    }

    #[test]
    #[should_panic(expected = "over the")]
    fn oversized_treelet_panics() {
        let bvh = WideBvh::build(grid(64));
        let treelets = chunked_treelets(&bvh, 20); // 20 * 64 > 512
        let _ = MemoryImage::treelet_packed(&bvh, &treelets, PackOptions::paper_default());
    }

    #[test]
    #[should_panic(expected = "no treelet")]
    fn missing_node_panics() {
        let bvh = WideBvh::build(grid(64));
        let mut treelets = chunked_treelets(&bvh, 8);
        treelets.pop();
        let _ = MemoryImage::treelet_packed(&bvh, &treelets, PackOptions::paper_default());
    }

    #[test]
    fn triangle_region_follows_nodes() {
        let bvh = WideBvh::build(grid(30));
        let img = MemoryImage::depth_first(&bvh);
        let t0 = img.triangle_addr(0);
        assert!(t0 >= NODE_REGION_BASE + bvh.node_count() as u64 * 64);
        assert_eq!(img.triangle_addr(1) - t0, TRIANGLE_SIZE_BYTES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn triangle_addr_out_of_range_panics() {
        let bvh = WideBvh::build(grid(4));
        let img = MemoryImage::depth_first(&bvh);
        let _ = img.triangle_addr(4);
    }

    #[test]
    fn mapping_table_region() {
        let bvh = WideBvh::build(grid(30));
        let img = MemoryImage::depth_first(&bvh).with_mapping_table();
        assert!(img.has_mapping_table());
        let e0 = img.mapping_entry_addr(0).unwrap();
        let e1 = img.mapping_entry_addr(1).unwrap();
        assert_eq!(e1 - e0, 4);
        // Table sits after the triangles.
        assert!(e0 >= img.triangle_addr((bvh.triangles().len() - 1) as u32));
        // Table adds ~1/16 of the node bytes to the footprint.
        let plain = MemoryImage::depth_first(&bvh);
        assert!(img.total_bytes() > plain.total_bytes());
    }

    #[test]
    fn group_of_is_none_for_depth_first() {
        let bvh = WideBvh::build(grid(10));
        let img = MemoryImage::depth_first(&bvh);
        assert_eq!(img.group_of(0), None);
    }
}
