//! The 6-wide BVH the RT unit traverses, collapsed from the binary SAH
//! build.
//!
//! Every node — internal or leaf — is one 64-byte record in GPU memory
//! (paper Fig. 6). Internal nodes hold up to six children, each with its
//! bounding box and a pointer; leaf nodes reference a contiguous run of
//! triangles in the primitive buffer.

use crate::binary::{build_binary, BinaryBvh};
use crate::soa::{build_soa_table, ChildHits, ChildSoa};
use rt_geometry::{Aabb, HitRecord, Ray, Triangle};

/// Maximum number of children of an internal node (the paper's 6-wide BVH).
pub const WIDE_ARITY: usize = 6;

/// Size of one BVH node record in bytes (paper Fig. 6).
pub const NODE_SIZE_BYTES: u64 = 64;

/// Bytes of primitive storage per triangle (three vertices, `3 × 3 × f32`,
/// padded to 48 bytes as in common GPU triangle buffers).
pub const TRIANGLE_SIZE_BYTES: u64 = 48;

/// Default maximum triangles per leaf.
pub const DEFAULT_MAX_LEAF_TRIS: u32 = 4;

/// Reference to one child of an internal node: its bounds plus the index of
/// the child node record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideChild {
    /// Bounding box of the child, stored in the parent for the ray-box test.
    pub aabb: Aabb,
    /// Index of the child node in [`WideBvh::nodes`].
    pub node: u32,
}

/// One 64-byte node of the wide BVH.
#[derive(Debug, Clone, PartialEq)]
pub enum WideNode {
    /// An internal node with 2..=6 children.
    Internal {
        /// The children, each with bounds and a node pointer.
        children: Vec<WideChild>,
    },
    /// A leaf node referencing `count` triangles starting at `first` in
    /// [`WideBvh::triangles`].
    Leaf {
        /// Bounds of the leaf's triangles.
        aabb: Aabb,
        /// First triangle index.
        first: u32,
        /// Number of triangles (at least 1).
        count: u32,
    },
}

impl WideNode {
    /// `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, WideNode::Leaf { .. })
    }

    /// Bounds of the node.
    pub fn aabb(&self) -> Aabb {
        match self {
            WideNode::Internal { children } => {
                let mut b = Aabb::empty();
                for c in children {
                    b.grow_box(&c.aabb);
                }
                b
            }
            WideNode::Leaf { aabb, .. } => *aabb,
        }
    }

    /// Child node indices (empty for leaves).
    pub fn child_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        match self {
            WideNode::Internal { children } => children.as_slice(),
            WideNode::Leaf { .. } => &[],
        }
        .iter()
        .map(|c| c.node)
    }
}

/// Builder with the tunable construction parameters.
///
/// # Examples
///
/// ```
/// use rt_bvh::WideBvhBuilder;
/// use rt_geometry::{Triangle, Vec3};
///
/// let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
/// let bvh = WideBvhBuilder::new().max_leaf_tris(2).build(tris);
/// assert_eq!(bvh.triangles().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WideBvhBuilder {
    max_leaf_tris: u32,
}

impl WideBvhBuilder {
    /// Creates a builder with the paper-default parameters.
    pub fn new() -> Self {
        WideBvhBuilder {
            max_leaf_tris: DEFAULT_MAX_LEAF_TRIS,
        }
    }

    /// Sets the maximum number of triangles per leaf (clamped to ≥ 1).
    pub fn max_leaf_tris(mut self, n: u32) -> Self {
        self.max_leaf_tris = n.max(1);
        self
    }

    /// Builds the wide BVH, consuming and reordering `triangles`.
    ///
    /// # Panics
    ///
    /// Panics if `triangles` is empty.
    pub fn build(&self, triangles: Vec<Triangle>) -> WideBvh {
        let binary = build_binary(&triangles, self.max_leaf_tris);
        collapse(binary, triangles)
    }
}

impl Default for WideBvhBuilder {
    fn default() -> Self {
        WideBvhBuilder::new()
    }
}

/// A 6-wide bounding volume hierarchy over a triangle soup.
///
/// Node 0 is the root. Triangles are reordered during construction so that
/// every leaf references a contiguous range.
#[derive(Debug, Clone)]
pub struct WideBvh {
    nodes: Vec<WideNode>,
    triangles: Vec<Triangle>,
    /// SoA mirror of every node's child list (see [`ChildSoa`]); what
    /// the traversal hot loops read instead of the per-node `Vec`s.
    children_soa: Vec<ChildSoa>,
}

impl WideBvh {
    /// Builds a BVH with default parameters (binned SAH, 6-wide collapse,
    /// ≤ 4 triangles per leaf).
    ///
    /// # Panics
    ///
    /// Panics if `triangles` is empty.
    pub fn build(triangles: Vec<Triangle>) -> WideBvh {
        WideBvhBuilder::new().build(triangles)
    }

    /// Reassembles a `WideBvh` from a decoded node array and triangle
    /// buffer, re-deriving the [`ChildSoa`] mirror. This is the codec's
    /// back door: serialized artifacts store only nodes and triangles
    /// (the mirror is a pure function of the nodes), and every
    /// structural invariant the builder guarantees is re-checked here so
    /// a checksum-valid but semantically bogus payload can never
    /// construct a tree that panics later in traversal.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant:
    /// empty arrays, out-of-range child or triangle references, arity
    /// violations, unreachable or multiply-referenced nodes, or
    /// triangles not covered by exactly one leaf.
    pub(crate) fn from_parts(
        nodes: Vec<WideNode>,
        triangles: Vec<Triangle>,
    ) -> Result<WideBvh, String> {
        if nodes.is_empty() {
            return Err("node array is empty".to_string());
        }
        if triangles.is_empty() {
            return Err("triangle buffer is empty".to_string());
        }
        let n = nodes.len();
        let mut visited = vec![false; n];
        let mut tri_covered = vec![false; triangles.len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        while let Some(i) = stack.pop() {
            match &nodes[i] {
                WideNode::Internal { children } => {
                    if children.is_empty() || children.len() > WIDE_ARITY {
                        return Err(format!(
                            "node {i} has {} children (arity 1..={WIDE_ARITY})",
                            children.len()
                        ));
                    }
                    for c in children {
                        let child = c.node as usize;
                        if child >= n {
                            return Err(format!("node {i} references child {child} of {n}"));
                        }
                        if visited[child] {
                            return Err(format!(
                                "node {child} referenced more than once (shared or cyclic)"
                            ));
                        }
                        visited[child] = true;
                        stack.push(child);
                    }
                }
                WideNode::Leaf { first, count, .. } => {
                    if *count == 0 {
                        return Err(format!("leaf {i} is empty"));
                    }
                    let first = *first as usize;
                    let count = *count as usize;
                    if first + count > triangles.len() {
                        return Err(format!(
                            "leaf {i} covers triangles {first}..{} of {}",
                            first + count,
                            triangles.len()
                        ));
                    }
                    for covered in &mut tri_covered[first..first + count] {
                        if *covered {
                            return Err(format!("leaf {i} re-covers a triangle"));
                        }
                        *covered = true;
                    }
                }
            }
        }
        if let Some(orphan) = visited.iter().position(|&r| !r) {
            return Err(format!("node {orphan} is unreachable from the root"));
        }
        if let Some(tri) = tri_covered.iter().position(|&c| !c) {
            return Err(format!("triangle {tri} not covered by any leaf"));
        }
        let children_soa = build_soa_table(&nodes);
        Ok(WideBvh {
            nodes,
            triangles,
            children_soa,
        })
    }

    /// The node array; index 0 is the root.
    pub fn nodes(&self) -> &[WideNode] {
        &self.nodes
    }

    /// The reordered triangles.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// The node-indexed SoA mirror of every node's child bounds and
    /// pointers (empty records for leaves). Kept in lockstep with
    /// [`WideBvh::nodes`] by construction and [`WideBvh::refit`].
    pub fn children_soa(&self) -> &[ChildSoa] {
        &self.children_soa
    }

    /// Number of nodes (internal + leaf records).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the root node (always 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// Bounds of the whole scene.
    pub fn root_aabb(&self) -> Aabb {
        self.nodes[0].aabb()
    }

    /// Maximum depth of the tree (root = depth 1, matching how the paper's
    /// Table 2 counts a 7-level WKND tree).
    pub fn depth(&self) -> u32 {
        let mut max_depth = 0;
        let mut stack = vec![(0u32, 1u32)];
        while let Some((n, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            for c in self.nodes[n as usize].child_nodes() {
                stack.push((c, d + 1));
            }
        }
        max_depth
    }

    /// Total bytes of node records.
    pub fn node_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_SIZE_BYTES
    }

    /// Total bytes of triangle storage.
    pub fn triangle_bytes(&self) -> u64 {
        self.triangles.len() as u64 * TRIANGLE_SIZE_BYTES
    }

    /// Refits every node's bounds bottom-up after the triangles deformed
    /// **without changing topology** — the standard technique for
    /// animated scenes (rebuild-free frame updates). The triangle at
    /// index `i` of `triangles` replaces the current triangle `i` (the
    /// *reordered* order exposed by [`WideBvh::triangles`]).
    ///
    /// # Panics
    ///
    /// Panics if `triangles.len()` differs from the current count.
    pub fn refit(&mut self, triangles: Vec<Triangle>) {
        assert_eq!(
            triangles.len(),
            self.triangles.len(),
            "refit requires the same triangle count (same topology)"
        );
        self.triangles = triangles;
        // Post-order: children before parents. An explicit stack with an
        // expansion flag avoids recursion on deep trees.
        let mut new_bounds: Vec<Aabb> = vec![Aabb::empty(); self.nodes.len()];
        let mut stack: Vec<(u32, bool)> = vec![(self.root(), false)];
        while let Some((node, expanded)) = stack.pop() {
            match &self.nodes[node as usize] {
                WideNode::Leaf { first, count, .. } => {
                    let mut b = Aabb::empty();
                    for i in *first..*first + *count {
                        b.grow_box(&self.triangles[i as usize].aabb());
                    }
                    new_bounds[node as usize] = b;
                }
                WideNode::Internal { children } => {
                    if expanded {
                        let mut b = Aabb::empty();
                        for c in children {
                            b.grow_box(&new_bounds[c.node as usize]);
                        }
                        new_bounds[node as usize] = b;
                    } else {
                        stack.push((node, true));
                        for c in children {
                            stack.push((c.node, false));
                        }
                    }
                }
            }
        }
        // Write the refitted bounds back into the nodes, then rebuild
        // the SoA mirror so traversal sees the new child bounds.
        for idx in 0..self.nodes.len() {
            match &mut self.nodes[idx] {
                WideNode::Leaf { aabb, .. } => *aabb = new_bounds[idx],
                WideNode::Internal { children } => {
                    for c in children.iter_mut() {
                        c.aabb = new_bounds[c.node as usize];
                    }
                }
            }
        }
        self.children_soa = build_soa_table(&self.nodes);
    }

    /// Closest-hit reference traversal on the CPU.
    ///
    /// This is the *functional* ground truth used to validate the RT-unit
    /// traversal algorithms and to spawn bounce rays; it performs ordinary
    /// single-stack DFS with early ray termination.
    pub fn intersect(&self, ray: &Ray) -> HitRecord {
        let mut ray = *ray;
        let inv = ray.inv_direction();
        let mut hit = HitRecord::new();
        let mut stack: Vec<(u32, f32)> = Vec::with_capacity(64);
        if self.root_aabb().intersect(&ray, inv).is_some() {
            stack.push((0, ray.t_min));
        }
        while let Some((node, entry)) = stack.pop() {
            if entry > ray.t_max {
                continue; // early ray termination
            }
            match &self.nodes[node as usize] {
                WideNode::Internal { .. } => {
                    // Batched test of all children at once, then push
                    // far-to-near so the nearest is popped first.
                    let mut hits = ChildHits::new();
                    self.children_soa[node as usize].intersect_into(&ray, inv, &mut hits);
                    hits.sort_far_first();
                    stack.extend_from_slice(hits.as_slice());
                }
                WideNode::Leaf { first, count, .. } => {
                    for i in *first..*first + *count {
                        if let Some(t) = self.triangles[i as usize].intersect(&ray) {
                            if hit.update(t, i) {
                                ray.t_max = t;
                            }
                        }
                    }
                }
            }
        }
        hit
    }
}

/// Collapses a binary BVH into a 6-wide BVH.
///
/// Starting from the binary root, each wide node adopts up to six binary
/// subtree roots by repeatedly replacing the adopted internal subtree with
/// the largest surface area by its two children — the standard BVH2→BVH*N*
/// collapse that wide-BVH papers (e.g. Ylitie et al. 2017) use.
fn collapse(binary: BinaryBvh, triangles: Vec<Triangle>) -> WideBvh {
    // Apply the triangle permutation so leaves reference contiguous runs.
    let reordered: Vec<Triangle> = binary
        .order
        .iter()
        .map(|&i| triangles[i as usize])
        .collect();

    let mut nodes: Vec<WideNode> = Vec::new();
    if binary.nodes[0].is_leaf() {
        let b = &binary.nodes[0];
        nodes.push(WideNode::Leaf {
            aabb: b.aabb,
            first: b.first,
            count: b.count,
        });
        let children_soa = build_soa_table(&nodes);
        return WideBvh {
            nodes,
            triangles: reordered,
            children_soa,
        };
    }

    // Reserve the wide root, then expand breadth-first. Each work item is
    // (wide node index, binary node index of an internal node).
    nodes.push(WideNode::Internal {
        children: Vec::new(),
    });
    let mut work = vec![(0u32, 0u32)];
    while let Some((wide_idx, bin_idx)) = work.pop() {
        // Adopt up to WIDE_ARITY binary subtree roots.
        let bn = &binary.nodes[bin_idx as usize];
        let mut adopted: Vec<u32> = vec![bn.left, bn.right];
        loop {
            if adopted.len() >= WIDE_ARITY {
                break;
            }
            // Expand the internal adopted subtree with the largest area.
            let candidate = adopted
                .iter()
                .enumerate()
                .filter(|(_, &b)| !binary.nodes[b as usize].is_leaf())
                .max_by(|a, b| {
                    let sa = binary.nodes[*a.1 as usize].aabb.surface_area();
                    let sb = binary.nodes[*b.1 as usize].aabb.surface_area();
                    sa.total_cmp(&sb)
                })
                .map(|(i, _)| i);
            match candidate {
                Some(i) => {
                    let b = adopted.swap_remove(i);
                    let bn = &binary.nodes[b as usize];
                    adopted.push(bn.left);
                    adopted.push(bn.right);
                }
                None => break, // everything adopted is a leaf
            }
        }
        // Materialize each adopted subtree as a wide child node.
        let mut children = Vec::with_capacity(adopted.len());
        for b in adopted {
            let bn = &binary.nodes[b as usize];
            let child_idx = nodes.len() as u32;
            if bn.is_leaf() {
                nodes.push(WideNode::Leaf {
                    aabb: bn.aabb,
                    first: bn.first,
                    count: bn.count,
                });
            } else {
                nodes.push(WideNode::Internal {
                    children: Vec::new(),
                });
                work.push((child_idx, b));
            }
            children.push(WideChild {
                aabb: bn.aabb,
                node: child_idx,
            });
        }
        nodes[wide_idx as usize] = WideNode::Internal { children };
    }
    let children_soa = build_soa_table(&nodes);
    WideBvh {
        nodes,
        triangles: reordered,
        children_soa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::Vec3;

    fn grid(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 2.0;
                let z = (i / 16) as f32 * 2.0;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z + 1.0),
                )
            })
            .collect()
    }

    fn validate(bvh: &WideBvh) {
        let mut visited = vec![false; bvh.node_count()];
        let mut covered = vec![false; bvh.triangles().len()];
        let mut stack = vec![0u32];
        assert_eq!(bvh.children_soa().len(), bvh.node_count());
        while let Some(n) = stack.pop() {
            assert!(!visited[n as usize], "node {n} reachable twice");
            visited[n as usize] = true;
            // The SoA mirror must agree with the node's own child list.
            let soa = &bvh.children_soa()[n as usize];
            match &bvh.nodes()[n as usize] {
                WideNode::Internal { children } => {
                    assert_eq!(soa.len(), children.len(), "SoA lane count desynced");
                    for (i, c) in children.iter().enumerate() {
                        assert_eq!(soa.bounds.get(i), c.aabb, "SoA bounds desynced");
                        assert_eq!(soa.nodes[i], c.node, "SoA pointer desynced");
                    }
                    assert!(!children.is_empty());
                    assert!(children.len() <= WIDE_ARITY);
                    for c in children {
                        // The stored child bounds must contain the child's
                        // own bounds.
                        assert!(c.aabb.contains_box(&bvh.nodes()[c.node as usize].aabb()));
                        stack.push(c.node);
                    }
                }
                WideNode::Leaf { first, count, aabb } => {
                    assert!(soa.is_empty(), "leaf {n} has SoA children");
                    assert!(*count >= 1);
                    for i in *first..*first + *count {
                        assert!(!covered[i as usize], "triangle {i} in two leaves");
                        covered[i as usize] = true;
                        assert!(aabb.contains_box(&bvh.triangles()[i as usize].aabb()));
                    }
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "unreachable nodes exist");
        assert!(
            covered.iter().all(|&c| c),
            "triangles not covered by leaves"
        );
    }

    #[test]
    fn single_triangle_tree() {
        let bvh = WideBvh::build(grid(1));
        assert_eq!(bvh.node_count(), 1);
        assert!(bvh.nodes()[0].is_leaf());
        assert_eq!(bvh.depth(), 1);
        validate(&bvh);
    }

    #[test]
    fn structure_is_valid_for_grids() {
        for n in [2, 5, 16, 100, 333] {
            validate(&WideBvh::build(grid(n)));
        }
    }

    #[test]
    fn arity_bound_holds() {
        let bvh = WideBvh::build(grid(500));
        for node in bvh.nodes() {
            if let WideNode::Internal { children } = node {
                assert!(children.len() <= WIDE_ARITY);
                assert!(children.len() >= 2);
            }
        }
    }

    #[test]
    fn depth_grows_with_size() {
        let small = WideBvh::build(grid(8));
        let large = WideBvh::build(grid(1000));
        assert!(large.depth() > small.depth());
        assert!(large.depth() >= 3);
    }

    #[test]
    fn wide_tree_is_shallower_than_leaf_count_suggests() {
        let bvh = WideBvh::build(grid(600));
        // 6-wide with 4-tri leaves: depth should be logarithmic, well under
        // a binary tree's depth.
        assert!(bvh.depth() <= 10, "depth {} too deep", bvh.depth());
    }

    #[test]
    fn intersect_matches_brute_force() {
        let tris = grid(64);
        let bvh = WideBvh::build(tris.clone());
        for i in 0..32 {
            let ox = (i % 8) as f32 * 3.5 + 0.3;
            let oz = (i / 8) as f32 * 2.1 + 0.2;
            let ray = Ray::new(Vec3::new(ox, 5.0, oz), Vec3::new(0.01, -1.0, 0.02));
            let hit = bvh.intersect(&ray);
            // Brute force over the *original* order.
            let mut best = f32::INFINITY;
            for t in &tris {
                if let Some(d) = t.intersect(&ray) {
                    best = best.min(d);
                }
            }
            if best.is_finite() {
                let t = hit.t;
                assert!((t - best).abs() < 1e-4, "ray {i}: bvh t={t} brute={best}");
            } else {
                assert!(!hit.is_hit(), "ray {i}: bvh found spurious hit");
            }
        }
    }

    #[test]
    fn miss_returns_miss() {
        let bvh = WideBvh::build(grid(16));
        let ray = Ray::new(Vec3::new(0.0, 10.0, 0.0), Vec3::Y);
        assert!(!bvh.intersect(&ray).is_hit());
    }

    #[test]
    fn byte_sizes() {
        let bvh = WideBvh::build(grid(100));
        assert_eq!(bvh.node_bytes(), bvh.node_count() as u64 * 64);
        assert_eq!(bvh.triangle_bytes(), 100 * 48);
    }

    #[test]
    fn refit_tracks_deformed_triangles() {
        let tris = grid(128);
        let mut bvh = WideBvh::build(tris);
        // Deform: translate everything and ripple the heights.
        let deformed: Vec<Triangle> = bvh
            .triangles()
            .iter()
            .map(|t| {
                let shift = |v: Vec3| Vec3::new(v.x + 3.0, v.y + (v.x * 0.7).sin(), v.z - 1.5);
                Triangle::new(shift(t.v0), shift(t.v1), shift(t.v2))
            })
            .collect();
        bvh.refit(deformed.clone());
        validate(&bvh);
        // Intersections against the refitted tree match brute force over
        // the deformed triangles.
        for i in 0..24 {
            let ox = (i % 6) as f32 * 5.0 + 1.0;
            let oz = (i / 6) as f32 * 7.0 - 1.0;
            let ray = Ray::new(Vec3::new(ox, 10.0, oz), Vec3::new(0.02, -1.0, 0.01));
            let hit = bvh.intersect(&ray);
            let brute = deformed
                .iter()
                .filter_map(|t| t.intersect(&ray))
                .fold(f32::INFINITY, f32::min);
            if brute.is_finite() {
                assert!(hit.is_hit(), "ray {i} missed after refit");
                assert!((hit.t - brute).abs() < 1e-4 * brute.max(1.0));
            } else {
                assert!(!hit.is_hit(), "ray {i} phantom hit after refit");
            }
        }
    }

    #[test]
    fn refit_identity_preserves_bounds() {
        let tris = grid(64);
        let mut bvh = WideBvh::build(tris);
        let before = bvh.root_aabb();
        let same = bvh.triangles().to_vec();
        bvh.refit(same);
        let after = bvh.root_aabb();
        assert_eq!(before.min, after.min);
        assert_eq!(before.max, after.max);
    }

    #[test]
    #[should_panic(expected = "same triangle count")]
    fn refit_with_wrong_count_panics() {
        let mut bvh = WideBvh::build(grid(8));
        bvh.refit(grid(9));
    }

    #[test]
    fn builder_respects_leaf_capacity() {
        let bvh = WideBvhBuilder::new().max_leaf_tris(1).build(grid(40));
        for node in bvh.nodes() {
            if let WideNode::Leaf { count, .. } = node {
                assert_eq!(*count, 1);
            }
        }
    }
}
