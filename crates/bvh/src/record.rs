//! The 64-byte on-"device" node record (paper Fig. 6).
//!
//! The paper keeps Embree's 64-byte compressed node and spends the two
//! unused bytes on six *treelet child bits*: bit *i* says whether child *i*
//! belongs to the same treelet as this node. This module provides a
//! concrete byte-exact encoding to demonstrate the claim that the bits fit
//! without growing the node, and to give the simulator a faithful node
//! footprint.
//!
//! Layout (64 bytes):
//!
//! | bytes  | field                                             |
//! |--------|---------------------------------------------------|
//! | 0..24  | node AABB (min, max as 6 × f32)                   |
//! | 24..48 | six child pointers (u32 node indices)             |
//! | 48..54 | per-child quantized bound hints (1 byte each)     |
//! | 54     | child count (low nibble) + leaf flag (bit 7)      |
//! | 55     | leaf triangle count                               |
//! | 56..60 | first-triangle index (u32, leaves only)           |
//! | 60..61 | child-is-leaf flags (6 bits)                      |
//! | 61..62 | **treelet child bits** (6 bits, the paper's addition) |
//! | 62..64 | spare                                             |

use rt_geometry::{Aabb, Vec3};

/// Size of an encoded node record.
pub const RECORD_BYTES: usize = 64;

/// Sentinel for unused child pointer slots.
const EMPTY_CHILD: u32 = u32::MAX;

/// Decoded form of a 64-byte node record.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Bounds of this node.
    pub aabb: Aabb,
    /// Child node indices (up to 6).
    pub children: Vec<u32>,
    /// For each child, whether it is a leaf record.
    pub child_is_leaf: Vec<bool>,
    /// The paper's treelet child bits: `true` means the child shares this
    /// node's treelet.
    pub treelet_bits: Vec<bool>,
    /// `true` if this record is itself a leaf.
    pub is_leaf: bool,
    /// First triangle index (leaves).
    pub first_tri: u32,
    /// Triangle count (leaves).
    pub tri_count: u8,
}

impl NodeRecord {
    /// Creates an internal-node record.
    ///
    /// # Panics
    ///
    /// Panics if more than six children are supplied or the metadata
    /// vectors disagree in length.
    pub fn internal(
        aabb: Aabb,
        children: Vec<u32>,
        child_is_leaf: Vec<bool>,
        treelet_bits: Vec<bool>,
    ) -> Self {
        assert!(children.len() <= 6, "a wide node has at most 6 children");
        assert_eq!(children.len(), child_is_leaf.len());
        assert_eq!(children.len(), treelet_bits.len());
        NodeRecord {
            aabb,
            children,
            child_is_leaf,
            treelet_bits,
            is_leaf: false,
            first_tri: 0,
            tri_count: 0,
        }
    }

    /// Creates a leaf record.
    ///
    /// # Panics
    ///
    /// Panics if `tri_count` is zero.
    pub fn leaf(aabb: Aabb, first_tri: u32, tri_count: u8) -> Self {
        assert!(tri_count > 0, "leaf records hold at least one triangle");
        NodeRecord {
            aabb,
            children: Vec::new(),
            child_is_leaf: Vec::new(),
            treelet_bits: Vec::new(),
            is_leaf: true,
            first_tri,
            tri_count,
        }
    }

    /// Encodes the record into its 64-byte memory form.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        let put_f32 = |b: &mut [u8; RECORD_BYTES], off: usize, v: f32| {
            b[off..off + 4].copy_from_slice(&v.to_le_bytes());
        };
        let put_u32 = |b: &mut [u8; RECORD_BYTES], off: usize, v: u32| {
            b[off..off + 4].copy_from_slice(&v.to_le_bytes());
        };
        for (i, v) in self
            .aabb
            .min
            .to_array()
            .into_iter()
            .chain(self.aabb.max.to_array())
            .enumerate()
        {
            put_f32(&mut b, i * 4, v);
        }
        for slot in 0..6 {
            let child = self.children.get(slot).copied().unwrap_or(EMPTY_CHILD);
            put_u32(&mut b, 24 + slot * 4, child);
        }
        b[54] = (self.children.len() as u8) | if self.is_leaf { 0x80 } else { 0 };
        b[55] = self.tri_count;
        put_u32(&mut b, 56, self.first_tri);
        let mut leaf_flags = 0u8;
        let mut treelet_bits = 0u8;
        for i in 0..self.children.len() {
            if self.child_is_leaf[i] {
                leaf_flags |= 1 << i;
            }
            if self.treelet_bits[i] {
                treelet_bits |= 1 << i;
            }
        }
        b[60] = leaf_flags;
        b[61] = treelet_bits;
        b
    }

    /// Decodes a record from its 64-byte memory form.
    pub fn decode(b: &[u8; RECORD_BYTES]) -> NodeRecord {
        let get_f32 = |off: usize| f32::from_le_bytes(b[off..off + 4].try_into().unwrap());
        let get_u32 = |off: usize| u32::from_le_bytes(b[off..off + 4].try_into().unwrap());
        let aabb = Aabb::new(
            Vec3::new(get_f32(0), get_f32(4), get_f32(8)),
            Vec3::new(get_f32(12), get_f32(16), get_f32(20)),
        );
        let count = (b[54] & 0x0f) as usize;
        let is_leaf = b[54] & 0x80 != 0;
        let children: Vec<u32> = (0..count).map(|i| get_u32(24 + i * 4)).collect();
        let child_is_leaf = (0..count).map(|i| b[60] & (1 << i) != 0).collect();
        let treelet_bits = (0..count).map(|i| b[61] & (1 << i) != 0).collect();
        NodeRecord {
            aabb,
            children,
            child_is_leaf,
            treelet_bits,
            is_leaf,
            first_tri: get_u32(56),
            tri_count: b[55],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aabb() -> Aabb {
        Aabb::new(Vec3::new(-1.0, -2.0, -3.0), Vec3::new(4.0, 5.0, 6.0))
    }

    #[test]
    fn internal_round_trip() {
        let rec = NodeRecord::internal(
            sample_aabb(),
            vec![10, 20, 30, 40],
            vec![false, true, false, true],
            vec![true, true, false, false],
        );
        let decoded = NodeRecord::decode(&rec.encode());
        assert_eq!(decoded, rec);
    }

    #[test]
    fn leaf_round_trip() {
        let rec = NodeRecord::leaf(sample_aabb(), 12345, 4);
        let decoded = NodeRecord::decode(&rec.encode());
        assert_eq!(decoded, rec);
        assert!(decoded.is_leaf);
    }

    #[test]
    fn six_children_fit() {
        let rec = NodeRecord::internal(
            sample_aabb(),
            (0..6).collect(),
            vec![true; 6],
            vec![false, true, false, true, false, true],
        );
        let decoded = NodeRecord::decode(&rec.encode());
        assert_eq!(decoded.children.len(), 6);
        assert_eq!(decoded.treelet_bits, rec.treelet_bits);
    }

    #[test]
    fn record_is_exactly_64_bytes() {
        let rec = NodeRecord::leaf(sample_aabb(), 0, 1);
        assert_eq!(rec.encode().len(), 64);
    }

    #[test]
    fn treelet_bits_live_in_previously_unused_byte() {
        // Encoding with and without treelet bits differs only in byte 61 —
        // the paper's claim that the bits fit in unused space.
        let without = NodeRecord::internal(
            sample_aabb(),
            vec![1, 2],
            vec![false, false],
            vec![false, false],
        );
        let with = NodeRecord::internal(
            sample_aabb(),
            vec![1, 2],
            vec![false, false],
            vec![true, true],
        );
        let (a, b) = (without.encode(), with.encode());
        for i in 0..64 {
            if i == 61 {
                assert_ne!(a[i], b[i]);
            } else {
                assert_eq!(a[i], b[i], "byte {i} changed unexpectedly");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn seven_children_panic() {
        let _ = NodeRecord::internal(
            sample_aabb(),
            (0..7).collect(),
            vec![false; 7],
            vec![false; 7],
        );
    }

    #[test]
    #[should_panic(expected = "at least one triangle")]
    fn empty_leaf_panics() {
        let _ = NodeRecord::leaf(sample_aabb(), 0, 0);
    }
}
