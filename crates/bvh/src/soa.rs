//! Structure-of-arrays mirror of each internal node's child list.
//!
//! [`WideNode::Internal`](crate::WideNode) keeps its children in a
//! heap-allocated `Vec<WideChild>` — convenient for construction and
//! inspection, but the traversal hot loop then chases a pointer per
//! node and tests six boxes through an array-of-structures layout. The
//! Arches `WideTreeletBVH::Node` exemplar stores `Data[WIDTH]` +
//! `AABB[WIDTH]` side by side instead; [`ChildSoa`] is that layout
//! here: one flat record per node holding the child bounds as a
//! [`WideAabb`] batch plus the child node indices, built once at
//! construction (and rebuilt on [`WideBvh::refit`](crate::WideBvh)) and
//! indexed directly by node id.
//!
//! The table is a *mirror*, not a replacement: `WideNode` remains the
//! source of truth, and `rt-bvh`'s validation tests assert the two stay
//! in lockstep. Traversal reads only the mirror.

use crate::wide::{WideChild, WideNode, WIDE_ARITY};
use rt_geometry::WideAabb;

/// One internal node's children in structure-of-arrays form: bounds as
/// a batched [`WideAabb`] (lane `i` = child `i`) plus the child node
/// indices. Leaf nodes get an empty record (zero live lanes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildSoa {
    /// Child bounding boxes, one lane per child, in child-list order.
    pub bounds: WideAabb,
    /// Child node indices; lanes `len()..` are `u32::MAX` padding.
    pub nodes: [u32; WIDE_ARITY],
}

impl ChildSoa {
    /// The record for a node with no children (leaves).
    pub fn empty() -> ChildSoa {
        ChildSoa {
            bounds: WideAabb::empty(),
            nodes: [u32::MAX; WIDE_ARITY],
        }
    }

    /// Packs an internal node's child list.
    ///
    /// # Panics
    ///
    /// Panics if `children` exceeds the wide arity.
    pub fn pack(children: &[WideChild]) -> ChildSoa {
        assert!(children.len() <= WIDE_ARITY, "child list exceeds arity");
        let mut soa = ChildSoa::empty();
        for (i, c) in children.iter().enumerate() {
            soa.bounds.set(i, &c.aabb);
            soa.nodes[i] = c.node;
        }
        soa.bounds.len = children.len() as u8;
        soa
    }

    /// Number of children in this record.
    #[inline]
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` for leaf records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }
}

/// Builds the node-indexed SoA table for a node array: entry `i`
/// mirrors node `i`'s children (empty for leaves).
pub fn build_soa_table(nodes: &[WideNode]) -> Vec<ChildSoa> {
    nodes
        .iter()
        .map(|n| match n {
            WideNode::Internal { children } => ChildSoa::pack(children),
            WideNode::Leaf { .. } => ChildSoa::empty(),
        })
        .collect()
}

/// Fixed-capacity list of `(child node, entry distance)` hits from one
/// batched child test — the traversal scratch that replaces a per-node
/// `Vec` allocation.
#[derive(Debug, Clone, Copy)]
pub struct ChildHits {
    items: [(u32, f32); WIDE_ARITY],
    len: usize,
}

impl ChildHits {
    /// An empty hit list.
    #[inline]
    pub fn new() -> ChildHits {
        ChildHits {
            items: [(0, 0.0); WIDE_ARITY],
            len: 0,
        }
    }

    /// The recorded hits, in their current order.
    #[inline]
    pub fn as_slice(&self) -> &[(u32, f32)] {
        &self.items[..self.len]
    }

    /// Appends a hit.
    #[inline]
    pub fn push(&mut self, node: u32, entry: f32) {
        self.items[self.len] = (node, entry);
        self.len += 1;
    }

    /// Number of recorded hits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no hits were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sorts the hits farthest-first (descending entry distance), so a
    /// LIFO stack pops the nearest child first.
    ///
    /// The insertion sort is *stable* — equal entry distances keep
    /// child-list order — and compares with `f32::total_cmp`, exactly
    /// like the `sort_by(|a, b| b.1.total_cmp(&a.1))` it replaces, so
    /// traversal order is bit-identical to the old `Vec`-based path.
    #[inline]
    pub fn sort_far_first(&mut self) {
        for i in 1..self.len {
            let x = self.items[i];
            let mut j = i;
            while j > 0
                && self.items[j - 1].1.total_cmp(&x.1) == std::cmp::Ordering::Less
            {
                self.items[j] = self.items[j - 1];
                j -= 1;
            }
            self.items[j] = x;
        }
    }
}

impl Default for ChildHits {
    fn default() -> Self {
        ChildHits::new()
    }
}

impl ChildSoa {
    /// Batched slab test of `ray` against every child, appending the
    /// hit lanes to `out` in child-list order (the same order the
    /// scalar `children.iter().filter_map(..)` loop produced).
    #[inline]
    pub fn intersect_into(&self, ray: &rt_geometry::Ray, inv_dir: rt_geometry::Vec3, out: &mut ChildHits) {
        let hits = self.bounds.intersect(ray, inv_dir);
        for i in 0..self.bounds.len as usize {
            if hits.mask & (1 << i) != 0 {
                out.push(self.nodes[i], hits.entries[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::{Aabb, Vec3};

    fn child(node: u32, lo: f32) -> WideChild {
        WideChild {
            aabb: Aabb::new(Vec3::splat(lo), Vec3::splat(lo + 1.0)),
            node,
        }
    }

    #[test]
    fn pack_round_trips_children() {
        let children = vec![child(3, 0.0), child(7, 2.0), child(9, -4.0)];
        let soa = ChildSoa::pack(&children);
        assert_eq!(soa.len(), 3);
        for (i, c) in children.iter().enumerate() {
            assert_eq!(soa.bounds.get(i), c.aabb);
            assert_eq!(soa.nodes[i], c.node);
        }
        // Padding lanes are inert.
        for i in children.len()..WIDE_ARITY {
            assert_eq!(soa.nodes[i], u32::MAX);
        }
    }

    #[test]
    fn empty_record_for_leaves() {
        let soa = ChildSoa::empty();
        assert!(soa.is_empty());
        assert_eq!(soa.len(), 0);
    }

    #[test]
    fn table_mirrors_node_kinds() {
        let nodes = vec![
            WideNode::Internal {
                children: vec![child(1, 0.0), child(2, 3.0)],
            },
            WideNode::Leaf {
                aabb: Aabb::new(Vec3::ZERO, Vec3::ONE),
                first: 0,
                count: 1,
            },
            WideNode::Leaf {
                aabb: Aabb::new(Vec3::splat(3.0), Vec3::splat(4.0)),
                first: 1,
                count: 2,
            },
        ];
        let table = build_soa_table(&nodes);
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].len(), 2);
        assert_eq!(table[0].nodes[0], 1);
        assert_eq!(table[0].nodes[1], 2);
        assert!(table[1].is_empty());
        assert!(table[2].is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds arity")]
    fn pack_rejects_oversized_lists() {
        let children: Vec<WideChild> = (0..WIDE_ARITY as u32 + 1).map(|i| child(i, 0.0)).collect();
        let _ = ChildSoa::pack(&children);
    }
}
