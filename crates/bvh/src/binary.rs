//! Binary BVH construction with binned SAH.
//!
//! The binary tree is an intermediate: [`crate::WideBvh`] collapses it into
//! the 6-wide tree the paper's RT unit traverses. The binned surface area
//! heuristic follows the standard construction (Wald 2007) that Embree's
//! default builder is also based on.

use rt_geometry::{Aabb, Triangle, Vec3};

/// Number of SAH bins per axis.
const BIN_COUNT: usize = 16;

/// A node of the intermediate binary BVH.
#[derive(Debug, Clone)]
pub(crate) struct BinaryNode {
    /// Bounds of everything below this node.
    pub aabb: Aabb,
    /// Index of the left child; the right child is `left + 1` is *not*
    /// guaranteed, so both are stored.
    pub left: u32,
    /// Index of the right child.
    pub right: u32,
    /// First triangle (into the reordered index list) if this is a leaf.
    pub first: u32,
    /// Number of triangles; zero for internal nodes.
    pub count: u32,
}

impl BinaryNode {
    pub fn is_leaf(&self) -> bool {
        self.count > 0
    }
}

/// The intermediate binary BVH: nodes plus the triangle order produced by
/// recursive partitioning.
#[derive(Debug, Clone)]
pub(crate) struct BinaryBvh {
    pub nodes: Vec<BinaryNode>,
    /// Permutation mapping new triangle positions to original indices.
    pub order: Vec<u32>,
}

/// Builds a binary BVH over `triangles` with at most `max_leaf_tris`
/// triangles per leaf.
pub(crate) fn build_binary(triangles: &[Triangle], max_leaf_tris: u32) -> BinaryBvh {
    assert!(
        !triangles.is_empty(),
        "cannot build a BVH over zero triangles"
    );
    let mut order: Vec<u32> = (0..triangles.len() as u32).collect();
    let prim_aabbs: Vec<Aabb> = triangles.iter().map(Triangle::aabb).collect();
    let centroids: Vec<Vec3> = triangles.iter().map(Triangle::centroid).collect();

    let mut nodes = Vec::with_capacity(2 * triangles.len());
    nodes.push(BinaryNode {
        aabb: Aabb::empty(),
        left: 0,
        right: 0,
        first: 0,
        count: 0,
    });
    let mut stack = vec![(0usize, 0usize, triangles.len())];
    while let Some((node_idx, begin, end)) = stack.pop() {
        let mut bounds = Aabb::empty();
        let mut centroid_bounds = Aabb::empty();
        for &t in &order[begin..end] {
            bounds.grow_box(&prim_aabbs[t as usize]);
            centroid_bounds.grow_point(centroids[t as usize]);
        }
        nodes[node_idx].aabb = bounds;
        let count = end - begin;
        let split = if count <= max_leaf_tris as usize {
            None
        } else {
            find_binned_split(
                &order[begin..end],
                &prim_aabbs,
                &centroids,
                &centroid_bounds,
            )
            .or_else(|| Some(Split::median(count)))
        };
        // Even when SAH would keep the range together, ranges larger than
        // the leaf capacity must split (fall back to a median split).
        match split {
            None => {
                nodes[node_idx].first = begin as u32;
                nodes[node_idx].count = count as u32;
            }
            Some(split) => {
                let mid = match split.axis {
                    Some(axis) => {
                        let pivot = split.position;
                        partition(&mut order[begin..end], |&t| {
                            centroids[t as usize][axis] < pivot
                        }) + begin
                    }
                    None => begin + count / 2,
                };
                // Degenerate partitions (all centroids equal) fall back to
                // an even split so recursion always terminates.
                let mid = if mid == begin || mid == end {
                    begin + count / 2
                } else {
                    mid
                };
                let left = nodes.len();
                nodes.push(BinaryNode {
                    aabb: Aabb::empty(),
                    left: 0,
                    right: 0,
                    first: 0,
                    count: 0,
                });
                nodes.push(BinaryNode {
                    aabb: Aabb::empty(),
                    left: 0,
                    right: 0,
                    first: 0,
                    count: 0,
                });
                nodes[node_idx].left = left as u32;
                nodes[node_idx].right = (left + 1) as u32;
                stack.push((left, begin, mid));
                stack.push((left + 1, mid, end));
            }
        }
    }
    BinaryBvh { nodes, order }
}

/// A chosen split: axis + position, or `None` axis for a median fallback.
struct Split {
    axis: Option<usize>,
    position: f32,
}

impl Split {
    fn median(_count: usize) -> Split {
        Split {
            axis: None,
            position: 0.0,
        }
    }
}

/// Finds the best binned SAH split of `prims`, or `None` if no split is
/// cheaper than keeping the range together (callers may still force one).
fn find_binned_split(
    prims: &[u32],
    prim_aabbs: &[Aabb],
    centroids: &[Vec3],
    centroid_bounds: &Aabb,
) -> Option<Split> {
    let extent = centroid_bounds.extent();
    let axis = extent.largest_axis();
    if extent[axis] < 1e-12 {
        return None; // all centroids coincide
    }
    let k = BIN_COUNT as f32 / extent[axis];
    let min = centroid_bounds.min[axis];
    let bin_of = |t: u32| -> usize {
        (((centroids[t as usize][axis] - min) * k) as usize).min(BIN_COUNT - 1)
    };

    let mut bin_bounds = [Aabb::empty(); BIN_COUNT];
    let mut bin_counts = [0usize; BIN_COUNT];
    for &t in prims {
        let b = bin_of(t);
        bin_bounds[b].grow_box(&prim_aabbs[t as usize]);
        bin_counts[b] += 1;
    }

    // Sweep from the right to accumulate suffix areas, then from the left
    // picking the best SAH cost.
    let mut right_area = [0.0f32; BIN_COUNT];
    let mut right_count = [0usize; BIN_COUNT];
    let mut acc = Aabb::empty();
    let mut cnt = 0;
    for i in (1..BIN_COUNT).rev() {
        acc.grow_box(&bin_bounds[i]);
        cnt += bin_counts[i];
        right_area[i] = acc.surface_area();
        right_count[i] = cnt;
    }
    let mut best: Option<(f32, usize)> = None;
    let mut left_acc = Aabb::empty();
    let mut left_count = 0usize;
    for i in 0..BIN_COUNT - 1 {
        left_acc.grow_box(&bin_bounds[i]);
        left_count += bin_counts[i];
        if left_count == 0 || right_count[i + 1] == 0 {
            continue;
        }
        let cost = left_acc.surface_area() * left_count as f32
            + right_area[i + 1] * right_count[i + 1] as f32;
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, i));
        }
    }
    best.map(|(_, i)| Split {
        axis: Some(axis),
        position: min + (i + 1) as f32 / k,
    })
}

/// Partitions `slice` so that elements satisfying `pred` come first;
/// returns the number of such elements.
fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut i = 0;
    for j in 0..slice.len() {
        if pred(&slice[j]) {
            slice.swap(i, j);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_triangles(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32;
                let z = (i / 10) as f32;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 0.5, 0.0, z),
                    Vec3::new(x, 0.5, z),
                )
            })
            .collect()
    }

    fn validate(bvh: &BinaryBvh, tris: &[Triangle]) {
        // Every triangle appears exactly once in the order permutation.
        let mut seen = vec![false; tris.len()];
        for &t in &bvh.order {
            assert!(!seen[t as usize], "triangle {t} referenced twice");
            seen[t as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Node bounds contain their children / triangles.
        for node in &bvh.nodes {
            if node.is_leaf() {
                for &t in &bvh.order[node.first as usize..(node.first + node.count) as usize] {
                    assert!(node.aabb.contains_box(&tris[t as usize].aabb()));
                }
            } else {
                assert!(node.aabb.contains_box(&bvh.nodes[node.left as usize].aabb));
                assert!(node.aabb.contains_box(&bvh.nodes[node.right as usize].aabb));
            }
        }
    }

    #[test]
    fn single_triangle_builds_leaf_root() {
        let tris = grid_triangles(1);
        let bvh = build_binary(&tris, 4);
        assert_eq!(bvh.nodes.len(), 1);
        assert!(bvh.nodes[0].is_leaf());
        validate(&bvh, &tris);
    }

    #[test]
    fn small_grid_is_valid() {
        let tris = grid_triangles(100);
        let bvh = build_binary(&tris, 4);
        validate(&bvh, &tris);
        // There must be internal structure, not one giant leaf.
        assert!(bvh.nodes.len() > 20);
    }

    #[test]
    fn leaf_capacity_respected() {
        let tris = grid_triangles(64);
        let bvh = build_binary(&tris, 2);
        for node in &bvh.nodes {
            if node.is_leaf() {
                assert!(node.count <= 2, "leaf holds {} triangles", node.count);
            }
        }
    }

    #[test]
    fn coincident_centroids_terminate() {
        // All triangles identical: centroid bounds are a point — builder
        // must fall back to median splits and terminate.
        let tri = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
        let tris = vec![tri; 33];
        let bvh = build_binary(&tris, 4);
        validate(&bvh, &tris);
    }

    #[test]
    #[should_panic(expected = "zero triangles")]
    fn empty_input_panics() {
        let _ = build_binary(&[], 4);
    }

    #[test]
    fn partition_moves_matching_first() {
        let mut v = vec![5, 1, 4, 2, 3];
        let n = partition(&mut v, |&x| x <= 2);
        assert_eq!(n, 2);
        assert!(v[..n].iter().all(|&x| x <= 2));
        assert!(v[n..].iter().all(|&x| x > 2));
    }
}
