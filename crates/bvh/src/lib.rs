//! Bounding volume hierarchy construction and memory layout for the
//! treelet-prefetching reproduction.
//!
//! This crate rebuilds the BVH substrate the paper relies on:
//!
//! - [`WideBvh`] / [`WideBvhBuilder`] — binned-SAH binary construction
//!   collapsed into the 6-wide tree the RT unit traverses,
//! - [`ChildSoa`] — the structure-of-arrays mirror of each internal
//!   node's child bounds + pointers that traversal's batched 6-wide
//!   slab test reads (the Arches `Data[WIDTH]` + `AABB[WIDTH]` layout),
//! - [`NodeRecord`] — the 64-byte node record with the paper's treelet
//!   child bits in the previously unused bytes (Fig. 6),
//! - [`MemoryImage`] — byte-address assignment for node records and
//!   triangle data in the baseline depth-first layout, the treelet-packed
//!   layout (with optional DRAM load-balancing stride, Fig. 15), and the
//!   node-to-treelet mapping-table alternative (§4.4),
//! - [`TreeStats`] — the statistics reported in the paper's Table 2.
//!
//! # Examples
//!
//! ```
//! use rt_bvh::{MemoryImage, TreeStats, WideBvh};
//! use rt_geometry::{Ray, Triangle, Vec3};
//!
//! let tris = vec![Triangle::new(
//!     Vec3::new(-1.0, -1.0, 3.0),
//!     Vec3::new(1.0, -1.0, 3.0),
//!     Vec3::new(0.0, 1.0, 3.0),
//! )];
//! let bvh = WideBvh::build(tris);
//! let hit = bvh.intersect(&Ray::new(Vec3::ZERO, Vec3::Z));
//! assert!(hit.is_hit());
//!
//! let stats = TreeStats::of(&bvh);
//! let image = MemoryImage::depth_first(&bvh);
//! assert_eq!(image.node_count(), stats.node_count);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binary;
mod codec;
mod layout;
mod record;
mod soa;
mod stats;
mod wide;

pub use codec::{
    decode_wide_bvh, encode_wide_bvh, ArtifactSection, BvhArtifact, BVH_ARTIFACT_MAGIC,
    BVH_ARTIFACT_VERSION,
};
pub use layout::{LayoutKind, MemoryImage, PackOptions, NODE_REGION_BASE};
pub use record::{NodeRecord, RECORD_BYTES};
pub use soa::{build_soa_table, ChildHits, ChildSoa};
pub use stats::TreeStats;
pub use wide::{
    WideBvh, WideBvhBuilder, WideChild, WideNode, DEFAULT_MAX_LEAF_TRIS, NODE_SIZE_BYTES,
    TRIANGLE_SIZE_BYTES, WIDE_ARITY,
};
