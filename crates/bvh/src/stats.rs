//! BVH statistics, used to reproduce the paper's Table 2.

use crate::wide::{WideBvh, WideNode, NODE_SIZE_BYTES, TRIANGLE_SIZE_BYTES};
use std::fmt;

/// Summary statistics of a wide BVH.
///
/// # Examples
///
/// ```
/// use rt_bvh::{TreeStats, WideBvh};
/// use rt_geometry::{Triangle, Vec3};
///
/// let bvh = WideBvh::build(vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
/// let stats = TreeStats::of(&bvh);
/// assert_eq!(stats.leaf_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Total node records (internal + leaf).
    pub node_count: usize,
    /// Internal node records.
    pub internal_count: usize,
    /// Leaf node records.
    pub leaf_count: usize,
    /// Triangles referenced by leaves.
    pub triangle_count: usize,
    /// Maximum depth (root = 1).
    pub max_depth: u32,
    /// Bytes of node records.
    pub node_bytes: u64,
    /// Bytes of triangle data.
    pub triangle_bytes: u64,
    /// Mean triangles per leaf.
    pub avg_leaf_tris: f64,
    /// Mean children per internal node.
    pub avg_arity: f64,
    /// Surface-area-heuristic cost of the tree: the expected number of
    /// node visits plus weighted triangle tests for a random ray, under
    /// the standard SAH model (conditional hit probability = child
    /// area / root area).
    pub sah_cost: f64,
}

impl TreeStats {
    /// Computes the statistics of `bvh`.
    pub fn of(bvh: &WideBvh) -> TreeStats {
        let mut internal_count = 0usize;
        let mut leaf_count = 0usize;
        let mut leaf_tris = 0u64;
        let mut child_total = 0u64;
        // SAH cost: expected visits of each node = its area / root area;
        // visiting an internal node costs one box test per child, a leaf
        // one test per triangle (unit costs).
        let root_area = bvh.root_aabb().surface_area().max(1e-12) as f64;
        let mut sah_cost = 0.0f64;
        for node in bvh.nodes() {
            let p = node.aabb().surface_area() as f64 / root_area;
            match node {
                WideNode::Internal { children } => {
                    internal_count += 1;
                    child_total += children.len() as u64;
                    sah_cost += p * children.len() as f64;
                }
                WideNode::Leaf { count, .. } => {
                    leaf_count += 1;
                    leaf_tris += *count as u64;
                    sah_cost += p * *count as f64;
                }
            }
        }
        TreeStats {
            node_count: bvh.node_count(),
            internal_count,
            leaf_count,
            triangle_count: bvh.triangles().len(),
            max_depth: bvh.depth(),
            node_bytes: bvh.node_count() as u64 * NODE_SIZE_BYTES,
            triangle_bytes: bvh.triangles().len() as u64 * TRIANGLE_SIZE_BYTES,
            avg_leaf_tris: if leaf_count > 0 {
                leaf_tris as f64 / leaf_count as f64
            } else {
                0.0
            },
            avg_arity: if internal_count > 0 {
                child_total as f64 / internal_count as f64
            } else {
                0.0
            },
            sah_cost,
        }
    }

    /// Total BVH footprint (nodes + triangles) in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.node_bytes + self.triangle_bytes
    }

    /// Total footprint in megabytes, as Table 2 reports tree sizes.
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for TreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} internal, {} leaf), depth {}, {:.2} MB, {:.2} tris/leaf",
            self.node_count,
            self.internal_count,
            self.leaf_count,
            self.max_depth,
            self.total_mb(),
            self.avg_leaf_tris
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_geometry::{Triangle, Vec3};

    fn grid(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32;
                let z = (i / 16) as f32;
                Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 0.5, 0.0, z),
                    Vec3::new(x, 0.5, z),
                )
            })
            .collect()
    }

    #[test]
    fn counts_are_consistent() {
        let bvh = WideBvh::build(grid(200));
        let s = TreeStats::of(&bvh);
        assert_eq!(s.node_count, s.internal_count + s.leaf_count);
        assert_eq!(s.triangle_count, 200);
        assert_eq!(s.node_bytes, s.node_count as u64 * 64);
        assert!(s.avg_leaf_tris > 0.0 && s.avg_leaf_tris <= 4.0);
        assert!(s.avg_arity >= 2.0 && s.avg_arity <= 6.0);
        assert_eq!(s.max_depth, bvh.depth());
    }

    #[test]
    fn sah_cost_is_positive_and_scale_sane() {
        let bvh = WideBvh::build(grid(200));
        let s = TreeStats::of(&bvh);
        assert!(s.sah_cost > 0.0);
        // A random ray hitting the root cannot expect to test fewer
        // primitives than one leaf's worth, nor more than every
        // primitive + every box test.
        assert!(s.sah_cost < (s.triangle_count as f64 + 6.0 * s.internal_count as f64));
    }

    #[test]
    fn sah_cost_prefers_good_trees() {
        // A clustered scene (two distant blobs) should cost much less
        // than testing all triangles: the SAH cost reflects culling.
        let mut tris = grid(100);
        let far: Vec<Triangle> = grid(100)
            .iter()
            .map(|t| {
                let shift = |v: Vec3| v + Vec3::new(10_000.0, 0.0, 0.0);
                Triangle::new(shift(t.v0), shift(t.v1), shift(t.v2))
            })
            .collect();
        tris.extend(far);
        let s = TreeStats::of(&WideBvh::build(tris));
        assert!(
            s.sah_cost < s.triangle_count as f64 / 2.0,
            "sah {} vs {} tris",
            s.sah_cost,
            s.triangle_count
        );
    }

    #[test]
    fn single_leaf_stats() {
        let bvh = WideBvh::build(grid(1));
        let s = TreeStats::of(&bvh);
        assert_eq!(s.internal_count, 0);
        assert_eq!(s.leaf_count, 1);
        assert_eq!(s.avg_arity, 0.0);
        assert_eq!(s.avg_leaf_tris, 1.0);
    }

    #[test]
    fn total_mb_matches_bytes() {
        let bvh = WideBvh::build(grid(50));
        let s = TreeStats::of(&bvh);
        assert!((s.total_mb() * 1024.0 * 1024.0 - s.total_bytes() as f64).abs() < 1.0);
    }

    #[test]
    fn display_mentions_depth() {
        let bvh = WideBvh::build(grid(50));
        let text = TreeStats::of(&bvh).to_string();
        assert!(text.contains("depth"));
    }
}
