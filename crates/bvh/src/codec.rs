//! `RTBVH01` — the versioned, checksummed artifact container for a
//! built [`WideBvh`].
//!
//! Building a BVH is the expensive half of preparing a benchmark: the
//! binned-SAH build plus 6-wide collapse dominates suite start-up, and
//! acceleration structures are built once and traversed millions of
//! times (the paper's BVHs reach 1.7 GB for exactly this reason). This
//! module serializes a finished tree so the preparation cache can skip
//! the build entirely on a repeat run.
//!
//! ## Container layout
//!
//! | field     | bytes | notes                                        |
//! |-----------|-------|----------------------------------------------|
//! | magic     | 7     | `RTBVH01`                                    |
//! | version   | 4     | [`BVH_ARTIFACT_VERSION`], little-endian      |
//! | identity  | 8     | caller-chosen cache key echoed into the file |
//! | bvh       | var   | nodes + triangles (see below)                |
//! | sections  | var   | tagged opaque blobs appended by higher layers|
//! | checksum  | 8     | FNV-1a 64 over everything above              |
//!
//! The node payload stores only the [`WideNode`] array and the
//! reordered triangle buffer; the [`ChildSoa`](crate::ChildSoa) mirror
//! is a pure function of the nodes and is rebuilt on decode, exactly as
//! [`WideBvh::refit`] rebuilds it — one less thing to corrupt, one less
//! format detail to version.
//!
//! Extra *sections* let downstream crates ride along in the same
//! artifact without `rt-bvh` knowing their types: the experiment
//! harness appends the generated workload rays and the default-budget
//! treelet assignment as opaque tagged byte blobs. Unknown tags are
//! preserved, so a reader older than a writer degrades gracefully.
//!
//! Decoding verifies magic, version, and checksum, then re-validates
//! every structural invariant through `WideBvh::from_parts` — a
//! checksum-valid but semantically bogus payload (a bug, not bit rot)
//! is a typed [`DecodeError`], never a tree that panics in traversal.
//! Cache layers treat *any* decode error as a miss and rebuild: the
//! same self-healing rule the rt-served store applies to its artifacts.

use crate::wide::{WideBvh, WideChild, WideNode, WIDE_ARITY};
use rt_geometry::{Aabb, Triangle, Vec3};
use rt_gpu_sim::{fnv1a64, ByteReader, ByteWriter, DecodeError};

/// Container magic: the codec name, doubling as the on-disk format id.
pub const BVH_ARTIFACT_MAGIC: [u8; 7] = *b"RTBVH01";

/// Container version. Bump on any layout change: a reader refuses
/// mismatched versions outright ([`DecodeError::UnsupportedVersion`]),
/// and cache layers fold the version into the content key so a bumped
/// binary simply repopulates alongside old entries.
pub const BVH_ARTIFACT_VERSION: u32 = 1;

/// Node tag bytes in the serialized node array.
const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;

/// One opaque tagged blob carried in a [`BvhArtifact`] alongside the
/// tree — rays, treelet assignments, whatever a higher layer needs to
/// make a cache hit skip *all* of preparation, not just the build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactSection {
    /// Caller-chosen tag (e.g. `*b"RAYS"` as a u32). Tags unknown to a
    /// reader are preserved, not rejected.
    pub tag: u32,
    /// The section payload, opaque to this crate.
    pub bytes: Vec<u8>,
}

/// A built [`WideBvh`] plus its identity and rider sections, ready to
/// serialize into the `RTBVH01` container or freshly decoded from one.
#[derive(Debug)]
pub struct BvhArtifact {
    /// The caller's content key for this artifact (a digest over the
    /// preparation inputs). Echoed into the file and checked on load,
    /// so a mis-filed artifact is detected even when its checksum is
    /// intact.
    pub identity: u64,
    /// The tree itself.
    pub bvh: WideBvh,
    /// Rider sections in append order.
    pub sections: Vec<ArtifactSection>,
}

impl BvhArtifact {
    /// Wraps a built tree with its content identity and no sections.
    pub fn new(identity: u64, bvh: WideBvh) -> BvhArtifact {
        BvhArtifact {
            identity,
            bvh,
            sections: Vec::new(),
        }
    }

    /// Appends a rider section.
    pub fn push_section(&mut self, tag: u32, bytes: Vec<u8>) {
        self.sections.push(ArtifactSection { tag, bytes });
    }

    /// The first section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.bytes.as_slice())
    }

    /// Serializes the artifact into its container bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&BVH_ARTIFACT_MAGIC);
        w.put_u32(BVH_ARTIFACT_VERSION);
        w.put_u64(self.identity);
        encode_wide_bvh(&self.bvh, &mut w);
        w.put_len(self.sections.len());
        for s in &self.sections {
            w.put_u32(s.tag);
            w.put_len(s.bytes.len());
            w.put_bytes(&s.bytes);
        }
        let checksum = fnv1a64(w.bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Decodes an `RTBVH01` container, verifying magic, version,
    /// checksum, and every structural invariant of the tree.
    ///
    /// # Errors
    ///
    /// Any corruption or format skew is a typed [`DecodeError`]: wrong
    /// magic, an unsupported version, truncation, trailing bytes, a
    /// checksum mismatch, or a payload that decodes but violates a tree
    /// invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<BvhArtifact, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_bytes(BVH_ARTIFACT_MAGIC.len())?;
        if magic != BVH_ARTIFACT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.take_u32()?;
        if version != BVH_ARTIFACT_VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version });
        }
        let identity = r.take_u64()?;
        let bvh = decode_wide_bvh(&mut r)?;
        let section_count = r.take_len(5)?;
        let mut sections = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            let tag = r.take_u32()?;
            let n = r.take_len(1)?;
            let bytes = r.take_bytes(n)?.to_vec();
            sections.push(ArtifactSection { tag, bytes });
        }
        let body_len = r.position();
        let found = r.take_u64()?;
        r.expect_end()?;
        let expected = fnv1a64(&bytes[..body_len]);
        if found != expected {
            return Err(DecodeError::ChecksumMismatch { expected, found });
        }
        Ok(BvhArtifact {
            identity,
            bvh,
            sections,
        })
    }
}

fn put_vec3(w: &mut ByteWriter, v: Vec3) {
    w.put_f32(v.x);
    w.put_f32(v.y);
    w.put_f32(v.z);
}

fn put_aabb(w: &mut ByteWriter, b: &Aabb) {
    put_vec3(w, b.min);
    put_vec3(w, b.max);
}

/// Appends a built tree's nodes and triangles to `w` (no container
/// framing — [`BvhArtifact::to_bytes`] is the framed front door).
///
/// The `ChildSoa` mirror is intentionally not written: it is derived
/// from the nodes on decode.
pub fn encode_wide_bvh(bvh: &WideBvh, w: &mut ByteWriter) {
    w.put_len(bvh.node_count());
    for node in bvh.nodes() {
        match node {
            WideNode::Leaf { aabb, first, count } => {
                w.put_u8(TAG_LEAF);
                put_aabb(w, aabb);
                w.put_u32(*first);
                w.put_u32(*count);
            }
            WideNode::Internal { children } => {
                w.put_u8(TAG_INTERNAL);
                w.put_u8(children.len() as u8);
                for c in children {
                    put_aabb(w, &c.aabb);
                    w.put_u32(c.node);
                }
            }
        }
    }
    w.put_len(bvh.triangles().len());
    for t in bvh.triangles() {
        put_vec3(w, t.v0);
        put_vec3(w, t.v1);
        put_vec3(w, t.v2);
    }
}

/// Reads a tree written by [`encode_wide_bvh`], rebuilding the SoA
/// mirror and re-validating every structural invariant.
///
/// # Errors
///
/// Truncation, an impossible child count, or any violated tree
/// invariant (out-of-range references, unreachable nodes, uncovered
/// triangles) — each as a typed [`DecodeError`].
pub fn decode_wide_bvh(r: &mut ByteReader<'_>) -> Result<WideBvh, DecodeError> {
    // A leaf record is the smallest node encoding: tag + AABB + 2×u32.
    let node_count = r.take_len(1 + 24 + 8)?;
    let mut nodes = Vec::with_capacity(node_count);
    // Each record is parsed from one contiguous slice — a single
    // bounds check per record (leaf: 32 bytes; internal: 28 per
    // child) instead of one per field, which matters at hundreds of
    // thousands of nodes per artifact.
    let f32_at = |chunk: &[u8], at: usize| {
        f32::from_le_bytes([chunk[at], chunk[at + 1], chunk[at + 2], chunk[at + 3]])
    };
    let u32_at = |chunk: &[u8], at: usize| {
        u32::from_le_bytes([chunk[at], chunk[at + 1], chunk[at + 2], chunk[at + 3]])
    };
    let aabb_at = |chunk: &[u8], at: usize| Aabb {
        min: Vec3::new(f32_at(chunk, at), f32_at(chunk, at + 4), f32_at(chunk, at + 8)),
        max: Vec3::new(
            f32_at(chunk, at + 12),
            f32_at(chunk, at + 16),
            f32_at(chunk, at + 20),
        ),
    };
    for i in 0..node_count {
        match r.take_u8()? {
            TAG_LEAF => {
                let rec = r.take_bytes(24 + 8)?;
                nodes.push(WideNode::Leaf {
                    aabb: aabb_at(rec, 0),
                    first: u32_at(rec, 24),
                    count: u32_at(rec, 28),
                });
            }
            TAG_INTERNAL => {
                let child_count = r.take_u8()? as usize;
                if child_count == 0 || child_count > WIDE_ARITY {
                    return Err(DecodeError::malformed(format!(
                        "node {i}: child count {child_count} outside 1..={WIDE_ARITY}"
                    )));
                }
                let rec = r.take_bytes(child_count * (24 + 4))?;
                let children = rec
                    .chunks_exact(24 + 4)
                    .map(|c| WideChild {
                        aabb: aabb_at(c, 0),
                        node: u32_at(c, 24),
                    })
                    .collect();
                nodes.push(WideNode::Internal { children });
            }
            tag => {
                return Err(DecodeError::malformed(format!(
                    "node {i}: unknown node tag {tag}"
                )));
            }
        }
    }
    let tri_count = r.take_len(36)?;
    // The triangle buffer is the bulk of the artifact (36 bytes each),
    // so it is decoded from one contiguous slice: a single bounds check
    // up front instead of nine checked reads per triangle — the
    // difference between a cache hit beating the build by 5× and
    // merely matching it on large scenes.
    let bytes = r.take_bytes(tri_count * 36)?;
    let mut triangles = Vec::with_capacity(tri_count);
    for chunk in bytes.chunks_exact(36) {
        let f = |at: usize| {
            f32::from_le_bytes([chunk[at], chunk[at + 1], chunk[at + 2], chunk[at + 3]])
        };
        triangles.push(Triangle {
            v0: Vec3::new(f(0), f(4), f(8)),
            v1: Vec3::new(f(12), f(16), f(20)),
            v2: Vec3::new(f(24), f(28), f(32)),
        });
    }
    WideBvh::from_parts(nodes, triangles).map_err(DecodeError::malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_rng::SmallRng;

    /// A random triangle soup: positions drawn from the rng, sized so
    /// the builder produces multi-level trees with mixed leaf runs.
    fn random_triangles(rng: &mut SmallRng, count: usize) -> Vec<Triangle> {
        let mut f = |scale: f32| {
            // Map the top 24 bits to [-scale, scale).
            let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            (u * 2.0 - 1.0) * scale
        };
        (0..count)
            .map(|_| {
                let base = Vec3::new(f(100.0), f(100.0), f(100.0));
                Triangle::new(
                    base,
                    base + Vec3::new(f(2.0), f(2.0), f(2.0)),
                    base + Vec3::new(f(2.0), f(2.0), f(2.0)),
                )
            })
            .collect()
    }

    fn assert_trees_equal(a: &WideBvh, b: &WideBvh) {
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.triangles(), b.triangles());
        assert_eq!(a.children_soa(), b.children_soa());
    }

    #[test]
    fn round_trips_randomized_trees() {
        let mut rng = SmallRng::seed_from_u64(0x5eed_b0b5);
        for &count in &[1usize, 2, 5, 17, 64, 200, 611] {
            let bvh = WideBvh::build(random_triangles(&mut rng, count));
            let artifact = BvhArtifact::new(0xfeed_cafe, bvh);
            let bytes = artifact.to_bytes();
            let decoded = BvhArtifact::from_bytes(&bytes).expect("round trip");
            assert_eq!(decoded.identity, 0xfeed_cafe);
            assert_trees_equal(&artifact.bvh, &decoded.bvh);
        }
    }

    #[test]
    fn round_trips_sections() {
        let mut rng = SmallRng::seed_from_u64(7);
        let bvh = WideBvh::build(random_triangles(&mut rng, 20));
        let mut artifact = BvhArtifact::new(1, bvh);
        artifact.push_section(u32::from_le_bytes(*b"RAYS"), vec![1, 2, 3]);
        artifact.push_section(u32::from_le_bytes(*b"TRLT"), vec![]);
        let decoded = BvhArtifact::from_bytes(&artifact.to_bytes()).expect("round trip");
        assert_eq!(decoded.sections, artifact.sections);
        assert_eq!(
            decoded.section(u32::from_le_bytes(*b"RAYS")),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(decoded.section(0xdead_beef), None);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut rng = SmallRng::seed_from_u64(42);
        let bvh = WideBvh::build(random_triangles(&mut rng, 30));
        let mut artifact = BvhArtifact::new(2, bvh);
        artifact.push_section(9, vec![5; 16]);
        let bytes = artifact.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                BvhArtifact::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_a_typed_error() {
        let mut rng = SmallRng::seed_from_u64(43);
        let bvh = WideBvh::build(random_triangles(&mut rng, 8));
        let bytes = BvhArtifact::new(3, bvh).to_bytes();
        // Flip one bit per byte position; the checksum (or an earlier
        // structural check) must catch every single one.
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(
                BvhArtifact::from_bytes(&corrupt).is_err(),
                "bit flip at byte {pos} must not decode"
            );
        }
    }

    #[test]
    fn refuses_bumped_version() {
        let mut rng = SmallRng::seed_from_u64(44);
        let bvh = WideBvh::build(random_triangles(&mut rng, 4));
        let mut bytes = BvhArtifact::new(4, bvh).to_bytes();
        // Patch the version field (right after the magic) and re-seal
        // the checksum so only the version check can object.
        let vpos = BVH_ARTIFACT_MAGIC.len();
        bytes[vpos..vpos + 4].copy_from_slice(&(BVH_ARTIFACT_VERSION + 1).to_le_bytes());
        let body = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body]);
        bytes[body..].copy_from_slice(&checksum.to_le_bytes());
        match BvhArtifact::from_bytes(&bytes) {
            Err(DecodeError::UnsupportedVersion { found }) => {
                assert_eq!(found, BVH_ARTIFACT_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn refuses_checksum_valid_but_bogus_structure() {
        // A payload whose checksum is fine but whose tree is nonsense:
        // a single internal node pointing at an out-of-range child.
        let mut w = ByteWriter::new();
        w.put_bytes(&BVH_ARTIFACT_MAGIC);
        w.put_u32(BVH_ARTIFACT_VERSION);
        w.put_u64(0);
        w.put_len(1); // one node
        w.put_u8(TAG_INTERNAL);
        w.put_u8(1);
        put_aabb(&mut w, &Aabb::empty());
        w.put_u32(7); // child 7 of 1
        w.put_len(1); // one triangle
        for _ in 0..9 {
            w.put_f32(0.0);
        }
        w.put_len(0); // no sections
        let checksum = fnv1a64(w.bytes());
        w.put_u64(checksum);
        match BvhArtifact::from_bytes(w.bytes()) {
            Err(DecodeError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn decoded_tree_traverses_identically() {
        let mut rng = SmallRng::seed_from_u64(45);
        let original = WideBvh::build(random_triangles(&mut rng, 120));
        let decoded = BvhArtifact::from_bytes(&BvhArtifact::new(5, original.clone()).to_bytes())
            .expect("round trip")
            .bvh;
        for i in 0..32 {
            let x = i as f32 * 5.0 - 80.0;
            let ray = rt_geometry::Ray::new(Vec3::new(x, 0.0, -200.0), Vec3::Z);
            let a = original.intersect(&ray);
            let b = decoded.intersect(&ray);
            assert_eq!(a.is_hit(), b.is_hit());
            assert_eq!(a.t.to_bits(), b.t.to_bits());
        }
    }
}
