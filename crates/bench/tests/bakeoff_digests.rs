//! Fig. 8 bakeoff determinism contract: the four-way prior-work
//! comparison (MTA, GHB, hash-path, treelet) over the full sixteen-scene
//! suite must be rerun-stable — every scene's cycle count and state
//! digest bit-identical between two passes — and each prefetcher must
//! leave its own distinguishable fingerprint on the suite, so a silent
//! mis-dispatch (two selectors driving the same engine path) cannot pass.
//!
//! CI runs this at smoke detail; the `fig08_prior_work` binary runs the
//! same cells at full scale.

use rt_bench::Suite;
use rt_scene::{Workload, WorkloadKind};
use treelet_rt::{PrefetchConfig, SimConfig, SimResult};

fn digests(results: &[SimResult]) -> Vec<(u64, u64)> {
    results.iter().map(|r| (r.cycles, r.state_digest)).collect()
}

#[test]
fn bakeoff_suite_is_rerun_stable_and_prefetchers_are_distinct() {
    let suite = Suite::prepare(0.1, Workload::new(WorkloadKind::Primary, 16, 16));
    let configs: Vec<(&str, SimConfig)> = vec![
        ("baseline", SimConfig::paper_baseline()),
        (
            "mta",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta()),
        ),
        (
            "ghb",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::ghb()),
        ),
        (
            "hash",
            SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash()),
        ),
        ("treelet", SimConfig::paper_treelet_prefetch()),
    ];
    let mut fingerprints = Vec::new();
    for (name, config) in &configs {
        let first = digests(&suite.run_all(config));
        let second = digests(&suite.run_all(config));
        assert_eq!(
            first, second,
            "{name}: suite digests changed between identical reruns"
        );
        fingerprints.push((*name, first));
    }
    // Each prefetcher must behave differently from every other config
    // somewhere in the suite; identical whole-suite fingerprints mean
    // two selectors silently ran the same engine path.
    for i in 0..fingerprints.len() {
        for j in i + 1..fingerprints.len() {
            assert_ne!(
                fingerprints[i].1, fingerprints[j].1,
                "{} and {} produced identical suite digests",
                fingerprints[i].0, fingerprints[j].0
            );
        }
    }
}
