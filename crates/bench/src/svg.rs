//! Dependency-free SVG bar charts for the harness: renders per-scene
//! grouped bars in the style of the paper's figures.

use rt_scene::SceneId;
use std::fmt::Write as _;

/// Series colors (color-blind-safe palette).
const COLORS: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

/// Renders a grouped bar chart of `rows` (one group per scene, one bar
/// per column) into an SVG string.
///
/// `baseline` draws a horizontal reference line at that y-value (e.g.
/// `1.0` for speedup charts).
///
/// # Panics
///
/// Panics if any row's cell count differs from `columns.len()`.
pub fn bar_chart(
    title: &str,
    columns: &[&str],
    rows: &[(SceneId, Vec<f64>)],
    baseline: Option<f64>,
) -> String {
    for (scene, cells) in rows {
        assert_eq!(
            cells.len(),
            columns.len(),
            "row {scene} has {} cells for {} columns",
            cells.len(),
            columns.len()
        );
    }
    let width = 960.0f64;
    let height = 360.0f64;
    let margin_left = 56.0;
    let margin_right = 12.0;
    let margin_top = 40.0;
    let margin_bottom = 48.0;
    let plot_w = width - margin_left - margin_right;
    let plot_h = height - margin_top - margin_bottom;

    let max_value = rows
        .iter()
        .flat_map(|(_, cells)| cells.iter().copied())
        .chain(baseline)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let y_top = max_value * 1.1;
    let y_of = |v: f64| margin_top + plot_h * (1.0 - v / y_top);

    let groups = rows.len().max(1) as f64;
    let group_w = plot_w / groups;
    let bar_w = (group_w * 0.8 / columns.len().max(1) as f64).min(28.0);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/><text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"##,
        width / 2.0,
        xml_escape(title)
    );

    // Y axis with 5 ticks.
    for i in 0..=5 {
        let v = y_top * i as f64 / 5.0;
        let y = y_of(v);
        let _ = write!(
            svg,
            r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/><text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{v:.2}</text>"##,
            width - margin_right,
            margin_left - 6.0,
            y + 3.0
        );
    }
    if let Some(b) = baseline {
        let y = y_of(b);
        let _ = write!(
            svg,
            r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#888888" stroke-dasharray="4 3"/>"##,
            width - margin_right
        );
    }

    // Bars.
    for (g, (scene, cells)) in rows.iter().enumerate() {
        let group_x = margin_left + g as f64 * group_w;
        let total_bars_w = bar_w * columns.len() as f64;
        let start = group_x + (group_w - total_bars_w) / 2.0;
        for (c, &v) in cells.iter().enumerate() {
            let x = start + c as f64 * bar_w;
            let y = y_of(v.max(0.0));
            let h = (y_of(0.0) - y).max(0.0);
            let _ = write!(
                svg,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{h:.1}" fill="{}"/>"##,
                bar_w * 0.9,
                COLORS[c % COLORS.len()]
            );
        }
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"##,
            group_x + group_w / 2.0,
            height - margin_bottom + 14.0,
            scene.name()
        );
    }

    // Legend.
    let mut lx = margin_left;
    let ly = height - 14.0;
    for (c, name) in columns.iter().enumerate() {
        let _ = write!(
            svg,
            r##"<rect x="{lx:.1}" y="{:.1}" width="10" height="10" fill="{}"/><text x="{:.1}" y="{:.1}" font-size="11">{}</text>"##,
            ly - 9.0,
            COLORS[c % COLORS.len()],
            lx + 14.0,
            ly,
            xml_escape(name)
        );
        lx += 16.0 + 7.0 * name.len() as f64 + 18.0;
    }
    svg.push_str("</svg>");
    svg
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<(SceneId, Vec<f64>)> {
        vec![
            (SceneId::Wknd, vec![1.0, 1.1]),
            (SceneId::Car, vec![1.3, 1.4]),
        ]
    }

    #[test]
    fn chart_is_valid_ish_svg() {
        let svg = bar_chart("Test <chart>", &["a", "b"], &rows(), Some(1.0));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Test &lt;chart&gt;"));
        // One bar per cell.
        let bars = svg.matches("<rect").count();
        // background + 4 bars + 2 legend swatches
        assert_eq!(bars, 1 + 4 + 2);
        assert!(svg.contains("WKND"));
        assert!(svg.contains("CAR"));
        // Baseline dashed line present.
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn taller_value_gives_taller_bar() {
        let single: Vec<(SceneId, Vec<f64>)> =
            vec![(SceneId::Wknd, vec![1.0]), (SceneId::Car, vec![2.0])];
        let svg = bar_chart("t", &["a"], &single, None);
        // Extract bar heights: the chart height (360) and the 10-pixel
        // legend swatch are excluded, leaving the two data bars in order.
        let heights: Vec<f64> = svg
            .match_indices("height=\"")
            .map(|(i, pat)| {
                let rest = &svg[i + pat.len()..];
                rest.split('"').next().unwrap().parse::<f64>().unwrap()
            })
            .filter(|&h| h != 360.0 && h != 10.0)
            .collect();
        assert_eq!(heights.len(), 2, "expected exactly two bars: {heights:?}");
        assert!(heights[1] > heights[0]);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_columns_panic() {
        let _ = bar_chart("t", &["a"], &[(SceneId::Wknd, vec![1.0, 2.0])], None);
    }

    #[test]
    fn empty_rows_render() {
        let svg = bar_chart("empty", &["a"], &[], None);
        assert!(svg.contains("</svg>"));
    }
}
