//! Figure 8: comparison to prior work — the Lee et al. many-thread-aware
//! stride prefetcher (implemented optimistically with infinite tables),
//! a global history buffer, and hash-based ray-path prediction
//! (Demoullin et al.) against treelet prefetching, with a per-prefetcher
//! useful/late/useless timeliness taxonomy.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite, SUITE_DETAIL};
use rt_scene::{Workload, WorkloadKind};
use treelet_rt::{PrefetchConfig, PrefetchUsefulness, SimConfig, SimResult};

fn taxonomy(results: &[SimResult]) -> (PrefetchUsefulness, u64) {
    let mut acc = PrefetchUsefulness::default();
    let mut total = 0;
    for r in results {
        let u = PrefetchUsefulness::from_effect(&r.prefetch_effect);
        acc.useful += u.useful;
        acc.late += u.late;
        acc.useless += u.useless;
        total += r.prefetch_effect.total();
    }
    (acc, total)
}

fn main() {
    let detail = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SUITE_DETAIL);
    // Speedup comparison at the paper-default workload, like every
    // other figure.
    let suite = Suite::prepare(detail, Workload::paper_default());
    let base = suite.run_all(&SimConfig::paper_baseline());
    let mta = suite.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta()));
    let ghb = suite.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::ghb()));
    let hash = suite.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash()));
    let pf = suite.run_all(&SimConfig::paper_treelet_prefetch());

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![
                    mta[i].speedup_over(&base[i]),
                    ghb[i].speedup_over(&base[i]),
                    hash[i].speedup_over(&base[i]),
                    pf[i].speedup_over(&base[i]),
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 8: speedup vs prior work",
        &["MTA (Lee+)", "GHB", "hash-path", "treelet-pf"],
        &rows,
        true,
    );
    let mta_s: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    let ghb_s: Vec<f64> = rows.iter().map(|(_, c)| c[1]).collect();
    let hash_s: Vec<f64> = rows.iter().map(|(_, c)| c[2]).collect();
    let pf_s: Vec<f64> = rows.iter().map(|(_, c)| c[3]).collect();
    println!(
        "\nMTA mean: {} (paper: ~0%, ineffective); GHB mean: {} (paper §2.4: unsuitable); hash mean: {}; treelet mean: {}",
        pct(geometric_mean(&mta_s)),
        pct(geometric_mean(&ghb_s)),
        pct(geometric_mean(&hash_s)),
        pct(geometric_mean(&pf_s))
    );

    // Timeliness taxonomy: where each prefetcher's lines ended up.
    //
    // This part runs 128x128 primary rays instead of the 32x32 default:
    // the hash-path predictor only learns across warp-buffer turnover
    // (a ray must retire and record its path before a same-key ray
    // enters), and 32x32 fits entirely in the 8 SM x 16 warp x 32 lane
    // resident set — at that scale no history-based prefetcher ever
    // gets to act, so there would be nothing to classify.
    let turnover = Suite::prepare(detail, Workload::new(WorkloadKind::Primary, 128, 128));
    let mta_t =
        turnover.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::mta()));
    let ghb_t =
        turnover.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::ghb()));
    let hash_t =
        turnover.run_all(&SimConfig::paper_baseline().with_prefetcher(PrefetchConfig::hash()));
    let pf_t = turnover.run_all(&SimConfig::paper_treelet_prefetch());
    println!("\n== Prefetch timeliness per prefetcher (128x128 suite totals) ==");
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}",
        "Prefetcher", "issued", "useful", "late", "useless"
    );
    for (name, results) in [
        ("MTA (Lee+)", &mta_t),
        ("GHB", &ghb_t),
        ("hash-path", &hash_t),
        ("treelet-pf", &pf_t),
    ] {
        let (u, total) = taxonomy(results);
        let share = |n: u64| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64 * 100.0
            }
        };
        println!(
            "{:<12} {:>10} {:>8.1}% {:>8.1}% {:>8.1}%",
            name,
            total,
            share(u.useful),
            share(u.late),
            share(u.useless)
        );
    }
    let (u, total) = taxonomy(&mta_t);
    if total > 0 {
        println!(
            "\nMTA prefetches that fetched nothing useful: {:.0}% (paper: 'does not fetch many useful BVH nodes')",
            (u.late + u.useless) as f64 / total as f64 * 100.0
        );
    }
}
