//! Figure 8: comparison to prior work — the Lee et al. many-thread-aware
//! stride prefetcher (implemented optimistically with infinite tables)
//! against treelet prefetching.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{PrefetchConfig, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let mut mta_cfg = SimConfig::paper_baseline();
    mta_cfg.prefetch = PrefetchConfig::Mta;
    let mta = suite.run_all(&mta_cfg);
    let mut ghb_cfg = SimConfig::paper_baseline();
    ghb_cfg.prefetch = PrefetchConfig::Ghb;
    let ghb = suite.run_all(&ghb_cfg);
    let pf = suite.run_all(&SimConfig::paper_treelet_prefetch());

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![
                    mta[i].speedup_over(&base[i]),
                    ghb[i].speedup_over(&base[i]),
                    pf[i].speedup_over(&base[i]),
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 8: speedup vs prior work",
        &["MTA (Lee+)", "GHB", "treelet-pf"],
        &rows,
        true,
    );
    let mta_s: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    let ghb_s: Vec<f64> = rows.iter().map(|(_, c)| c[1]).collect();
    let pf_s: Vec<f64> = rows.iter().map(|(_, c)| c[2]).collect();
    println!(
        "\nMTA mean: {} (paper: ~0%, ineffective); GHB mean: {} (paper §2.4: unsuitable); treelet mean: {}",
        pct(geometric_mean(&mta_s)),
        pct(geometric_mean(&ghb_s)),
        pct(geometric_mean(&pf_s))
    );
    let useless: u64 = mta
        .iter()
        .map(|r| r.prefetch_effect.unused + r.prefetch_effect.too_late)
        .sum();
    let total: u64 = mta.iter().map(|r| r.prefetch_effect.total()).sum();
    if total > 0 {
        println!(
            "MTA prefetches that fetched nothing useful: {:.0}% (paper: 'does not fetch many useful BVH nodes')",
            useless as f64 / total as f64 * 100.0
        );
    }
}
