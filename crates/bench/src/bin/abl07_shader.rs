//! Ablation: the SM shader pipeline around the RT unit (paper Fig. 2).
//! Warps run ray-generation and shading code on the SM's issue port
//! between `traceRay` calls; bounce generations mask dead lanes off
//! SIMT-style. This sweeps the shading-to-traversal ratio to see how
//! much of the treelet-prefetching benefit survives when the workload is
//! no longer pure traversal.

use rt_bench::pct;
use rt_scene::{SceneId, Workload};
use treelet_rt::{Bench, BounceKind, ShaderProgram, SimConfig};

fn main() {
    let detail = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let bench = Bench::prepare(SceneId::Crnvl, detail, Workload::paper_default());

    println!("== Ablation 7: shader pipeline around the RT unit (CRNVL) ==");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>7}",
        "program", "base cyc", "pf cyc", "speedup", "SIMT"
    );
    let programs: Vec<(&str, Option<ShaderProgram>)> = vec![
        ("trace replay (paper §5)", None),
        (
            "raygen only",
            Some(ShaderProgram {
                raygen_ops: 64,
                shade_ops: 0,
                bounces: 0,
                bounce_kind: BounceKind::Diffuse,
                seed: 7,
            }),
        ),
        ("path tracer (1 bounce)", Some(ShaderProgram::path_tracer())),
        (
            "heavy shading (1 bounce)",
            Some(ShaderProgram {
                raygen_ops: 256,
                shade_ops: 1024,
                bounces: 1,
                bounce_kind: BounceKind::Diffuse,
                seed: 7,
            }),
        ),
        (
            "2 diffuse bounces",
            Some(ShaderProgram {
                raygen_ops: 32,
                shade_ops: 64,
                bounces: 2,
                bounce_kind: BounceKind::Diffuse,
                seed: 7,
            }),
        ),
        (
            "2 specular bounces",
            Some(ShaderProgram {
                raygen_ops: 32,
                shade_ops: 64,
                bounces: 2,
                bounce_kind: BounceKind::Specular,
                seed: 7,
            }),
        ),
    ];
    for (name, shader) in programs {
        let mut base_cfg = SimConfig::paper_baseline();
        base_cfg.shader = shader;
        let mut pf_cfg = SimConfig::paper_treelet_prefetch();
        pf_cfg.shader = shader;
        let base = bench.run(&base_cfg);
        let pf = bench.run(&pf_cfg);
        println!(
            "{:<26} {:>10} {:>10} {:>9} {:>6.1}%",
            name,
            base.cycles,
            pf.cycles,
            pct(pf.speedup_over(&base)),
            pf.simt_efficiency * 100.0
        );
    }
    println!("\n(SIMT = mean live-lane fraction of warps entering the RT unit)");
}
