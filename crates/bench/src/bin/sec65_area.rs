//! Section 6.5: prefetcher design storage and area arithmetic for the
//! two-level pseudo majority voter.

use treelet_rt::VoterAreaModel;

fn main() {
    let m = VoterAreaModel::paper_default();
    println!("== §6.5: two-level pseudo majority voter storage/area ==");
    println!(
        "first-level table:  {} entries x ({} addr bits + count) = {} B (paper: 108 B)",
        m.first_level_entries,
        m.address_bits,
        m.first_level_table_bytes()
    );
    println!(
        "second-level table: {} entries x ({} addr bits + count) = {} B (paper: 52 B)",
        m.second_level_entries,
        m.address_bits,
        m.second_level_table_bytes()
    );
    println!(
        "sequential logic area (FreePDK45): {} um^2 (paper: 461 um^2)",
        m.sequential_area_um2()
    );
    println!("\nvoter latency by first-level table replication:");
    for tables in [1u32, 2, 4, 8, 16] {
        println!(
            "  {:>2} table(s) -> {:>3} cycles",
            tables,
            m.latency_cycles(tables)
        );
    }
    println!("(paper: 1 table = 512 cycles, 4 tables = 128 cycles, 16 tables = 32 cycles)");
}
