//! Renders SVG charts of the key reproduced figures into `charts/`
//! (override with the `TREELET_CHART_DIR` environment variable).

use rt_bench::{bar_chart, Suite};
use std::path::PathBuf;
use treelet_rt::{PrefetchHeuristic, SimConfig};

fn main() -> std::io::Result<()> {
    let dir =
        PathBuf::from(std::env::var("TREELET_CHART_DIR").unwrap_or_else(|_| "charts".to_string()));
    std::fs::create_dir_all(&dir)?;
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());

    // Fig. 7: overall speedup + normalized power.
    let pf = suite.run_all(&SimConfig::paper_treelet_prefetch());
    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![
                    pf[i].speedup_over(&base[i]),
                    pf[i].power.avg_power_w / base[i].power.avg_power_w,
                ],
            )
        })
        .collect();
    std::fs::write(
        dir.join("fig07_overall.svg"),
        bar_chart(
            "Fig. 7: treelet prefetching speedup and normalized power (ALWAYS, PMR, 512 B)",
            &["speedup", "norm. power"],
            &rows,
            Some(1.0),
        ),
    )?;

    // Fig. 9: breakdown.
    let trav = suite.run_all(&SimConfig::paper_treelet_traversal_only());
    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![trav[i].speedup_over(&base[i]), pf[i].speedup_over(&base[i])],
            )
        })
        .collect();
    std::fs::write(
        dir.join("fig09_breakdown.svg"),
        bar_chart(
            "Fig. 9: treelet traversal alone vs + prefetching",
            &["traversal only", "traversal + prefetch"],
            &rows,
            Some(1.0),
        ),
    )?;

    // Fig. 10: heuristics.
    let heuristics = [
        ("ALWAYS", PrefetchHeuristic::Always),
        ("POP 0.5", PrefetchHeuristic::Popularity(0.5)),
        ("PARTIAL", PrefetchHeuristic::Partial),
    ];
    let results: Vec<Vec<_>> = heuristics
        .iter()
        .map(|(_, h)| suite.run_all(&SimConfig::paper_treelet_prefetch().with_heuristic(*h)))
        .collect();
    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = heuristics.iter().map(|(n, _)| *n).collect();
    std::fs::write(
        dir.join("fig10_heuristics.svg"),
        bar_chart("Fig. 10: prefetch heuristics", &columns, &rows, Some(1.0)),
    )?;

    // Fig. 20: effectiveness stack rendered as grouped bars.
    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let e = pf[i].prefetch_effect;
            let total = e.total().max(1) as f64;
            (
                b.scene(),
                vec![
                    e.timely as f64 / total,
                    e.late as f64 / total,
                    e.too_late as f64 / total,
                    e.unused as f64 / total,
                ],
            )
        })
        .collect();
    std::fs::write(
        dir.join("fig20_effectiveness.svg"),
        bar_chart(
            "Fig. 20: prefetch effectiveness (fractions)",
            &["timely", "late", "too late", "unused"],
            &rows,
            None,
        ),
    )?;

    println!("charts written to {}", dir.display());
    Ok(())
}
