//! Figure 9: speedup breakdown — treelet-based traversal alone (bottom)
//! and the additional gain from treelet prefetching (top), with the
//! baseline scheduler as in the paper.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{SchedulerPolicy, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let trav = suite.run_all(&SimConfig::paper_treelet_traversal_only());
    let pf_cfg = SimConfig::paper_treelet_prefetch().with_scheduler(SchedulerPolicy::Baseline);
    let pf = suite.run_all(&pf_cfg);

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![trav[i].speedup_over(&base[i]), pf[i].speedup_over(&base[i])],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 9: speedup breakdown (baseline scheduler)",
        &["trav only", "trav+prefetch"],
        &rows,
        true,
    );
    let t: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    let p: Vec<f64> = rows.iter().map(|(_, c)| c[1]).collect();
    println!(
        "\ntraversal alone: {} (paper: -3.7%); with prefetching: {} (paper: +32.1%)",
        pct(geometric_mean(&t)),
        pct(geometric_mean(&p))
    );
}
