//! Figure 1: average DRAM utilization (a) and average memory latency of
//! demand BVH loads (b), baseline RT unit vs. treelet prefetching.

use rt_bench::{print_scene_table, Suite};
use treelet_rt::SimConfig;

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let pf = suite.run_all(&SimConfig::paper_treelet_prefetch());

    let util_rows: Vec<_> = suite
        .benches()
        .iter()
        .zip(base.iter().zip(&pf))
        .map(|(b, (r0, r1))| (b.scene(), vec![r0.dram_utilization, r1.dram_utilization]))
        .collect();
    print_scene_table(
        "Fig. 1a: average DRAM utilization",
        &["baseline", "treelet-pf"],
        &util_rows,
        false,
    );

    let lat_rows: Vec<_> = suite
        .benches()
        .iter()
        .zip(base.iter().zip(&pf))
        .map(|(b, (r0, r1))| {
            (
                b.scene(),
                vec![
                    r0.node_load_latency,
                    r1.node_load_latency,
                    r0.node_load_latency_p99,
                    r1.node_load_latency_p99,
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 1b: demand BVH-load latency (core cycles; mean and p99 tail)",
        &["mean base", "mean pf", "p99 base", "p99 pf"],
        &lat_rows,
        true,
    );

    let reduction: Vec<f64> = base
        .iter()
        .zip(&pf)
        .map(|(r0, r1)| 1.0 - r1.node_load_latency / r0.node_load_latency)
        .collect();
    let mean = reduction.iter().sum::<f64>() / reduction.len() as f64;
    println!(
        "\nmean BVH demand-latency reduction: {:.1}% (paper: 54%)",
        mean * 100.0
    );
}
