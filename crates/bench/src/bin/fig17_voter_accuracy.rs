//! Figure 17: decision accuracy of the pseudo two-level majority voter —
//! how often it agrees with a full majority voter on the most popular
//! treelet.

use rt_bench::{print_scene_table, Suite};
use treelet_rt::{SimConfig, VoterKind};

fn main() {
    let suite = Suite::prepare_default();
    let latencies = [0u64, 32, 128];
    let results: Vec<Vec<_>> = latencies
        .iter()
        .map(|&lat| {
            suite.run_all(
                &SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, lat),
            )
        })
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| {
                        r[i].prefetcher
                            .map(|p| p.voter_accuracy() * 100.0)
                            .unwrap_or(0.0)
                    })
                    .collect(),
            )
        })
        .collect();
    print_scene_table(
        "Fig. 17: pseudo-voter agreement with the full voter (%)",
        &["0 cyc", "32 cyc", "128 cyc"],
        &rows,
        false,
    );
    let mean: f64 = rows.iter().map(|(_, c)| c[0]).sum::<f64>() / rows.len() as f64;
    println!("\nmean agreement at 0-cycle sampling: {mean:.1}% (paper: 91.2%)");
}
