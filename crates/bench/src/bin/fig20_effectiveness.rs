//! Figure 20: prefetch effectiveness for 512-byte treelets with the
//! baseline scheduler and ALWAYS heuristic — each prefetch classified as
//! timely, late, too late, early, or unused.

use rt_bench::{print_scene_table, Suite};
use treelet_rt::{SchedulerPolicy, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let config = SimConfig::paper_treelet_prefetch().with_scheduler(SchedulerPolicy::Baseline);
    let results = suite.run_all(&config);

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let e = results[i].prefetch_effect;
            let total = e.total().max(1) as f64;
            (
                b.scene(),
                vec![
                    e.timely as f64 / total * 100.0,
                    e.late as f64 / total * 100.0,
                    e.too_late as f64 / total * 100.0,
                    e.early as f64 / total * 100.0,
                    e.unused as f64 / total * 100.0,
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 20: prefetch effectiveness (% of prefetch probes)",
        &["timely", "late", "too late", "early", "unused"],
        &rows,
        false,
    );
    let mean = |col: usize| rows.iter().map(|(_, c)| c[col]).sum::<f64>() / rows.len() as f64;
    println!(
        "\nmeans: timely {:.1}% late {:.1}% too-late {:.1}% early {:.1}% unused {:.1}%",
        mean(0),
        mean(1),
        mean(2),
        mean(3),
        mean(4)
    );
    println!("(paper: timely 47.8%, unused 43.5% — unused prefetches are the stated area for improvement)");
}
