//! Ablation: traversal-order design choices — near-first child ordering
//! and early ray termination — quantifying how much of the baseline's
//! efficiency each contributes (DESIGN.md §6 calls these out as ablation
//! targets).

use rt_bench::{geometric_mean, print_scene_table, Suite};
use treelet_rt::{SimConfig, TraversalOptions};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let variants = [
        (
            "no-order",
            TraversalOptions {
                ordered_children: false,
                early_termination: true,
            },
        ),
        (
            "no-ERT",
            TraversalOptions {
                ordered_children: true,
                early_termination: false,
            },
        ),
        (
            "neither",
            TraversalOptions {
                ordered_children: false,
                early_termination: false,
            },
        ),
    ];
    let results: Vec<Vec<_>> = variants
        .iter()
        .map(|(_, opts)| {
            let mut c = SimConfig::paper_baseline();
            c.traversal_options = *opts;
            suite.run_all(&c)
        })
        .collect();

    // Report slowdown factors (cycles relative to the full baseline) and
    // node inflation.
    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut cells = Vec::new();
            for r in &results {
                cells.push(r[i].cycles as f64 / base[i].cycles as f64);
            }
            for r in &results {
                cells.push(r[i].traversal.avg_nodes_per_ray / base[i].traversal.avg_nodes_per_ray);
            }
            (b.scene(), cells)
        })
        .collect();
    print_scene_table(
        "Ablation 2: cycle and node-visit inflation without ordering / ERT",
        &[
            "cyc no-order",
            "cyc no-ERT",
            "cyc neither",
            "node no-order",
            "node no-ERT",
            "node neither",
        ],
        &rows,
        true,
    );
    for (col, (name, _)) in variants.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!(
            "{name}: {:.2}x cycles vs full baseline",
            geometric_mean(&vals)
        );
    }
}
