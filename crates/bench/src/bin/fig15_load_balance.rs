//! Figure 15: DRAM load-balancing effect of adding a 256-byte stride
//! between 512-byte treelet slots (roots 768 B apart instead of 512 B).

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{LayoutChoice, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let packed = SimConfig::paper_treelet_prefetch();
    let mut strided = SimConfig::paper_treelet_prefetch();
    strided.layout = LayoutChoice::TreeletPacked { extra_stride: 256 };
    let r0 = suite.run_all(&packed);
    let r1 = suite.run_all(&strided);

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| (b.scene(), vec![r1[i].speedup_over(&r0[i])]))
        .collect();
    print_scene_table(
        "Fig. 15: +256 B stride speedup over plain 512 B packing",
        &["speedup"],
        &rows,
        true,
    );
    let vals: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    println!(
        "\nmean stride benefit: {} (paper: +5.7%)",
        pct(geometric_mean(&vals))
    );

    // Channel imbalance evidence: coefficient of variation of per-channel
    // DRAM accesses with and without the stride.
    let cv = |counts: &[u64]| {
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    };
    println!("\nper-channel DRAM access imbalance (coefficient of variation):");
    println!("{:<7} {:>12} {:>12}", "Scene", "512B slots", "+256B stride");
    for (i, b) in suite.benches().iter().enumerate() {
        println!(
            "{:<7} {:>12.3} {:>12.3}",
            b.scene().name(),
            cv(&r0[i].dram_channel_accesses),
            cv(&r1[i].dram_channel_accesses)
        );
    }
}
