//! Ablation: animated scenes — BVH refitting vs rebuilding, and treelet
//! staleness. Each frame deforms the geometry; we compare
//!
//! - **rebuild**: rebuild the BVH and re-form treelets every frame (the
//!   quality ceiling), against
//! - **refit + stale treelets**: refit the frame-0 BVH in place and keep
//!   the frame-0 treelet assignment (the cheap path a real engine would
//!   take between full rebuilds).
//!
//! The question: how fast does treelet-prefetching quality decay when the
//! treelets no longer match the deformed geometry?

use rt_bench::pct;
use rt_bvh::WideBvh;
use rt_geometry::{Triangle, Vec3};
use rt_scene::{Scene, SceneId, Workload};
use treelet_rt::{SimConfig, SimSession, TreeletAssignment};

const AMPLITUDE: f32 = 0.4;

/// The travelling vertical ripple at `phase` applied to a rest-pose
/// vertex.
fn ripple(v: Vec3, phase: f32) -> Vec3 {
    Vec3::new(v.x, v.y + AMPLITUDE * (v.x * 0.8 + phase).sin(), v.z)
}

/// Deforms rest-pose triangles to `phase`.
fn deform(rest: &[Triangle], phase: f32) -> Vec<Triangle> {
    rest.iter()
        .map(|t| {
            Triangle::new(
                ripple(t.v0, phase),
                ripple(t.v1, phase),
                ripple(t.v2, phase),
            )
        })
        .collect()
}

fn main() {
    let detail = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let scene = Scene::build_with_detail(SceneId::Bunny, detail);
    let rays = Workload::paper_default().generate(&scene);
    let rest = scene.mesh.into_triangles();

    // Frame-0 structures for the refit path. The build reorders
    // triangles; recover their rest poses (phase-0 ripple removed) so
    // later frames can be generated in the reordered order the refit
    // expects.
    let mut refit_bvh = WideBvh::build(deform(&rest, 0.0));
    let frame0_treelets = TreeletAssignment::form(&refit_bvh, 512);
    let reordered_rest: Vec<Triangle> = refit_bvh
        .triangles()
        .iter()
        .map(|t| {
            let unripple = |v: Vec3| Vec3::new(v.x, v.y - AMPLITUDE * (v.x * 0.8).sin(), v.z);
            Triangle::new(unripple(t.v0), unripple(t.v1), unripple(t.v2))
        })
        .collect();

    println!("== Ablation 6: animation — rebuild vs refit + stale treelets (BUNNY) ==");
    println!(
        "{:>5} {:>16} {:>16} {:>13}",
        "frame", "rebuild speedup", "refit speedup", "refit/rebuild"
    );
    for frame in 0..6 {
        let phase = frame as f32 * 0.9;

        // Quality ceiling: fresh build + fresh treelets every frame.
        let rebuilt = WideBvh::build(deform(&rest, phase));
        let rb_base = SimSession::new(&rebuilt, &rays, SimConfig::paper_baseline())
            .run()
            .expect("rebuild baseline");
        let rb_pf = SimSession::new(&rebuilt, &rays, SimConfig::paper_treelet_prefetch())
            .run()
            .expect("rebuild prefetch");

        // Cheap path: refit the frame-0 topology, keep frame-0 treelets.
        refit_bvh.refit(deform(&reordered_rest, phase));
        let rf_base = SimSession::new(&refit_bvh, &rays, SimConfig::paper_baseline())
            .treelets(&frame0_treelets)
            .run()
            .expect("refit baseline");
        let rf_pf = SimSession::new(&refit_bvh, &rays, SimConfig::paper_treelet_prefetch())
            .treelets(&frame0_treelets)
            .run()
            .expect("refit prefetch");

        let rb = rb_pf.speedup_over(&rb_base);
        let rf = rf_pf.speedup_over(&rf_base);
        println!(
            "{frame:>5} {:>16} {:>16} {:>13.3}",
            pct(rb),
            pct(rf),
            rf / rb
        );
    }
    println!("\n(1.0 in the last column = stale treelets are as good as fresh ones)");
}
