//! Table 1: the simulated GPU configuration.

use treelet_rt::SimConfig;

fn main() {
    let c = SimConfig::paper_baseline();
    println!("== Table 1: Vulkan-Sim configuration (reproduced) ==");
    println!("# Streaming Multiprocessors (SM)   {}", c.num_sms);
    println!("Warp Size                          {}", c.warp_size);
    println!(
        "L1 Data Cache                      {} KB, fully assoc. LRU, {} cycles",
        c.mem.l1_lines * c.mem.line_bytes as usize / 1024,
        c.mem.l1_latency
    );
    println!(
        "L2 Unified Cache                   {} MB, {}-way assoc. LRU, {} cycles, {} partitions",
        c.mem.l2_lines * c.mem.line_bytes as usize / (1024 * 1024),
        c.mem.l2_lines as u64 / c.mem.l2_sets,
        c.mem.l2_latency,
        c.mem.l2_partitions
    );
    println!(
        "Core, Interconnect, L2 Clock       {} MHz",
        c.mem.core_clock_mhz
    );
    println!(
        "Memory Clock                       {} MHz",
        c.mem.mem_clock_mhz
    );
    println!(
        "DRAM                               {} channels, {} B partition stride, {} mem-cycle access",
        c.mem.dram.channels, c.mem.dram.partition_stride, c.mem.dram.service_latency
    );
    println!("# RT Units / SM                    1");
    println!("RT Unit Warp Buffer Size           {}", c.warp_buffer_size);
    println!("Cache Line                         {} B", c.mem.line_bytes);
    println!("Max Treelet Size (default)         {} B", c.treelet_bytes);
}
