//! Ablation: microarchitectural sweeps around the Table 1 configuration —
//! warp-buffer depth, RT-unit issue width, and L1 capacity — showing how
//! sensitive the treelet-prefetching gain is to each.

use rt_bench::pct;
use rt_scene::{SceneId, Workload};
use treelet_rt::{Bench, SimConfig};

fn run_pair(bench: &Bench, mutate: impl Fn(&mut SimConfig)) -> (u64, u64, f64) {
    let mut base = SimConfig::paper_baseline();
    mutate(&mut base);
    let mut pf = SimConfig::paper_treelet_prefetch();
    mutate(&mut pf);
    let b = bench.run(&base);
    let p = bench.run(&pf);
    (b.cycles, p.cycles, p.speedup_over(&b))
}

fn main() {
    let detail = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let bench = Bench::prepare(SceneId::Car, detail, Workload::paper_default());
    println!("== Ablation 4: microarchitecture sweeps (CAR) ==");

    println!("\n-- warp buffer size (Table 1: 16) --");
    for size in [4usize, 8, 16, 32] {
        let (b, p, s) = run_pair(&bench, |c| c.warp_buffer_size = size);
        println!(
            "{size:>3} entries: base {b:>8} pf {p:>8} speedup {}",
            pct(s)
        );
    }

    println!("\n-- RT-unit issue width --");
    for width in [1usize, 2, 4, 8] {
        let (b, p, s) = run_pair(&bench, |c| c.issue_width = width);
        println!(
            "{width:>3}/cycle:   base {b:>8} pf {p:>8} speedup {}",
            pct(s)
        );
    }

    println!("\n-- L1 capacity (Table 1: 64 KB) --");
    for kb in [16usize, 32, 64, 128] {
        let (b, p, s) = run_pair(&bench, |c| c.mem.l1_lines = kb * 1024 / 64);
        println!("{kb:>3} KB:      base {b:>8} pf {p:>8} speedup {}", pct(s));
    }

    println!("\n-- raygen shader stagger (cycles between warp launches) --");
    for interval in [0u64, 100, 400, 1600] {
        let (b, p, s) = run_pair(&bench, |c| c.raygen_interval = interval);
        println!(
            "{interval:>4} cyc:    base {b:>8} pf {p:>8} speedup {}",
            pct(s)
        );
    }

    println!("\n-- prefetch queue capacity --");
    for cap in [16usize, 32, 64, 128] {
        let (b, p, s) = run_pair(&bench, |c| c.prefetch_queue_capacity = cap);
        println!("{cap:>3} entries: base {b:>8} pf {p:>8} speedup {}", pct(s));
    }
}
