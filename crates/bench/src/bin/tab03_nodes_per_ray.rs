//! Table 3: average and maximum nodes traversed per ray, baseline DFS vs
//! treelet-based traversal. Lower is better.

use rt_bench::Suite;
use treelet_rt::{geometric_mean, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let dfs = suite.run_all(&SimConfig::paper_baseline());
    let two = suite.run_all(&SimConfig::paper_treelet_traversal_only());

    println!("== Table 3: nodes traversed per ray (DFS vs treelet traversal) ==");
    println!(
        "{:<7} {:>10} {:>10} {:>9} | {:>8} {:>8} {:>9}",
        "Scene", "avg DFS", "avg Trlt", "diff", "max DFS", "max Trlt", "diff"
    );
    let mut avg_ratio = Vec::new();
    let mut max_ratio = Vec::new();
    for (i, b) in suite.benches().iter().enumerate() {
        let (d, t) = (&dfs[i].traversal, &two[i].traversal);
        let ar = t.avg_nodes_per_ray / d.avg_nodes_per_ray;
        let mr = t.max_nodes_per_ray as f64 / d.max_nodes_per_ray as f64;
        avg_ratio.push(ar);
        max_ratio.push(mr);
        println!(
            "{:<7} {:>10.1} {:>10.1} {:>+8.2}% | {:>8} {:>8} {:>+8.2}%",
            b.scene().name(),
            d.avg_nodes_per_ray,
            t.avg_nodes_per_ray,
            (ar - 1.0) * 100.0,
            d.max_nodes_per_ray,
            t.max_nodes_per_ray,
            (mr - 1.0) * 100.0
        );
    }
    println!(
        "GMean diff: avg {:+.2}% (paper: -2.12%), max {:+.2}% (paper: -0.28%)",
        (geometric_mean(&avg_ratio) - 1.0) * 100.0,
        (geometric_mean(&max_ratio) - 1.0) * 100.0
    );
}
