//! Figure 14: treelet BVH options — the repacked treelet layout vs. an
//! unmodified BVH with a node-to-treelet mapping table under the Loose
//! Wait (optimistic) and Strict Wait (pessimistic) schedules.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{MappingMode, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let options = [
        ("repacked", MappingMode::Packed),
        ("loose-wait", MappingMode::LooseWait),
        ("strict-wait", MappingMode::StrictWait),
    ];
    let results: Vec<Vec<_>> = options
        .iter()
        .map(|(_, m)| suite.run_all(&SimConfig::paper_treelet_prefetch().with_mapping_mode(*m)))
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = options.iter().map(|(n, _)| *n).collect();
    print_scene_table("Fig. 14: treelet BVH options", &columns, &rows, true);
    for (col, (name, _)) in options.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{name}: {}", pct(geometric_mean(&vals)));
    }
    println!("(paper: repacked +31.9% > loose +29.7% >> strict -2.5%)");
    println!("mapping table storage: 4 B per node = 1/16 of the 64 B node region (paper §6.4)");
}
