//! Figure 19: performance with different maximum treelet sizes (256,
//! 512, 1024, 2048 bytes).

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::SimConfig;

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let sizes = [256u64, 512, 1024, 2048];
    let results: Vec<Vec<_>> = sizes
        .iter()
        .map(|&s| suite.run_all(&SimConfig::paper_treelet_prefetch().with_treelet_bytes(s)))
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    print_scene_table(
        "Fig. 19: speedup vs maximum treelet size",
        &["256 B", "512 B", "1024 B", "2048 B"],
        &rows,
        true,
    );
    for (col, s) in sizes.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{s} B: {}", pct(geometric_mean(&vals)));
    }
    println!("(paper: 512 B best +31.9%; 256 B worst +24.8%)");
}
