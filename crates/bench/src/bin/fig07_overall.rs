//! Figure 7: overall speedup and power of treelet prefetching with the
//! ALWAYS heuristic, PMR scheduler, and 512-byte treelets.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::SimConfig;

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let pf = suite.run_all(&SimConfig::paper_treelet_prefetch());

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .zip(base.iter().zip(&pf))
        .map(|(b, (r0, r1))| {
            (
                b.scene(),
                vec![
                    r1.speedup_over(r0),
                    r1.power.avg_power_w / r0.power.avg_power_w,
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 7: speedup and normalized power (ALWAYS, PMR, 512 B)",
        &["speedup", "norm. power"],
        &rows,
        true,
    );

    let speedups: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    println!(
        "\nmean speedup: {} (paper: +32.1%); power stays ~constant (paper: same power)",
        pct(geometric_mean(&speedups))
    );
}
