//! Table 2: per-scene BVH statistics (tree size, depth, total treelets at
//! the 512-byte maximum treelet size), with the paper's published values
//! alongside for comparison. Absolute sizes differ — our procedural
//! stand-ins are scaled down (see DESIGN.md) — but the relative ordering
//! of the suite is preserved.

use rt_bench::Suite;
use treelet_rt::TreeletAssignment;

fn main() {
    let suite = Suite::prepare_default();
    println!("== Table 2: evaluation scenes (ours vs. paper) ==");
    println!(
        "{:<7} {:>12} {:>7} {:>12} | {:>12} {:>7} {:>12}",
        "Scene", "size MB", "depth", "treelets", "paper MB", "depth", "treelets"
    );
    for bench in suite.benches() {
        let stats = bench.tree_stats();
        let treelets = TreeletAssignment::form(bench.bvh(), 512);
        let paper = bench.scene().paper_stats();
        println!(
            "{:<7} {:>12.2} {:>7} {:>12} | {:>12.1} {:>7} {:>12}",
            bench.scene().name(),
            stats.total_mb(),
            stats.max_depth,
            treelets.count(),
            paper.tree_size_mb,
            paper.tree_depth,
            paper.total_treelets
        );
    }
}
