//! Figure 16: performance impact of prefetcher (majority voter) latency,
//! swept from 0 to 512 cycles. A 512-cycle latency corresponds to one
//! first-level table counting one thread per cycle; 128 cycles to four
//! tables; 32 cycles to a table per warp-buffer entry (§6.5).

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{SimConfig, VoterKind};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let latencies = [0u64, 32, 128, 512];
    let results: Vec<Vec<_>> = latencies
        .iter()
        .map(|&lat| {
            suite.run_all(
                &SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, lat),
            )
        })
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    print_scene_table(
        "Fig. 16: speedup vs prefetcher latency (pseudo two-level voter)",
        &["0 cyc", "32 cyc", "128 cyc", "512 cyc"],
        &rows,
        true,
    );
    for (col, lat) in latencies.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("latency {lat}: {}", pct(geometric_mean(&vals)));
    }
    println!("(paper: 0/32 cyc ≈ +31-32%, 128 cyc +25.3%, 512 cyc +17%)");
}
