//! Figure 13: performance of the RT-unit treelet schedulers (baseline,
//! OMR, PMR) with treelet prefetching enabled.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{SchedulerPolicy, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let policies = [
        ("baseline", SchedulerPolicy::Baseline),
        ("OMR", SchedulerPolicy::OldestMatchingRay),
        ("PMR", SchedulerPolicy::PrioritizeMostRays),
    ];
    let results: Vec<Vec<_>> = policies
        .iter()
        .map(|(_, p)| suite.run_all(&SimConfig::paper_treelet_prefetch().with_scheduler(*p)))
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
    print_scene_table("Fig. 13: treelet scheduler speedups", &columns, &rows, true);
    for (col, (name, _)) in policies.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{name}: {}", pct(geometric_mean(&vals)));
    }
    println!("(paper: all within ~0.3% of each other; PMR +32.1% best)");
}
