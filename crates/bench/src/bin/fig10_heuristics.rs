//! Figure 10: performance of the prefetch heuristics (ALWAYS,
//! POPULARITY with 0.25 / 0.5 / 0.75 thresholds, PARTIAL) against the
//! baseline RT unit.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{PrefetchHeuristic, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let heuristics = [
        ("ALWAYS", PrefetchHeuristic::Always),
        ("POP:0.25", PrefetchHeuristic::Popularity(0.25)),
        ("POP:0.5", PrefetchHeuristic::Popularity(0.5)),
        ("POP:0.75", PrefetchHeuristic::Popularity(0.75)),
        ("PARTIAL", PrefetchHeuristic::Partial),
    ];
    let results: Vec<Vec<_>> = heuristics
        .iter()
        .map(|(_, h)| suite.run_all(&SimConfig::paper_treelet_prefetch().with_heuristic(*h)))
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = heuristics.iter().map(|(n, _)| *n).collect();
    print_scene_table(
        "Fig. 10: prefetch heuristic speedups",
        &columns,
        &rows,
        true,
    );

    for (col, (name, _)) in heuristics.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{name}: {}", pct(geometric_mean(&vals)));
    }
    println!("(paper: ALWAYS +31.9% > POPULARITY +27% > PARTIAL +16%)");
}
