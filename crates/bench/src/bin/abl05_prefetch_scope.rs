//! Ablation: prefetch scope extensions beyond the paper's design —
//! (a) also prefetching the triangle data referenced by a treelet's leaf
//! nodes, and (b) installing prefetches into the shared L2 instead of the
//! L1 (trading first-use latency for zero L1 pollution).

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{PrefetchDestination, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let variants: Vec<(&str, SimConfig)> = vec![
        ("nodes->L1", SimConfig::paper_treelet_prefetch()),
        ("nodes+tris->L1", {
            let mut c = SimConfig::paper_treelet_prefetch();
            c.prefetch_triangles = true;
            c
        }),
        ("nodes->L2", {
            let mut c = SimConfig::paper_treelet_prefetch();
            c.prefetch_destination = PrefetchDestination::L2;
            c
        }),
        ("nodes+tris->L2", {
            let mut c = SimConfig::paper_treelet_prefetch();
            c.prefetch_triangles = true;
            c.prefetch_destination = PrefetchDestination::L2;
            c
        }),
    ];
    let results: Vec<Vec<_>> = variants.iter().map(|(_, c)| suite.run_all(c)).collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
    print_scene_table(
        "Ablation 5: prefetch scope (what is fetched, and into which cache)",
        &columns,
        &rows,
        true,
    );
    for (col, (name, _)) in variants.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{name}: {}", pct(geometric_mean(&vals)));
    }
    println!("(the paper's design is nodes->L1; triangle data and L2 placement are extensions)");
}
