//! Ablation: treelet formation policies (the paper's §8 future work,
//! "optimizing treelet formation with statistical metrics") — the paper's
//! greedy BFS vs a depth-first variant vs surface-area-weighted growth.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{FormationPolicy, SimConfig, TreeletAssignment, TreeletMetrics};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let policies = [
        ("greedy-bfs", FormationPolicy::GreedyBfs),
        ("greedy-dfs", FormationPolicy::GreedyDfs),
        ("surface-area", FormationPolicy::SurfaceArea),
    ];
    let results: Vec<Vec<_>> = policies
        .iter()
        .map(|(_, p)| {
            let mut c = SimConfig::paper_treelet_prefetch();
            c.formation = *p;
            suite.run_all(&c)
        })
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].speedup_over(&base[i]))
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
    print_scene_table(
        "Ablation 1: treelet formation policy speedups (ALWAYS, PMR, 512 B)",
        &columns,
        &rows,
        true,
    );
    for (col, (name, _)) in policies.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, c)| c[col]).collect();
        println!("{name}: {}", pct(geometric_mean(&vals)));
    }

    // Structural explanation: treelet-quality metrics per policy on a
    // representative scene.
    let bench = &suite.benches()[9]; // BUNNY
    println!("\ntreelet quality on {} (512 B):", bench.scene());
    for (name, policy) in policies {
        let assignment = TreeletAssignment::form_with_policy(bench.bvh(), 512, policy);
        println!(
            "  {name:<13} {}",
            TreeletMetrics::of(bench.bvh(), &assignment)
        );
    }
}
