//! Figure 11: L2 bandwidth of the prefetch heuristics, normalized to the
//! baseline RT unit (no prefetching).

use rt_bench::{print_scene_table, Suite};
use treelet_rt::{PrefetchHeuristic, SimConfig};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let line = SimConfig::paper_baseline().mem.line_bytes;
    let heuristics = [
        ("ALWAYS", PrefetchHeuristic::Always),
        ("POP:0.5", PrefetchHeuristic::Popularity(0.5)),
        ("PARTIAL", PrefetchHeuristic::Partial),
    ];
    let results: Vec<Vec<_>> = heuristics
        .iter()
        .map(|(_, h)| suite.run_all(&SimConfig::paper_treelet_prefetch().with_heuristic(*h)))
        .collect();

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let b0 = base[i].l2_bytes_per_cycle(line);
            (
                b.scene(),
                results
                    .iter()
                    .map(|r| r[i].l2_bytes_per_cycle(line) / b0)
                    .collect(),
            )
        })
        .collect();
    let columns: Vec<&str> = heuristics.iter().map(|(n, _)| *n).collect();
    print_scene_table(
        "Fig. 11: L2 bandwidth normalized to no prefetching",
        &columns,
        &rows,
        true,
    );
    println!("(paper: POPULARITY/PARTIAL throttle L2 BW below ALWAYS)");
}
