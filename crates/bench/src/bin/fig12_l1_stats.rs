//! Figure 12: L1 cache statistics per prefetch heuristic — the fraction
//! of demand accesses that hit on prefetched data, hit on demand-fetched
//! data, merged with an in-flight fetch (pending), or missed.

use rt_bench::Suite;
use treelet_rt::{PrefetchConfig, PrefetchHeuristic, SimConfig, SimResult};

fn breakdown(r: &SimResult) -> [f64; 4] {
    let s = &r.l1;
    let total = s.demand_accesses().max(1) as f64;
    [
        s.demand_hits_on_prefetch as f64 / total,
        s.demand_hits_on_demand as f64 / total,
        s.demand_pending_hits as f64 / total,
        s.demand_misses as f64 / total,
    ]
}

fn main() {
    let suite = Suite::prepare_default();
    let configs: Vec<(&str, SimConfig)> = vec![
        (
            "Baseline",
            SimConfig::paper_treelet_traversal_only().with_prefetcher(PrefetchConfig::none()),
        ),
        (
            "ALWAYS",
            SimConfig::paper_treelet_prefetch().with_heuristic(PrefetchHeuristic::Always),
        ),
        (
            "POP:0.25",
            SimConfig::paper_treelet_prefetch().with_heuristic(PrefetchHeuristic::Popularity(0.25)),
        ),
        (
            "POP:0.5",
            SimConfig::paper_treelet_prefetch().with_heuristic(PrefetchHeuristic::Popularity(0.5)),
        ),
        (
            "POP:0.75",
            SimConfig::paper_treelet_prefetch().with_heuristic(PrefetchHeuristic::Popularity(0.75)),
        ),
        (
            "PARTIAL",
            SimConfig::paper_treelet_prefetch().with_heuristic(PrefetchHeuristic::Partial),
        ),
    ];

    println!("== Fig. 12: L1 demand-access breakdown per heuristic ==");
    println!(
        "{:<7} {:<9} {:>9} {:>9} {:>9} {:>9}",
        "Scene", "Config", "pf-hit", "dem-hit", "pending", "miss"
    );
    for (i, bench) in suite.benches().iter().enumerate() {
        for (name, config) in &configs {
            let r = bench.run(config);
            let [p, d, pend, m] = breakdown(&r);
            println!(
                "{:<7} {:<9} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                if *name == "Baseline" {
                    suite.benches()[i].scene().name()
                } else {
                    ""
                },
                name,
                p * 100.0,
                d * 100.0,
                pend * 100.0,
                m * 100.0
            );
        }
    }
    println!("(paper: ALWAYS shows the largest prefetch-hit fraction)");
}
