//! Ablation: ray incoherence vs prefetch benefit. The paper (§2.4)
//! argues secondary and reflection rays are the hard case for classical
//! prefetchers; this experiment measures treelet prefetching on primary
//! rays, true diffuse bounces (traced off the primary hits), specular
//! bounces, and surface-sampled shadow rays.

use rt_bench::{pct, SimConfig};
use rt_scene::{Scene, SceneId, Workload, WorkloadKind};
use treelet_rt::{bounce_rays, direction_coherence, BounceKind, SimSession};

fn main() {
    let detail = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("== Ablation 3: workload incoherence vs prefetch benefit ==");
    println!(
        "{:<7} {:<10} {:>9} {:>10} {:>10} {:>10}",
        "Scene", "workload", "coherence", "base cyc", "pf cyc", "speedup"
    );
    for scene_id in [SceneId::Bunny, SceneId::Crnvl, SceneId::Frst] {
        let scene = Scene::build_with_detail(scene_id, detail);
        let primary = Workload::paper_default().generate(&scene);
        let shadow = Workload::new(WorkloadKind::Shadow, 32, 32).generate(&scene);
        let bvh = rt_bvh::WideBvh::build(scene.mesh.into_triangles());
        let diffuse = bounce_rays(&bvh, &primary, BounceKind::Diffuse, 11);
        let specular = bounce_rays(&bvh, &primary, BounceKind::Specular, 11);

        for (name, rays) in [
            ("primary", &primary),
            ("specular", &specular),
            ("diffuse", &diffuse),
            ("shadow", &shadow),
        ] {
            if rays.is_empty() {
                continue;
            }
            let base = SimSession::new(&bvh, rays, SimConfig::paper_baseline())
                .run()
                .expect("baseline");
            let pf = SimSession::new(&bvh, rays, SimConfig::paper_treelet_prefetch())
                .run()
                .expect("prefetch");
            println!(
                "{:<7} {:<10} {:>9.3} {:>10} {:>10} {:>9}",
                scene_id.name(),
                name,
                direction_coherence(rays),
                base.cycles,
                pf.cycles,
                pct(pf.speedup_over(&base))
            );
        }
    }
    println!("\n(expectation: bounce generations are less coherent than primary rays;");
    println!(" treelet prefetching still helps because it does not rely on address regularity)");
}
