//! `simperf` — wall-clock smoke benchmark of the simulator itself.
//!
//! Every figure in the reproduction is bottlenecked on how fast the
//! cycle-level simulator runs, so this binary starts the performance
//! trajectory: it times the full sixteen-scene suite end-to-end under
//! the baseline and prefetch configurations, micro-times one scene's
//! hot simulation kernels, and cross-checks the determinism contract
//! the optimized data structures must uphold — per-scene state digests
//! must be bit-identical between `--jobs 1` and a parallel run, and
//! between the idle-skipping cycle loop and the naive cycle-by-cycle
//! reference loop (`idle_skip = false`).
//!
//! Writes `BENCH_simperf.json` in the current directory (override with
//! `--out PATH`) and exits nonzero on any digest mismatch, so CI can
//! run it as a smoke job and archive the JSON as the perf record.
//!
//! Scene detail defaults to 0.1 with a 16×16 primary-ray workload (CI
//! smoke scale); `TREELET_DETAIL` or `--detail` raises it for deeper
//! local runs.

use rt_bench::microbench::Group;
use rt_bench::{default_jobs, SimConfig, SimResult, Suite};
use rt_scene::{SceneId, Workload, WorkloadKind};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One configuration's suite timings and determinism verdicts.
struct ConfigReport {
    name: &'static str,
    wall_ms_jobs1: f64,
    wall_ms_parallel: f64,
    wall_ms_no_idle_skip: f64,
    digests_match_across_jobs: bool,
    digests_match_without_idle_skip: bool,
    scenes: Vec<(SceneId, u64, u64)>,
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_simperf.json");
    let mut detail: f32 = std::env::var("TREELET_DETAIL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--detail" => match args.next().and_then(|v| v.parse().ok()) {
                Some(d) if d > 0.0 => detail = d,
                _ => return usage("--detail needs a positive number"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let workload = Workload::new(WorkloadKind::Primary, 16, 16);
    let suite = Suite::prepare(detail, workload);
    // At least four workers so the cross-jobs digest check exercises real
    // sharding even on single-core CI runners.
    let jobs = default_jobs().max(4);

    let mut reports = Vec::new();
    let mut all_clean = true;
    for (name, config) in [
        ("baseline", SimConfig::paper_baseline()),
        ("prefetch", SimConfig::paper_treelet_prefetch()),
    ] {
        let report = run_config(&suite, name, &config, jobs);
        all_clean &= report.digests_match_across_jobs && report.digests_match_without_idle_skip;
        reports.push(report);
    }

    // Hot-kernel microbench: one mid-sized scene simulated end-to-end,
    // with and without the prefetcher, plus the naive loop for scale.
    let group = Group::new("simperf")
        .samples(5)
        .sample_time(Duration::from_millis(50));
    let bench = suite
        .benches()
        .iter()
        .find(|b| b.scene() == SceneId::Bunny)
        .expect("suite contains BUNNY");
    let baseline = SimConfig::paper_baseline();
    let prefetch = SimConfig::paper_treelet_prefetch();
    let mut naive = prefetch.clone();
    naive.idle_skip = false;
    let kernels = [
        ("sim_baseline", group.bench("sim_baseline", || bench.run(&baseline).cycles)),
        ("sim_prefetch", group.bench("sim_prefetch", || bench.run(&prefetch).cycles)),
        (
            "sim_prefetch_no_idle_skip",
            group.bench("sim_prefetch_no_idle_skip", || bench.run(&naive).cycles),
        ),
    ];

    let json = render_json(detail, jobs, &reports, &kernels);
    // Atomic write-then-rename: CI archives this file, and a benchmark
    // process killed mid-write must never leave a torn perf record that
    // later tooling would parse as a regression.
    if let Err(e) = treelet_rt::write_atomic(std::path::Path::new(&out), json.as_bytes()) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    if all_clean {
        println!("digest cross-checks clean (jobs 1 vs {jobs}, idle-skip on vs off)");
        ExitCode::SUCCESS
    } else {
        eprintln!("error: state digest mismatch — see {out}");
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: simperf [--out BENCH_simperf.json] [--detail 0.1]");
    ExitCode::FAILURE
}

/// Times one configuration three ways and checks both digest contracts.
fn run_config(suite: &Suite, name: &'static str, config: &SimConfig, jobs: usize) -> ConfigReport {
    let (reference, wall_ms_jobs1) = timed(|| suite.run_all_parallel(config, 1));
    let (parallel, wall_ms_parallel) = timed(|| suite.run_all_parallel(config, jobs));
    let mut naive_config = config.clone();
    naive_config.idle_skip = false;
    let (naive, wall_ms_no_idle_skip) = timed(|| suite.run_all_parallel(&naive_config, 1));

    let digests_match_across_jobs = digests_equal(&reference, &parallel);
    let digests_match_without_idle_skip = digests_equal(&reference, &naive);
    println!(
        "{name:<9} jobs1 {wall_ms_jobs1:>8.1} ms   jobs{jobs} {wall_ms_parallel:>8.1} ms   \
         no-skip {wall_ms_no_idle_skip:>8.1} ms   digests: jobs {}  idle-skip {}",
        verdict(digests_match_across_jobs),
        verdict(digests_match_without_idle_skip),
    );
    ConfigReport {
        name,
        wall_ms_jobs1,
        wall_ms_parallel,
        wall_ms_no_idle_skip,
        digests_match_across_jobs,
        digests_match_without_idle_skip,
        scenes: SceneId::ALL
            .into_iter()
            .zip(&reference)
            .map(|(id, r)| (id, r.cycles, r.state_digest))
            .collect(),
    }
}

fn timed(f: impl FnOnce() -> Vec<SimResult>) -> (Vec<SimResult>, f64) {
    let t0 = Instant::now();
    let results = f();
    (results, t0.elapsed().as_secs_f64() * 1e3)
}

fn digests_equal(a: &[SimResult], b: &[SimResult]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.state_digest == y.state_digest && x.cycles == y.cycles)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by policy); every
/// string is a known identifier, so no escaping is needed.
fn render_json(
    detail: f32,
    jobs: usize,
    reports: &[ConfigReport],
    kernels: &[(&str, rt_bench::microbench::Measurement)],
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"bench\": \"simperf\",\n  \"detail\": {detail},\n  \
         \"workload\": \"primary 16x16\",\n  \"jobs\": {jobs},\n  \"suite\": ["
    );
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\n      \"config\": \"{}\",\n      \"wall_ms_jobs1\": {:.3},\n      \
             \"wall_ms_parallel\": {:.3},\n      \"wall_ms_no_idle_skip\": {:.3},\n      \
             \"digests_match_across_jobs\": {},\n      \
             \"digests_match_without_idle_skip\": {},\n      \"scenes\": [",
            if i == 0 { "" } else { "," },
            r.name,
            r.wall_ms_jobs1,
            r.wall_ms_parallel,
            r.wall_ms_no_idle_skip,
            r.digests_match_across_jobs,
            r.digests_match_without_idle_skip,
        );
        for (j, (id, cycles, digest)) in r.scenes.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n        {{\"scene\": \"{id}\", \"cycles\": {cycles}, \
                 \"state_digest\": \"{digest:#018x}\"}}",
                if j == 0 { "" } else { "," },
            );
        }
        let _ = write!(s, "\n      ]\n    }}");
    }
    let _ = write!(s, "\n  ],\n  \"hot_kernels\": [");
    for (i, (name, m)) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"name\": \"{name}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"iters_per_sample\": {}}}",
            if i == 0 { "" } else { "," },
            m.median_ns,
            m.min_ns,
            m.mean_ns,
            m.iters_per_sample,
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}
