//! `simperf` — wall-clock smoke benchmark of the simulator itself.
//!
//! Every figure in the reproduction is bottlenecked on how fast the
//! cycle-level simulator runs, so this binary tracks the performance
//! trajectory: it times the full sixteen-scene suite end-to-end under
//! the baseline and prefetch configurations, micro-times one scene's
//! hot simulation kernels, and cross-checks the determinism contract
//! the optimized data structures must uphold — per-scene state digests
//! must be bit-identical between `--jobs 1` and a parallel run, and
//! between the idle-skipping cycle loop and the naive cycle-by-cycle
//! reference loop (`idle_skip = false`).
//!
//! Suite timings are the **median of `--reps` repetitions** (default 5,
//! minimum 5 unless lowered explicitly) with the minimum alongside; the
//! three modes are interleaved rep by rep so drift hits them equally,
//! and one untimed warm-up run absorbs cold caches. Each repetition
//! also records per-cell wall times, and the JSON captures the
//! cost-model scheduler's plan (workers, inline cells, chunks) so a
//! perf record explains *how* the suite was scheduled, not just how
//! long it took.
//!
//! Worker counts come from the cost-model scheduler: the parallel mode
//! requests `default_jobs_for(scene count)` (so `RT_JOBS` overrides it)
//! and the scheduler clamps to the machine's cores — the old behaviour
//! of forcing four workers made the parallel mode *slower* than serial
//! on small runners by pure context-switch overhead. `--gate-parallel`
//! turns that regression into a hard failure: the run exits nonzero if
//! the parallel median exceeds the serial median for any config.
//!
//! It also times suite **preparation** three ways — serial cold (per
//! scene), parallel cold through the cost-model scheduler, and warm
//! from a throwaway BVH artifact cache — demanding three-way
//! bit-identity; `--gate-prep` turns warm-slower-than-cold into a
//! hard failure.
//!
//! Writes `BENCH_simperf.json` in the current directory (override with
//! `--out PATH`) and exits nonzero on any digest mismatch, so CI can
//! run it as a smoke job and archive the JSON as the perf record.
//!
//! Scene detail defaults to 0.1 with a 16×16 primary-ray workload (CI
//! smoke scale); `TREELET_DETAIL` or `--detail` raises it for deeper
//! local runs. The preparation benchmark ignores that knob and always
//! builds at full detail 1.0, where cache wins are representative.

use rt_bench::microbench::Group;
use rt_bench::{
    default_jobs_for, encode_prepared_bench, parse_detail_override, plan_schedule, Bench,
    BvhCache, PrepareOptions, Schedule, SimConfig, SimResult, Suite,
};
use rt_gpu_sim::fnv1a64;
use rt_scene::{SceneId, Workload, WorkloadKind};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Median and minimum of a set of repeated wall-time samples.
#[derive(Clone, Copy)]
struct WallStats {
    median_ms: f64,
    min_ms: f64,
}

/// One configuration's suite timings and determinism verdicts.
struct ConfigReport {
    name: &'static str,
    jobs1: WallStats,
    parallel: WallStats,
    no_idle_skip: WallStats,
    digests_match_across_jobs: bool,
    digests_match_without_idle_skip: bool,
    /// Per scene: cycles, digest, and the serial per-cell wall stats.
    scenes: Vec<(SceneId, u64, u64, WallStats)>,
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_simperf.json");
    // An unparseable TREELET_DETAIL is a hard error (exit 2), not a
    // silent fall-through to the default: a CI job that typos the
    // override must not quietly benchmark the wrong scale.
    let env_detail = std::env::var("TREELET_DETAIL").ok();
    let mut detail: f32 = match parse_detail_override(env_detail.as_deref()) {
        Ok(d) => d.unwrap_or(0.1),
        Err(why) => {
            eprintln!("error: TREELET_DETAIL: {why}");
            return ExitCode::from(2);
        }
    };
    let mut reps: usize = 5;
    let mut jobs_override: Option<usize> = None;
    let mut gate_parallel = false;
    let mut gate_prep = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--detail" => match args.next().and_then(|v| v.parse().ok()) {
                Some(d) if d > 0.0 => detail = d,
                _ => return usage("--detail needs a positive number"),
            },
            "--reps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => reps = n,
                _ => return usage("--reps needs a positive integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => jobs_override = Some(n),
                _ => return usage("--jobs needs a positive integer"),
            },
            "--gate-parallel" => gate_parallel = true,
            "--gate-prep" => gate_prep = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let workload = Workload::new(WorkloadKind::Primary, 16, 16);

    // Preparation wall-clock: serial cold (per-scene timed, populating
    // a throwaway cache), parallel cold through the cost-model
    // scheduler, and cache-warm — all three must be bit-identical.
    // Always measured at full detail, independent of the simulation's
    // smoke-scale `detail`: cache wins only matter on real scenes.
    let prep_jobs = jobs_override.unwrap_or_else(|| default_jobs_for(SceneId::ALL.len()));
    let prep = run_prepare_bench(PREP_DETAIL, workload, prep_jobs);
    println!(
        "prepare:  detail {PREP_DETAIL}   cold {:.1} ms   parallel jobs{prep_jobs} {:.1} ms   warm {:.1} ms \
         ({} hit(s), {} miss(es))   digests {}",
        prep.cold_ms,
        prep.parallel_ms,
        prep.warm_ms,
        prep.warm_hits,
        prep.warm_misses,
        verdict(prep.digests_match),
    );

    let suite = Suite::prepare(detail, workload);
    let jobs = jobs_override.unwrap_or_else(|| default_jobs_for(suite.benches().len()));
    let costs = suite.scene_costs();
    let plan = plan_schedule(jobs, &costs);
    println!(
        "schedule: {jobs} job(s) requested -> {} worker(s), {} inline cell(s), {} chunk(s)",
        plan.workers(),
        plan.inline_cells().len(),
        plan.chunks().len(),
    );

    let mut reports = Vec::new();
    let mut all_clean = true;
    for (name, config) in [
        ("baseline", SimConfig::paper_baseline()),
        ("prefetch", SimConfig::paper_treelet_prefetch()),
    ] {
        let report = run_config(&suite, name, &config, jobs, reps);
        all_clean &= report.digests_match_across_jobs && report.digests_match_without_idle_skip;
        reports.push(report);
    }

    // Hot-kernel microbench: one mid-sized scene simulated end-to-end,
    // with and without the prefetcher, plus the naive loop for scale.
    let group = Group::new("simperf")
        .samples(5)
        .sample_time(Duration::from_millis(50));
    let bench = suite
        .benches()
        .iter()
        .find(|b| b.scene() == SceneId::Bunny)
        .expect("suite contains BUNNY");
    let baseline = SimConfig::paper_baseline();
    let prefetch = SimConfig::paper_treelet_prefetch();
    let mut naive = prefetch.clone();
    naive.idle_skip = false;
    let kernels = [
        ("sim_baseline", group.bench("sim_baseline", || bench.run(&baseline).cycles)),
        ("sim_prefetch", group.bench("sim_prefetch", || bench.run(&prefetch).cycles)),
        (
            "sim_prefetch_no_idle_skip",
            group.bench("sim_prefetch_no_idle_skip", || bench.run(&naive).cycles),
        ),
    ];

    let json = render_json(detail, jobs, reps, &plan, &costs, &prep, &reports, &kernels);
    // Atomic write-then-rename: CI archives this file, and a benchmark
    // process killed mid-write must never leave a torn perf record that
    // later tooling would parse as a regression.
    if let Err(e) = treelet_rt::write_atomic(std::path::Path::new(&out), json.as_bytes()) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    if !all_clean {
        eprintln!("error: state digest mismatch — see {out}");
        return ExitCode::FAILURE;
    }
    if !prep.digests_match {
        eprintln!("error: preparation digest mismatch (cold vs parallel vs warm) — see {out}");
        return ExitCode::FAILURE;
    }
    println!("digest cross-checks clean (jobs 1 vs {jobs}, idle-skip on vs off, prep cold/parallel/warm)");
    if gate_prep {
        if prep.warm_ms > prep.cold_ms {
            eprintln!(
                "error: cache-warm preparation regressed: warm {:.3} ms > cold {:.3} ms",
                prep.warm_ms, prep.cold_ms
            );
            return ExitCode::FAILURE;
        }
        println!("prep gate clean (warm {:.1} ms <= cold {:.1} ms)", prep.warm_ms, prep.cold_ms);
    }
    if gate_parallel {
        for r in &reports {
            if r.parallel.median_ms > r.jobs1.median_ms {
                eprintln!(
                    "error: parallel regression in `{}`: median jobs{jobs} \
                     {:.3} ms > median jobs1 {:.3} ms",
                    r.name, r.parallel.median_ms, r.jobs1.median_ms
                );
                return ExitCode::FAILURE;
            }
        }
        println!("parallel gate clean (median parallel <= median jobs1 for every config)");
    }
    ExitCode::SUCCESS
}

/// Detail level for the preparation benchmark. Pinned at full scene
/// detail so `prep_ms_*` reflects real build cost even when the
/// simulation itself runs at smoke scale.
const PREP_DETAIL: f32 = 1.0;

/// Preparation wall-clock report: serial cold build, parallel cold
/// build, cache-warm rebuild, and whether all three are bit-identical
/// under the preparation codec.
struct PrepReport {
    cold_ms: f64,
    parallel_ms: f64,
    warm_ms: f64,
    warm_hits: u64,
    warm_misses: u64,
    digests_match: bool,
    /// Per scene: cold (serial, uncached-path) build wall time.
    scene_ms: Vec<(SceneId, f64)>,
}

/// Times suite preparation three ways against a throwaway cache
/// directory: a serial cold pass (timed per scene, populating the
/// cache exactly as the production path would), a parallel cold pass
/// through the cost-model scheduler with no cache, and a warm pass
/// that must serve every scene from the cache.
fn run_prepare_bench(detail: f32, workload: Workload, jobs: usize) -> PrepReport {
    let root = std::env::temp_dir().join(format!("simperf-prep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let cache = BvhCache::open(&root).expect("preparation cache dir");
    let mut scene_ms = Vec::with_capacity(SceneId::ALL.len());
    let mut cold = Vec::with_capacity(SceneId::ALL.len());
    let t0 = Instant::now();
    for id in SceneId::ALL {
        let c0 = Instant::now();
        let bench = Bench::try_prepare_cached(id, detail, workload, Some(&cache))
            .unwrap_or_else(|e| panic!("preparing {id}: {e}"));
        scene_ms.push((id, c0.elapsed().as_secs_f64() * 1e3));
        cold.push(bench);
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Digest (FNV over the codec encoding) and drop each pass's suite
    // before timing the next one: holding several full-detail suites
    // alive at once distorts the later passes through allocator and
    // page-cache pressure, which on small hosts can make the warm
    // pass look slower than cold.
    let digest = |b: &Bench| fnv1a64(&encode_prepared_bench(b, 0));
    let cold_digests: Vec<u64> = cold.iter().map(digest).collect();
    drop(cold);

    let parallel_opts = PrepareOptions {
        jobs: Some(jobs),
        quiet: true,
        cache: None,
    };
    let t0 = Instant::now();
    let parallel = Suite::prepare_with(detail, workload, &parallel_opts);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    let parallel_digests: Vec<u64> = parallel.benches().iter().map(digest).collect();
    drop(parallel);

    let warm_opts = PrepareOptions {
        jobs: Some(jobs),
        quiet: true,
        cache: Some(BvhCache::open(&root).expect("preparation cache dir")),
    };
    let t0 = Instant::now();
    let warm = Suite::prepare_with(detail, workload, &warm_opts);
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_cache = warm_opts.cache.as_ref().expect("warm cache present");
    let (warm_hits, warm_misses) = (warm_cache.hits(), warm_cache.misses());
    let warm_digests: Vec<u64> = warm.benches().iter().map(digest).collect();

    // Bit-identity across all three: the preparation codec's encoding
    // of every bench must agree byte for byte.
    let digests_match = cold_digests == parallel_digests && cold_digests == warm_digests;

    let _ = std::fs::remove_dir_all(&root);
    PrepReport {
        cold_ms,
        parallel_ms,
        warm_ms,
        warm_hits,
        warm_misses,
        digests_match,
        scene_ms,
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: simperf [--out BENCH_simperf.json] [--detail 0.1] [--reps 5] \
         [--jobs N] [--gate-parallel] [--gate-prep]"
    );
    ExitCode::FAILURE
}

/// Times one configuration three ways (interleaved across `reps`
/// repetitions) and checks both digest contracts.
fn run_config(
    suite: &Suite,
    name: &'static str,
    config: &SimConfig,
    jobs: usize,
    reps: usize,
) -> ConfigReport {
    let mut naive_config = config.clone();
    naive_config.idle_skip = false;

    // Warm-up (untimed): pulls code and scene data into cache and
    // doubles as the reference results for the digest cross-checks.
    let (reference, _, _) = run_suite_timed(suite, config, 1);

    let mut jobs1_ms = Vec::with_capacity(reps);
    let mut parallel_ms = Vec::with_capacity(reps);
    let mut no_skip_ms = Vec::with_capacity(reps);
    // cell_ms[scene][rep]: per-cell wall times from the serial runs —
    // the parallel runs share cores, so per-cell time there measures
    // contention, not the cell.
    let mut cell_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); suite.benches().len()];
    let mut digests_match_across_jobs = true;
    let mut digests_match_without_idle_skip = true;
    for _ in 0..reps {
        let (serial, wall, cells) = run_suite_timed(suite, config, 1);
        jobs1_ms.push(wall);
        for (per_scene, ms) in cell_ms.iter_mut().zip(cells) {
            per_scene.push(ms);
        }
        digests_match_across_jobs &= digests_equal(&reference, &serial);

        let (parallel, wall, _) = run_suite_timed(suite, config, jobs);
        parallel_ms.push(wall);
        digests_match_across_jobs &= digests_equal(&reference, &parallel);

        let (naive, wall, _) = run_suite_timed(suite, &naive_config, 1);
        no_skip_ms.push(wall);
        digests_match_without_idle_skip &= digests_equal(&reference, &naive);
    }

    let jobs1 = wall_stats(&jobs1_ms);
    let parallel = wall_stats(&parallel_ms);
    let no_idle_skip = wall_stats(&no_skip_ms);
    println!(
        "{name:<9} ({reps} reps, median/min ms)  jobs1 {:.1}/{:.1}   jobs{jobs} {:.1}/{:.1}   \
         no-skip {:.1}/{:.1}   digests: jobs {}  idle-skip {}",
        jobs1.median_ms,
        jobs1.min_ms,
        parallel.median_ms,
        parallel.min_ms,
        no_idle_skip.median_ms,
        no_idle_skip.min_ms,
        verdict(digests_match_across_jobs),
        verdict(digests_match_without_idle_skip),
    );
    ConfigReport {
        name,
        jobs1,
        parallel,
        no_idle_skip,
        digests_match_across_jobs,
        digests_match_without_idle_skip,
        scenes: SceneId::ALL
            .into_iter()
            .zip(&reference)
            .zip(&cell_ms)
            .map(|((id, r), ms)| (id, r.cycles, r.state_digest, wall_stats(ms)))
            .collect(),
    }
}

/// Runs the whole suite once under the cost-model scheduler, returning
/// the results (suite order), the end-to-end wall time, and each cell's
/// own wall time in milliseconds.
fn run_suite_timed(suite: &Suite, config: &SimConfig, jobs: usize) -> (Vec<SimResult>, f64, Vec<f64>) {
    let cell_ms = Mutex::new(vec![0.0f64; suite.benches().len()]);
    let t0 = Instant::now();
    let outcomes = suite.run_all_robust_with_jobs(jobs, |b| {
        let c0 = Instant::now();
        let result = b.try_run(config);
        let ms = c0.elapsed().as_secs_f64() * 1e3;
        let idx = suite
            .benches()
            .iter()
            .position(|x| std::ptr::eq(x, b))
            .expect("bench belongs to the suite");
        cell_ms.lock().unwrap()[idx] = ms;
        result
    });
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let results = outcomes
        .into_iter()
        .map(|o| match o {
            rt_bench::SceneOutcome::Completed { result, .. } => result,
            rt_bench::SceneOutcome::Failed { scene, reason, .. } => {
                panic!("scene {scene} failed: {reason}")
            }
        })
        .collect();
    (results, wall, cell_ms.into_inner().unwrap())
}

fn wall_stats(samples: &[f64]) -> WallStats {
    assert!(!samples.is_empty(), "wall stats need at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    let median_ms = if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    };
    WallStats {
        median_ms,
        min_ms: sorted[0],
    }
}

fn digests_equal(a: &[SimResult], b: &[SimResult]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.state_digest == y.state_digest && x.cycles == y.cycles)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

/// Hand-rolled JSON (the workspace is dependency-free by policy); every
/// string is a known identifier, so no escaping is needed.
#[allow(clippy::too_many_arguments)]
fn render_json(
    detail: f32,
    jobs: usize,
    reps: usize,
    plan: &Schedule,
    costs: &[u64],
    prep: &PrepReport,
    reports: &[ConfigReport],
    kernels: &[(&str, rt_bench::microbench::Measurement)],
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"bench\": \"simperf\",\n  \"detail\": {detail},\n  \
         \"workload\": \"primary 16x16\",\n  \"jobs\": {jobs},\n  \"reps\": {reps},\n  \
         \"scheduler\": {{\n    \"requested_jobs\": {jobs},\n    \"workers\": {},\n    \
         \"inline_cells\": {},\n    \"chunks\": {},\n    \"inline_cost\": {},\n    \
         \"chunked_cost\": {}\n  }},\n  \"prepare\": {{\n    \
         \"detail\": {PREP_DETAIL},\n    \
         \"prep_ms_cold\": {:.3},\n    \"prep_ms_parallel\": {:.3},\n    \
         \"prep_ms_warm\": {:.3},\n    \"cache_hits_warm\": {},\n    \
         \"cache_misses_warm\": {},\n    \"digests_match\": {},\n    \"scenes\": [",
        plan.workers(),
        plan.inline_cells().len(),
        plan.chunks().len(),
        plan.inline_cost(),
        plan.chunked_cost(),
        prep.cold_ms,
        prep.parallel_ms,
        prep.warm_ms,
        prep.warm_hits,
        prep.warm_misses,
        prep.digests_match,
    );
    for (i, (id, ms)) in prep.scene_ms.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n      {{\"scene\": \"{id}\", \"build_ms\": {ms:.3}}}",
            if i == 0 { "" } else { "," },
        );
    }
    let _ = write!(s, "\n    ]\n  }},\n  \"suite\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\n      \"config\": \"{}\",\n      \"wall_ms_jobs1\": {:.3},\n      \
             \"wall_ms_jobs1_min\": {:.3},\n      \"wall_ms_parallel\": {:.3},\n      \
             \"wall_ms_parallel_min\": {:.3},\n      \"wall_ms_no_idle_skip\": {:.3},\n      \
             \"wall_ms_no_idle_skip_min\": {:.3},\n      \
             \"digests_match_across_jobs\": {},\n      \
             \"digests_match_without_idle_skip\": {},\n      \"scenes\": [",
            if i == 0 { "" } else { "," },
            r.name,
            r.jobs1.median_ms,
            r.jobs1.min_ms,
            r.parallel.median_ms,
            r.parallel.min_ms,
            r.no_idle_skip.median_ms,
            r.no_idle_skip.min_ms,
            r.digests_match_across_jobs,
            r.digests_match_without_idle_skip,
        );
        for (j, (id, cycles, digest, cell)) in r.scenes.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n        {{\"scene\": \"{id}\", \"cycles\": {cycles}, \
                 \"state_digest\": \"{digest:#018x}\", \"est_cost\": {}, \
                 \"cell_ms_median\": {:.3}, \"cell_ms_min\": {:.3}}}",
                if j == 0 { "" } else { "," },
                costs[j],
                cell.median_ms,
                cell.min_ms,
            );
        }
        let _ = write!(s, "\n      ]\n    }}");
    }
    let _ = write!(s, "\n  ],\n  \"hot_kernels\": [");
    for (i, (name, m)) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"name\": \"{name}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"iters_per_sample\": {}}}",
            if i == 0 { "" } else { "," },
            m.median_ns,
            m.min_ns,
            m.mean_ns,
            m.iters_per_sample,
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}
