//! Telemetry timelines: per-scene time-series data behind the paper's
//! time-resolved evidence — prefetch timeliness shares (Fig. 10),
//! L2→L1 line traffic (Fig. 11), and per-channel DRAM load imbalance
//! (Fig. 15).
//!
//! Runs every scene under the full treelet-prefetch configuration with
//! telemetry sampling on, writes one CSV per scene to
//! `charts/data/telemetry_<scene>.csv` (override the root with
//! `TREELET_CHART_DIR`), and prints the end-of-run usefulness shares
//! and DRAM channel imbalance so the table can be eyeballed without
//! opening the files. `TREELET_TELEMETRY_EVERY` overrides the sampling
//! interval (default 1000 cycles).

use rt_bench::{Suite, TelemetryOptions};
use std::path::PathBuf;
use treelet_rt::SimConfig;

fn main() -> std::io::Result<()> {
    let dir =
        PathBuf::from(std::env::var("TREELET_CHART_DIR").unwrap_or_else(|_| "charts".to_string()))
            .join("data");
    std::fs::create_dir_all(&dir)?;
    let every = std::env::var("TREELET_TELEMETRY_EVERY")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(treelet_rt::DEFAULT_TELEMETRY_EVERY);
    let opts = TelemetryOptions::new(every);
    let config = SimConfig::paper_treelet_prefetch();

    let suite = Suite::prepare_default();
    println!(
        "{:<7} {:>8} {:>9} {:>7} {:>9} {:>9}",
        "Scene", "samples", "useful%", "late%", "useless%", "dram CV"
    );
    for bench in suite.benches() {
        let (result, telemetry) = match bench.try_run_with_telemetry(&config, &opts) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("{}: {e}", bench.scene());
                continue;
            }
        };
        let path = dir.join(format!(
            "telemetry_{}.csv",
            bench.scene().name().to_lowercase()
        ));
        telemetry.write_csv(&path)?;
        let last = telemetry.samples().last().expect("run produced samples");
        let total =
            (last.prefetch_useful + last.prefetch_late + last.prefetch_useless).max(1) as f64;
        let share = |n: u64| 100.0 * n as f64 / total;
        println!(
            "{:<7} {:>8} {:>8.1}% {:>6.1}% {:>8.1}% {:>9.3}",
            bench.scene().name(),
            telemetry.len(),
            share(last.prefetch_useful),
            share(last.prefetch_late),
            share(last.prefetch_useless),
            cv(&result.dram_channel_accesses),
        );
    }
    println!("\nwrote per-scene timelines to {}", dir.display());
    Ok(())
}

/// Coefficient of variation of per-channel access counts (the Fig. 15
/// imbalance metric).
fn cv(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}
