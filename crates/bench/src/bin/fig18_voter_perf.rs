//! Figure 18: performance of the pseudo two-level majority voter against
//! the idealized full voter — the accuracy loss should not cost
//! performance.

use rt_bench::{geometric_mean, pct, print_scene_table, Suite};
use treelet_rt::{SimConfig, VoterKind};

fn main() {
    let suite = Suite::prepare_default();
    let base = suite.run_all(&SimConfig::paper_baseline());
    let full = suite.run_all(&SimConfig::paper_treelet_prefetch().with_voter(VoterKind::Full, 0));
    let pseudo = suite
        .run_all(&SimConfig::paper_treelet_prefetch().with_voter(VoterKind::PseudoTwoLevel, 0));

    let rows: Vec<_> = suite
        .benches()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.scene(),
                vec![
                    full[i].speedup_over(&base[i]),
                    pseudo[i].speedup_over(&base[i]),
                ],
            )
        })
        .collect();
    print_scene_table(
        "Fig. 18: full vs pseudo two-level voter speedups",
        &["full", "pseudo"],
        &rows,
        true,
    );
    let f: Vec<f64> = rows.iter().map(|(_, c)| c[0]).collect();
    let p: Vec<f64> = rows.iter().map(|(_, c)| c[1]).collect();
    println!(
        "\nfull: {} pseudo: {} (paper: accuracy loss does not impact performance)",
        pct(geometric_mean(&f)),
        pct(geometric_mean(&p))
    );
}
