//! A minimal wall-clock micro-benchmark runner.
//!
//! Replaces the `criterion` dev-dependency so `cargo bench` works in the
//! offline, dependency-free workspace. Deliberately simple: warm up,
//! pick an iteration count that fills a measurement window, run a fixed
//! number of samples, and report min / median / mean per iteration.
//! Good enough to spot order-of-magnitude regressions in the hot paths
//! the paper's sweeps exercise; not a statistics suite.

use std::time::{Duration, Instant};

/// Per-benchmark timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Fastest observed sample.
    pub min_ns: f64,
    /// Median sample — the headline number, robust to scheduler noise.
    pub median_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
    /// Iterations per sample the runner settled on.
    pub iters_per_sample: u64,
}

/// A named group of related benchmarks printed as one aligned block,
/// mirroring how the former criterion groups were organized.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
    target: Duration,
}

impl Group {
    /// Starts a group with the default budget (10 samples of ~100 ms).
    pub fn new(name: &str) -> Group {
        println!("\n== bench group: {name} ==");
        Group {
            name: name.to_string(),
            samples: 10,
            target: Duration::from_millis(100),
        }
    }

    /// Overrides the number of samples taken per benchmark.
    pub fn samples(mut self, samples: usize) -> Group {
        self.samples = samples.max(2);
        self
    }

    /// Overrides the per-sample time budget.
    pub fn sample_time(mut self, target: Duration) -> Group {
        self.target = target;
        self
    }

    /// Times `f`, prints one aligned result row, and returns the summary.
    /// The closure's return value is consumed with [`std::hint::black_box`]
    /// so the optimizer cannot elide the work.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warm-up: one untimed call, then estimate a single iteration.
        std::hint::black_box(f());
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            iters_per_sample: iters,
        };
        println!(
            "{:<44} median {:>12}  min {:>12}  mean {:>12}  ({} iters/sample)",
            format!("{}/{}", self.name, label),
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            fmt_ns(m.mean_ns),
            m.iters_per_sample
        );
        m
    }
}

/// Human-readable duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let group = Group::new("microbench-self-test")
            .samples(3)
            .sample_time(Duration::from_millis(2));
        let m = group.bench("sum", || (0..1000u64).sum::<u64>());
        assert!(m.min_ns > 0.0);
        assert!(m.median_ns >= m.min_ns);
        assert!(m.iters_per_sample >= 1);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with("s"));
    }
}
