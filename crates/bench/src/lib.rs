//! Shared experiment harness for reproducing the paper's tables and
//! figures.
//!
//! Every `fig*`/`tab*` binary in `src/bin/` prepares the sixteen-scene
//! suite once with [`Suite::prepare`], runs the configurations the
//! corresponding paper experiment compares, and prints the same rows or
//! series the paper reports (plus the paper's published numbers where
//! available, for side-by-side comparison).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod microbench;
mod svg;

use rt_scene::{SceneId, Workload};
use std::time::Instant;
pub use svg::bar_chart;
pub use treelet_rt::{
    catch_job_panic, default_jobs, default_jobs_for, encode_prepared_bench, geometric_mean,
    plan_schedule, plan_schedule_with, prepare_cache_key, run_indexed, run_scheduled,
    run_weighted, Bench, BvhCache, CheckpointOptions, Schedule, SimConfig, SimError, SimResult,
    SimSession, Sweep, SweepOutcome, Telemetry, TelemetryOptions, TelemetrySample,
};

/// Default scene detail for the experiment suite (full evaluation scale;
/// see `DESIGN.md` for the scaling rationale).
pub const SUITE_DETAIL: f32 = 1.0;

/// Options steering [`Suite::prepare_with`]: worker count, progress
/// verbosity, and the preparation cache.
#[derive(Debug, Default)]
pub struct PrepareOptions {
    /// Worker count for sharding preparation across scenes; `None`
    /// uses [`default_jobs_for`] the scene count (so `RT_JOBS` applies).
    /// Any count produces bit-identical benches in suite order.
    pub jobs: Option<usize>,
    /// Suppress the per-scene progress lines — for bench bins that
    /// print their own headers and for output-sensitive harnesses.
    pub quiet: bool,
    /// Content-addressed preparation cache; `None` builds from scratch.
    pub cache: Option<BvhCache>,
}

impl PrepareOptions {
    /// The defaults interactive binaries want: automatic worker count,
    /// progress on stderr, and the `RT_BVH_CACHE` environment cache
    /// when one is configured.
    pub fn standard() -> PrepareOptions {
        PrepareOptions {
            jobs: None,
            quiet: false,
            cache: BvhCache::from_env(),
        }
    }
}

/// Parses an optional `TREELET_DETAIL`-style override. Pure (no
/// environment access) so the rejection paths are unit-testable:
/// `None`/empty means "no override", a finite positive number is the
/// override, and anything else is an error naming the bad value —
/// never a silent fallback.
///
/// # Errors
///
/// A human-readable description of why the value was rejected.
pub fn parse_detail_override(raw: Option<&str>) -> Result<Option<f32>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<f32>() {
        Ok(d) if d.is_finite() && d > 0.0 => Ok(Some(d)),
        Ok(d) => Err(format!(
            "TREELET_DETAIL={trimmed} must be a finite positive number (parsed as {d})"
        )),
        Err(_) => Err(format!("TREELET_DETAIL={trimmed} is not a number")),
    }
}

/// The suite detail to use: the `TREELET_DETAIL` override when it is
/// set and valid, otherwise [`SUITE_DETAIL`]. An unparseable override
/// warns on stderr (it used to be silently ignored — a typo'd
/// `TREELET_DETAIL=0.1x` would quietly run the full-detail suite for
/// minutes) and falls back to the default.
pub fn suite_detail_from_env() -> f32 {
    let raw = std::env::var("TREELET_DETAIL").ok();
    match parse_detail_override(raw.as_deref()) {
        Ok(Some(detail)) => detail,
        Ok(None) => SUITE_DETAIL,
        Err(why) => {
            eprintln!("warning: ignoring invalid detail override: {why}; using {SUITE_DETAIL}");
            SUITE_DETAIL
        }
    }
}

/// The sixteen-scene evaluation suite, prepared once and reused across
/// configurations.
#[derive(Debug)]
pub struct Suite {
    benches: Vec<Bench>,
}

impl Suite {
    /// Prepares every scene of the paper's Table 2 at `detail` with the
    /// given ray workload, printing progress to stderr: preparation is
    /// sharded across the cost-model scheduler (biggest scenes first)
    /// and served from the `RT_BVH_CACHE` cache when one is configured.
    /// See [`Suite::prepare_with`] for explicit control.
    pub fn prepare(detail: f32, workload: Workload) -> Suite {
        Suite::prepare_with(detail, workload, &PrepareOptions::standard())
    }

    /// Prepares the suite under explicit [`PrepareOptions`].
    ///
    /// Scene generation, BVH construction, and ray generation for each
    /// scene are independent and deterministic, so the cells shard
    /// across the same cost-model scheduler the simulations use —
    /// planned by the paper's Table 2 tree sizes (the best available
    /// estimate before any tree is built) so the heaviest builds start
    /// first. Results come back in suite order, and every bench is
    /// bit-identical to a serial, uncached preparation at any worker
    /// count: the cache stores the exact built artifact, and each cell
    /// is single-threaded.
    ///
    /// Progress is one complete `eprintln!` line per scene emitted from
    /// this harness (never a split `eprint!` pair that would interleave
    /// across workers), plus a summary with cache hit counts.
    ///
    /// # Panics
    ///
    /// Panics with the scene's [`SceneError`](rt_scene::SceneError)
    /// message if `detail` is rejected.
    pub fn prepare_with(detail: f32, workload: Workload, opts: &PrepareOptions) -> Suite {
        let t0 = Instant::now();
        let scenes = SceneId::ALL;
        let jobs = opts.jobs.unwrap_or_else(|| default_jobs_for(scenes.len()));
        let costs = Suite::prepare_costs();
        let cache = opts.cache.as_ref();
        let benches = run_weighted(jobs, &costs, |i| {
            let id = scenes[i];
            let c0 = Instant::now();
            let bench = match Bench::try_prepare_cached(id, detail, workload, cache) {
                Ok(bench) => bench,
                Err(e) => panic!("preparing {id}: {e}"),
            };
            if !opts.quiet {
                eprintln!(
                    "prepared {id}: {} triangles, {} nodes in {:.1?}",
                    bench.bvh().triangles().len(),
                    bench.bvh().node_count(),
                    c0.elapsed()
                );
            }
            bench
        });
        if !opts.quiet {
            match cache {
                Some(c) => eprintln!(
                    "suite prepared in {:.1?} ({} cache hits, {} misses)",
                    t0.elapsed(),
                    c.hits(),
                    c.misses()
                ),
                None => eprintln!("suite prepared in {:.1?}", t0.elapsed()),
            }
        }
        Suite { benches }
    }

    /// Per-scene preparation cost estimates in suite order, for the
    /// cost-model scheduler. Before any tree is built the only signal
    /// is the paper's Table 2 tree size, which tracks build cost within
    /// a detail level; the absolute scale (bytes) keeps every cell
    /// above the scheduler's inline threshold — correct, since even the
    /// smallest scene build dwarfs a cross-thread handoff.
    fn prepare_costs() -> Vec<u64> {
        SceneId::ALL
            .into_iter()
            .map(|id| (id.paper_stats().tree_size_mb * 1_048_576.0) as u64)
            .map(|c| c.max(1))
            .collect()
    }

    /// Prepares the suite with the paper's default workload (32×32
    /// primary rays, 1 SPP) at the default detail, honoring the
    /// `TREELET_DETAIL` environment variable for quick runs (invalid
    /// values warn and fall back — see [`suite_detail_from_env`]).
    pub fn prepare_default() -> Suite {
        Suite::prepare(suite_detail_from_env(), Workload::paper_default())
    }

    /// The prepared per-scene benches, in Table 2 order.
    pub fn benches(&self) -> &[Bench] {
        &self.benches
    }

    /// Per-scene cost estimates in suite order — the inputs the
    /// cost-model scheduler plans with (see [`run_weighted`]).
    pub fn scene_costs(&self) -> Vec<u64> {
        self.benches.iter().map(Bench::estimated_cost).collect()
    }

    /// Runs `config` on every scene, in suite order. Scenes are sharded
    /// across the machine's worker pool (each simulation itself is
    /// deterministic and single-threaded, so results are identical to a
    /// serial run). The pool never exceeds the scene count or the
    /// machine's core count.
    ///
    /// # Panics
    ///
    /// Panics with the failing scene's recorded reason if any scene
    /// fails; use [`Suite::run_all_robust`] to keep the survivors.
    pub fn run_all(&self, config: &SimConfig) -> Vec<SimResult> {
        self.run_all_parallel(config, default_jobs_for(self.benches.len()))
    }

    /// [`Suite::run_all`] with an explicit worker count. `jobs == 1`
    /// runs the scenes serially inline; any worker count produces
    /// bit-identical per-scene results — including their
    /// [`state_digest`](SimResult::state_digest)s — in suite order.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero, or with the failing scene's recorded
    /// reason if any scene fails.
    pub fn run_all_parallel(&self, config: &SimConfig, jobs: usize) -> Vec<SimResult> {
        self.run_all_robust_with_jobs(jobs, |b| b.try_run(config))
            .into_iter()
            .map(|outcome| match outcome {
                SceneOutcome::Completed { result, .. } => result,
                SceneOutcome::Failed { scene, reason, .. } => {
                    panic!("scene {scene} failed: {reason}")
                }
            })
            .collect()
    }

    /// Runs `config` on every scene, recording failures instead of
    /// propagating them: a scene that returns a [`SimError`] or panics is
    /// reported as [`SceneOutcome::Failed`] while the other scenes'
    /// results survive. A panicking scene is retried once (a typed error
    /// is deterministic, so it is not).
    // A 16-scene sweep makes the `SimError` payload size irrelevant.
    #[allow(clippy::result_large_err)]
    pub fn run_all_robust(&self, config: &SimConfig) -> Vec<SceneOutcome> {
        self.run_all_robust_with(|b| b.try_run(config))
    }

    /// [`Suite::run_all_robust`] with crash-safe checkpointing: each
    /// scene checkpoints into `dir/<scene>.rtsnap` (with a digest log
    /// alongside) every `every` cycles and resumes from its checkpoint
    /// when one is present, so a killed sweep picks up mid-scene instead
    /// of starting over. Stale checkpoints from other runs are discarded
    /// (see [`Bench::try_run_resumable`]).
    ///
    /// # Errors
    ///
    /// Returns the error from creating `dir` (as its `Display` string)
    /// before any scene runs; per-scene failures are reported in the
    /// outcomes as usual.
    #[allow(clippy::result_large_err)]
    pub fn run_all_robust_resumable(
        &self,
        config: &SimConfig,
        dir: &std::path::Path,
        every: u64,
    ) -> Result<Vec<SceneOutcome>, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("could not create checkpoint dir {}: {e}", dir.display()))?;
        Ok(self.run_all_robust_with(|b| {
            let slug = b.scene().name().to_ascii_lowercase();
            let opts = CheckpointOptions::new(every, dir.join(format!("{slug}.rtsnap")))
                .with_digest_log(dir.join(format!("{slug}.digests")));
            b.try_run_resumable(config, &opts)
        }))
    }

    /// [`Suite::run_all_robust`] over an arbitrary per-scene runner —
    /// lets experiment binaries sweep per-scene configs while keeping the
    /// same isolation guarantees. Retries are surfaced on stderr and in
    /// each outcome's `attempts` count.
    #[allow(clippy::result_large_err)]
    pub fn run_all_robust_with<F>(&self, run: F) -> Vec<SceneOutcome>
    where
        F: Fn(&Bench) -> Result<SimResult, SimError> + Sync,
    {
        self.run_all_robust_with_jobs(default_jobs_for(self.benches.len()), run)
    }

    /// [`Suite::run_all_robust_with`] with an explicit worker count.
    /// Scenes are scheduled by the cost model ([`run_weighted`]): each
    /// scene's estimated cost is its BVH node count × ray count, cheap
    /// scenes run inline on the caller's thread, expensive ones are
    /// claimed longest-first in cost-weighted chunks, and the worker
    /// count is clamped to the machine's core count — a 16-scene suite
    /// on a 4-core box runs 4 simulations at a time instead of
    /// oversubscribing. Outcomes come back in suite order regardless of
    /// which scene finished first.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero. Panics *inside* `run` are contained per
    /// scene as typed [`SimError::WorkerPanicked`] failures — they never
    /// unwind through the pool, so one poisoned scene cannot take the
    /// rest of the sweep with it.
    #[allow(clippy::result_large_err)]
    pub fn run_all_robust_with_jobs<F>(&self, jobs: usize, run: F) -> Vec<SceneOutcome>
    where
        F: Fn(&Bench) -> Result<SimResult, SimError> + Sync,
    {
        let costs = self.scene_costs();
        run_weighted(jobs, &costs, |i| {
            let b = &self.benches[i];
            let mut attempts = 1;
            let mut attempt = catch_job_panic(i, || run(b));
            if matches!(attempt, Err(SimError::WorkerPanicked { .. })) {
                // A panic may be environmental (e.g. stack exhaustion
                // under thread contention); give the scene one more
                // chance before recording it as lost. Typed errors are
                // deterministic and are not retried.
                attempts = 2;
                attempt = catch_job_panic(i, || run(b));
            }
            match attempt {
                Ok(result) => {
                    if attempts > 1 {
                        eprintln!("scene {} completed on attempt {attempts}", b.scene());
                    }
                    SceneOutcome::Completed { result, attempts }
                }
                Err(e) => {
                    eprintln!(
                        "scene {} failed after {attempts} attempt(s): {e}",
                        b.scene()
                    );
                    SceneOutcome::Failed {
                        scene: b.scene(),
                        reason: e.to_string(),
                        attempts,
                    }
                }
            }
        })
    }
}

/// What happened to one scene of a [`Suite::run_all_robust`] sweep.
// One outcome per scene: the size gap between a full `SimResult` and a
// failure record doesn't matter at this cardinality.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SceneOutcome {
    /// The simulation finished and produced a result.
    Completed {
        /// The scene's result.
        result: SimResult,
        /// How many runner invocations it took (2 after a retried panic).
        attempts: u32,
    },
    /// The simulation returned an error or panicked; the sweep went on
    /// without it.
    Failed {
        /// The scene that was lost.
        scene: SceneId,
        /// The `SimError` message or panic payload.
        reason: String,
        /// How many runner invocations were made before giving up.
        attempts: u32,
    },
}

impl SceneOutcome {
    /// The result, if the scene completed.
    pub fn result(&self) -> Option<&SimResult> {
        match self {
            SceneOutcome::Completed { result, .. } => Some(result),
            SceneOutcome::Failed { .. } => None,
        }
    }

    /// Whether the scene completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, SceneOutcome::Completed { .. })
    }

    /// How many runner invocations this scene took.
    pub fn attempts(&self) -> u32 {
        match self {
            SceneOutcome::Completed { attempts, .. }
            | SceneOutcome::Failed { attempts, .. } => *attempts,
        }
    }
}

/// Slugifies a table title into a file-name-safe stem.
fn slugify(title: &str) -> String {
    let mut out = String::new();
    let mut last_dash = true;
    for ch in title.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
    }
    out.trim_matches('-').to_string()
}

/// Writes a table as CSV into `dir` (one file per table, named from the
/// title).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(
    dir: &std::path::Path,
    title: &str,
    columns: &[&str],
    rows: &[(SceneId, Vec<f64>)],
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", slugify(title)));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write!(file, "scene")?;
    for c in columns {
        write!(file, ",{}", slugify(c))?;
    }
    writeln!(file)?;
    for (scene, cells) in rows {
        write!(file, "{}", scene.name())?;
        for v in cells {
            write!(file, ",{v}")?;
        }
        writeln!(file)?;
    }
    Ok(path)
}

/// Prints a table: a header row, one row per scene, and (optionally) a
/// geometric-mean row, matching how the paper reports per-scene series.
/// When the `TREELET_CSV_DIR` environment variable is set, the table is
/// also written there as CSV for plotting.
pub fn print_scene_table(title: &str, columns: &[&str], rows: &[(SceneId, Vec<f64>)], gmean: bool) {
    if let Ok(dir) = std::env::var("TREELET_CSV_DIR") {
        match write_csv(std::path::Path::new(&dir), title, columns, rows) {
            Ok(path) => eprintln!("csv written: {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
    println!("\n== {title} ==");
    print!("{:<7}", "Scene");
    for c in columns {
        print!(" {c:>14}");
    }
    println!();
    for (scene, cells) in rows {
        print!("{:<7}", scene.name());
        for v in cells {
            print!(" {v:>14.4}");
        }
        println!();
    }
    if gmean && !rows.is_empty() {
        print!("{:<7}", "GMean");
        for col in 0..columns.len() {
            let vals: Vec<f64> = rows.iter().map(|(_, cells)| cells[col]).collect();
            if vals.iter().all(|&v| v > 0.0) {
                print!(" {:>14.4}", geometric_mean(&vals));
            } else {
                print!(" {:>14}", "-");
            }
        }
        println!();
    }
}

/// Formats a speedup as the percentage the paper quotes (`1.321` →
/// `+32.1%`).
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

#[cfg(test)]
#[allow(clippy::result_large_err)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_paper_style() {
        assert_eq!(pct(1.321), "+32.1%");
        assert_eq!(pct(0.963), "-3.7%");
        assert_eq!(pct(1.0), "+0.0%");
    }

    #[test]
    fn detail_override_parsing_is_strict() {
        assert_eq!(parse_detail_override(None), Ok(None));
        assert_eq!(parse_detail_override(Some("")), Ok(None));
        assert_eq!(parse_detail_override(Some("  ")), Ok(None));
        assert_eq!(parse_detail_override(Some("0.25")), Ok(Some(0.25)));
        assert_eq!(parse_detail_override(Some(" 2 ")), Ok(Some(2.0)));
        // Every rejection names the offending value instead of being
        // silently swallowed (the old `.ok().and_then(parse().ok())`
        // fell back to the full-detail suite on a typo).
        for bad in ["0.1x", "abc", "0", "-1", "inf", "NaN"] {
            let err = parse_detail_override(Some(bad)).unwrap_err();
            assert!(err.contains(bad.trim()), "{bad:?} -> {err}");
        }
    }

    /// Per-bench serialized artifact bytes — the bit-identity oracle
    /// for preparation paths (covers nodes, triangles, rays, and the
    /// default treelet assignment).
    fn prepared_digests(suite: &Suite) -> Vec<Vec<u8>> {
        suite
            .benches()
            .iter()
            .map(|b| encode_prepared_bench(b, 0))
            .collect()
    }

    #[test]
    fn cold_warm_parallel_prepares_are_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "rt_bench_prepare_cache_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let workload = Workload::new(rt_scene::WorkloadKind::Primary, 4, 4);
        let detail = 0.05;
        let quiet = |jobs, cache| PrepareOptions {
            jobs: Some(jobs),
            quiet: true,
            cache,
        };
        // Cold serial prepare populates the cache.
        let cold_cache = BvhCache::open(&dir).unwrap();
        let cold = Suite::prepare_with(detail, workload, &quiet(1, Some(cold_cache)));
        // Parallel uncached prepare.
        let parallel = Suite::prepare_with(detail, workload, &quiet(4, None));
        // Warm parallel prepare must be all hits.
        let warm_cache = BvhCache::open(&dir).unwrap();
        let warm_opts = quiet(4, Some(warm_cache));
        let warm = Suite::prepare_with(detail, workload, &warm_opts);
        let c = warm_opts.cache.as_ref().unwrap();
        assert_eq!(
            (c.hits(), c.misses()),
            (SceneId::ALL.len() as u64, 0),
            "warm prepare must be served entirely from cache"
        );
        let cold_d = prepared_digests(&cold);
        assert_eq!(cold_d, prepared_digests(&parallel));
        assert_eq!(cold_d, prepared_digests(&warm));
        // And the acceptance-level oracle: simulation state digests are
        // bit-identical regardless of how the suite was prepared.
        let config = SimConfig::paper_baseline();
        let from_cold = cold.run_all_parallel(&config, 1);
        let from_warm = warm.run_all_parallel(&config, 4);
        for (a, b) in from_cold.iter().zip(&from_warm) {
            assert_eq!(a.state_digest, b.state_digest);
            assert_eq!(a.cycles, b.cycles);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slugify_makes_file_stems() {
        assert_eq!(
            slugify("Fig. 7: speedup and power (ALWAYS)"),
            "fig-7-speedup-and-power-always"
        );
        assert_eq!(slugify("   "), "");
    }

    #[test]
    fn write_csv_round_trip() {
        let dir = std::env::temp_dir().join("rt_bench_csv_test");
        let rows = vec![
            (SceneId::Wknd, vec![1.0, 2.5]),
            (SceneId::Car, vec![0.5, 4.0]),
        ];
        let path = write_csv(&dir, "Test table: one", &["a", "b x"], &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "scene,a,b-x\nWKND,1,2.5\nCAR,0.5,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_suite_digests_match_serial() {
        // The determinism contract behind `--jobs N`: every worker count
        // yields the serial run's per-scene digests, in suite order.
        let suite = Suite::prepare(0.05, Workload::new(rt_scene::WorkloadKind::Primary, 4, 4));
        let config = SimConfig::paper_treelet_prefetch();
        let serial = suite.run_all_parallel(&config, 1);
        let parallel = suite.run_all_parallel(&config, 4);
        assert_eq!(serial.len(), SceneId::ALL.len());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.state_digest, b.state_digest);
            assert_eq!(a.cycles, b.cycles);
        }
    }

    #[test]
    fn robust_sweep_survives_a_panicking_scene() {
        // Full 16-scene suite at tiny detail with a minimal workload; one
        // scene's runner panics deliberately. The other fifteen must
        // still report results.
        let suite = Suite::prepare(0.05, Workload::new(rt_scene::WorkloadKind::Primary, 4, 4));
        let config = SimConfig::paper_baseline();
        let outcomes = suite.run_all_robust_with(|b| {
            if b.scene() == SceneId::Ship {
                panic!("injected fault");
            }
            b.try_run(&config)
        });
        assert_eq!(outcomes.len(), SceneId::ALL.len());
        let completed = outcomes.iter().filter(|o| o.is_completed()).count();
        assert_eq!(completed, SceneId::ALL.len() - 1);
        let failed: Vec<_> = outcomes.iter().filter(|o| !o.is_completed()).collect();
        match failed.as_slice() {
            [SceneOutcome::Failed {
                scene,
                reason,
                attempts,
            }] => {
                assert_eq!(*scene, SceneId::Ship);
                assert!(reason.contains("injected fault"), "reason: {reason}");
                // A panicking scene gets its one retry before being lost.
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected exactly one failure, got {other:?}"),
        }
        // Scenes that never panicked completed on their first attempt.
        assert!(outcomes
            .iter()
            .filter(|o| o.is_completed())
            .all(|o| o.attempts() == 1));
    }

    #[test]
    fn robust_sweep_records_typed_errors_without_retry() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let suite = Suite::prepare(0.05, Workload::new(rt_scene::WorkloadKind::Primary, 2, 2));
        let calls = AtomicUsize::new(0);
        let mut bad = SimConfig::paper_baseline();
        bad.num_sms = 0;
        let outcomes = suite.run_all_robust_with(|b| {
            calls.fetch_add(1, Ordering::SeqCst);
            b.try_run(&bad)
        });
        // Typed errors are deterministic: one attempt per scene, no retry.
        assert_eq!(calls.load(Ordering::SeqCst), SceneId::ALL.len());
        assert!(outcomes.iter().all(|o| !o.is_completed()));
        assert!(outcomes.iter().all(|o| o.attempts() == 1));
        for o in &outcomes {
            if let SceneOutcome::Failed { reason, .. } = o {
                assert!(reason.contains("invalid simulation config"));
            }
        }
    }

    #[test]
    fn robust_sweep_retries_a_transient_panic() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let suite = Suite::prepare(0.05, Workload::new(rt_scene::WorkloadKind::Primary, 2, 2));
        let config = SimConfig::paper_baseline();
        let failed_once: Mutex<HashSet<SceneId>> = Mutex::new(HashSet::new());
        let outcomes = suite.run_all_robust_with(|b| {
            if failed_once.lock().unwrap().insert(b.scene()) {
                panic!("transient");
            }
            b.try_run(&config)
        });
        // Every scene panicked on its first attempt and succeeded on the
        // retry, so the whole sweep still completes — in two attempts.
        assert!(outcomes.iter().all(|o| o.is_completed()));
        assert!(outcomes.iter().all(|o| o.attempts() == 2));
    }

    #[test]
    fn resumable_sweep_checkpoints_and_reruns_identically() {
        let suite = Suite::prepare(0.05, Workload::new(rt_scene::WorkloadKind::Primary, 4, 4));
        let config = SimConfig::paper_treelet_prefetch();
        let dir = std::env::temp_dir().join(format!(
            "rt_bench_resumable_sweep_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let first = suite
            .run_all_robust_resumable(&config, &dir, 2_000)
            .unwrap();
        assert!(first.iter().all(|o| o.is_completed()));
        // Every scene opened its digest log; scenes that ran past the
        // first epoch also left a checkpoint behind.
        let mut checkpoints = 0;
        for b in suite.benches() {
            let slug = b.scene().name().to_ascii_lowercase();
            assert!(dir.join(format!("{slug}.digests")).exists(), "{slug}");
            checkpoints += usize::from(dir.join(format!("{slug}.rtsnap")).exists());
        }
        assert!(checkpoints > 0, "no scene reached its first epoch");
        // A second sweep resumes from the left-over final checkpoints,
        // replays each scene's tail, and lands on the same state.
        let second = suite
            .run_all_robust_resumable(&config, &dir, 2_000)
            .unwrap();
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.result().unwrap(), b.result().unwrap());
            assert_eq!(a.state_digest, b.state_digest);
            assert_eq!(a.cycles, b.cycles);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn print_scene_table_smoke() {
        // Printing must not panic on normal and empty row sets.
        print_scene_table(
            "test",
            &["a", "b"],
            &[
                (SceneId::Wknd, vec![1.0, 2.0]),
                (SceneId::Ship, vec![0.5, 4.0]),
            ],
            true,
        );
        print_scene_table("empty", &["a"], &[], true);
    }
}

