//! Criterion benchmark: greedy treelet formation (§3.1) across treelet
//! byte budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId};
use treelet_rt::TreeletAssignment;

fn treelet_formation(c: &mut Criterion) {
    let mesh = Scene::build_with_detail(SceneId::Spnza, 1.0).mesh;
    let bvh = WideBvh::build(mesh.into_triangles());
    let mut group = c.benchmark_group("treelet_formation");
    for bytes in [256u64, 512, 1024, 2048] {
        group.bench_with_input(
            BenchmarkId::new("greedy_bfs", bytes),
            &bytes,
            |b, &bytes| b.iter(|| TreeletAssignment::form(&bvh, bytes)),
        );
    }
    group.finish();
}

criterion_group!(benches, treelet_formation);
criterion_main!(benches);
