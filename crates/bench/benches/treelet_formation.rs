//! Micro-benchmark: greedy treelet formation (§3.1) across treelet
//! byte budgets.

use rt_bench::microbench::Group;
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId};
use treelet_rt::TreeletAssignment;

fn main() {
    let mesh = Scene::build_with_detail(SceneId::Spnza, 1.0).mesh;
    let bvh = WideBvh::build(mesh.into_triangles());
    let group = Group::new("treelet_formation");
    for bytes in [256u64, 512, 1024, 2048] {
        group.bench(&format!("greedy_bfs/{bytes}"), || {
            TreeletAssignment::form(&bvh, bytes)
        });
    }
}
