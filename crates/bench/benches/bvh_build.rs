//! Micro-benchmark: BVH construction (binned SAH + 6-wide collapse)
//! across scene scales.

use rt_bench::microbench::Group;
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId};

fn main() {
    let group = Group::new("bvh_build").samples(10);
    for (scene, detail) in [
        (SceneId::Wknd, 1.0f32),
        (SceneId::Bunny, 1.0),
        (SceneId::Spnza, 1.0),
        (SceneId::Car, 0.5),
    ] {
        let mesh = Scene::build_with_detail(scene, detail).mesh;
        let tris = mesh.into_triangles();
        group.bench(
            &format!("binned_sah_6wide/{scene}/{}tris", tris.len()),
            || WideBvh::build(tris.clone()),
        );
    }
}
