//! Criterion benchmark: BVH construction (binned SAH + 6-wide collapse)
//! across scene scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId};

fn bvh_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bvh_build");
    group.sample_size(10);
    for (scene, detail) in [
        (SceneId::Wknd, 1.0f32),
        (SceneId::Bunny, 1.0),
        (SceneId::Spnza, 1.0),
        (SceneId::Car, 0.5),
    ] {
        let mesh = Scene::build_with_detail(scene, detail).mesh;
        let tris = mesh.into_triangles();
        group.bench_with_input(
            BenchmarkId::new("binned_sah_6wide", format!("{scene}/{}tris", tris.len())),
            &tris,
            |b, tris| b.iter(|| WideBvh::build(tris.clone())),
        );
    }
    group.finish();
}

criterion_group!(benches, bvh_build);
criterion_main!(benches);
