//! Criterion benchmark: functional ray traversal — baseline DFS vs the
//! two-stack treelet algorithm (Algorithm 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId, Workload};
use treelet_rt::{trace_ray, TraversalAlgorithm, TreeletAssignment};

fn traversal(c: &mut Criterion) {
    let scene = Scene::build_with_detail(SceneId::Bunny, 1.0);
    let rays = Workload::paper_default().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);

    let mut group = c.benchmark_group("traversal_1024_rays");
    for (name, algo) in [
        ("baseline_dfs", TraversalAlgorithm::BaselineDfs),
        ("two_stack_treelet", TraversalAlgorithm::TwoStackTreelet),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, &algo| {
            b.iter(|| {
                rays.iter()
                    .map(|r| trace_ray(&bvh, &treelets, r, algo).nodes_visited())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, traversal);
criterion_main!(benches);
