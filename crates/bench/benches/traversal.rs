//! Micro-benchmark: functional ray traversal — baseline DFS vs the
//! two-stack treelet algorithm (Algorithm 1).

use rt_bench::microbench::Group;
use rt_bvh::WideBvh;
use rt_scene::{Scene, SceneId, Workload};
use treelet_rt::{trace_ray, TraversalAlgorithm, TreeletAssignment};

fn main() {
    let scene = Scene::build_with_detail(SceneId::Bunny, 1.0);
    let rays = Workload::paper_default().generate(&scene);
    let bvh = WideBvh::build(scene.mesh.into_triangles());
    let treelets = TreeletAssignment::form(&bvh, 512);

    let group = Group::new("traversal_1024_rays");
    for (name, algo) in [
        ("baseline_dfs", TraversalAlgorithm::BaselineDfs),
        ("two_stack_treelet", TraversalAlgorithm::TwoStackTreelet),
    ] {
        group.bench(name, || {
            rays.iter()
                .map(|r| trace_ray(&bvh, &treelets, r, algo).nodes_visited())
                .sum::<usize>()
        });
    }
}
