//! Micro-benchmark: end-to-end cycle-level simulation throughput,
//! baseline RT unit vs treelet prefetching.

use rt_bench::microbench::Group;
use rt_scene::{SceneId, Workload};
use treelet_rt::{Bench, SimConfig};

fn main() {
    let bench = Bench::prepare(SceneId::Bunny, 1.0, Workload::paper_default());
    let group = Group::new("full_sim_bunny").samples(10);
    for (name, config) in [
        ("baseline", SimConfig::paper_baseline()),
        (
            "treelet_traversal",
            SimConfig::paper_treelet_traversal_only(),
        ),
        ("treelet_prefetch", SimConfig::paper_treelet_prefetch()),
    ] {
        group.bench(name, || bench.run(&config).cycles);
    }
}
