//! Criterion benchmark: end-to-end cycle-level simulation throughput,
//! baseline RT unit vs treelet prefetching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_scene::{SceneId, Workload};
use treelet_rt::{Bench, SimConfig};

fn full_sim(c: &mut Criterion) {
    let bench = Bench::prepare(SceneId::Bunny, 1.0, Workload::paper_default());
    let mut group = c.benchmark_group("full_sim_bunny");
    group.sample_size(10);
    for (name, config) in [
        ("baseline", SimConfig::paper_baseline()),
        (
            "treelet_traversal",
            SimConfig::paper_treelet_traversal_only(),
        ),
        ("treelet_prefetch", SimConfig::paper_treelet_prefetch()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| bench.run(config).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, full_sim);
criterion_main!(benches);
