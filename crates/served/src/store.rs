//! The daemon's persistent, content-addressed artifact store.
//!
//! Layout under the store root:
//!
//! ```text
//! store/
//!   LOCK                      exclusive daemon lock (`pid=<pid>`)
//!   jobs/<job-id>.json        job journal: spec + lifecycle state
//!   cells/<cell-key>/
//!     result.json             final CellResult (the cache entry)
//!     ck.rtsnap               in-progress checkpoint (deleted on success)
//!     ck.digests              per-epoch replay-digest log
//! ```
//!
//! Job ids and cell keys are FNV-1a digests of the canonical job spec
//! (see [`JobSpec::identity`]), so an identical resubmit maps to the
//! same paths and is served from cache without re-simulating. All
//! writes go through atomic write-then-rename, so a daemon killed
//! mid-write can never leave a torn journal or cache entry — at worst
//! the old content survives.
//!
//! Every filesystem operation goes through a [`ServedFs`] shim
//! (production: a passthrough over `std::fs`; tests: the chaos layer),
//! which is what lets the crash-point harness in `tests/chaos.rs`
//! enumerate each mutating operation below and prove recovery after a
//! simulated death at that exact point.
//!
//! Corruption is handled asymmetrically by design: a corrupt *job
//! journal* is a typed [`StoreError::Corrupt`] that fails daemon
//! startup (exit code 8 — the operator must intervene, because silently
//! dropping journaled work would break the resume contract), while a
//! corrupt *cell result* is treated as a cache miss and recomputed
//! (the simulator is deterministic, so recomputation self-heals).
//!
//! A store belongs to at most one daemon at a time: [`ArtifactStore::lock`]
//! takes an exclusive `LOCK` file (stolen only from a provably dead
//! holder), so two daemons cannot interleave journal writes. A held
//! lock is the typed [`StoreError::Locked`], riding the same exit-8
//! startup path as corruption.

use crate::chaos::{Chaos, ServedFs};
use crate::json::Json;
use crate::protocol::{hex_id, parse_hex_id, CellResult, JobSpec, JobState, ProtocolError};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure; `what` names the operation.
    Io {
        what: &'static str,
        path: PathBuf,
        source: io::Error,
    },
    /// A journal file exists but does not decode. Carried to startup as
    /// a hard error (exit code 8).
    Corrupt { path: PathBuf, detail: String },
    /// The store root exists but is not a directory.
    NotADirectory { path: PathBuf },
    /// Another live daemon holds the store's `LOCK` file. Also a hard
    /// startup error (exit code 8): two daemons interleaving writes to
    /// one store would corrupt it far more creatively than a crash.
    Locked { path: PathBuf, holder: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, path, source } => {
                write!(f, "cannot {what} {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {}: {detail}", path.display())
            }
            StoreError::NotADirectory { path } => {
                write!(f, "store path {} is not a directory", path.display())
            }
            StoreError::Locked { path, holder } => {
                write!(
                    f,
                    "store is locked by another daemon ({holder}); remove {} only if that daemon is gone",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One journal entry: a job's spec and where it got to.
#[derive(Debug, Clone)]
pub struct JournaledJob {
    /// Content-address of the spec.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Last journaled lifecycle state.
    pub state: JobState,
    /// Error description for failed / timed-out jobs.
    pub error: Option<String>,
}

/// Exclusive ownership of a store, held for a daemon's lifetime.
///
/// Dropping removes the `LOCK` file — through `std::fs` directly, not
/// the shim, because a *really* crashed process never runs `Drop` (the
/// stale-pid steal below covers that case), while a *simulated* crash
/// in the harness must still be able to release its own lock for the
/// in-process restart.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Handle to a store root. Cheap to clone; all methods are stateless
/// over the filesystem (reached through the configured [`ServedFs`]).
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    fs: Arc<dyn ServedFs>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`, with the
    /// production filesystem.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotADirectory`] if `root` exists but is a file;
    /// [`StoreError::Io`] if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, StoreError> {
        ArtifactStore::open_with_fs(root, Chaos::off().fs())
    }

    /// Opens a store whose filesystem operations go through `fs` — the
    /// chaos layer's entry point.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::open`].
    pub fn open_with_fs(
        root: impl Into<PathBuf>,
        fs: Arc<dyn ServedFs>,
    ) -> Result<ArtifactStore, StoreError> {
        let root = root.into();
        // Existence probing is read-only and not a fault-injection
        // point; `create_dir_all` below is.
        if root.exists() && !root.is_dir() {
            return Err(StoreError::NotADirectory { path: root });
        }
        let store = ArtifactStore { root, fs };
        for sub in ["jobs", "cells"] {
            let dir = store.root.join(sub);
            store
                .fs
                .create_dir_all(&dir)
                .map_err(|source| StoreError::Io {
                    what: "create directory",
                    path: dir.clone(),
                    source,
                })?;
        }
        Ok(store)
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn lock_path(&self) -> PathBuf {
        self.root.join("LOCK")
    }

    /// Takes the store's exclusive daemon lock.
    ///
    /// The lock is a `LOCK` file created with `O_EXCL` holding
    /// `pid=<pid>`. If it already exists, the holder's pid is probed
    /// (`kill(pid, 0)`): a provably dead holder's lock is stale and
    /// stolen; a live or unidentifiable holder is the typed
    /// [`StoreError::Locked`]. Unidentifiable errs on the safe side —
    /// refusing a start is recoverable, interleaved writes are not.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another daemon holds the store;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn lock(&self) -> Result<StoreLock, StoreError> {
        let path = self.lock_path();
        let contents = format!("pid={}\n", std::process::id());
        for attempt in 0..2 {
            match self.fs.create_exclusive(&path, contents.as_bytes()) {
                Ok(()) => return Ok(StoreLock { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = self.lock_holder(&path)?;
                    match holder {
                        Holder::Dead(_) if attempt == 0 => {
                            // Stale lock from a crashed daemon: steal it
                            // and retry the exclusive create once (a
                            // concurrent starter may win the race; the
                            // second AlreadyExists is then authoritative).
                            self.fs.remove_file(&path).map_err(|source| StoreError::Io {
                                what: "remove stale lock",
                                path: path.clone(),
                                source,
                            })?;
                        }
                        holder => {
                            return Err(StoreError::Locked {
                                path,
                                holder: holder.describe(),
                            })
                        }
                    }
                }
                Err(source) => {
                    return Err(StoreError::Io {
                        what: "create lock",
                        path,
                        source,
                    })
                }
            }
        }
        unreachable!("lock loop returns on every arm of the second attempt")
    }

    /// Classifies who holds an existing lock file.
    fn lock_holder(&self, path: &Path) -> Result<Holder, StoreError> {
        let bytes = match self.fs.read(path) {
            Ok(b) => b,
            // Lost a race with the holder's own release: treat as dead
            // so the caller's retry can claim it.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Holder::Dead(0)),
            Err(source) => {
                return Err(StoreError::Io {
                    what: "read lock",
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        let text = String::from_utf8_lossy(&bytes);
        let Some(pid) = text
            .trim()
            .strip_prefix("pid=")
            .and_then(|p| p.parse::<u32>().ok())
        else {
            return Ok(Holder::Unknown);
        };
        if pid_alive(pid) {
            Ok(Holder::Alive(pid))
        } else {
            Ok(Holder::Dead(pid))
        }
    }

    fn job_path(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(format!("{}.json", hex_id(id)))
    }

    fn cell_dir(&self, key: u64) -> PathBuf {
        self.root.join("cells").join(hex_id(key))
    }

    /// Path of a cell's in-progress checkpoint.
    pub fn checkpoint_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("ck.rtsnap")
    }

    /// Path of a cell's replay-digest log.
    pub fn digest_log_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("ck.digests")
    }

    /// Path of a cell's cached result.
    pub fn cell_result_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("result.json")
    }

    /// Journals a job's spec and state, atomically replacing any
    /// previous entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the atomic write fails.
    pub fn journal_job(
        &self,
        id: u64,
        spec: &JobSpec,
        state: JobState,
        error: Option<&str>,
    ) -> Result<(), StoreError> {
        let mut fields: BTreeMap<String, Json> = BTreeMap::new();
        fields.insert("v".into(), Json::num(1));
        fields.insert("spec".into(), spec.to_json());
        fields.insert("state".into(), Json::str(state.as_str()));
        if let Some(e) = error {
            fields.insert("error".into(), Json::str(e));
        }
        let mut line = Json::Obj(fields).encode();
        line.push('\n');
        let path = self.job_path(id);
        self.write_atomic(&path, line.as_bytes())
    }

    /// Loads every journaled job. Called once at daemon startup to
    /// rebuild the job table and re-enqueue interrupted work.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on the first journal entry that fails to
    /// decode or whose filename disagrees with its spec digest;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn load_jobs(&self) -> Result<Vec<JournaledJob>, StoreError> {
        let dir = self.root.join("jobs");
        let entries = self.fs.read_dir(&dir).map_err(|source| StoreError::Io {
            what: "list",
            path: dir.clone(),
            source,
        })?;
        let mut jobs = Vec::new();
        for path in entries {
            // Skips orphaned `.tmp` siblings from interrupted atomic
            // writes as well as anything else that is not a journal.
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            jobs.push(self.load_job(&path)?);
        }
        // Deterministic order regardless of directory iteration order.
        jobs.sort_by_key(|j| j.id);
        Ok(jobs)
    }

    fn load_job(&self, path: &Path) -> Result<JournaledJob, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(parse_hex_id)
            .ok_or_else(|| corrupt("filename is not a hex job id".to_string()))?;
        let bytes = self.fs.read(path).map_err(|source| StoreError::Io {
            what: "read",
            path: path.to_path_buf(),
            source,
        })?;
        let text =
            String::from_utf8(bytes).map_err(|_| corrupt("journal is not UTF-8".to_string()))?;
        let v = Json::parse(text.trim_end()).map_err(|e| corrupt(e.to_string()))?;
        let spec_json = v
            .get("spec")
            .ok_or_else(|| corrupt("missing `spec`".to_string()))?;
        let spec = JobSpec::from_json(spec_json).map_err(|e: ProtocolError| corrupt(e.to_string()))?;
        if spec.identity() != id {
            return Err(corrupt(format!(
                "spec digest {} does not match filename",
                hex_id(spec.identity())
            )));
        }
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| corrupt("missing or unknown `state`".to_string()))?;
        Ok(JournaledJob {
            id,
            spec,
            state,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Reads a cell's cached result.
    ///
    /// Returns `Ok(None)` both when the cache entry is absent and when
    /// it is unreadable or corrupt — either way the cell must be
    /// recomputed, and the deterministic simulator makes recomputation
    /// equivalent to repair.
    pub fn read_cell_result(&self, key: u64) -> Option<CellResult> {
        let path = self.cell_result_path(key);
        let bytes = self.fs.read(&path).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        let v = Json::parse(text.trim_end()).ok()?;
        let cell = CellResult::from_json(&v).ok()?;
        // A cache entry filed under the wrong key is corruption, not a
        // hit.
        if cell.cell != key {
            return None;
        }
        Some(cell)
    }

    /// Atomically caches a cell's result and removes its now-redundant
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write fails.
    pub fn write_cell_result(&self, cell: &CellResult) -> Result<(), StoreError> {
        let dir = self.cell_dir(cell.cell);
        self.fs.create_dir_all(&dir).map_err(|source| StoreError::Io {
            what: "create directory",
            path: dir.clone(),
            source,
        })?;
        let mut line = cell.to_json().encode();
        line.push('\n');
        self.write_atomic(&self.cell_result_path(cell.cell), line.as_bytes())?;
        // The checkpoint only exists to resume an interrupted run; once
        // the result is cached it is dead weight.
        let _ = self.fs.remove_file(&self.checkpoint_path(cell.cell));
        Ok(())
    }

    /// Path of a cached preparation artifact (an `RTBVH01` container:
    /// built BVH + rays + default treelet assignment), keyed by the
    /// preparation content digest — *not* the cell key, because many
    /// cells (one per config) share one preparation.
    pub fn bvh_artifact_path(&self, key: u64) -> PathBuf {
        self.root.join("bvh").join(format!("{}.rtbvh", hex_id(key)))
    }

    /// Reads a cached preparation artifact's raw bytes, or `None` when
    /// absent or unreadable. Decoding (and corruption judgment) is the
    /// caller's: `treelet_rt::decode_prepared_bench` validates the
    /// container, and any failure should be reported back via
    /// [`ArtifactStore::remove_bvh_artifact`] so the entry self-heals.
    pub fn read_bvh_artifact(&self, key: u64) -> Option<Vec<u8>> {
        self.fs.read(&self.bvh_artifact_path(key)).ok()
    }

    /// Atomically caches a preparation artifact's bytes, creating the
    /// `bvh/` directory on first use. Goes through the same fs shim and
    /// write-then-rename discipline as every other store write, so the
    /// chaos crash-point harness enumerates these write points too.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if directory creation or the atomic write
    /// fails.
    pub fn write_bvh_artifact(&self, key: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let dir = self.root.join("bvh");
        self.fs.create_dir_all(&dir).map_err(|source| StoreError::Io {
            what: "create directory",
            path: dir,
            source,
        })?;
        self.write_atomic(&self.bvh_artifact_path(key), bytes)
    }

    /// Deletes a preparation artifact that failed to decode (corrupt
    /// entry = self-healing miss). Best-effort: the rebuild that
    /// follows re-caches over it either way.
    pub fn remove_bvh_artifact(&self, key: u64) {
        let _ = self.fs.remove_file(&self.bvh_artifact_path(key));
    }

    /// Ensures a cell's directory exists (the checkpoint writer needs
    /// the parent present).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if creation fails.
    pub fn ensure_cell_dir(&self, key: u64) -> Result<(), StoreError> {
        let dir = self.cell_dir(key);
        self.fs.create_dir_all(&dir).map_err(|source| StoreError::Io {
            what: "create directory",
            path: dir,
            source,
        })
    }

    /// Atomic write-then-rename composed from the shim's primitives, so
    /// a simulated crash can land between the write and the commit —
    /// exactly where a real one would. The temp sibling swaps the
    /// `.json` extension for `.tmp`, which [`ArtifactStore::load_jobs`]
    /// skips.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        let io_err = |what: &'static str, p: &Path, source: io::Error| StoreError::Io {
            what,
            path: p.to_path_buf(),
            source,
        };
        self.fs
            .write_file(&tmp, bytes)
            .map_err(|e| io_err("write", &tmp, e))?;
        self.fs
            .rename(&tmp, path)
            .map_err(|e| io_err("commit write of", path, e))
    }
}

/// Who holds a lock file.
enum Holder {
    Alive(u32),
    Dead(u32),
    Unknown,
}

impl Holder {
    fn describe(&self) -> String {
        match self {
            Holder::Alive(pid) => format!("pid {pid}, alive"),
            Holder::Dead(pid) => format!("pid {pid}, dead but steal raced"),
            Holder::Unknown => "unrecognized lock contents".to_string(),
        }
    }
}

/// Whether `pid` names a live process: `kill(pid, 0)` succeeds, or
/// fails with anything but ESRCH (EPERM in particular means *alive but
/// not ours*).
fn pid_alive(pid: u32) -> bool {
    const ESRCH: i32 = 3;
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let Ok(pid) = i32::try_from(pid) else {
        // Not a representable pid; claim alive so the lock is refused,
        // not stolen.
        return true;
    };
    if unsafe { kill(pid, 0) } == 0 {
        return true;
    }
    io::Error::last_os_error().raw_os_error() != Some(ESRCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("rt-served-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn spec() -> JobSpec {
        JobSpec {
            scenes: vec!["WKND".to_string()],
            ..JobSpec::default()
        }
    }

    #[test]
    fn journal_round_trips_and_updates_in_place() {
        let store = temp_store("journal");
        let spec = spec();
        let id = spec.identity();
        store.journal_job(id, &spec, JobState::Queued, None).unwrap();
        store
            .journal_job(id, &spec, JobState::Failed, Some("worker panicked"))
            .unwrap();

        let jobs = store.load_jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, id);
        assert_eq!(jobs[0].spec, spec);
        assert_eq!(jobs[0].state, JobState::Failed);
        assert_eq!(jobs[0].error.as_deref(), Some("worker panicked"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_journal_is_a_typed_hard_error() {
        let store = temp_store("corrupt");
        let path = store.root().join("jobs").join("0x0000000000000001.json");
        fs::write(&path, b"{ this is not json").unwrap();
        match store.load_jobs() {
            Err(StoreError::Corrupt { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn journal_with_wrong_digest_is_corrupt() {
        let store = temp_store("wrong-digest");
        let spec = spec();
        // File the journal under an id that is not the spec's digest.
        store
            .journal_job(0xbad, &spec, JobState::Queued, None)
            .unwrap();
        assert!(matches!(
            store.load_jobs(),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_cell_result_reads_as_a_miss() {
        let store = temp_store("cell");
        let cell = CellResult {
            cell: 7,
            scene: "CAR".to_string(),
            config: "prefetch".to_string(),
            cycles: 10,
            rays: 20,
            state_digest: 30,
        };
        store.write_cell_result(&cell).unwrap();
        assert_eq!(store.read_cell_result(7), Some(cell));
        assert_eq!(store.read_cell_result(8), None);

        fs::write(store.cell_result_path(7), b"torn!").unwrap();
        assert_eq!(store.read_cell_result(7), None, "corrupt entry = miss");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn store_root_must_be_a_directory() {
        let path = std::env::temp_dir().join(format!("rt-served-not-a-dir-{}", std::process::id()));
        fs::write(&path, b"file").unwrap();
        assert!(matches!(
            ArtifactStore::open(&path),
            Err(StoreError::NotADirectory { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn lock_excludes_a_second_holder_and_releases_on_drop() {
        let store = temp_store("lock");
        let lock = store.lock().expect("first lock");
        match store.lock() {
            Err(StoreError::Locked { holder, .. }) => {
                // Held by this very process, which is definitely alive.
                assert!(holder.contains("alive"), "{holder}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        let relock = store.lock().expect("relock after release");
        drop(relock);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_stolen() {
        let store = temp_store("stale-lock");
        // A child process that has already been waited on is guaranteed
        // dead and its pid unambiguous.
        let child = std::process::Command::new("sh")
            .arg("-c")
            .arg("echo $$")
            .output()
            .expect("spawn child");
        let dead_pid: u32 = String::from_utf8_lossy(&child.stdout).trim().parse().unwrap();
        fs::write(store.root().join("LOCK"), format!("pid={dead_pid}\n")).unwrap();
        let lock = store.lock().expect("steal stale lock");
        drop(lock);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn unrecognized_lock_contents_refuse_the_start() {
        let store = temp_store("garbage-lock");
        fs::write(store.root().join("LOCK"), b"who knows\n").unwrap();
        match store.lock() {
            Err(StoreError::Locked { holder, .. }) => {
                assert!(holder.contains("unrecognized"), "{holder}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.root());
    }
}
